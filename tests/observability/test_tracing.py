"""Span trees, dual clocks, the null tracer, and the exporters."""

from __future__ import annotations

import pytest

from repro.errors import VirtualDataError
from repro.observability.export import (
    render_span_tree,
    spans_from_jsonl,
    spans_to_jsonl,
)
from repro.observability.instrument import (
    NULL,
    Instrumentation,
    NullInstrumentation,
)
from repro.observability.tracing import NullTracer, Tracer


class TestSpanNesting:
    def test_children_link_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.children(outer) == [inner]
        assert tracer.roots() == [outer]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = tracer.spans("a")[0], tracer.spans("b")[0]
        assert a.parent_id == b.parent_id

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("s") as span:
            assert tracer.current() is span
        assert tracer.current() is None

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(VirtualDataError):
            with tracer.span("failing"):
                raise VirtualDataError("boom")
        span = tracer.spans("failing")[0]
        assert span.status == "error"
        assert "boom" in span.error
        assert span.finished
        assert tracer.current() is None  # stack unwound

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("s", targets="final") as span:
            span.set("steps", 5)
        assert span.attributes == {"targets": "final", "steps": 5}


class TestClocks:
    def test_wall_time_advances(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            pass
        assert span.wall_seconds >= 0
        assert span.finished

    def test_sim_clock_is_stamped_when_bound(self):
        clock = {"now": 10.0}
        tracer = Tracer(sim_clock=lambda: clock["now"])
        with tracer.span("s") as span:
            clock["now"] = 25.0
        assert span.start_sim == 10.0
        assert span.end_sim == 25.0
        assert span.sim_seconds == 15.0

    def test_sim_clock_absent_means_none(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            pass
        assert span.start_sim is None
        assert span.sim_seconds is None

    def test_record_completed_span_with_explicit_sim_times(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            span = tracer.record(
                "job", sim_start=5.0, sim_end=9.0, status="done", site="anl"
            )
        assert span.parent_id == parent.span_id
        assert span.sim_seconds == 4.0
        assert span.wall_seconds == 0.0
        assert span.status == "done"
        assert span.attributes["site"] == "anl"


class TestEvents:
    def test_event_attaches_to_current_span(self):
        tracer = Tracer(sim_clock=lambda: 3.0)
        with tracer.span("s") as span:
            tracer.add_event("step-done", step="g1")
        assert span.events[0]["name"] == "step-done"
        assert span.events[0]["sim"] == 3.0
        assert span.events[0]["attributes"] == {"step": "g1"}

    def test_event_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.add_event("orphan")  # must not raise
        assert len(tracer) == 0


class TestNullInstrumentation:
    def test_null_is_disabled_and_inert(self):
        assert NULL.enabled is False
        assert isinstance(NULL, NullInstrumentation)
        with NULL.span("anything", key="value") as span:
            span.set("k", "v")
            span.add_event("e")
        NULL.count("c")
        NULL.observe("h", 1.0)
        NULL.gauge("g", 2.0)
        NULL.event("e")
        assert len(NULL.metrics) == 0

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("s"):
            tracer.record("r")
        assert len(tracer) == 0
        assert tracer.enabled is False

    def test_real_instrumentation_is_enabled(self):
        obs = Instrumentation()
        assert obs.enabled is True
        with obs.span("s"):
            obs.count("c")
        assert len(obs.tracer) == 1
        assert obs.metrics.get("c").total() == 1

    def test_reset_clears_both_sides(self):
        obs = Instrumentation()
        with obs.span("s"):
            obs.count("c")
        obs.reset()
        assert len(obs.tracer) == 0
        assert len(obs.metrics) == 0


class TestExporters:
    def _tracer(self) -> Tracer:
        tracer = Tracer(sim_clock=lambda: 1.0)
        with tracer.span("root", targets="final"):
            tracer.add_event("note", detail="x")
            with tracer.span("child"):
                pass
        return tracer

    def test_jsonl_round_trip(self):
        tracer = self._tracer()
        loaded = spans_from_jsonl(spans_to_jsonl(tracer))
        assert [s["name"] for s in loaded] == ["root", "child"]
        assert loaded[1]["parent_id"] == loaded[0]["span_id"]
        assert loaded[0]["events"][0]["name"] == "note"

    def test_render_tree_indents_children(self):
        lines = render_span_tree(self._tracer()).splitlines()
        assert lines[0].startswith("root")
        assert "targets=final" in lines[0]
        assert lines[1].strip().startswith("· note")
        assert lines[2] == "  " + lines[2].strip()
        assert lines[2].strip().startswith("child")

    def test_render_accepts_loaded_dicts(self):
        tracer = self._tracer()
        from_tracer = render_span_tree(tracer)
        from_dicts = render_span_tree(spans_from_jsonl(spans_to_jsonl(tracer)))
        assert from_tracer == from_dicts
