"""OpenMetrics exposition: generation and format validation."""

from __future__ import annotations

from repro.observability.export import (
    openmetrics_snapshot,
    to_openmetrics,
    validate_openmetrics,
)
from repro.observability.health import grid_health
from repro.observability.history import HistoryStore
from repro.observability.metrics import MetricsRegistry

from tests.observability.test_health import faulty_run


def sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("steps.completed", "Completed steps").inc(
        3, site="a", status="success"
    )
    reg.counter("steps.completed").inc(1, site="b", status="failure")
    reg.gauge("scheduler.breaker.state", "Breaker state").set(2, site="a")
    reg.histogram(
        "step.duration.seconds",
        "Step wall time",
        buckets=(1.0, 5.0, 30.0),
    ).observe(3.2, site="a")
    return reg


class TestToOpenMetrics:
    def test_real_registry_validates_cleanly(self):
        text = to_openmetrics(sample_registry().to_dict())
        assert validate_openmetrics(text) == []

    def test_shape(self):
        text = to_openmetrics(sample_registry().to_dict())
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert "# TYPE steps_completed counter" in lines
        assert (
            'steps_completed_total{site="a",status="success"} 3' in lines
        )
        assert '# TYPE scheduler_breaker_state gauge' in lines
        assert 'scheduler_breaker_state{site="a"} 2' in lines
        # Histogram: cumulative buckets, +Inf, sum and count (labels
        # render alphabetically, so "le" precedes "site").
        assert 'step_duration_seconds_bucket{le="1",site="a"} 0' in lines
        assert 'step_duration_seconds_bucket{le="5",site="a"} 1' in lines
        assert (
            'step_duration_seconds_bucket{le="+Inf",site="a"} 1' in lines
        )
        assert 'step_duration_seconds_count{site="a"} 1' in lines

    def test_empty_registry_is_just_eof(self):
        text = to_openmetrics({})
        assert text == "# EOF\n"
        assert validate_openmetrics(text) == []

    def test_extra_families_merged_live_wins(self):
        live = sample_registry().to_dict()
        extra = {
            "steps.completed": {
                "kind": "counter",
                "help": "stale",
                "series": [{"labels": {}, "value": 999}],
            },
            "site.health.status": {
                "kind": "gauge",
                "help": "Health",
                "series": [{"labels": {"site": "a"}, "value": 1}],
            },
        }
        text = to_openmetrics(live, extra=extra)
        assert "999" not in text  # live family shadows the extra
        assert 'site_health_status{site="a"} 1' in text
        assert validate_openmetrics(text) == []

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("g", 'line\nbreak and "quote" \\ slash').set(1)
        text = to_openmetrics(reg.to_dict())
        assert '# HELP g line\\nbreak and "quote" \\\\ slash' in text
        assert validate_openmetrics(text) == []


class TestValidator:
    def test_missing_eof(self):
        problems = validate_openmetrics("# TYPE x gauge\nx 1\n")
        assert any("# EOF" in p for p in problems)

    def test_counter_sample_without_total_suffix(self):
        text = "# TYPE c counter\nc 1\n# EOF\n"
        problems = validate_openmetrics(text)
        assert any("c" in p for p in problems)

    def test_counter_total_suffix_accepted(self):
        text = "# TYPE c counter\nc_total 1\n# EOF\n"
        assert validate_openmetrics(text) == []

    def test_histogram_requires_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 0\n'
            "h_sum 0\n"
            "h_count 0\n"
            "# EOF\n"
        )
        problems = validate_openmetrics(text)
        assert any("+Inf" in p for p in problems)

    def test_sample_without_type_flagged(self):
        text = "orphan 1\n# EOF\n"
        problems = validate_openmetrics(text)
        assert any("orphan" in p for p in problems)

    def test_duplicate_type_flagged(self):
        text = "# TYPE g gauge\n# TYPE g gauge\ng 1\n# EOF\n"
        problems = validate_openmetrics(text)
        assert any("duplicate" in p.lower() for p in problems)

    def test_bad_label_syntax_flagged(self):
        text = '# TYPE g gauge\ng{site=a} 1\n# EOF\n'
        assert validate_openmetrics(text)

    def test_non_numeric_value_flagged(self):
        text = "# TYPE g gauge\ng banana\n# EOF\n"
        assert validate_openmetrics(text)

    def test_content_after_eof_flagged(self):
        text = "# EOF\n# TYPE g gauge\ng 1\n"
        assert validate_openmetrics(text)

    def test_blank_line_flagged(self):
        text = "# TYPE g gauge\n\ng 1\n# EOF\n"
        assert validate_openmetrics(text)


class TestSnapshot:
    def test_health_gauges_merged(self, tmp_path):
        faulty_run(tmp_path, "run-f")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        report = grid_health(store)
        live = sample_registry().to_dict()
        text = openmetrics_snapshot(live, health_report=report)
        assert validate_openmetrics(text) == []
        assert 'site_health_status{site="bad"}' in text
        assert "grid_health_status" in text
        # Live metrics survive the merge.
        assert "steps_completed_total" in text

    def test_without_health(self):
        text = openmetrics_snapshot(sample_registry().to_dict())
        assert validate_openmetrics(text) == []
        assert "site_health_status" not in text
