"""End-to-end: one instrumented materialize yields one coherent
span tree (plan → schedule → execute → transfer) and one metric
namespace spanning catalog, planner, scheduler, executor and grid."""

from __future__ import annotations

import pytest

from repro.observability import Instrumentation
from repro.observability.export import render_span_tree, write_snapshot
from repro.system import VirtualDataSystem
from tests.conftest import DIAMOND_VDL


@pytest.fixture
def traced_run():
    """One materialize of the diamond pipeline on a two-site grid.

    One host per site forces the scheduler to spread steps across
    sites, so the run includes a wide-area transfer.
    """
    obs = Instrumentation()
    vds = VirtualDataSystem.with_grid(
        sites={"anl": 1, "uc": 1}, instrumentation=obs
    )
    vds.define(DIAMOND_VDL)
    result = vds.materialize("final")
    assert result.succeeded
    return obs, vds


class TestSpanTree:
    def test_covers_plan_schedule_execute_transfer(self, traced_run):
        obs, _ = traced_run
        names = obs.tracer.span_names()
        assert {
            "vds.materialize",
            "executor.plan",
            "planner.plan",
            "executor.run",
            "scheduler.run",
            "scheduler.step",
            "grid.transfer",
        } <= names

    def test_tree_is_rooted_and_nested(self, traced_run):
        obs, _ = traced_run
        tracer = obs.tracer
        materialize = tracer.spans("vds.materialize")[0]
        assert materialize.parent_id is None
        # plan and run are descendants of materialize
        executor_span = tracer.spans("executor.materialize")[0]
        assert executor_span.parent_id == materialize.span_id
        run = tracer.spans("executor.run")[0]
        assert run.parent_id == executor_span.span_id
        scheduler = tracer.spans("scheduler.run")[0]
        assert scheduler.parent_id == run.span_id
        # job and transfer spans hang off the scheduler run
        for step in tracer.spans("scheduler.step"):
            assert step.parent_id == scheduler.span_id
        for transfer in tracer.spans("grid.transfer"):
            assert transfer.parent_id == scheduler.span_id

    def test_spans_carry_both_clocks(self, traced_run):
        obs, _ = traced_run
        materialize = obs.tracer.spans("vds.materialize")[0]
        assert materialize.wall_seconds > 0
        assert materialize.sim_seconds > 0  # grid time passed
        step = obs.tracer.spans("scheduler.step")[0]
        assert step.sim_seconds > 0  # jobs take sim time
        assert step.attributes["site"] in ("anl", "uc")

    def test_one_step_span_per_plan_step(self, traced_run):
        obs, _ = traced_run
        assert len(obs.tracer.spans("scheduler.step")) == 5  # diamond

    def test_render_is_non_empty(self, traced_run):
        obs, _ = traced_run
        text = render_span_tree(obs.tracer)
        assert "vds.materialize" in text
        assert "grid.transfer" in text


class TestMetrics:
    def test_every_layer_reports(self, traced_run):
        obs, _ = traced_run
        names = set(obs.metrics.names())
        assert {
            "catalog.ops",
            "catalog.op.seconds",
            "planner.plans",
            "planner.plan.steps",
            "scheduler.dispatched",
            "scheduler.steps",
            "scheduler.step.queue_seconds",
            "executor.reuse.hits",
            "grid.jobs.submitted",
            "grid.jobs.completed",
            "grid.transfers",
            "grid.transfer.bytes",
            "sim.events",
            "sim.clock_seconds",
        } <= names

    def test_counts_are_consistent_with_the_run(self, traced_run):
        obs, _ = traced_run
        metrics = obs.metrics
        assert metrics.get("scheduler.dispatched").total() == 5
        assert metrics.get("scheduler.steps").value(status="done") == 5
        assert metrics.get("grid.jobs.submitted").total() == 5
        assert metrics.get("grid.transfers").value(scope="wide-area") >= 1
        assert metrics.get("grid.transfer.bytes").total() > 0
        assert metrics.get("catalog.ops").total() > 0

    def test_site_gauges_present(self, traced_run):
        obs, _ = traced_run
        utilization = obs.metrics.get("grid.site.utilization")
        assert utilization is not None
        sites = {dict(k)["site"] for k, _ in utilization.series()}
        assert sites == {"anl", "uc"}

    def test_prometheus_export_contains_run_data(self, traced_run):
        obs, _ = traced_run
        text = obs.metrics.to_prometheus()
        assert "# TYPE scheduler_dispatched counter" in text
        assert "# TYPE grid_transfer_seconds histogram" in text
        assert 'grid_jobs_completed{site=' in text


class TestReuseVisibility:
    def test_second_materialize_counts_reuse_hits(self, traced_run):
        obs, vds = traced_run
        before = obs.metrics.get("executor.reuse.hits").total()
        result = vds.materialize("final", reuse="always")
        assert result.succeeded
        assert obs.metrics.get("executor.reuse.hits").total() > before
        assert obs.metrics.get("planner.reuse.hits").total() > 0


class TestSnapshot:
    def test_write_snapshot_persists_all_three_formats(
        self, traced_run, tmp_path
    ):
        obs, _ = traced_run
        write_snapshot(obs, tmp_path / "snap")
        assert (tmp_path / "snap" / "spans.jsonl").read_text().strip()
        assert (tmp_path / "snap" / "metrics.json").read_text().strip()
        assert (tmp_path / "snap" / "metrics.prom").read_text().strip()


class TestUninstrumentedDefault:
    def test_system_without_instrumentation_records_nothing(self):
        vds = VirtualDataSystem.with_grid(sites={"anl": 1, "uc": 1})
        vds.define(DIAMOND_VDL)
        assert vds.materialize("final").succeeded
        assert vds.obs.enabled is False
        assert len(vds.obs.metrics) == 0


class TestSDSSWorkload:
    """The acceptance shape on a real §6 workload: an instrumented SDSS
    campaign stripe on a four-site grid covers plan → schedule →
    execute → transfer and accounts the wide-area bytes."""

    def test_sdss_stripe_yields_full_span_and_metric_coverage(self):
        from repro.workloads import sdss

        sites = {"anl": 4, "uc": 4, "uw": 4, "ufl": 4}
        obs = Instrumentation()
        vds = VirtualDataSystem.with_grid(
            sites,
            authority="sdss.griphyn.org",
            bandwidth=50e6,
            instrumentation=obs,
        )
        campaign = sdss.define_campaign(
            vds.catalog, fields=8, fields_per_stripe=4
        )
        names = sorted(sites)
        for i, field in enumerate(campaign.field_datasets):
            vds.seed_dataset(field, names[i % 4], sdss.FIELD_BYTES)
        result = vds.materialize(
            campaign.targets[0], reuse="never", pattern="ship-data"
        )
        assert result.succeeded

        assert {
            "vds.materialize",
            "planner.plan",
            "scheduler.run",
            "scheduler.step",
            "grid.transfer",
        } <= obs.tracer.span_names()
        # fields seeded round-robin across four sites + ship-data means
        # the run must move data: the transfer accounting is non-zero.
        assert obs.metrics.get("grid.transfer.bytes").total() > 0
        assert obs.metrics.get("scheduler.steps").total() > 0
        assert obs.metrics.get("catalog.ops").total() > 0
