"""Grid health SLOs: per-site scorecards and scheduler feedback."""

from __future__ import annotations

import pytest

from repro.observability.health import (
    CRITICAL,
    DEGRADED,
    OK,
    HealthReport,
    SiteHealth,
    SLOPolicy,
    grid_health,
    health_metrics,
    health_penalties,
    percentile,
)
from repro.observability.history import HistoryStore
from repro.observability.recorder import FlightRecorder

from tests.observability.test_history import chain_plan, write_run


def faulty_run(runs_root, run_id, bad_site="bad", ok_site="ok"):
    """One run where every step first fails at ``bad_site`` and then
    succeeds at ``ok_site`` — the seeded-fault-window shape."""
    rec = FlightRecorder.start(runs_root, run_id=run_id, command="test")
    rec.plan(chain_plan())
    rec.step("g1", status="failure", start=0.0, end=2.0, site=bad_site)
    rec.event("fault.injected", fault="outage")
    rec.step("g1", status="success", start=2.0, end=4.0, site=ok_site)
    rec.step("p1", status="failure", start=4.0, end=6.0, site=bad_site)
    rec.event("fault.injected", fault="outage")
    rec.step("p1", status="success", start=6.0, end=8.0, site=ok_site)
    rec.finalize(status="ok", makespan=8.0)


class TestPercentile:
    def test_nearest_rank(self):
        xs = [float(i) for i in range(1, 101)]
        assert percentile(xs, 95.0) == 95.0
        assert percentile(xs, 50.0) == 50.0
        assert percentile([], 95.0) == 0.0

    def test_bad_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150.0)


class TestSLOPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(success_target=1.5)
        with pytest.raises(ValueError):
            SLOPolicy(burn_degraded=2.0, burn_critical=1.0)


class TestGridHealth:
    def test_seeded_fault_window_degrades_the_site(self, tmp_path):
        """Acceptance: the site subjected to the fault window reports a
        degraded (here: critical) SLO; the healthy site stays ok."""
        faulty_run(tmp_path, "run-f")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        report = grid_health(store)
        bad = report.site("bad")
        assert bad.status in (DEGRADED, CRITICAL)
        assert bad.failures == 2
        assert bad.success_rate == 0.0
        assert bad.error_budget_burn > 1.0
        assert report.site("ok").status == OK
        assert report.status in (DEGRADED, CRITICAL)

    def test_all_healthy_reports_ok(self, tmp_path):
        write_run(tmp_path, "run-a", site="a")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        report = grid_health(store)
        assert report.status == OK
        assert report.site("a").error_budget_burn == 0.0

    def test_breaker_open_time_degrades(self, tmp_path):
        rec = FlightRecorder.start(tmp_path, run_id="run-b")
        rec.plan(chain_plan())
        rec.step("g1", status="success", start=0.0, end=30.0, site="a")
        rec.step("p1", status="success", start=30.0, end=40.0, site="a")
        rec.event("breaker.transition", site="a", state=2, sim=5.0)
        rec.event("breaker.transition", site="a", state=0, sim=15.0)
        rec.finalize(status="ok")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        site = grid_health(store).site("a")
        assert site.breaker_open_seconds == 10.0
        assert site.status == DEGRADED
        assert any("breaker" in r for r in site.reasons)

    def test_latency_outlier_degrades(self, tmp_path):
        # Site "slow" runs the same work 10x slower than its peers.
        for i in range(3):
            write_run(tmp_path, f"run-{i}", site="fast")
        write_run(
            tmp_path, "run-slow",
            gen_seconds=50.0, proc_seconds=50.0, site="slow",
        )
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        report = grid_health(store)
        assert report.site("slow").status == DEGRADED
        assert any(
            "latency" in r for r in report.site("slow").reasons
        )
        assert report.site("fast").status == OK

    def test_window_bounds_history(self, tmp_path):
        faulty_run(tmp_path, "run-old")
        for i in range(3):
            write_run(tmp_path, f"run-{i}", site="ok")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        # A window covering only the recent clean runs: no bad site.
        report = grid_health(store, window=3)
        assert report.site("bad") is None
        assert report.status == OK
        # The full window still sees the fault.
        assert grid_health(store, window=0).site("bad") is not None

    def test_render_and_to_dict(self, tmp_path):
        faulty_run(tmp_path, "run-f")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        report = grid_health(store)
        text = report.render()
        assert "grid health:" in text
        assert "bad" in text
        data = report.to_dict()
        assert data["status"] in (DEGRADED, CRITICAL)
        assert {s["site"] for s in data["sites"]} == {"bad", "ok"}


class TestHealthPenalties:
    def make_report(self, status, burn=0.0):
        site = SiteHealth(
            site="s", attempts=10, failures=0, success_rate=1.0,
            error_budget_burn=burn, p95_latency=1.0,
            grid_p95_latency=1.0, breaker_open_seconds=0.0,
            status=status,
        )
        return HealthReport(
            sites=[site], runs_considered=1, policy=SLOPolicy()
        )

    def test_ok_costs_nothing(self):
        assert health_penalties(self.make_report(OK)) == {"s": 0.0}

    def test_degraded_charged_by_burn(self):
        assert health_penalties(
            self.make_report(DEGRADED, burn=2.0), scale=60.0
        ) == {"s": 120.0}

    def test_degraded_without_burn_still_charged(self):
        # Latency/breaker-only degradation: burn 0 floors at 1x scale.
        assert health_penalties(
            self.make_report(DEGRADED, burn=0.0), scale=60.0
        ) == {"s": 60.0}

    def test_critical_at_least_double(self):
        assert health_penalties(
            self.make_report(CRITICAL, burn=0.5), scale=60.0
        ) == {"s": 120.0}

    def test_selector_prefers_healthy_site(self, tmp_path):
        """The feedback loop: penalties steer placement away from the
        degraded site while keeping it usable."""
        from tests.resilience.conftest import SINGLE_VDL, make_world

        world = make_world(SINGLE_VDL, ("a0",), sites=("a", "b"))
        step = world.plan.steps["g1"]
        # Tie: deterministic choice is alphabetically first ("a").
        assert world.selector.choose(step, "ship-both").site == "a"
        world.selector.set_penalties({"a": 120.0})
        assert world.selector.choose(step, "ship-both").site == "b"
        # Sole-site fallback: a penalized site still runs work.
        assert (
            world.selector.choose(
                step, "ship-both", candidates=["a"]
            ).site
            == "a"
        )

    def test_negative_penalty_rejected(self, tmp_path):
        from repro.errors import PlanningError
        from tests.resilience.conftest import SINGLE_VDL, make_world

        world = make_world(SINGLE_VDL, ("a0",))
        with pytest.raises(PlanningError):
            world.selector.set_penalties({"a": -1.0})
        with pytest.raises(PlanningError):
            world.selector.set_penalty("a", -1.0)


class TestSystemIntegration:
    def test_apply_site_health_installs_penalties(self, tmp_path):
        from repro.system import VirtualDataSystem

        faulty_run(tmp_path, "run-f", bad_site="a", ok_site="b")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        report = grid_health(store)
        vds = VirtualDataSystem.with_grid({"a": 2, "b": 2})
        applied = vds.apply_site_health(report)
        assert applied["a"] > 0.0
        assert applied["b"] == 0.0
        assert vds.selector.penalty_seconds("a") == applied["a"]

    def test_apply_accepts_raw_mapping_and_filters_unknown(self):
        from repro.system import VirtualDataSystem

        vds = VirtualDataSystem.with_grid({"a": 2})
        applied = vds.apply_site_health({"a": 30.0, "ghost": 99.0})
        assert applied == {"a": 30.0}

    def test_train_on_history(self, tmp_path):
        from repro.system import VirtualDataSystem

        write_run(tmp_path, "run-a", gen_seconds=4.0, proc_seconds=6.0)
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        vds = VirtualDataSystem.with_grid({"a": 2})
        trained = vds.train_on_history(store)
        assert set(trained) == {"gen", "proc"}
        assert trained["gen"].is_fitted
        assert trained["gen"].predict_cpu_seconds(100) == pytest.approx(
            4.0
        )


class TestHealthMetrics:
    def test_families_in_registry_shape(self, tmp_path):
        faulty_run(tmp_path, "run-f")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        families = health_metrics(grid_health(store))
        assert families["site.health.status"]["kind"] == "gauge"
        by_site = {
            s["labels"]["site"]: s["value"]
            for s in families["site.health.status"]["series"]
        }
        assert by_site["bad"] >= 1
        assert by_site["ok"] == 0
        assert families["grid.health.status"]["series"][0]["value"] >= 1
