"""The live progress sink and its ticker."""

from __future__ import annotations

import io
import threading
import time
from types import SimpleNamespace

import pytest

from repro.observability.progress import (
    ProgressSink,
    ProgressTicker,
    _fmt_seconds,
)


def fake_plan(estimates):
    """A plan-shaped object: name -> cpu_seconds estimate."""
    steps = {
        name: SimpleNamespace(cpu_seconds=cpu)
        for name, cpu in estimates.items()
    }
    return SimpleNamespace(steps=steps)


class TestProgressSink:
    def test_initial_snapshot_is_empty(self):
        snap = ProgressSink().snapshot()
        assert snap["total"] == 0
        assert snap["done"] == 0
        assert snap["running"] == []
        assert snap["eta"] is None

    def test_transitions_accumulate(self):
        sink = ProgressSink()
        sink.start_plan(fake_plan({"a": 1.0, "b": 1.0, "c": 1.0}))
        sink.step_started("a")
        sink.step_started("b")
        snap = sink.snapshot()
        assert snap["running"] == ["a", "b"]
        sink.step_finished("a", "ok")
        sink.step_finished("b", "failed")
        sink.step_finished("c", "skipped")
        snap = sink.snapshot()
        assert snap["done"] == 1
        assert snap["failed"] == 1
        assert snap["skipped"] == 1
        assert snap["running"] == []

    def test_eta_uses_estimator_weights(self):
        sink = ProgressSink()
        # One 1s step done, a 9s step remaining: at the observed pace
        # the ETA extrapolates to ~9x the elapsed time.
        sink.start_plan(fake_plan({"small": 1.0, "big": 9.0}))
        sink.step_started("small")
        sink.step_finished("small")
        with sink._lock:
            eta = sink._eta_locked(elapsed=2.0)
        assert eta == pytest.approx(18.0)

    def test_eta_falls_back_to_step_average(self):
        sink = ProgressSink()
        sink.start_plan(fake_plan({"a": 0.0, "b": 0.0, "c": 0.0}))
        sink.step_finished("a")
        with sink._lock:
            eta = sink._eta_locked(elapsed=3.0)
        assert eta == pytest.approx(6.0)  # 3s per step, 2 remaining

    def test_eta_none_until_first_finish_and_zero_at_end(self):
        sink = ProgressSink()
        sink.start_plan(fake_plan({"a": 1.0}))
        with sink._lock:
            assert sink._eta_locked(elapsed=5.0) is None
        sink.step_finished("a")
        with sink._lock:
            assert sink._eta_locked(elapsed=5.0) == 0.0

    def test_render_mentions_counts_and_running_names(self):
        sink = ProgressSink()
        sink.start_plan(fake_plan({n: 1.0 for n in "abcdef"}))
        for name in "ab":
            sink.step_finished(name)
        sink.step_finished("c", "failed")
        for name in "def":
            sink.step_started(name)
        line = sink.render()
        assert "2/6 done" in line
        assert "3 running" in line
        assert "1 failed" in line
        assert "[d, e, f]" in line

    def test_render_truncates_long_running_lists(self):
        sink = ProgressSink()
        sink.start_plan(fake_plan({f"s{i}": 1.0 for i in range(6)}))
        for i in range(5):
            sink.step_started(f"s{i}")
        assert ", ..." in sink.render()

    def test_concurrent_producers_lose_nothing(self):
        sink = ProgressSink()
        names = [f"s{i:03d}" for i in range(400)]
        sink.start_plan(fake_plan({n: 1.0 for n in names}))
        chunks = [names[i::8] for i in range(8)]

        def worker(chunk):
            for name in chunk:
                sink.step_started(name)
                sink.step_finished(name)

        threads = [
            threading.Thread(target=worker, args=(c,)) for c in chunks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = sink.snapshot()
        assert snap["done"] == 400
        assert snap["running"] == []


class TestRetryAwareness:
    def test_restarting_a_finished_step_counts_as_a_retry(self):
        sink = ProgressSink()
        sink.start_plan(fake_plan({"a": 4.0, "b": 4.0}))
        sink.step_started("a")
        sink.step_finished("a", "failed")
        assert sink.snapshot()["failed"] == 1
        # The scheduler retries: the step is running again, not failed.
        sink.step_started("a")
        snap = sink.snapshot()
        assert snap["failed"] == 0
        assert snap["running"] == ["a"]
        assert snap["retries"] == 1
        sink.step_finished("a", "ok")
        snap = sink.snapshot()
        assert snap["done"] == 1 and snap["retries"] == 1
        assert "1 retried" in sink.render()

    def test_spent_estimate_charged_once_per_step(self):
        """A flapping step must not inflate the ETA's observed pace."""
        sink = ProgressSink()
        sink.start_plan(fake_plan({"a": 5.0, "b": 5.0}))
        for _ in range(3):  # three attempts of the same step
            sink.step_started("a")
            sink.step_finished("a", "failed")
        sink.step_started("a")
        sink.step_finished("a", "ok")
        with sink._lock:
            assert sink._spent_estimate == pytest.approx(5.0)
            eta = sink._eta_locked(elapsed=10.0)
        assert eta == pytest.approx(10.0)  # 2s/est-s * 5 est-s remaining

    def test_success_after_retry_is_not_double_counted(self):
        sink = ProgressSink()
        sink.start_plan(fake_plan({"a": 1.0}))
        sink.step_started("a")
        sink.step_finished("a", "ok")
        sink.step_started("a")  # e.g. a re-dispatch race
        sink.step_finished("a", "ok")
        snap = sink.snapshot()
        assert snap["done"] == 1
        assert snap["retries"] == 1


class TestProgressTicker:
    def test_ticker_writes_lines_to_non_tty_stream(self):
        sink = ProgressSink()
        sink.start_plan(fake_plan({"a": 1.0}))
        stream = io.StringIO()
        with ProgressTicker(sink, stream=stream, interval=0.01):
            sink.step_started("a")
            sink.step_finished("a")
            time.sleep(0.05)
        text = stream.getvalue()
        assert "1/1 done" in text  # the final emit sees the end state
        assert "\r" not in text  # non-TTY streams get plain lines

    def test_ticker_survives_a_closed_stream(self):
        sink = ProgressSink()
        stream = io.StringIO()
        ticker = ProgressTicker(sink, stream=stream, interval=0.01)
        with ticker:
            stream.close()
            time.sleep(0.03)  # emits hit the closed stream and shrug


class TestFormatSeconds:
    def test_ranges(self):
        assert _fmt_seconds(3.21) == "3.2s"
        assert _fmt_seconds(61) == "1m01s"
        assert _fmt_seconds(3723) == "1h02m"
