"""The sampling profiler and everything its profiles flow through.

Covers the profiler itself (phase attribution, nesting, memory
watermarks, exports), the recorder's schema-v2 ``profile`` line, the
Chrome-trace profiler lane, phase-level diff/regression gating, the
history store's ``phase_profile`` table — and, because the schema
version bumped, that pre-profile (v1) records still load, report,
diff, and ingest exactly as before.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.observability.analysis import (
    chrome_trace,
    report_dict,
    validate_chrome_trace,
)
from repro.observability.diff import diff_records, regression_report
from repro.observability.history import HistoryStore
from repro.observability.instrument import NULL, Instrumentation
from repro.observability.profiler import (
    IDLE_PHASE,
    SamplingProfiler,
    collapsed_stacks,
    hot_frames,
    render_profile,
)
from repro.observability.recorder import (
    RECORD_FILENAME,
    RECORD_SCHEMA_VERSION,
    FlightRecorder,
    RunRecord,
)


def spin(seconds: float) -> int:
    """Burn CPU so the sampler has stacks to catch."""
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def profiled_run(memory: bool = False) -> dict:
    """A short run with two marked phases, returned as a profile dict."""
    profiler = SamplingProfiler(interval=0.002, memory=memory)
    profiler.start()
    try:
        with profiler.phase("plan"):
            spin(0.08)
        with profiler.phase("execute"):
            spin(0.04)
            if memory:
                _ballast = bytearray(4_000_000)
                del _ballast
    finally:
        profiler.stop()
    return profiler.to_dict()


class TestSamplingProfiler:
    def test_samples_attribute_to_the_open_phase(self):
        profile = profiled_run()
        phases = profile["phases"]
        assert phases["plan"]["samples"] > 0
        assert phases["plan"]["seconds"] == pytest.approx(0.08, abs=0.06)
        assert phases["execute"]["seconds"] == pytest.approx(
            0.04, abs=0.06
        )
        # Stacks reach into this test file's spin loop.
        frames = [f for e in profile["stacks"] for f in e["frames"]]
        assert any("spin" in f for f in frames)

    def test_nested_phases_attribute_to_the_innermost(self):
        profiler = SamplingProfiler(interval=0.002)
        profiler.start()
        try:
            with profiler.phase("outer"):
                with profiler.phase("inner"):
                    assert profiler.current_phase() == "inner"
                    spin(0.05)
                assert profiler.current_phase() == "outer"
        finally:
            profiler.stop()
        profile = profiler.to_dict()
        assert profile["phases"]["inner"]["samples"] > 0
        assert profile["phases"]["outer"]["samples"] <= (
            profile["phases"]["inner"]["samples"]
        )

    def test_unmarked_time_lands_in_the_idle_phase(self):
        profiler = SamplingProfiler(interval=0.002)
        profiler.start()
        try:
            spin(0.04)
        finally:
            profiler.stop()
        assert profiler.to_dict()["phases"][IDLE_PHASE]["samples"] > 0

    def test_phase_intervals_are_wall_stamps(self):
        before = time.time()
        profile = profiled_run()
        after = time.time()
        for stat in profile["phases"].values():
            for start, end in stat["intervals"]:
                assert before <= start <= end <= after

    def test_memory_watermarks(self):
        profile = profiled_run(memory=True)
        assert profile["memory"] is True
        assert profile["phases"]["execute"]["peak_bytes"] >= 4_000_000

    def test_stack_cap_counts_what_it_drops(self):
        profile = profiled_run()
        capped = {
            **profile,
            "stacks": profile["stacks"][:1],
            "dropped_stacks": max(0, len(profile["stacks"]) - 1),
        }
        assert capped["dropped_stacks"] == len(profile["stacks"]) - 1
        assert "cold stacks not recorded" in render_profile(capped) or (
            capped["dropped_stacks"] == 0
        )

    def test_start_twice_is_an_error_and_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_profile_round_trips_through_json(self):
        profile = profiled_run()
        assert json.loads(json.dumps(profile)) == profile


class TestExports:
    def test_hot_frames_rank_leaves(self):
        profile = profiled_run()
        ranked = hot_frames(profile, phase="plan", top=5)
        assert ranked and all(count > 0 for _, count in ranked)
        assert ranked == sorted(ranked, key=lambda kv: (-kv[1], kv[0]))

    def test_collapsed_stacks_lead_with_the_phase(self):
        profile = profiled_run()
        lines = collapsed_stacks(profile)
        assert lines
        for line in lines:
            head, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert head.split(";")[0] in ("plan", "execute", IDLE_PHASE)

    def test_render_profile_names_phases_and_frames(self):
        text = render_profile(profiled_run(memory=True))
        assert "plan" in text and "execute" in text
        assert "samples" in text and "peak" in text


class TestInstrumentationPhase:
    def test_phase_is_a_noop_without_a_profiler(self):
        obs = Instrumentation()
        with obs.phase("plan"):
            pass  # nullcontext: nothing to assert beyond no-crash
        with NULL.phase("plan"):
            pass

    def test_phase_routes_to_the_attached_profiler(self):
        obs = Instrumentation()
        profiler = SamplingProfiler(interval=0.002)
        obs.attach_profiler(profiler)
        profiler.start()
        try:
            with obs.phase("plan"):
                spin(0.03)
        finally:
            profiler.stop()
        assert profiler.to_dict()["phases"]["plan"]["samples"] > 0

    def test_null_instrumentation_never_attaches(self):
        NULL.attach_profiler(SamplingProfiler())
        assert NULL.profiler is None


def recorded_profiled_run(tmp_path, name="prof", profile=None):
    """Write a minimal profiled record and load it back."""
    rec = FlightRecorder.start(tmp_path / name, command="materialize x")
    rec.step("s1", status="success", start=100.0, end=101.0, clock="wall")
    rec.profile(profile if profile is not None else profiled_run())
    rec.finalize(status="ok", makespan=1.0)
    return RunRecord.load(rec.path)


class TestRecorderSchemaV2:
    def test_profile_line_round_trips(self, tmp_path):
        profile = profiled_run()
        record = recorded_profiled_run(tmp_path, profile=profile)
        assert record.schema_version == RECORD_SCHEMA_VERSION == 2
        assert record.profile["samples"] == profile["samples"]
        assert set(record.profile["phases"]) == set(profile["phases"])

    def test_unprofiled_record_has_none(self, tmp_path):
        rec = FlightRecorder.start(tmp_path / "plain")
        rec.finalize(status="ok")
        assert RunRecord.load(rec.path).profile is None

    def test_report_includes_phases_only_when_profiled(self, tmp_path):
        profiled = recorded_profiled_run(tmp_path)
        data = report_dict(profiled)
        assert {"plan", "execute"} <= set(data["profile_phases"])
        rec = FlightRecorder.start(tmp_path / "plain")
        rec.finalize(status="ok")
        plain = report_dict(RunRecord.load(rec.path))
        assert "profile_phases" not in plain


class TestChromeTraceProfile:
    def test_profiler_lane_carries_phase_intervals(self, tmp_path):
        record = recorded_profiled_run(tmp_path)
        trace = chrome_trace(record)
        assert validate_chrome_trace(trace) == []
        names = {
            e["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "X"
        }
        assert "phase plan" in names and "phase execute" in names
        lanes = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert "profiler" in lanes


def v1_record_lines(run_id="run-v1-000001"):
    """A hand-written schema-v1 record, as an old writer produced it."""
    return [
        {
            "type": "meta",
            "schema_version": 1,
            "run_id": run_id,
            "command": "materialize x",
            "started_at": 1000.0,
            "pid": 42,
            "t": 1000.0,
        },
        {
            "type": "plan",
            "targets": ["x"],
            "steps": [
                {
                    "name": "s1",
                    "transformation": "gen",
                    "cpu_seconds": 1.0,
                    "inputs": [],
                    "outputs": ["x"],
                    "deps": [],
                }
            ],
            "reused": [],
            "sources": [],
            "t": 1000.1,
        },
        {
            "type": "step",
            "step": "s1",
            "status": "success",
            "start": 100.0,
            "end": 102.5,
            "clock": "wall",
            "t": 1002.5,
        },
        {
            "type": "result",
            "status": "ok",
            "finished_at": 1003.0,
            "makespan": 2.5,
            "t": 1003.0,
        },
    ]


def write_v1_record(tmp_path, run_id="run-v1-000001"):
    run_dir = tmp_path / run_id
    run_dir.mkdir(parents=True)
    path = run_dir / RECORD_FILENAME
    path.write_text(
        "".join(
            json.dumps(line, sort_keys=True) + "\n"
            for line in v1_record_lines(run_id)
        ),
        encoding="utf-8",
    )
    return path


class TestSchemaV1BackCompat:
    """The v2 bump must not change anything about v1 records."""

    def test_v1_record_loads(self, tmp_path):
        record = RunRecord.load(write_v1_record(tmp_path))
        assert record.schema_version == 1
        assert record.profile is None
        assert record.makespan() == 2.5

    def test_future_schema_still_rejected(self, tmp_path):
        path = write_v1_record(tmp_path, "run-v9-000001")
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["schema_version"] = RECORD_SCHEMA_VERSION + 1
        lines[0] = json.dumps(meta, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            RunRecord.load(path)

    def test_v1_report_dict_is_byte_identical(self, tmp_path):
        """``report --json`` on a v1 record serializes exactly as it
        did before the profiler existed — no new keys, same bytes."""
        record = RunRecord.load(write_v1_record(tmp_path))
        data = report_dict(record)
        assert "profile_phases" not in data
        assert json.dumps(data, sort_keys=True) == json.dumps(
            report_dict(record), sort_keys=True
        )

    def test_v1_diff_carries_no_phase_keys(self, tmp_path):
        base = RunRecord.load(write_v1_record(tmp_path, "run-v1-a"))
        cand = RunRecord.load(write_v1_record(tmp_path, "run-v1-b"))
        diff = diff_records(base, cand)
        payload = diff.to_dict()
        assert "phases" not in payload
        assert "phase_regressions" not in payload
        assert diff.clean

    def test_v1_ingest_is_idempotent_and_phaseless(self, tmp_path):
        record = RunRecord.load(write_v1_record(tmp_path))
        with HistoryStore() as history:
            assert history.ingest(record)
            assert not history.ingest(record)  # unchanged file: skip
            assert history.phase_rows(record.run_id) == {}
            assert history.phase_seconds() == {}
            row = history.run_row(record.run_id)
            assert row["schema_version"] == 1
            assert row["makespan"] == 2.5

    def test_mixed_diff_v1_base_v2_candidate_stays_phaseless(
        self, tmp_path
    ):
        """Phase gating needs BOTH sides profiled; a v1 baseline never
        trips the phase gate."""
        base = RunRecord.load(write_v1_record(tmp_path))
        cand = recorded_profiled_run(tmp_path)
        diff = diff_records(base, cand)
        assert diff.phases == []
        assert diff.phase_regressions == []


def synthetic_profile(plan_seconds, execute_seconds):
    return {
        "interval": 0.005,
        "memory": False,
        "started": 1000.0,
        "stopped": 1010.0,
        "samples": 100,
        "phases": {
            "plan": {
                "samples": 50,
                "seconds": plan_seconds,
                "peak_bytes": 0,
                "intervals": [[1000.0, 1000.0 + plan_seconds]],
            },
            "execute": {
                "samples": 50,
                "seconds": execute_seconds,
                "peak_bytes": 0,
                "intervals": [
                    [1001.0, 1001.0 + execute_seconds]
                ],
            },
        },
        "stacks": [],
        "dropped_stacks": 0,
    }


class TestPhaseRegressionGating:
    def test_phase_blowup_fails_the_diff(self, tmp_path):
        base = recorded_profiled_run(
            tmp_path, "base", synthetic_profile(1.0, 1.0)
        )
        cand = recorded_profiled_run(
            tmp_path, "cand", synthetic_profile(3.0, 1.0)
        )
        diff = diff_records(base, cand)
        assert [d.transformation for d in diff.phase_regressions] == [
            "plan"
        ]
        assert not diff.clean
        assert "phase:plan" in diff.render()

    def test_steady_phases_stay_clean(self, tmp_path):
        base = recorded_profiled_run(
            tmp_path, "base", synthetic_profile(1.0, 1.0)
        )
        cand = recorded_profiled_run(
            tmp_path, "cand", synthetic_profile(1.05, 1.0)
        )
        diff = diff_records(base, cand)
        assert diff.phase_regressions == []
        assert diff.clean

    def test_regress_gates_on_history_phase_baseline(self, tmp_path):
        with HistoryStore() as history:
            for i in range(3):
                record = recorded_profiled_run(
                    tmp_path, f"b{i}", synthetic_profile(1.0, 1.0)
                )
                history.ingest(record)
                assert history.phase_rows(record.run_id)[
                    "plan"
                ]["seconds"] == pytest.approx(1.0)
            cand = recorded_profiled_run(
                tmp_path, "cand", synthetic_profile(4.0, 1.0)
            )
            diff = regression_report(history, cand)
            assert [
                d.transformation for d in diff.phase_regressions
            ] == ["plan"]
            assert not diff.clean
            assert history.phase_seconds()["plan"] == [1.0, 1.0, 1.0]

    def test_reingesting_a_profiled_run_replaces_rows(self, tmp_path):
        record = recorded_profiled_run(
            tmp_path, "r", synthetic_profile(1.0, 2.0)
        )
        with HistoryStore() as history:
            history.ingest(record)
            history.ingest(record, force=True)
            rows = history.phase_rows(record.run_id)
            assert rows["execute"]["seconds"] == pytest.approx(2.0)
            assert len(rows) == 2  # delete-then-insert, no dupes
