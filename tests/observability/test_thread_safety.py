"""Locking regressions and edge cases added with the flight recorder.

The metrics docstring once promised "no locks" and lost increments
under a thread pool; the hammer tests here pin the fixed behaviour.
"""

from __future__ import annotations

import threading

import pytest

from repro.observability.export import render_span_tree
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.recorder import FlightRecorder, RunRecord
from repro.observability.tracing import Tracer

THREADS = 8
ROUNDS = 2_000


def hammer(worker):
    """Run ``worker(thread_index)`` on THREADS threads concurrently."""
    barrier = threading.Barrier(THREADS)

    def runner(index):
        barrier.wait()
        worker(index)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestMetricsUnderThreads:
    def test_counter_loses_no_increments(self):
        counter = Counter("c")
        hammer(lambda i: [counter.inc() for _ in range(ROUNDS)])
        assert counter.value() == THREADS * ROUNDS

    def test_counter_with_labels_loses_no_increments(self):
        counter = Counter("c")
        hammer(
            lambda i: [
                counter.inc(op=f"op{j % 3}")
                for j in range(ROUNDS)
            ]
        )
        assert counter.total() == THREADS * ROUNDS

    def test_gauge_inc_dec_balances(self):
        gauge = Gauge("g")

        def worker(i):
            for _ in range(ROUNDS):
                gauge.inc()
                gauge.dec()

        hammer(worker)
        assert gauge.value() == 0

    def test_histogram_counts_every_observation(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hammer(lambda i: [hist.observe(float(i)) for _ in range(ROUNDS)])
        assert hist.count() == THREADS * ROUNDS
        assert hist.cumulative_buckets()[-1][1] == THREADS * ROUNDS

    def test_registry_get_or_create_races_to_one_object(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def worker(i):
            counter = registry.counter("shared")
            with lock:
                seen.append(counter)
            counter.inc()

        hammer(worker)
        assert len({id(c) for c in seen}) == 1
        assert registry.get("shared").value() == THREADS

    def test_docstring_no_longer_promises_lock_freedom(self):
        import repro.observability.metrics as metrics

        assert "no locks" not in (metrics.__doc__ or "").lower()
        assert "thread" in (metrics.__doc__ or "").lower()


class TestRecorderUnderThreads:
    def test_concurrent_writes_stay_line_atomic(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        hammer(
            lambda i: [
                rec.event("tick", thread=i, seq=j) for j in range(200)
            ]
        )
        rec.finalize()
        record = RunRecord.load(rec.path)  # every line parses
        assert len(record.events) == THREADS * 200


class TestHistogramPercentileEdges:
    def test_empty_histogram_returns_none(self):
        assert Histogram("h").percentile(50) is None

    def test_unknown_label_set_returns_none(self):
        hist = Histogram("h")
        hist.observe(1.0, op="a")
        assert hist.percentile(50, op="b") is None

    def test_out_of_range_quantile_rejected(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError, match="percentile"):
            hist.percentile(-1)
        with pytest.raises(ValueError, match="percentile"):
            hist.percentile(100.5)

    def test_single_observation_is_every_percentile_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.5)
        # All quantiles land in the (1.0, 2.0] bucket.
        for q in (0, 50, 100):
            value = hist.percentile(q)
            assert 1.0 <= value <= 2.0

    def test_overflow_observation_clamps_to_last_finite_bound(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1e9)  # lands in the implicit +Inf bucket
        assert hist.percentile(99) == 2.0

    def test_interpolation_between_bounds(self):
        hist = Histogram("h", buckets=(0.0, 10.0))
        for _ in range(2):
            hist.observe(5.0)
        # Median rank = 1 of 2 in the (0, 10] bucket -> midpoint.
        assert hist.percentile(50) == pytest.approx(5.0)


class TestRenderUnfinishedSpan:
    def test_unfinished_span_is_marked(self):
        tracer = Tracer()
        context = tracer.span("hung")
        context.__enter__()  # never exits: a crash dump mid-flight
        text = render_span_tree(tracer)
        assert "hung" in text
        assert "unfinished" in text

    def test_finished_span_is_not_marked(self):
        tracer = Tracer()
        with tracer.span("done"):
            pass
        assert "unfinished" not in render_span_tree(tracer)
