"""Counters, gauges, histograms and the Prometheus exposition."""

from __future__ import annotations

import pytest

from repro.observability.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_key,
    prometheus_name,
)


class TestLabels:
    def test_label_order_never_creates_distinct_series(self):
        counter = Counter("c")
        counter.inc(op="lookup", kind="dataset")
        counter.inc(kind="dataset", op="lookup")
        assert counter.value(op="lookup", kind="dataset") == 2
        assert len(list(counter.series())) == 1

    def test_values_are_stringified(self):
        assert label_key({"n": 3}) == (("n", "3"),)

    def test_prometheus_name_sanitizes_dots(self):
        assert prometheus_name("catalog.op.seconds") == "catalog_op_seconds"
        assert prometheus_name("a-b c") == "a_b_c"


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value() == 0
        counter.inc()
        counter.inc(5)
        assert counter.value() == 6

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_total_sums_all_label_sets(self):
        counter = Counter("c")
        counter.inc(2, site="anl")
        counter.inc(3, site="uc")
        assert counter.total() == 5


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10, site="anl")
        gauge.inc(2, site="anl")
        gauge.dec(5, site="anl")
        assert gauge.value(site="anl") == 7
        assert gauge.value(site="uc") == 0


class TestHistogram:
    def test_value_on_bucket_edge_lands_in_that_bucket(self):
        # le semantics: an observation equal to an upper bound belongs
        # to that bucket, exactly as Prometheus defines it.
        hist = Histogram("h", buckets=(1.0, 5.0))
        hist.observe(1.0)
        assert hist.cumulative_buckets() == [
            (1.0, 1), (5.0, 1), (float("inf"), 1)
        ]

    def test_value_just_over_edge_lands_in_next_bucket(self):
        hist = Histogram("h", buckets=(1.0, 5.0))
        hist.observe(1.0000001)
        assert hist.cumulative_buckets() == [
            (1.0, 0), (5.0, 1), (float("inf"), 1)
        ]

    def test_value_above_all_bounds_lands_in_inf(self):
        hist = Histogram("h", buckets=(1.0, 5.0))
        hist.observe(1e9)
        assert hist.cumulative_buckets()[-1] == (float("inf"), 1)
        assert hist.cumulative_buckets()[0] == (1.0, 0)

    def test_cumulative_counts_are_monotone(self):
        hist = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 2.0, 2.0, 7.0, 100.0):
            hist.observe(value)
        counts = [n for _, n in hist.cumulative_buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_sum_and_count_per_label_set(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.25, op="lookup")
        hist.observe(0.75, op="lookup")
        hist.observe(9.0, op="insert")
        assert hist.count(op="lookup") == 2
        assert hist.sum(op="lookup") == 1.0
        assert hist.count(op="insert") == 1

    def test_default_buckets_span_micro_to_minutes(self):
        hist = Histogram("h")
        assert hist.buckets == DEFAULT_BUCKETS
        assert hist.buckets[0] <= 1e-6
        assert hist.buckets[-1] >= 1800

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(5.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_to_dict_round_trips_through_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", help="x").inc(3, op="a")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        loaded = json.loads(json.dumps(registry.to_dict()))
        assert loaded["c"]["series"][0]["value"] == 3
        assert loaded["h"]["series"][0]["count"] == 1


class TestPrometheusExposition:
    def test_golden_output(self):
        registry = MetricsRegistry()
        registry.counter("catalog.ops", help="catalog operations").inc(
            3, op="lookup"
        )
        registry.gauge("sim.clock_seconds").set(12.5)
        registry.histogram("grid.transfer.seconds", buckets=(0.1, 1.0)).observe(
            0.15
        )
        assert registry.to_prometheus() == (
            "# HELP catalog_ops catalog operations\n"
            "# TYPE catalog_ops counter\n"
            'catalog_ops{op="lookup"} 3\n'
            "# TYPE grid_transfer_seconds histogram\n"
            'grid_transfer_seconds_bucket{le="0.1"} 0\n'
            'grid_transfer_seconds_bucket{le="1"} 1\n'
            'grid_transfer_seconds_bucket{le="+Inf"} 1\n'
            "grid_transfer_seconds_sum 0.15\n"
            "grid_transfer_seconds_count 1\n"
            "# TYPE sim_clock_seconds gauge\n"
            "sim_clock_seconds 12.5\n"
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, path='a"b\\c')
        text = registry.to_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""
