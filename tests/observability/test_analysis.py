"""Critical paths, profiles, and Chrome traces over run records.

The end-to-end class is the acceptance scenario from the flight
recorder work: a fault-injected 8-host grid run must yield a record
whose critical-path step durations sum to within 5% of the recorded
makespan, and whose Chrome trace passes the Trace Event shape check.
"""

from __future__ import annotations

import pytest

from repro.observability.analysis import (
    chrome_trace,
    compute_slack,
    critical_path,
    render_report,
    report_dict,
    site_profiles,
    transformation_profiles,
    validate_chrome_trace,
)
from repro.observability.instrument import Instrumentation
from repro.observability.recorder import FlightRecorder, RunRecord
from tests.observability.test_recorder import chain_plan, make_invocation


def diamond_record(tmp_path):
    """A hand-written diamond schedule with a known critical path.

    ``g`` feeds ``slow`` (0..8) and ``fast`` (0..2); ``top`` starts
    when ``slow`` finishes.  Critical path: g -> slow -> top, 12s.
    """
    rec = FlightRecorder.start(tmp_path, command="test diamond")
    rec._write(
        "plan",
        targets=["t"],
        steps=[
            {"name": "g", "transformation": "gen", "cpu_seconds": 1.0,
             "inputs": [], "outputs": ["a"], "deps": []},
            {"name": "slow", "transformation": "proc", "cpu_seconds": 8.0,
             "inputs": ["a"], "outputs": ["b"], "deps": ["g"]},
            {"name": "fast", "transformation": "proc", "cpu_seconds": 2.0,
             "inputs": ["a"], "outputs": ["c"], "deps": ["g"]},
            {"name": "top", "transformation": "merge", "cpu_seconds": 2.0,
             "inputs": ["b", "c"], "outputs": ["t"], "deps": ["slow", "fast"]},
        ],
        reused=[],
        sources=[],
    )
    rec.step("g", status="success", start=0.0, end=2.0, site="anl")
    rec.step("slow", status="success", start=2.0, end=10.0, site="anl")
    rec.step("fast", status="success", start=2.0, end=4.0, site="uc")
    rec.step("top", status="success", start=10.0, end=12.0, site="uc")
    rec.finalize(status="ok", makespan=12.0)
    return RunRecord.load(rec.path)


class TestCriticalPath:
    def test_walks_the_releasing_dependency(self, tmp_path):
        report = critical_path(diamond_record(tmp_path))
        assert [s.step for s in report.steps] == ["g", "slow", "top"]
        assert report.makespan == 12.0
        assert report.path_seconds == pytest.approx(12.0)
        assert report.coverage == pytest.approx(1.0)
        assert report.clock == "sim"

    def test_path_steps_have_zero_slack(self, tmp_path):
        record = diamond_record(tmp_path)
        slack = compute_slack(record)
        assert slack["g"] == 0.0
        assert slack["slow"] == 0.0
        assert slack["top"] == 0.0
        # ``fast`` could run 6s longer before delaying ``top``.
        assert slack["fast"] == pytest.approx(6.0)
        report = critical_path(record)
        assert all(s.slack == 0.0 for s in report.steps)

    def test_empty_record(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.finalize()
        report = critical_path(RunRecord.load(rec.path))
        assert report.steps == []
        assert report.coverage == 0.0
        assert compute_slack(RunRecord.load(rec.path)) == {}

    def test_to_dict_shape(self, tmp_path):
        data = critical_path(diamond_record(tmp_path)).to_dict()
        assert data["makespan"] == 12.0
        assert [s["step"] for s in data["steps"]] == ["g", "slow", "top"]
        assert data["steps"][0]["duration"] == 2.0
        assert data["slack"]["fast"] == pytest.approx(6.0)


class TestProfiles:
    def record_with_invocations(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.plan(chain_plan())
        rec.invocation(make_invocation("g1", cpu=1.0, read=0))
        rec.invocation(make_invocation("p1", cpu=2.0, read=100))
        rec.invocation(make_invocation("p1", status="failure"))
        rec.finalize()
        return RunRecord.load(rec.path)

    def test_transformation_profiles(self, tmp_path):
        profiles = transformation_profiles(
            self.record_with_invocations(tmp_path)
        )
        by_name = {p["transformation"]: p for p in profiles}
        assert by_name["proc"]["runs"] == 2
        assert by_name["proc"]["failures"] == 1
        assert by_name["proc"]["mean_cpu_seconds"] == pytest.approx(2.0)
        assert by_name["proc"]["bytes_read"] == 100
        assert by_name["gen"]["failures"] == 0

    def test_unplanned_invocation_gets_placeholder_name(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.invocation(make_invocation("adhoc"))
        rec.finalize()
        profiles = transformation_profiles(RunRecord.load(rec.path))
        assert profiles[0]["transformation"] == "?adhoc"

    def test_site_profiles(self, tmp_path):
        profiles = site_profiles(self.record_with_invocations(tmp_path))
        assert [p["site"] for p in profiles] == ["anl"]
        assert profiles[0]["runs"] == 3
        assert profiles[0]["failures"] == 1
        assert profiles[0]["busy_seconds"] == pytest.approx(1.5 + 3.0)


class TestChromeTrace:
    def test_steps_and_spans_become_events(self, tmp_path):
        obs = Instrumentation()
        with obs.span("executor.materialize", targets="t"):
            pass
        rec = FlightRecorder.start(tmp_path)
        rec.step("g", status="success", start=1.0, end=3.0, site="anl")
        rec.finalize(obs)
        record = RunRecord.load(rec.path)
        trace = chrome_trace(record)
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        step = next(e for e in events if e["name"] == "g")
        assert step["ts"] == 0.0  # relative to the first event
        assert step["dur"] == pytest.approx(2e6)
        lanes = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert "site anl" in lanes
        # The span carries wall stamps only; with a sim-clock record it
        # cannot be placed on the sim axis and is skipped.
        assert not any(
            e["name"] == "executor.materialize" for e in events
        )

    def test_wall_clock_record_places_spans(self, tmp_path):
        obs = Instrumentation()
        with obs.span("executor.materialize"):
            pass
        rec = FlightRecorder.start(tmp_path)
        rec.step(
            "g", status="success", start=10.0, end=11.0,
            clock="wall", site="local",
        )
        rec.finalize(obs)
        trace = chrome_trace(RunRecord.load(rec.path))
        assert validate_chrome_trace(trace) == []
        assert any(
            e["name"] == "executor.materialize"
            for e in trace["traceEvents"]
        )

    def test_empty_record_yields_empty_valid_trace(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.finalize()
        trace = chrome_trace(RunRecord.load(rec.path))
        assert trace["traceEvents"] == []
        assert validate_chrome_trace(trace) == []

    def test_validator_flags_malformed_traces(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    "not a dict",
                    {"ph": "X", "pid": 1, "tid": 1},  # no name/ts/dur
                    {"name": "m", "ph": "M", "pid": 1, "tid": 0},  # no args
                    {"name": "x", "ph": "X", "pid": 1, "tid": 1,
                     "ts": 0, "dur": -5},
                ]
            }
        )
        assert any("not an object" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("numeric ts" in p for p in problems)
        assert any("metadata event without args" in p for p in problems)
        assert any("non-negative dur" in p for p in problems)


class TestReport:
    def test_report_dict_aggregates(self, tmp_path):
        record = diamond_record(tmp_path)
        data = report_dict(record)
        assert data["status"] == "ok"
        assert data["makespan"] == 12.0
        assert data["steps"] == {"success": 4}
        assert data["critical_path"]["coverage"] == pytest.approx(1.0)

    def test_render_report_text(self, tmp_path):
        text = render_report(diamond_record(tmp_path))
        assert "makespan 12.000s" in text
        assert "critical path" in text
        assert "100.0% of makespan" in text
        assert "slow" in text
        # The time axis is relative to the first path step.
        assert text.index("0.000") < text.index("slow")


class TestGridFaultRunEndToEnd:
    """Acceptance: record a fault-injected 8-host grid run and mine it."""

    @pytest.fixture(scope="class")
    def record(self, tmp_path_factory):
        from repro.resilience import FaultPlan, RecoveryConfig
        from repro.system import VirtualDataSystem
        from repro.workloads import hep

        obs = Instrumentation()
        vds = VirtualDataSystem.with_grid(
            {"a": 4, "b": 4},
            instrumentation=obs,
            fault_plan=FaultPlan(seed=3, transient_rate=0.2),
            recovery=RecoveryConfig.hardened(seed=3),
        )
        vds.executor.max_retries = 10
        target = hep.define_run(vds.catalog, "run1", seed=3, events=50)
        rec = FlightRecorder.start(
            tmp_path_factory.mktemp("runs"), command="grid acceptance"
        )
        obs.attach_recorder(rec)
        result = vds.materialize(target, reuse="never")
        assert result.succeeded
        rec.finalize(obs, status="ok", makespan=result.makespan)
        return RunRecord.load(rec.path)

    def test_critical_path_tiles_the_makespan(self, record):
        report = critical_path(record)
        assert report.steps
        assert report.clock == "sim"
        makespan = record.makespan()
        assert makespan is not None and makespan > 0
        # The acceptance bar: path durations within 5% of makespan.
        assert abs(report.path_seconds - makespan) <= 0.05 * makespan

    def test_record_captured_every_layer(self, record):
        assert record.plan is not None
        assert record.step_timings()  # scheduler step lines
        assert record.invocations  # grid executor write-back
        assert record.samples  # frontier occupancy
        assert record.spans  # finalize dumped the span tree
        assert record.counter_total("scheduler.steps") > 0

    def test_chrome_trace_is_well_formed(self, record):
        trace = chrome_trace(record)
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert any(n.startswith("run1.") for n in names)

    def test_report_renders(self, record):
        text = render_report(record)
        assert "grid acceptance" in text
        assert "critical path" in text
        assert "site profiles" in text


def chain_record(tmp_path, depth):
    """A ``depth``-step linear chain, one second per step."""
    rec = FlightRecorder.start(tmp_path, command="test chain")
    rec._write(
        "plan",
        targets=[f"d{depth - 1}"],
        steps=[
            {
                "name": f"s{i}",
                "transformation": "proc",
                "cpu_seconds": 1.0,
                "inputs": [f"d{i - 1}"] if i else [],
                "outputs": [f"d{i}"],
                "deps": [f"s{i - 1}"] if i else [],
            }
            for i in range(depth)
        ],
        reused=[],
        sources=[],
    )
    for i in range(depth):
        rec.step(
            f"s{i}", status="success", start=float(i), end=float(i + 1)
        )
    rec.finalize(status="ok", makespan=float(depth))
    return RunRecord.load(rec.path)


class TestDeepChains:
    """CPM must be iterative: real campaign graphs nest thousands of
    levels deep, far past Python's default recursion limit."""

    DEPTH = 5000

    def test_slack_survives_a_5000_deep_chain(self, tmp_path):
        record = chain_record(tmp_path, self.DEPTH)
        slack = compute_slack(record)  # recursion would die near ~10^3
        assert len(slack) == self.DEPTH
        assert all(value == 0.0 for value in slack.values())

    def test_critical_path_covers_the_whole_chain_in_order(self, tmp_path):
        record = chain_record(tmp_path, self.DEPTH)
        report = critical_path(record)
        assert [s.step for s in report.steps] == [
            f"s{i}" for i in range(self.DEPTH)
        ]
        assert report.coverage == pytest.approx(1.0)
