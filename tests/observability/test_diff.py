"""Run-diff and regression detection: the cross-run alarm path."""

from __future__ import annotations

import pytest

from repro.observability.diff import (
    diff_records,
    is_significant,
    regression_report,
    welch_t,
)
from repro.observability.history import HistoryStore
from repro.observability.recorder import RunRecord

from tests.observability.test_history import write_run


def load(runs_root, run_id) -> RunRecord:
    return RunRecord.load(runs_root / run_id)


class TestSignificance:
    def test_welch_t_needs_two_samples_each(self):
        assert welch_t([1.0], [2.0, 3.0]) is None
        assert welch_t([1.0, 1.0], [2.0]) is None

    def test_welch_t_zero_variance_defers(self):
        # Deterministic sim runs: identical values, zero variance.
        assert welch_t([5.0, 5.0], [10.0, 10.0]) is None

    def test_relative_threshold(self):
        assert is_significant([4.0], [8.0])  # +100%
        assert not is_significant([4.0], [4.5])  # +12.5% < 25%

    def test_absolute_floor_quiets_microsecond_noise(self):
        # +100% relative but only 0.2ms absolute: not significant.
        assert not is_significant([0.0002], [0.0004])

    def test_variance_gate_quiets_noisy_overlap(self):
        # Means differ by >25% but the spread swamps the shift.
        base = [1.0, 5.0, 2.0, 6.0]
        cand = [2.0, 6.0, 3.0, 7.5]
        assert welch_t(base, cand) < 2.0
        assert not is_significant(base, cand)


class TestDiffRecords:
    def test_flags_exactly_the_slowed_transformation(self, tmp_path):
        """Acceptance: one transformation slowed 2x is flagged — and
        nothing else is."""
        write_run(tmp_path, "run-base", gen_seconds=5.0, proc_seconds=5.0)
        write_run(tmp_path, "run-slow", gen_seconds=5.0, proc_seconds=10.0)
        diff = diff_records(
            load(tmp_path, "run-base"), load(tmp_path, "run-slow")
        )
        assert [d.transformation for d in diff.regressions] == ["proc"]
        assert not diff.clean
        proc = next(
            d for d in diff.transformations if d.transformation == "proc"
        )
        assert proc.delta == pytest.approx(5.0)
        assert proc.delta_pct == pytest.approx(100.0)
        gen = next(
            d for d in diff.transformations if d.transformation == "gen"
        )
        assert not gen.significant

    def test_identical_runs_are_clean(self, tmp_path):
        write_run(tmp_path, "run-a")
        write_run(tmp_path, "run-b")
        diff = diff_records(
            load(tmp_path, "run-a"), load(tmp_path, "run-b")
        )
        assert diff.clean
        assert diff.regressions == []
        assert diff.makespan == (10.0, 10.0)

    def test_improvement_is_not_a_regression(self, tmp_path):
        write_run(tmp_path, "run-base", proc_seconds=10.0)
        write_run(tmp_path, "run-fast", proc_seconds=5.0)
        diff = diff_records(
            load(tmp_path, "run-base"), load(tmp_path, "run-fast")
        )
        assert diff.clean
        assert [d.transformation for d in diff.improvements] == ["proc"]

    def test_counters_compared(self, tmp_path):
        write_run(tmp_path, "run-a")
        write_run(
            tmp_path,
            "run-b",
            events=[("fault.injected", {"fault": "transient"})],
        )
        diff = diff_records(
            load(tmp_path, "run-a"), load(tmp_path, "run-b")
        )
        assert diff.faults == (0, 1)

    def test_makespan_regression_flagged(self, tmp_path):
        write_run(tmp_path, "run-a", gen_seconds=5.0, proc_seconds=5.0)
        write_run(tmp_path, "run-b", gen_seconds=10.0, proc_seconds=10.0)
        diff = diff_records(
            load(tmp_path, "run-a"), load(tmp_path, "run-b")
        )
        assert diff.makespan_significant
        assert diff.makespan_regressed
        assert not diff.clean

    def test_render_and_to_dict(self, tmp_path):
        write_run(tmp_path, "run-a")
        write_run(tmp_path, "run-b", proc_seconds=10.0)
        diff = diff_records(
            load(tmp_path, "run-a"), load(tmp_path, "run-b")
        )
        text = diff.render()
        assert "REGRESSED: proc" in text
        assert "makespan" in text
        data = diff.to_dict()
        assert data["regressions"] == ["proc"]
        assert data["clean"] is False

    def test_custom_threshold(self, tmp_path):
        write_run(tmp_path, "run-a", proc_seconds=5.0)
        write_run(tmp_path, "run-b", proc_seconds=5.6)  # +12%
        a, b = load(tmp_path, "run-a"), load(tmp_path, "run-b")
        assert diff_records(a, b).clean  # default 25%
        assert not diff_records(a, b, threshold_pct=10.0).clean


class TestRegressionReport:
    def test_candidate_against_pooled_baseline(self, tmp_path):
        for i in range(3):
            write_run(tmp_path, f"run-{i}")
        write_run(tmp_path, "run-slow", proc_seconds=10.0)
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        diff = regression_report(store, load(tmp_path, "run-slow"))
        assert [d.transformation for d in diff.regressions] == ["proc"]
        proc = next(
            d for d in diff.transformations if d.transformation == "proc"
        )
        assert proc.base_n == 3  # pooled across the baseline runs

    def test_candidate_excluded_from_baseline(self, tmp_path):
        write_run(tmp_path, "run-a")
        write_run(tmp_path, "run-slow", proc_seconds=10.0)
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        diff = regression_report(store, load(tmp_path, "run-slow"))
        # Baseline is run-a only; the candidate never dilutes it.
        assert diff.regressions

    def test_explicit_baseline_ids(self, tmp_path):
        write_run(tmp_path, "run-a")
        write_run(tmp_path, "run-b", proc_seconds=10.0)
        write_run(tmp_path, "run-c", proc_seconds=10.0)
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        diff = regression_report(
            store, load(tmp_path, "run-c"), baseline_ids=["run-b"]
        )
        assert diff.clean  # vs run-b (same timing) it is not a regression

    def test_no_baseline_errors(self, tmp_path):
        write_run(tmp_path, "run-only")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        with pytest.raises(ValueError, match="no baseline"):
            regression_report(store, load(tmp_path, "run-only"))

    def test_unknown_baseline_errors(self, tmp_path):
        write_run(tmp_path, "run-a")
        write_run(tmp_path, "run-b")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        with pytest.raises(ValueError, match="run-nope"):
            regression_report(
                store,
                load(tmp_path, "run-b"),
                baseline_ids=["run-nope"],
            )
