"""The run-history metastore: ingest, idempotency, queries."""

from __future__ import annotations

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.observability.history import HistoryStore, breaker_open_windows
from repro.observability.recorder import FlightRecorder, RunRecord
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest

CHAIN_VDL = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "/bin/gen";
}
TR proc( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/proc";
}
DV g1->gen( o=@{output:"a0"}, seed="42" );
DV p1->proc( o=@{output:"a1"}, i=@{input:"a0"} );
"""


def chain_plan():
    catalog = MemoryCatalog().define(CHAIN_VDL)
    planner = Planner(catalog, cpu_estimate=lambda dv: 5.0)
    return planner.plan(
        MaterializationRequest(targets=("a1",), reuse="never")
    )


def make_invocation(
    name="g1", status="success", cpu=2.0, read=100, site="a"
):
    return Invocation(
        derivation_name=name,
        status=status,
        start_time=100.0,
        context=ExecutionContext(site=site, host=f"{site}-01"),
        usage=ResourceUsage(
            cpu_seconds=cpu,
            wall_seconds=cpu * 1.5,
            bytes_read=read,
            bytes_written=50,
        ),
    )


def write_run(
    runs_root,
    run_id,
    gen_seconds=5.0,
    proc_seconds=5.0,
    site="a",
    status="ok",
    events=(),
    finalize=True,
):
    """Record one synthetic two-step chain run (sim clock)."""
    rec = FlightRecorder.start(runs_root, run_id=run_id, command="test")
    rec.plan(chain_plan())
    rec.step(
        "g1", status="success", start=0.0, end=gen_seconds, site=site
    )
    rec.step(
        "p1",
        status="success",
        start=gen_seconds,
        end=gen_seconds + proc_seconds,
        site=site,
    )
    rec.invocation(make_invocation("g1", cpu=gen_seconds, site=site))
    rec.invocation(make_invocation("p1", cpu=proc_seconds, site=site))
    for kind, fields in events:
        rec.event(kind, **fields)
    if finalize:
        rec.finalize(
            status=status, makespan=gen_seconds + proc_seconds
        )
    else:
        rec.close()
    return rec.path


class TestIngest:
    def test_round_trip(self, tmp_path):
        write_run(tmp_path, "run-a")
        store = HistoryStore()
        assert store.ingest_dir(tmp_path) == 1
        row = store.run_row("run-a")
        assert row["status"] == "ok"
        assert row["makespan"] == 10.0
        assert row["steps_total"] == 2
        assert row["steps_failed"] == 0
        assert row["clock"] == "sim"
        assert store.run_ids() == ["run-a"]
        assert store.latest_run_id() == "run-a"
        assert len(store) == 1

    def test_duration_samples_grouped_by_transformation(self, tmp_path):
        write_run(tmp_path, "run-a", gen_seconds=3.0, proc_seconds=7.0)
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        samples = store.duration_samples()
        assert samples == {"gen": [3.0], "proc": [7.0]}

    def test_ingest_is_idempotent(self, tmp_path):
        write_run(tmp_path, "run-a")
        store = HistoryStore()
        assert store.ingest_dir(tmp_path) == 1
        assert store.ingest_dir(tmp_path) == 0  # unchanged: skipped
        assert len(store) == 1
        assert len(store.duration_samples()["gen"]) == 1

    def test_changed_record_is_reingested(self, tmp_path):
        path = write_run(tmp_path, "run-a", finalize=False)
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        assert store.run_row("run-a")["status"] == "crashed"
        # The crashed run is later finalized: the file grew.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                '{"type": "result", "status": "ok", "makespan": 10.0, '
                '"t": 0, "finished_at": 0}\n'
            )
        assert store.ingest_dir(tmp_path) == 1
        assert store.run_row("run-a")["status"] == "ok"
        assert len(store) == 1

    def test_force_reingest(self, tmp_path):
        write_run(tmp_path, "run-a")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        assert store.ingest_dir(tmp_path, force=True) == 1

    def test_event_totals(self, tmp_path):
        write_run(
            tmp_path,
            "run-a",
            events=[
                ("fault.injected", {"fault": "transient"}),
                ("fault.injected", {"fault": "transient"}),
                ("step.retry", {"step": "g1"}),
            ],
        )
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        totals = store.event_totals()
        assert totals["fault.injected"] == 2
        assert totals["step.retry"] == 1
        assert store.run_row("run-a")["faults"] == 2

    def test_training_samples_feed_estimator(self, tmp_path):
        write_run(tmp_path, "run-a", gen_seconds=4.0)
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        samples = store.training_samples()
        assert set(samples) == {"gen", "proc"}
        assert samples["gen"][0]["cpu_seconds"] == 4.0
        assert samples["gen"][0]["bytes_read"] == 100
        only = store.training_samples(transformation="gen")
        assert set(only) == {"gen"}

    def test_file_backed_store_persists(self, tmp_path):
        write_run(tmp_path / "runs", "run-a")
        db = tmp_path / "history.sqlite"
        with HistoryStore(db) as store:
            store.ingest_dir(tmp_path / "runs")
        with HistoryStore(db) as store:
            assert store.run_ids() == ["run-a"]

    def test_delete_run(self, tmp_path):
        write_run(tmp_path, "run-a")
        write_run(tmp_path, "run-b")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        store.delete_run("run-a")
        assert store.run_ids() == ["run-b"]
        assert store.run_row("run-a") is None


class TestSiteStats:
    def test_failures_counted_per_site(self, tmp_path):
        rec = FlightRecorder.start(tmp_path, run_id="run-x")
        rec.plan(chain_plan())
        rec.step("g1", status="failure", start=0.0, end=2.0, site="bad")
        rec.step("g1", status="success", start=2.0, end=4.0, site="ok")
        rec.step("p1", status="success", start=4.0, end=6.0, site="ok")
        rec.finalize(status="ok")
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        stats = store.site_stats()
        assert stats["bad"]["attempts"] == 1
        assert stats["bad"]["failures"] == 1
        assert stats["ok"]["failures"] == 0
        assert stats["ok"]["durations"] == [2.0, 2.0]
        # The retry shows up in the run row too.
        assert store.run_row("run-x")["retries"] == 1
        assert store.run_row("run-x")["attempts"] == 3

    def test_breaker_open_seconds_from_transitions(self, tmp_path):
        rec = FlightRecorder.start(tmp_path, run_id="run-b")
        rec.plan(chain_plan())
        rec.step("g1", status="success", start=0.0, end=30.0, site="a")
        rec.step("p1", status="success", start=30.0, end=40.0, site="a")
        rec.event("breaker.transition", site="b", state=2, sim=10.0)
        rec.event("breaker.transition", site="b", state=1, sim=25.0)
        rec.event("breaker.transition", site="b", state=0, sim=26.0)
        rec.finalize(status="ok")
        record = RunRecord.load(rec.path)
        windows = breaker_open_windows(record)
        assert windows["b"] == (15.0, 3)
        store = HistoryStore()
        store.ingest(record)
        assert store.site_stats()["b"]["breaker_open_seconds"] == 15.0

    def test_breaker_still_open_charged_to_record_end(self, tmp_path):
        rec = FlightRecorder.start(tmp_path, run_id="run-c")
        rec.plan(chain_plan())
        rec.step("g1", status="success", start=0.0, end=50.0, site="a")
        rec.event("breaker.transition", site="b", state=2, sim=20.0)
        rec.finalize(status="ok")
        windows = breaker_open_windows(RunRecord.load(rec.path))
        assert windows["b"] == (30.0, 1)


class TestTruncatedRecords:
    """Satellite: a torn final line must ingest the valid prefix and
    still be diffable against a complete run."""

    def tear(self, path):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "step", "step": "p1", "sta')

    def test_torn_record_loads_as_truncated(self, tmp_path):
        path = write_run(tmp_path, "run-t", finalize=False)
        self.tear(path)
        record = RunRecord.load(path)
        assert record.truncated
        assert len(record.step_attempts) == 2  # the valid prefix

    def test_torn_record_ingests(self, tmp_path):
        path = write_run(tmp_path, "run-t", finalize=False)
        self.tear(path)
        store = HistoryStore()
        assert store.ingest_dir(tmp_path) == 1
        row = store.run_row("run-t")
        assert row["truncated"] == 1
        assert row["status"] == "crashed"
        assert store.duration_samples() == {
            "gen": [5.0], "proc": [5.0],
        }

    def test_torn_record_diffs_against_complete_run(self, tmp_path):
        from repro.observability.diff import diff_records

        write_run(tmp_path, "run-full")
        torn_path = write_run(tmp_path, "run-torn", finalize=False)
        self.tear(torn_path)
        base = RunRecord.load(tmp_path / "run-full")
        cand = RunRecord.load(torn_path)
        diff = diff_records(base, cand)
        assert diff.cand_id == "run-torn"
        assert {d.transformation for d in diff.transformations} == {
            "gen", "proc",
        }
        assert diff.clean  # identical timings in the valid prefix

    def test_mid_file_corruption_still_rejected(self, tmp_path):
        path = write_run(tmp_path, "run-bad")
        text = path.read_text().splitlines()
        text[2] = "{definitely not json"
        path.write_text("\n".join(text) + "\n")
        with pytest.raises(ValueError, match="corrupt at line 3"):
            RunRecord.load(path)


class TestPruneRuns:
    def test_prune_keeps_newest(self, tmp_path):
        from repro.observability.recorder import list_runs, prune_runs

        for i in range(4):
            write_run(tmp_path, f"run-{i}")
        pruned = prune_runs(tmp_path, keep=2)
        assert pruned == ["run-0", "run-1"]
        assert [r.run_id for r in list_runs(tmp_path)] == [
            "run-2", "run-3",
        ]
        assert not (tmp_path / "run-0").exists()

    def test_prune_zero_removes_all(self, tmp_path):
        from repro.observability.recorder import list_runs, prune_runs

        write_run(tmp_path, "run-a")
        assert prune_runs(tmp_path, keep=0) == ["run-a"]
        assert list_runs(tmp_path) == []

    def test_prune_keep_exceeding_count_is_a_noop(self, tmp_path):
        from repro.observability.recorder import list_runs, prune_runs

        write_run(tmp_path, "run-a")
        assert prune_runs(tmp_path, keep=5) == []
        assert [r.run_id for r in list_runs(tmp_path)] == ["run-a"]

    def test_prune_negative_rejected(self, tmp_path):
        from repro.observability.recorder import prune_runs

        with pytest.raises(ValueError):
            prune_runs(tmp_path, keep=-1)

    def test_aggregates_survive_pruning(self, tmp_path):
        from repro.observability.recorder import prune_runs

        write_run(tmp_path / "runs", "run-old")
        write_run(tmp_path / "runs", "run-new")
        store = HistoryStore(tmp_path / "history.sqlite")
        store.ingest_dir(tmp_path / "runs")
        prune_runs(tmp_path / "runs", keep=1)
        # The raw record is gone but the history keeps the aggregates.
        assert store.run_ids() == ["run-old", "run-new"]
        assert store.ingest_dir(tmp_path / "runs") == 0
