"""The flight recorder: append-only run records and their reader."""

from __future__ import annotations

import json

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.observability.instrument import Instrumentation
from repro.observability.recorder import (
    RECORD_FILENAME,
    RECORD_SCHEMA_VERSION,
    FlightRecorder,
    RunRecord,
    find_run,
    list_runs,
    new_run_id,
)
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest

CHAIN_VDL = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "/bin/gen";
}
TR proc( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/proc";
}
DV g1->gen( o=@{output:"a0"}, seed="42" );
DV p1->proc( o=@{output:"a1"}, i=@{input:"a0"} );
"""


def chain_plan():
    catalog = MemoryCatalog().define(CHAIN_VDL)
    planner = Planner(catalog, cpu_estimate=lambda dv: 5.0)
    return planner.plan(
        MaterializationRequest(targets=("a1",), reuse="never")
    )


def make_invocation(name="g1", status="success", cpu=2.0, read=100):
    return Invocation(
        derivation_name=name,
        status=status,
        start_time=100.0,
        context=ExecutionContext(site="anl", host="anl-01"),
        usage=ResourceUsage(
            cpu_seconds=cpu,
            wall_seconds=cpu * 1.5,
            bytes_read=read,
            bytes_written=50,
        ),
    )


class TestRunIds:
    def test_ids_are_unique_within_a_process(self):
        assert new_run_id() != new_run_id()

    def test_id_shape(self):
        assert new_run_id().startswith("run-")


class TestFlightRecorder:
    def test_every_line_is_valid_json_with_a_type(self, tmp_path):
        rec = FlightRecorder.start(tmp_path, command="test")
        rec.event("fault.injected", fault="transient")
        rec.sample(ready=2, in_flight=1, completed=0, total=4, sim=1.5)
        rec.step("g1", status="success", start=0.0, end=5.0, site="anl")
        rec.finalize(status="ok", makespan=5.0)
        lines = [
            json.loads(raw)
            for raw in rec.path.read_text().splitlines()
        ]
        assert [line["type"] for line in lines] == [
            "meta", "event", "sample", "step", "result"
        ]
        assert lines[0]["schema_version"] == RECORD_SCHEMA_VERSION
        assert all("t" in line for line in lines)

    def test_round_trip_through_run_record(self, tmp_path):
        plan = chain_plan()
        rec = FlightRecorder.start(tmp_path, command="materialize a1")
        rec.plan(plan)
        rec.invocation(make_invocation("g1"))
        rec.invocation(make_invocation("p1"))
        rec.step("g1", status="success", start=0.0, end=3.0, site="anl")
        rec.step("p1", status="success", start=3.0, end=7.0, site="uc")
        rec.event("step.retry", step="p1", attempt=1)
        rec.finalize(status="ok", makespan=7.0)

        record = RunRecord.load(rec.path)
        assert record.run_id == rec.run_id
        assert record.command == "materialize a1"
        assert record.status == "ok"
        assert record.finished
        assert set(record.plan_steps()) == {"g1", "p1"}
        assert record.dependencies()["p1"] == {"g1"}
        assert record.transformation_of("p1") == "proc"
        assert record.transformation_of("nope") is None
        assert len(record.invocations) == 2
        assert record.events[0]["kind"] == "step.retry"
        assert record.makespan() == 7.0

    def test_load_accepts_run_directory(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.finalize()
        record = RunRecord.load(rec.path.parent)
        assert record.status == "ok"

    def test_finalize_writes_spans_and_metrics(self, tmp_path):
        obs = Instrumentation()
        with obs.span("outer"):
            with obs.span("inner"):
                obs.count("c", 3)
        rec = FlightRecorder.start(tmp_path)
        rec.finalize(obs, status="ok")
        record = RunRecord.load(rec.path)
        assert [s["name"] for s in record.spans] == ["outer", "inner"]
        children = record.span_children()
        outer = children[None][0]
        assert children[outer["span_id"]][0]["name"] == "inner"
        assert record.counter_total("c") == 3
        assert record.counter_total("missing") == 0.0

    def test_finalize_is_idempotent(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.finalize(status="ok")
        rec.finalize(status="error")  # no-op: already closed
        rec.event("late", detail="dropped")  # also a no-op
        record = RunRecord.load(rec.path)
        assert record.status == "ok"
        assert record.events == []

    def test_context_manager_records_crash_as_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with FlightRecorder.start(tmp_path) as rec:
                rec.step("g1", status="running", start=0.0, end=0.0)
                raise RuntimeError("boom")
        record = RunRecord.load(rec.path)
        assert record.status == "error"
        assert "boom" in record.result["error"]

    def test_truncated_record_reads_as_crashed(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.step("g1", status="success", start=0.0, end=2.0)
        rec.close()  # process died before finalize
        record = RunRecord.load(rec.path)
        assert not record.finished
        assert record.status == "crashed"
        assert record.makespan() == 2.0  # falls back to step timings

    def test_future_schema_version_rejected(self, tmp_path):
        run_dir = tmp_path / "run-future"
        run_dir.mkdir()
        (run_dir / RECORD_FILENAME).write_text(
            json.dumps(
                {
                    "type": "meta",
                    "schema_version": RECORD_SCHEMA_VERSION + 1,
                    "run_id": "run-future",
                }
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="schema version"):
            RunRecord.load(run_dir)

    def test_missing_record_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunRecord.load(tmp_path / "nothing")


class TestStepTimings:
    def test_retries_merge_into_one_step(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        # First attempt fails at t=0..2, retry succeeds at t=5..9 on
        # another site; the merged step spans backoff too.
        rec.step("p1", status="failure", start=0.0, end=2.0, site="anl")
        rec.step("p1", status="success", start=5.0, end=9.0, site="uc")
        rec.finalize()
        timings = RunRecord.load(rec.path).step_timings()
        assert timings["p1"]["start"] == 0.0
        assert timings["p1"]["end"] == 9.0
        assert timings["p1"]["status"] == "success"
        assert timings["p1"]["site"] == "uc"
        assert timings["p1"]["attempts"] == 2

    def test_result_makespan_wins_over_timings(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.step("g1", status="success", start=0.0, end=2.0)
        rec.finalize(status="ok", makespan=3.5)
        assert RunRecord.load(rec.path).makespan() == 3.5

    def test_empty_record_has_no_makespan(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.finalize()
        assert RunRecord.load(rec.path).makespan() is None


class TestRunListing:
    def test_list_runs_sorted_oldest_first(self, tmp_path):
        first = FlightRecorder(tmp_path / "run-a", "run-a")
        first.finalize()
        second = FlightRecorder(tmp_path / "run-b", "run-b")
        second.finalize()
        runs = list_runs(tmp_path)
        assert [r.run_id for r in runs] == ["run-a", "run-b"]

    def test_list_runs_skips_unreadable_records(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.finalize()
        bad = tmp_path / "run-bad"
        bad.mkdir()
        (bad / RECORD_FILENAME).write_text("{not json\n")
        assert [r.run_id for r in list_runs(tmp_path)] == [rec.run_id]

    def test_list_runs_on_missing_root(self, tmp_path):
        assert list_runs(tmp_path / "absent") == []

    def test_find_run_by_id_and_latest(self, tmp_path):
        a = FlightRecorder.start(tmp_path)
        a.finalize()
        b = FlightRecorder.start(tmp_path)
        b.finalize()
        assert find_run(tmp_path, a.run_id).run_id == a.run_id
        assert find_run(tmp_path, "latest").run_id == b.run_id

    def test_find_run_unknown_id_lists_known(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.finalize()
        with pytest.raises(FileNotFoundError, match=rec.run_id):
            find_run(tmp_path, "run-nope")

    def test_find_latest_with_no_runs(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no recorded runs"):
            find_run(tmp_path, "latest")


class TestEstimatorTraining:
    def test_train_on_record_fits_models(self, tmp_path):
        plan = chain_plan()
        rec = FlightRecorder.start(tmp_path)
        rec.plan(plan)
        for read, cpu in ((100, 2.0), (200, 3.0), (300, 4.0)):
            rec.invocation(make_invocation("p1", cpu=cpu, read=read))
        rec.invocation(make_invocation("g1", cpu=1.0, read=0))
        rec.invocation(make_invocation("g1", status="failure"))
        rec.finalize()
        record = RunRecord.load(rec.path)

        from repro.estimator.cost import Estimator

        estimator = Estimator(MemoryCatalog())
        trained = estimator.train_on_record(record)
        assert set(trained) == {"gen", "proc"}
        model = trained["proc"]
        assert model.samples == 3
        # cpu = 1 + 0.01 * bytes_read, recovered by the fit.
        assert model.predict_cpu_seconds(400) == pytest.approx(5.0)
        assert estimator.model_for("proc") is model

    def test_train_ignores_invocations_outside_the_plan(self, tmp_path):
        rec = FlightRecorder.start(tmp_path)
        rec.invocation(make_invocation("orphan"))
        rec.finalize()
        record = RunRecord.load(rec.path)

        from repro.estimator.cost import Estimator

        assert Estimator(MemoryCatalog()).train_on_record(record) == {}
