"""Property-based tests on derivation-graph invariants (hypothesis).

Random layered DAGs are generated at the derivation level; the
invariants checked are the ones every provenance feature relies on:
topological order respects all edges, ancestry/descent are duals,
target expansion is a closed subgraph, and invalidation is monotone.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.derivation import DatasetArg, Derivation
from repro.core.naming import VDPRef
from repro.provenance.graph import (
    DATASET,
    DerivationGraph,
    dataset_node,
)
from repro.provenance.invalidation import StalenessTracker, invalidated_by


@st.composite
def layered_graphs(draw) -> DerivationGraph:
    """A random acyclic derivation graph in layers."""
    layer_count = draw(st.integers(2, 5))
    per_layer = draw(st.integers(1, 4))
    graph = DerivationGraph()
    previous: list[str] = []
    index = 0
    for layer in range(layer_count):
        current = []
        for _ in range(per_layer):
            output = f"d{index}"
            actuals: dict[str, DatasetArg] = {
                "o": DatasetArg(output, "output")
            }
            if previous:
                fanin = draw(st.integers(1, min(3, len(previous))))
                inputs = draw(
                    st.lists(
                        st.sampled_from(previous),
                        min_size=fanin,
                        max_size=fanin,
                        unique=True,
                    )
                )
                for k, name in enumerate(inputs):
                    actuals[f"i{k}"] = DatasetArg(name, "input")
            graph.add_derivation(
                Derivation(
                    name=f"dv{index}",
                    transformation=VDPRef("t", kind="transformation"),
                    actuals=actuals,
                )
            )
            current.append(output)
            index += 1
        previous = previous + current
    return graph


@settings(max_examples=50, deadline=None)
@given(layered_graphs())
def test_topological_order_respects_edges(graph):
    order = graph.topological_order()
    position = {node: i for i, node in enumerate(order)}
    for node in order:
        for succ in graph.successors(node):
            assert position[node] < position[succ]
    assert len(order) == len(graph)


@settings(max_examples=50, deadline=None)
@given(layered_graphs())
def test_ancestors_descendants_duality(graph):
    nodes = graph.nodes()
    for node in nodes[:10]:
        for ancestor in graph.ancestors(node):
            assert node in graph.descendants(ancestor)


@settings(max_examples=50, deadline=None)
@given(layered_graphs())
def test_required_for_is_closed(graph):
    """Every input of every step in the expansion is either produced
    inside the expansion or a source of the full graph."""
    for sink in sorted(graph.sink_datasets())[:3]:
        sub = graph.required_for(sink)
        produced = {
            out
            for name in sub.derivation_names()
            for out in sub.derivation(name).outputs()
        }
        assert sink in produced
        for name in sub.derivation_names():
            for inp in sub.derivation(name).inputs():
                assert inp in produced or not graph.predecessors(
                    dataset_node(inp)
                )


@settings(max_examples=50, deadline=None)
@given(layered_graphs())
def test_invalidation_monotone(graph):
    """More bad roots can never shrink the blast radius."""
    datasets = graph.dataset_names()
    small = invalidated_by(graph, bad_datasets=datasets[:1])
    large = invalidated_by(graph, bad_datasets=datasets[:2])
    assert small.tainted_datasets <= large.tainted_datasets
    assert small.rerun_derivations <= large.rerun_derivations


@settings(max_examples=50, deadline=None)
@given(layered_graphs())
def test_invalidation_is_downstream_closed(graph):
    """Everything downstream of a tainted dataset is tainted too."""
    datasets = graph.dataset_names()
    report = invalidated_by(graph, bad_datasets=datasets[:1])
    for name in report.tainted_datasets:
        downstream = graph.downstream_datasets(name)
        assert downstream <= report.tainted_datasets


@settings(max_examples=30, deadline=None)
@given(layered_graphs(), st.integers(0, 100))
def test_staleness_fresh_after_full_rebuild(graph, base):
    """Stamping every dataset in topological order leaves nothing stale."""
    tracker = StalenessTracker(graph)
    when = float(base)
    for node in graph.topological_order():
        if node.kind == DATASET:
            when += 1.0
            tracker.stamp(node.name, when)
    assert tracker.stale_datasets() == set()


@settings(max_examples=30, deadline=None)
@given(layered_graphs())
def test_staleness_rerun_set_sufficient(graph):
    """After running exactly the derivations_to_run set (restamping
    their outputs), the target is fresh."""
    sinks = sorted(graph.sink_datasets())
    if not sinks:
        return
    target = sinks[0]
    tracker = StalenessTracker(graph)
    when = 0.0
    for node in graph.topological_order():
        if node.kind == DATASET:
            when += 1.0
            tracker.stamp(node.name, when)
    # Invalidate one upstream dataset by restamping it newer.
    upstream = sorted(graph.upstream_datasets(target))
    if not upstream:
        return
    tracker.stamp(upstream[0], when + 100)
    needed = tracker.derivations_to_run(target)
    # Re-run them in topological order, stamping outputs fresh.
    when += 200
    for node in graph.topological_order():
        if node.kind != DATASET and node.name in needed:
            when += 1.0
            for out in graph.derivation(node.name).outputs():
                tracker.stamp(out, when)
    assert not tracker.is_stale(target)
