"""Tests for the bipartite derivation dependency graph."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.errors import CyclicDerivationError
from repro.provenance.graph import (
    DerivationGraph,
    dataset_node,
    derivation_node,
)


@pytest.fixture
def graph(diamond_catalog):
    return DerivationGraph.from_catalog(diamond_catalog)


class TestConstruction:
    def test_node_and_edge_counts(self, graph):
        # 5 derivations + 7 datasets (raw1 raw2 sim1 sim2 final)
        assert len(graph.derivation_names()) == 5
        assert len(graph.dataset_names()) == 5
        # edges: each gen 1 out; each sim 1 in 1 out; ana 2 in 1 out
        assert graph.edge_count() == 2 + 4 + 3

    def test_membership(self, graph):
        assert dataset_node("final") in graph
        assert derivation_node("a1") in graph
        assert dataset_node("nope") not in graph

    def test_successors_predecessors(self, graph):
        assert graph.successors(dataset_node("raw1")) == {derivation_node("s1")}
        assert graph.predecessors(dataset_node("final")) == {
            derivation_node("a1")
        }


class TestTraversals:
    def test_upstream(self, graph):
        assert graph.upstream_datasets("final") == {
            "raw1", "raw2", "sim1", "sim2",
        }
        assert graph.upstream_datasets("raw1") == set()

    def test_downstream(self, graph):
        assert graph.downstream_datasets("raw1") == {"sim1", "final"}
        assert graph.downstream_datasets("final") == set()

    def test_sources_and_sinks(self, graph):
        assert graph.source_datasets() == set()  # gens produce the raws
        assert graph.sink_datasets() == {"final"}

    def test_depth(self, graph):
        assert graph.depth() == 3

    def test_topological_order(self, graph):
        order = graph.topological_order()
        position = {node: i for i, node in enumerate(order)}
        assert position[derivation_node("g1")] < position[dataset_node("raw1")]
        assert position[dataset_node("raw1")] < position[derivation_node("s1")]
        assert position[derivation_node("s1")] < position[dataset_node("sim1")]
        assert position[dataset_node("sim1")] < position[derivation_node("a1")]

    def test_cycle_detection(self):
        catalog = MemoryCatalog().define(
            """
            TR t( output o, input i ) {
              argument stdin = ${input:i};
              argument stdout = ${output:o};
              exec = "/b";
            }
            DV d1->t( o=@{output:"b"}, i=@{input:"a"} );
            DV d2->t( o=@{output:"a"}, i=@{input:"b"} );
            """
        )
        graph = DerivationGraph.from_catalog(catalog)
        assert not graph.is_acyclic()
        with pytest.raises(CyclicDerivationError):
            graph.topological_order()


class TestRequiredFor:
    def test_subgraph(self, graph):
        sub = graph.required_for("sim1")
        assert sub.derivation_names() == ["g1", "s1"]
        assert "sim2" not in sub.dataset_names()

    def test_full_target(self, graph):
        sub = graph.required_for("final")
        assert len(sub.derivation_names()) == 5

    def test_unknown_target_empty(self, graph):
        assert len(graph.required_for("nope").derivation_names()) == 0

    def test_source_dataset_target(self, graph):
        sub = graph.required_for("raw1")
        assert sub.derivation_names() == ["g1"]


class TestIncremental:
    def test_add_derivation_directly(self, diamond_catalog):
        graph = DerivationGraph()
        for dv in diamond_catalog.derivations():
            graph.add_derivation(dv)
        assert graph.depth() == 3
        assert graph.derivation("a1").name == "a1"
