"""Tests for row-level relational provenance (§8, implemented)."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.core.dataset import Dataset
from repro.core.descriptors import FileDescriptor, SQLRowsDescriptor
from repro.provenance.finegrained import (
    row_lineage,
    rows_affected_by,
)


def relational(name, keys, table="events"):
    return Dataset(
        name=name,
        descriptor=SQLRowsDescriptor(
            database="expdb", tables=(table,), keys=tuple(keys)
        ),
    )


@pytest.fixture
def catalog():
    """raw rows -> filtered rows (identity) -> summary rows (aggregate)."""
    catalog = MemoryCatalog()
    catalog.define(
        """
        TR filter-rows( output o, input i ) {
          argument stdin = ${input:i};
          argument stdout = ${output:o};
          exec = "/bin/filter";
        }
        TR summarize-rows( output o, input i ) {
          argument stdin = ${input:i};
          argument stdout = ${output:o};
          exec = "/bin/summarize";
        }
        DV f1->filter-rows( o=@{output:"filtered"}, i=@{input:"raw"} );
        DV s1->summarize-rows( o=@{output:"summary"}, i=@{input:"filtered"} );
        """
    )
    for tr_name, mapping in (
        ("filter-rows", "identity"),
        ("summarize-rows", "aggregate"),
    ):
        tr = catalog.get_transformation(tr_name)
        tr.attributes.set("row.mapping", mapping)
        catalog.add_transformation(tr, replace=True)
    catalog.add_dataset(
        relational("raw", ["k1", "k2", "k3", "k4"]), replace=True
    )
    catalog.add_dataset(relational("filtered", ["k1", "k3"]), replace=True)
    catalog.add_dataset(relational("summary", ["total"]), replace=True)
    return catalog


class TestRowLineage:
    def test_identity_narrows_to_queried_keys(self, catalog):
        lineage = row_lineage(catalog, "filtered", keys=["k1"])
        assert lineage.contributing_keys("raw") == {"k1"}
        assert "f1" in lineage.via

    def test_aggregate_widens_to_all_input_rows(self, catalog):
        lineage = row_lineage(catalog, "summary", keys=["total"])
        # The summary row derives from both filtered rows, which in
        # turn derive (identity) from the matching raw rows.
        assert lineage.contributing_keys("filtered") == {"k1", "k3"}
        assert lineage.contributing_keys("raw") == {"k1", "k3"}

    def test_default_keys_are_whole_descriptor(self, catalog):
        lineage = row_lineage(catalog, "filtered")
        assert lineage.keys == frozenset({"k1", "k3"})

    def test_opaque_inputs_reported(self, catalog):
        catalog.add_dataset(
            Dataset(name="calib", descriptor=FileDescriptor(path="/c")),
            replace=True,
        )
        catalog.define(
            """
            TR joiner( output o, input rows, input aux ) {
              argument = ${input:rows}" "${input:aux};
              argument stdout = ${output:o};
              exec = "/bin/join";
            }
            DV j1->joiner( o=@{output:"joined"},
                           rows=@{input:"filtered"}, aux=@{input:"calib"} );
            """
        )
        catalog.add_dataset(relational("joined", ["k1"]), replace=True)
        lineage = row_lineage(catalog, "joined", keys=["k1"])
        assert "calib" in lineage.opaque
        assert lineage.contributing_keys("filtered") == {"k1", "k3"}

    def test_source_dataset_has_no_contributions(self, catalog):
        lineage = row_lineage(catalog, "raw", keys=["k1"])
        assert lineage.contributions == {}
        assert lineage.via == []

    def test_unknown_mapping_defaults_to_aggregate(self, catalog):
        tr = catalog.get_transformation("filter-rows")
        tr.attributes.set("row.mapping", "nonsense")
        catalog.add_transformation(tr, replace=True)
        lineage = row_lineage(catalog, "filtered", keys=["k1"])
        # conservative: all raw rows contribute
        assert lineage.contributing_keys("raw") == {"k1", "k2", "k3", "k4"}


class TestRowsAffectedBy:
    def test_identity_propagates_keys(self, catalog):
        tainted = rows_affected_by(catalog, "raw", ["k1"])
        assert tainted["filtered"] == {"k1"}

    def test_aggregate_taints_whole_dataset(self, catalog):
        tainted = rows_affected_by(catalog, "raw", ["k1"])
        assert tainted["summary"] == set()  # whole-dataset taint

    def test_untouched_keys_safe(self, catalog):
        # k2 was filtered out (filtered addresses only k1/k3): nothing
        # downstream is affected by a bad k2.
        tainted = rows_affected_by(catalog, "raw", ["k2"])
        assert "filtered" not in tainted
        assert "summary" not in tainted
