"""Tests for invalidation propagation and make-style staleness."""

import pytest

from repro.provenance.graph import DerivationGraph
from repro.provenance.invalidation import (
    StalenessTracker,
    invalidated_by,
)


@pytest.fixture
def graph(diamond_catalog):
    return DerivationGraph.from_catalog(diamond_catalog)


class TestInvalidation:
    def test_calibration_error_scenario(self, graph):
        """'I've detected a calibration error in an instrument and want
        to know which derived data to recompute.' (§2)"""
        report = invalidated_by(graph, bad_datasets=["raw1"])
        assert report.tainted_datasets == {"sim1", "final"}
        assert report.rerun_derivations == {"g1", "s1", "a1"}

    def test_unrelated_branch_untouched(self, graph):
        report = invalidated_by(graph, bad_datasets=["raw2"])
        assert "sim1" not in report.tainted_datasets

    def test_bad_transformation(self, graph):
        report = invalidated_by(graph, bad_transformations=["sim"])
        # both sim derivations rerun; their outputs and final tainted
        assert report.rerun_derivations >= {"s1", "s2", "a1"}
        assert report.tainted_datasets == {"sim1", "sim2", "final"}

    def test_leaf_dataset(self, graph):
        report = invalidated_by(graph, bad_datasets=["final"])
        assert report.tainted_datasets == set()
        assert report.rerun_derivations == {"a1"}

    def test_unknown_dataset_harmless(self, graph):
        report = invalidated_by(graph, bad_datasets=["nope"])
        assert report.total_affected() == 0

    def test_combined_roots(self, graph):
        report = invalidated_by(
            graph, bad_datasets=["raw1"], bad_transformations=["ana"]
        )
        assert "a1" in report.rerun_derivations
        assert report.bad_transformations == {"ana"}


class TestStaleness:
    def stamps(self, tracker, *pairs):
        for name, when in pairs:
            tracker.stamp(name, when)

    def test_fresh_chain_not_stale(self, graph):
        tracker = StalenessTracker(graph)
        self.stamps(
            tracker, ("raw1", 1), ("raw2", 1), ("sim1", 2), ("sim2", 2),
            ("final", 3),
        )
        assert not tracker.is_stale("final")
        assert tracker.stale_datasets() == set()

    def test_unmaterialized_is_stale(self, graph):
        tracker = StalenessTracker(graph)
        assert tracker.is_stale("final")
        assert not tracker.is_materialized("final")

    def test_newer_input_propagates(self, graph):
        tracker = StalenessTracker(graph)
        self.stamps(
            tracker, ("raw1", 1), ("raw2", 1), ("sim1", 2), ("sim2", 2),
            ("final", 3),
        )
        tracker.stamp("raw1", 10)  # re-made raw1
        assert tracker.is_stale("sim1")
        assert tracker.is_stale("final")
        assert not tracker.is_stale("sim2")

    def test_derivations_to_run_minimal(self, graph):
        tracker = StalenessTracker(graph)
        self.stamps(
            tracker, ("raw1", 1), ("raw2", 1), ("sim1", 2), ("sim2", 2),
            ("final", 3),
        )
        tracker.stamp("raw1", 10)
        assert tracker.derivations_to_run("final") == {"s1", "a1"}

    def test_everything_needed_when_nothing_built(self, graph):
        tracker = StalenessTracker(graph)
        assert tracker.derivations_to_run("final") == {
            "g1", "g2", "s1", "s2", "a1",
        }

    def test_stamp_of(self, graph):
        tracker = StalenessTracker(graph)
        assert tracker.stamp_of("raw1") is None
        tracker.stamp("raw1", 5)
        assert tracker.stamp_of("raw1") == 5
