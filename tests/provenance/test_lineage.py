"""Tests for lineage reports (audit trails)."""


from repro.core.invocation import Invocation, ResourceUsage
from repro.provenance.lineage import lineage_report


class TestLineageReport:
    def test_source_dataset(self, diamond_catalog):
        report = lineage_report(diamond_catalog, "unknown.raw")
        assert report.is_source
        assert report.depth() == 0
        assert report.all_source_datasets() == {"unknown.raw"}
        assert "[source]" in report.render()

    def test_full_trail(self, diamond_catalog):
        report = lineage_report(diamond_catalog, "final")
        assert report.depth() == 3
        assert report.all_derivations() == {"g1", "g2", "s1", "s2", "a1"}
        # gens have no dataset inputs, so the raw datasets are not
        # sources (they are produced); the trail bottoms out at gens.
        assert report.all_source_datasets() == set()

    def test_parameters_surface(self, diamond_catalog):
        report = lineage_report(diamond_catalog, "raw1")
        assert report.steps[0].parameters() == {"seed": "42"}
        assert "seed='42'" in report.render()

    def test_transformation_version_reported(self, diamond_catalog):
        report = lineage_report(diamond_catalog, "final")
        assert report.steps[0].transformation_version == "1.0"

    def test_invocations_included(self, diamond_catalog):
        diamond_catalog.add_invocation(
            Invocation(
                derivation_name="a1",
                usage=ResourceUsage(cpu_seconds=12.0, wall_seconds=15.0),
            )
        )
        report = lineage_report(diamond_catalog, "final")
        assert len(report.steps[0].invocations) == 1
        assert report.total_cpu_seconds() == 12.0
        without = lineage_report(
            diamond_catalog, "final", include_invocations=False
        )
        assert without.steps[0].invocations == []

    def test_max_depth_truncation(self, diamond_catalog):
        report = lineage_report(diamond_catalog, "final", max_depth=1)
        assert report.depth() == 1
        inputs = report.steps[0].inputs
        assert all(r.is_source for r in inputs.values())

    def test_multiple_producers_reported(self, diamond_catalog):
        diamond_catalog.define(
            'DV a1b->ana( o=@{output:"final"}, a=@{input:"sim1"},'
            ' b=@{input:"sim2"} );',
        )
        report = lineage_report(diamond_catalog, "final")
        assert {s.derivation.name for s in report.steps} == {"a1", "a1b"}

    def test_cycle_guard(self, catalog):
        catalog.define(
            """
            TR t( output o, input i ) {
              argument stdin = ${input:i};
              argument stdout = ${output:o};
              exec = "/b";
            }
            DV d1->t( o=@{output:"b"}, i=@{input:"a"} );
            DV d2->t( o=@{output:"a"}, i=@{input:"b"} );
            """
        )
        report = lineage_report(catalog, "a")  # must terminate
        assert report.steps

    def test_render_shape(self, diamond_catalog):
        text = lineage_report(diamond_catalog, "final").render()
        assert text.splitlines()[0] == "final"
        assert "<- a1 -> ana" in text
        assert "raw2" in text
