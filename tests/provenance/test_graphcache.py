"""GraphCache: the event-maintained derivation graph behind planning.

The cache's contract is that :meth:`graph` always returns a graph
structurally equal to a cold ``DerivationGraph.from_catalog`` over the
current catalog — served from cache (hit), node-patched (hit +
patches), or rebuilt (miss) depending on how much changed since the
last call.
"""

from repro.catalog.memory import MemoryCatalog
from repro.provenance.graph import DerivationGraph
from repro.provenance.graphcache import REBUILD_FRACTION, GraphCache
from repro.workloads import canonical


def edges(graph):
    """Order-normalized edge set of a derivation graph."""
    return {
        (node, successor)
        for node in graph.nodes()
        for successor in graph.successors(node)
    }


def chain_catalog(n=6):
    catalog = MemoryCatalog()
    canonical.define_transformations(catalog)
    chunks = ['DV d0->canon0( o=@{output:"ds0"}, tag="t0" );\n']
    for i in range(1, n):
        chunks.append(
            f'DV d{i}->canon1( o=@{{output:"ds{i}"}}, '
            f'i0=@{{input:"ds{i - 1}"}}, tag="t{i}" );\n'
        )
    catalog.define("".join(chunks))
    return catalog


class TestGraphCache:
    def test_second_call_is_a_hit_on_the_same_object(self):
        catalog = chain_catalog()
        cache = GraphCache(catalog)
        first = cache.graph()
        second = cache.graph()
        assert second is first
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_added_derivation_is_patched_in(self):
        catalog = chain_catalog()
        cache = GraphCache(catalog)
        before = cache.graph()
        version = cache.version
        catalog.define(
            'DV extra->canon1( o=@{output:"extra.out"}, '
            'i0=@{input:"ds2"}, tag="x" );\n'
        )
        after = cache.graph()
        assert after is before  # patched, not rebuilt
        assert cache.stats()["misses"] == 1
        assert cache.stats()["patches"] >= 1
        assert cache.version > version  # derived state must refresh
        assert edges(after) == edges(DerivationGraph.from_catalog(catalog))

    def test_removed_derivation_is_patched_out(self):
        catalog = chain_catalog()
        catalog.define(
            'DV extra->canon1( o=@{output:"extra.out"}, '
            'i0=@{input:"ds2"}, tag="x" );\n'
        )
        cache = GraphCache(catalog)
        cache.graph()
        catalog.remove_derivation("extra")
        patched = cache.graph()
        assert cache.stats()["misses"] == 1
        assert edges(patched) == edges(
            DerivationGraph.from_catalog(catalog)
        )

    def test_bulk_mutation_triggers_full_rebuild(self):
        """Past the rebuild fraction, patching loses to rebuilding."""
        catalog = chain_catalog(n=8)
        cache = GraphCache(catalog)
        old = cache.graph()
        # Dirty strictly more than max(fraction * known, 8) derivations.
        known = len(catalog.derivation_names())
        extra = max(int(REBUILD_FRACTION * known), 8) + 1
        chunks = []
        for i in range(extra):
            chunks.append(
                f'DV bulk{i}->canon1( o=@{{output:"bulk{i}.out"}}, '
                f'i0=@{{input:"ds0"}}, tag="b{i}" );\n'
            )
        catalog.define("".join(chunks))
        rebuilt = cache.graph()
        assert rebuilt is not old
        assert cache.stats()["misses"] == 2
        assert edges(rebuilt) == edges(
            DerivationGraph.from_catalog(catalog)
        )

    def test_invalidate_drops_the_cached_graph(self):
        catalog = chain_catalog()
        cache = GraphCache(catalog)
        old = cache.graph()
        cache.invalidate()
        assert cache.graph() is not old
        assert cache.stats()["misses"] == 2

    def test_catalog_accessor_returns_one_cache(self):
        """catalog.graph_cache() is a stable per-catalog singleton and
        derivation_graph() serves through it."""
        catalog = chain_catalog()
        cache = catalog.graph_cache()
        assert catalog.graph_cache() is cache
        graph = catalog.derivation_graph()
        assert graph is cache.graph()
        assert cache.stats()["misses"] == 1
