"""Tests for data-product equivalence (§8 future work, implemented)."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.core.replica import Replica
from repro.provenance.equivalence import (
    EquivalenceChecker,
    equivalence_classes,
)

PIPELINE = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "/bin/gen";
}
TR sim( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/sim";
}
DV g1->gen( o=@{output:"raw1"}, seed="42" );
DV g2->gen( o=@{output:"raw2"}, seed="42" );
DV g3->gen( o=@{output:"raw3"}, seed="99" );
DV s1->sim( o=@{output:"sim1"}, i=@{input:"raw1"} );
DV s2->sim( o=@{output:"sim2"}, i=@{input:"raw2"} );
DV s3->sim( o=@{output:"sim3"}, i=@{input:"raw3"} );
"""


@pytest.fixture
def catalog():
    return MemoryCatalog().define(PIPELINE)


@pytest.fixture
def checker(catalog):
    return EquivalenceChecker(catalog)


class TestBitwise:
    def test_matching_digests(self, catalog, checker):
        catalog.add_replica(
            Replica(dataset_name="raw1", location="a", digest="d1")
        )
        catalog.add_replica(
            Replica(dataset_name="raw2", location="b", digest="d1")
        )
        assert checker.bitwise_equal("raw1", "raw2")

    def test_differing_digests(self, catalog, checker):
        catalog.add_replica(
            Replica(dataset_name="raw1", location="a", digest="d1")
        )
        catalog.add_replica(
            Replica(dataset_name="raw3", location="b", digest="d3")
        )
        assert not checker.bitwise_equal("raw1", "raw3")

    def test_missing_digests_conservative(self, checker):
        assert not checker.bitwise_equal("raw1", "raw2")


class TestRecipe:
    def test_identical_recipes(self, checker):
        assert checker.recipe_equal("raw1", "raw2")  # same seed

    def test_differing_parameters(self, checker):
        assert not checker.recipe_equal("raw1", "raw3")  # seeds differ

    def test_recursive_through_inputs(self, checker):
        assert checker.recipe_equal("sim1", "sim2")  # inputs equivalent
        assert not checker.recipe_equal("sim1", "sim3")

    def test_reflexive(self, checker):
        assert checker.recipe_equal("sim1", "sim1")

    def test_source_vs_derived(self, checker):
        assert not checker.recipe_equal("raw1", "unknown")


class TestSemantic:
    def test_version_equivalence_consulted(self, catalog):
        catalog.get_derivation("g1")  # ensure exists
        # Tag derivations with the version that produced their outputs.
        for name, version in (("g1", "1.0"), ("g2", "1.1")):
            dv = catalog.get_derivation(name)
            dv.attributes.set("transformation_version", version)
            catalog.add_derivation(dv, replace=True)
        checker = EquivalenceChecker(catalog)
        # No compatibility assertion yet: semantic equality fails.
        assert not checker.semantic_equal("raw1", "raw2")
        catalog.versions.assert_compatible("gen", "1.0", "1.1")
        assert checker.semantic_equal("raw1", "raw2")

    def test_grade_ladder(self, catalog, checker):
        catalog.add_replica(
            Replica(dataset_name="raw1", location="a", digest="d1")
        )
        catalog.add_replica(
            Replica(dataset_name="raw2", location="b", digest="d1")
        )
        assert checker.grade("raw1", "raw2") == "bitwise"
        assert checker.grade("sim1", "sim2") == "recipe"
        assert checker.grade("raw1", "raw3") is None

    def test_substitutable(self, checker):
        assert checker.substitutable("sim1", "sim2", minimum_grade="recipe")
        assert checker.substitutable("sim1", "sim2", minimum_grade="semantic")
        assert not checker.substitutable("sim1", "sim3")


class TestClasses:
    def test_partition(self, catalog):
        classes = equivalence_classes(
            catalog, ["raw1", "raw2", "raw3", "sim1", "sim2", "sim3"]
        )
        as_sets = sorted(sorted(c) for c in classes)
        assert as_sets == [
            ["raw1", "raw2"], ["raw3"], ["sim1", "sim2"], ["sim3"],
        ]
