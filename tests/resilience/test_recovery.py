"""Scheduler recovery behaviour: retries, failover, breakers, timeouts,
failure policies and the per-step failure report."""

import pytest

from repro.errors import WorkflowError
from repro.planner.scheduler import WorkflowScheduler
from repro.resilience import (
    CLOSED,
    FAIL_FAST,
    HALF_OPEN,
    OPEN,
    RUN_WHAT_YOU_CAN,
    BreakerBoard,
    Degradation,
    FaultInjector,
    FaultPlan,
    ImmediateRetry,
    OutageWindow,
    RecoveryConfig,
)
from tests.conftest import DIAMOND_VDL
from tests.resilience.conftest import (
    FAULT_SEED,
    SINGLE_VDL,
    TWO_BRANCH_VDL,
    StepKiller,
    make_world,
)


class TestTransientRecovery:
    @pytest.mark.parametrize(
        "pattern", ["collocate", "ship-procedure", "ship-data", "ship-both"]
    )
    def test_recovers_under_every_shipping_pattern(self, pattern):
        def run_once():
            plan = FaultPlan(seed=FAULT_SEED, transient_rate=0.3)
            world = make_world(
                DIAMOND_VDL,
                ("final",),
                injector=FaultInjector(plan),
                pattern=pattern,
            )
            scheduler = WorkflowScheduler(
                world.grid,
                world.selector,
                pattern=pattern,
                max_retries=8,
                recovery=RecoveryConfig.hardened(seed=FAULT_SEED),
            )
            return world, scheduler.run(world.plan)

        world, result = run_once()
        assert result.succeeded
        assert set(result.outcomes) == set(world.plan.steps)
        assert world.rls.has("final")
        # Determinism: the same plan + seed reproduces the schedule.
        _, replay = run_once()
        assert replay.makespan == result.makespan
        assert {n: o.attempts for n, o in replay.outcomes.items()} == {
            n: o.attempts for n, o in result.outcomes.items()
        }

    def test_retried_attempts_are_recorded(self):
        plan = FaultPlan(seed=FAULT_SEED, transient_rate=0.6)
        world = make_world(
            DIAMOND_VDL, ("final",), injector=FaultInjector(plan)
        )
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            # Generous budget: a 60% rate can string together long
            # losing streaks on some seeds (the retry draws are
            # independent per attempt, not guaranteed to converge).
            max_retries=25,
            recovery=RecoveryConfig.hardened(seed=FAULT_SEED),
        ).run(world.plan)
        assert result.succeeded
        # At 60% transient something certainly faulted and was retried.
        assert any(o.attempts > 1 for o in result.outcomes.values())
        assert world.grid.injector.injected.get("transient", 0) > 0


class TestFailover:
    def test_retry_excludes_failed_site(self):
        # Site "a" is down for the whole run: every attempt there
        # fails, and failover must land the step on "b".
        injector = FaultInjector(
            FaultPlan(outages=[OutageWindow("a", 0.0, 1e9)])
        )
        world = make_world(SINGLE_VDL, ("a0",), injector=injector)
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            max_retries=3,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(), failover=True
            ),
        ).run(world.plan)
        assert result.succeeded
        assert result.outcomes["g1"].site == "b"
        assert world.rls.has("a0", "b")

    def test_permanent_fault_without_failover_exhausts(self):
        injector = StepKiller("g1")
        world = make_world(SINGLE_VDL, ("a0",), injector=injector)
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            max_retries=2,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(), failover=False
            ),
        ).run(world.plan)
        assert not result.succeeded
        assert result.failed_steps == {"g1"}
        assert result.outcomes["g1"].record.fault == "permanent"


class TestRetryBudget:
    @pytest.mark.parametrize("max_retries", [0, 2, 4])
    def test_max_retries_means_n_plus_one_attempts(self, max_retries):
        # max_retries bounds *resubmissions*: a step is attempted at
        # most max_retries + 1 times (max_retries=0 still runs once).
        injector = StepKiller("g1")
        world = make_world(SINGLE_VDL, ("a0",), injector=injector)
        result = WorkflowScheduler(
            world.grid, world.selector, max_retries=max_retries
        ).run(world.plan)
        assert result.failed_steps == {"g1"}
        assert result.outcomes["g1"].attempts == max_retries + 1
        assert injector.injected["permanent"] == max_retries + 1

    def test_single_site_retries_warn_about_frozen_selector(self):
        # With one site the selector can never change its choice, so
        # retries cannot fail over a permanent site fault.
        world = make_world(SINGLE_VDL, ("a0",), sites=("solo",))
        with pytest.warns(RuntimeWarning, match="single-site"):
            WorkflowScheduler(world.grid, world.selector, max_retries=2)

    def test_multi_site_does_not_warn(self, recwarn):
        world = make_world(SINGLE_VDL, ("a0",))
        WorkflowScheduler(world.grid, world.selector, max_retries=2)
        assert not [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]


class TestCircuitBreakers:
    def test_breaker_opens_defers_probes_and_closes(self):
        # One site, down until t=200.  Two immediate failures trip the
        # breaker; half-open probes at each cooldown expiry keep
        # failing until the outage lifts, then the probe closes it.
        injector = FaultInjector(
            FaultPlan(outages=[OutageWindow("solo", 0.0, 200.0)])
        )
        world = make_world(
            SINGLE_VDL, ("a0",), sites=("solo",), injector=injector
        )
        with pytest.warns(RuntimeWarning):
            scheduler = WorkflowScheduler(
                world.grid,
                world.selector,
                max_retries=10,
                recovery=RecoveryConfig(
                    retry_policy=ImmediateRetry(),
                    breakers=BreakerBoard(
                        failure_threshold=2, cooldown=50.0
                    ),
                    failover=False,
                ),
            )
        result = scheduler.run(world.plan)
        assert result.succeeded
        breaker = scheduler.recovery.breakers.breaker("solo")
        assert breaker.state == CLOSED
        moves = [(old, new) for _, old, new in breaker.transitions]
        assert (CLOSED, OPEN) in moves
        assert (OPEN, HALF_OPEN) in moves
        assert (HALF_OPEN, OPEN) in moves  # failed probes re-open
        assert moves[-1] == (HALF_OPEN, CLOSED)
        # Attempts are spent only when the breaker admits traffic: two
        # initial failures, then one probe per cooldown window.
        assert result.outcomes["g1"].attempts == 6
        assert result.makespan >= 200.0


class TestFailurePolicies:
    def branchy_world(self):
        def cpu(dv):
            # The doomed branch fails fast; the healthy generator is
            # slow enough that its successor dispatches only after the
            # failure is terminal — which is what separates the two
            # failure policies.
            return {"ga": 1.0, "gb": 50.0}.get(dv.name, 10.0)

        return make_world(
            TWO_BRANCH_VDL,
            ("a1", "b1"),
            injector=StepKiller("ga"),
            cpu=cpu,
        )

    def test_run_what_you_can_keeps_healthy_branch(self):
        world = self.branchy_world()
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            max_retries=1,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(),
                failure_policy=RUN_WHAT_YOU_CAN,
            ),
        ).run(world.plan)
        assert result.failed_steps == {"ga"}
        assert result.skipped_steps == {"pa": "upstream-failed:ga"}
        assert result.outcomes["gb"].record.succeeded
        assert result.outcomes["pb"].record.succeeded
        assert world.rls.has("b1")

    def test_fail_fast_stops_dispatching(self):
        world = self.branchy_world()
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            max_retries=1,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(),
                failure_policy=FAIL_FAST,
            ),
        ).run(world.plan)
        assert result.failed_steps == {"ga"}
        assert result.skipped_steps == {"pa": "upstream-failed:ga"}
        # gb was already in flight and completes, but its successor is
        # never dispatched once the workflow has a failed step.
        assert result.outcomes["gb"].record.succeeded
        assert "pb" not in result.outcomes
        assert not world.rls.has("b1")


class TestStepTimeout:
    def test_straggler_killed_and_resubmitted(self):
        # Both sites straggle (20x) for jobs starting before t=1; the
        # watchdog kills the 200s attempt at t=50 and the retry, now
        # outside the degradation window, finishes in ~10s.
        injector = FaultInjector(
            FaultPlan(
                degradations=[
                    Degradation("a", 0.0, 1.0, slowdown=20.0),
                    Degradation("b", 0.0, 1.0, slowdown=20.0),
                ]
            )
        )
        world = make_world(SINGLE_VDL, ("a0",), injector=injector)
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            max_retries=2,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(),
                failure_policy=RUN_WHAT_YOU_CAN,
                step_timeout=50.0,
                failover=True,
            ),
        ).run(world.plan)
        assert result.succeeded
        outcome = result.outcomes["g1"]
        assert outcome.attempts == 2
        assert outcome.record.status == "done"
        assert result.makespan < 100.0  # far less than the 200s straggle
        assert injector.injected["straggler"] == 1

    def test_timeout_fault_recorded_when_budget_exhausted(self):
        injector = FaultInjector(
            FaultPlan(
                degradations=[
                    Degradation("a", 0.0, 1e9, slowdown=20.0),
                    Degradation("b", 0.0, 1e9, slowdown=20.0),
                ]
            )
        )
        world = make_world(SINGLE_VDL, ("a0",), injector=injector)
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            max_retries=1,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(),
                failure_policy=RUN_WHAT_YOU_CAN,
                step_timeout=50.0,
            ),
        ).run(world.plan)
        assert result.failed_steps == {"g1"}
        record = result.outcomes["g1"].record
        assert record.status == "killed"
        assert record.fault == "timeout"
        assert "timeout" in record.error


class TestFailureReport:
    def test_step_failures_cover_failed_and_skipped(self):
        world = make_world(
            TWO_BRANCH_VDL, ("a1", "b1"), injector=StepKiller("ga")
        )
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            max_retries=1,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(),
                failure_policy=RUN_WHAT_YOU_CAN,
            ),
        ).run(world.plan)
        error = WorkflowError("materialization failed", result=result)
        rows = {row["step"]: row for row in error.step_failures()}
        assert rows["ga"]["status"] == "failed"
        assert rows["ga"]["attempts"] == 2
        assert rows["ga"]["site"] in ("a", "b")
        assert "injected permanent fault" in rows["ga"]["error"]
        assert rows["pa"]["status"] == "skipped"
        assert rows["pa"]["error"] == "upstream-failed:ga"

    def test_render_summary_mentions_every_row(self):
        world = make_world(
            TWO_BRANCH_VDL, ("a1", "b1"), injector=StepKiller("ga")
        )
        result = WorkflowScheduler(
            world.grid,
            world.selector,
            max_retries=0,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(),
                failure_policy=RUN_WHAT_YOU_CAN,
            ),
        ).run(world.plan)
        summary = WorkflowError("boom", result=result).render_summary()
        assert "ga: failed at site" in summary
        assert "1 attempt(s)" in summary
        assert "pa: skipped (upstream-failed:ga)" in summary

    def test_error_without_result_degrades_gracefully(self):
        error = WorkflowError("boom")
        assert error.step_failures() == []
        assert error.render_summary() == "boom"
