"""The breaker state gauge and its recorded transitions.

Satellite check: ``scheduler.breaker.state`` must walk the automaton
closed(0) -> open(2) -> half-open(1) -> closed(0) as a site fails,
cools down, and recovers — and both the gauge and the fault counter
must survive into the OpenMetrics exposition.
"""

from __future__ import annotations

import pytest

from repro.observability import (
    FlightRecorder,
    Instrumentation,
    RunRecord,
    to_openmetrics,
    validate_openmetrics,
)
from repro.planner.scheduler import WorkflowScheduler
from repro.resilience import (
    BreakerBoard,
    FaultInjector,
    FaultPlan,
    ImmediateRetry,
    RecoveryConfig,
)

from tests.resilience.conftest import SINGLE_VDL, make_world


class CountdownInjector(FaultInjector):
    """Fails the first ``n`` attempts anywhere, then heals."""

    def __init__(self, n, instrumentation=None):
        super().__init__(FaultPlan(), instrumentation=instrumentation)
        self.remaining = n

    def run_fault(self, job, site, start, end):
        if self.remaining > 0:
            self.remaining -= 1
            self._record("transient")
            return ("transient", "injected for breaker test")
        return None


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
class TestBreakerGauge:
    def run_world(self, tmp_path, failures=2):
        obs = Instrumentation()
        injector = CountdownInjector(failures, instrumentation=obs)
        world = make_world(SINGLE_VDL, ("a0",), sites=("a",), injector=injector)
        recorder = FlightRecorder.start(
            tmp_path, run_id="run-breaker", command="test"
        )
        obs.attach_recorder(recorder)
        scheduler = WorkflowScheduler(
            world.grid,
            world.selector,
            pattern=world.pattern,
            max_retries=8,
            instrumentation=obs,
            recovery=RecoveryConfig(
                retry_policy=ImmediateRetry(),
                breakers=BreakerBoard(failure_threshold=2, cooldown=5.0),
                failover=False,
            ),
        )
        result = scheduler.run(world.plan)
        recorder.finalize(obs, status="ok", makespan=result.makespan)
        return obs, result, RunRecord.load(recorder.path)

    def test_transitions_walk_the_automaton(self, tmp_path):
        obs, result, record = self.run_world(tmp_path, failures=2)
        assert result.succeeded
        transitions = [
            e for e in record.events if e["kind"] == "breaker.transition"
        ]
        assert [t["site"] for t in transitions] == ["a", "a", "a"]
        # Two failures trip it open (2); the cooled-down probe admits
        # half-open (1); the probe's success closes it again (0).
        assert [t["state"] for t in transitions] == [2, 1, 0]
        sims = [t["sim"] for t in transitions]
        assert sims == sorted(sims)
        # The half-open probe waited out the 5s cooldown.
        assert sims[1] - sims[0] >= 5.0

    def test_gauge_lands_closed(self, tmp_path):
        obs, result, record = self.run_world(tmp_path, failures=2)
        gauge = obs.metrics.gauge("scheduler.breaker.state")
        assert gauge.value(site="a") == 0

    def test_no_transitions_without_failures(self, tmp_path):
        obs, result, record = self.run_world(tmp_path, failures=0)
        assert result.succeeded
        assert not [
            e for e in record.events if e["kind"] == "breaker.transition"
        ]
        # The gauge is still exported (touched at admit), just closed.
        assert obs.metrics.gauge("scheduler.breaker.state").value(site="a") == 0

    def test_breaker_and_fault_metrics_in_openmetrics(self, tmp_path):
        obs, result, record = self.run_world(tmp_path, failures=2)
        text = to_openmetrics(obs.metrics.to_dict())
        assert validate_openmetrics(text) == []
        assert "# TYPE scheduler_breaker_state gauge" in text
        assert 'scheduler_breaker_state{site="a"} 0' in text
        assert "# TYPE grid_faults_injected counter" in text
        assert 'grid_faults_injected_total{kind="transient"} 2' in text

    def test_history_charges_the_open_window(self, tmp_path):
        from repro.observability.history import HistoryStore

        obs, result, record = self.run_world(tmp_path, failures=2)
        store = HistoryStore()
        store.ingest(record)
        stats = store.site_stats()
        # Open from the trip to the half-open probe: the 5s cooldown.
        assert stats["a"]["breaker_open_seconds"] == pytest.approx(
            5.0, abs=1.0
        )
        assert store.run_row("run-breaker")["faults"] == 2
