"""Seeded fault injection against the paper workloads (HEP, SDSS).

The acceptance bar for the resilience layer: a hardened run through a
hostile grid (20% transient faults plus a full-site outage) must
converge to *exactly* the final replica and provenance state of a
fault-free run — recovery may cost time, never correctness.
"""

from repro.resilience import FaultPlan, OutageWindow, RecoveryConfig
from repro.system import VirtualDataSystem
from repro.workloads import hep, sdss
from tests.resilience.conftest import FAULT_SEED

HEP_SITES = {"anl": 8, "uc": 8, "uw": 8}
SDSS_SITES = {"anl": 16, "uc": 16, "uw": 16, "ufl": 16}


def hep_system(fault_plan=None, recovery=None):
    vds = VirtualDataSystem.with_grid(
        HEP_SITES,
        authority="hep.test",
        fault_plan=fault_plan,
        recovery=recovery,
    )
    target = hep.define_run(vds.catalog, "run9", seed=3, events=50)
    return vds, target


def final_state(vds):
    return (
        set(vds.replicas.lfns()),
        {lfn: vds.replicas.size_of(lfn) for lfn in vds.replicas.lfns()},
    )


class TestHEPUnderFaults:
    HEP_STEPS = ("run9.gen", "run9.sim", "run9.reco", "run9.ana")

    def test_hostile_grid_converges_to_fault_free_state(self):
        clean_vds, target = hep_system()
        clean = clean_vds.materialize(target, reuse="never")
        assert clean.succeeded

        plan = FaultPlan(
            seed=FAULT_SEED,
            transient_rate=0.2,
            outages=[OutageWindow("anl", 0.0, 1e9)],
        )
        vds, target = hep_system(
            fault_plan=plan,
            recovery=RecoveryConfig.hardened(seed=FAULT_SEED),
        )
        vds.executor.max_retries = 10
        result = vds.materialize(target, reuse="never")
        assert result.succeeded

        # Identical final replica state (locations may differ — the
        # downed site obviously holds nothing).
        clean_lfns, clean_sizes = final_state(clean_vds)
        lfns, sizes = final_state(vds)
        assert lfns == clean_lfns
        assert sizes == clean_sizes
        assert not vds.replicas.has(target, "anl")
        assert all(o.site != "anl" for o in result.outcomes.values())
        # Identical provenance: every derivation invoked exactly once
        # in both worlds, faults or not.
        for step in self.HEP_STEPS:
            assert len(clean_vds.catalog.invocations_of(step)) == 1
            assert len(vds.catalog.invocations_of(step)) == 1
        assert vds.lineage(target).depth() >= 4

    def test_recovery_costs_time_not_correctness(self):
        clean_vds, target = hep_system()
        clean = clean_vds.materialize(target, reuse="never")

        plan = FaultPlan(seed=FAULT_SEED, transient_rate=0.3)
        vds, target = hep_system(
            fault_plan=plan,
            recovery=RecoveryConfig.hardened(seed=FAULT_SEED),
        )
        vds.executor.max_retries = 10
        result = vds.materialize(target, reuse="never")
        assert result.succeeded
        assert result.makespan >= clean.makespan
        assert final_state(vds)[0] == final_state(clean_vds)[0]

    def test_faulty_run_is_deterministic(self):
        def run():
            plan = FaultPlan(
                seed=FAULT_SEED,
                transient_rate=0.25,
                outages=[OutageWindow("uc", 0.0, 500.0)],
            )
            vds, target = hep_system(
                fault_plan=plan,
                recovery=RecoveryConfig.hardened(seed=FAULT_SEED),
            )
            vds.executor.max_retries = 10
            result = vds.materialize(target, reuse="never")
            return (
                result.makespan,
                {n: (o.site, o.attempts) for n, o in result.outcomes.items()},
                dict(vds.grid.injector.injected),
            )

        assert run() == run()


class TestSDSSUnderFaults:
    def test_small_campaign_survives_transient_faults(self):
        plan = FaultPlan(seed=FAULT_SEED, transient_rate=0.15)
        vds = VirtualDataSystem.with_grid(
            SDSS_SITES,
            authority="sdss.test",
            fault_plan=plan,
            recovery=RecoveryConfig.hardened(seed=FAULT_SEED),
        )
        campaign = sdss.define_campaign(
            vds.catalog, fields=6, fields_per_stripe=3
        )
        site_names = sorted(SDSS_SITES)
        for i, field in enumerate(campaign.field_datasets):
            vds.seed_dataset(
                field, site_names[i % len(site_names)], sdss.FIELD_BYTES
            )
        vds.executor.max_retries = 10
        result = vds.materialize(tuple(campaign.targets), reuse="never")
        assert result.succeeded
        assert len(result.outcomes) == campaign.derivations
        assert vds.grid.injector.injected.get("transient", 0) > 0
        for target in campaign.targets:
            assert vds.replicas.has(target)

    def test_campaign_with_mid_run_outage(self):
        # One site goes dark mid-campaign; jobs caught in the window
        # fail and fail over, sources on the dark site become
        # unreachable until it returns.
        plan = FaultPlan(
            seed=FAULT_SEED,
            outages=[OutageWindow("uw", 50.0, 2_000.0)],
        )
        vds = VirtualDataSystem.with_grid(
            SDSS_SITES,
            authority="sdss.test",
            fault_plan=plan,
            recovery=RecoveryConfig.hardened(seed=FAULT_SEED),
        )
        campaign = sdss.define_campaign(
            vds.catalog, fields=4, fields_per_stripe=2
        )
        # Keep raw field sources off the doomed site: an outage models
        # downtime, not data loss, but mid-run nothing can stage from
        # it and the campaign would have to out-wait the window.
        safe = [s for s in sorted(SDSS_SITES) if s != "uw"]
        for i, field in enumerate(campaign.field_datasets):
            vds.seed_dataset(field, safe[i % len(safe)], sdss.FIELD_BYTES)
        vds.executor.max_retries = 10
        result = vds.materialize(tuple(campaign.targets), reuse="never")
        assert result.succeeded
        assert len(result.outcomes) == campaign.derivations
