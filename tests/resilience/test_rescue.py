"""Rescue-DAG recovery: rescue files, kill/resume, write-back
validation, and the resume-equivalence property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RescueError
from repro.resilience import (
    RescueFile,
    RescueStep,
    apply_rescue,
    expected_digest,
    plan_signature,
)
from repro.system import VirtualDataSystem
from tests.conftest import DIAMOND_VDL

#: Diamond step -> its outputs; the full materialization of "final".
STEP_OUTPUTS = {
    "g1": ["raw1"],
    "g2": ["raw2"],
    "s1": ["sim1"],
    "s2": ["sim2"],
    "a1": ["final"],
}
ALL_DATASETS = [lfn for outs in STEP_OUTPUTS.values() for lfn in outs]


def build_vds():
    vds = VirtualDataSystem.with_grid({"a": 4, "b": 4}, authority="t.example")
    vds.define(DIAMOND_VDL)
    for name in ("gen", "sim", "ana"):
        tr = vds.catalog.get_transformation(name)
        tr.attributes.set("cost.cpu_seconds", 20.0)
        tr.attributes.set("cost.output_bytes", 10_000_000)
        vds.catalog.add_transformation(tr, replace=True)
    return vds


class TestRescueFile:
    def complete_rescue(self):
        vds = build_vds()
        result = vds.materialize("final", reuse="never")
        return vds, result, vds.executor.rescue_file(result)

    def test_distils_completed_run(self):
        _, result, rescue = self.complete_rescue()
        assert rescue.finished and not rescue.unfinished
        assert set(rescue.completed) == set(STEP_OUTPUTS)
        assert not rescue.failed and not rescue.skipped
        for name, entry in rescue.completed.items():
            assert entry.site == result.outcomes[name].site
            for lfn, meta in entry.outputs.items():
                assert meta["digest"] == expected_digest(lfn, meta["size"])

    def test_round_trips_through_json(self, tmp_path):
        _, _, rescue = self.complete_rescue()
        path = tmp_path / "final.rescue.json"
        rescue.save(path)
        loaded = RescueFile.load(path)
        assert loaded.to_dict() == rescue.to_dict()

    def test_rejects_newer_version(self):
        with pytest.raises(RescueError, match="newer"):
            RescueFile.from_dict(
                {"version": 99, "targets": ["x"], "signature": "s"}
            )

    def test_rejects_malformed(self, tmp_path):
        with pytest.raises(RescueError):
            RescueFile.from_dict({"signature": "s"})  # no targets
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(RescueError):
            RescueFile.load(path)

    def test_saved_form_is_line_oriented(self, tmp_path):
        _, _, rescue = self.complete_rescue()
        path = tmp_path / "final.rescue.json"
        rescue.save(path)
        import json

        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "rescue"
        # One line per step entry: a torn write costs one entry, not
        # the whole file.
        assert len(lines) == 1 + len(rescue.completed)

    def test_torn_tail_salvages_valid_prefix(self, tmp_path):
        _, _, rescue = self.complete_rescue()
        path = tmp_path / "final.rescue.json"
        rescue.save(path)
        raw = path.read_text().splitlines()
        # Simulate a crash mid-append: last entry line half-written.
        path.write_text("\n".join(raw[:-1]) + "\n" + raw[-1][: len(raw[-1]) // 2])
        loaded = RescueFile.load(path)
        assert loaded.truncated
        assert len(loaded.completed) == len(rescue.completed) - 1
        assert set(loaded.completed) < set(rescue.completed)
        # Saving rewrites the salvaged content whole, clearing the tear.
        loaded.save(path)
        assert not RescueFile.load(path).truncated

    def test_mid_file_garbage_still_rejected(self, tmp_path):
        _, _, rescue = self.complete_rescue()
        path = tmp_path / "final.rescue.json"
        rescue.save(path)
        raw = path.read_text().splitlines()
        raw.insert(1, "GARBAGE NOT JSON")
        path.write_text("\n".join(raw) + "\n")
        with pytest.raises(RescueError, match="unparseable"):
            RescueFile.load(path)

    def test_version1_file_still_loads(self, tmp_path):
        import json

        _, _, rescue = self.complete_rescue()
        legacy = rescue.to_dict()
        legacy["version"] = 1
        path = tmp_path / "v1.rescue.json"
        path.write_text(json.dumps(legacy, indent=2) + "\n")
        loaded = RescueFile.load(path)
        assert loaded.version == 1
        assert set(loaded.completed) == set(rescue.completed)

    def test_signature_mismatch_refused(self):
        vds, _, rescue = self.complete_rescue()
        # A differently shaped plan (subset target) must be refused:
        # resuming against it would skip the wrong work.
        other = vds.plan("sim1", reuse="never")
        assert plan_signature(other) != rescue.signature
        with pytest.raises(RescueError, match="does not match"):
            apply_rescue(other, rescue, vds.grid, catalog=vds.catalog)


class TestKillAndResume:
    def test_until_interrupts_without_raising(self):
        vds = build_vds()
        result = vds.materialize("final", reuse="never", until=25.0)
        assert result.interrupted and not result.succeeded
        assert not result.failed_steps
        # The kill leaves no abandoned events to replay into a resume.
        assert vds.simulator.pending() == 0

    def test_resume_runs_only_unfinished_steps(self):
        vds = build_vds()
        partial = vds.materialize("final", reuse="never", until=25.0)
        finished_early = set(partial.outcomes)
        assert finished_early  # the 20s generators beat t=25
        assert finished_early < set(STEP_OUTPUTS)
        rescue = vds.executor.rescue_file(partial)

        resumed = vds.materialize("final", reuse="never", rescue=rescue)
        assert resumed.succeeded
        assert resumed.pre_completed == finished_early
        assert set(resumed.outcomes) == set(STEP_OUTPUTS) - finished_early
        assert vds.replicas.has("final")
        # Nothing ran twice: one invocation per derivation across both
        # runs is the definition of a correct resume.
        for step in STEP_OUTPUTS:
            assert len(vds.catalog.invocations_of(step)) == 1

    def test_resume_in_fresh_world_restores_replicas(self):
        first = build_vds()
        result = first.materialize("final", reuse="never")
        rescue = first.executor.rescue_file(result)

        second = build_vds()  # no memory of the first process
        assert not second.replicas.has("final")
        resumed = second.materialize("final", reuse="never", rescue=rescue)
        assert resumed.succeeded
        assert resumed.pre_completed == set(STEP_OUTPUTS)
        assert not resumed.outcomes  # nothing re-executed
        restore = second.executor.last_restore
        assert restore is not None
        assert {lfn for lfn, _ in restore.restored} == set(ALL_DATASETS)
        for lfn in ALL_DATASETS:
            assert second.replicas.has(lfn)

    def test_chained_rescues_keep_finished_work(self):
        vds = build_vds()
        partial = vds.materialize("final", reuse="never", until=25.0)
        rescue1 = vds.executor.rescue_file(partial)
        kill_at = vds.simulator.now + 25.0
        partial2 = vds.materialize(
            "final", reuse="never", rescue=rescue1, until=kill_at
        )
        rescue2 = vds.executor.rescue_file(partial2, base=rescue1)
        # Steps finished in the first leg survive into the second
        # rescue even though no job ran for them in the second leg.
        assert set(rescue1.completed) <= set(rescue2.completed)
        final = vds.materialize("final", reuse="never", rescue=rescue2)
        assert final.succeeded
        for step in STEP_OUTPUTS:
            assert len(vds.catalog.invocations_of(step)) == 1


class TestWriteBackValidation:
    def test_corrupt_replica_quarantined_and_step_rerun(self):
        vds = build_vds()
        result = vds.materialize("final", reuse="never")
        rescue = vds.executor.rescue_file(result)
        site_name = result.outcomes["s1"].site
        site = vds.grid.sites[site_name]
        size = vds.replicas.size_of("sim1")
        # Bit-rot on disk: the stored digest no longer matches the
        # declared content.
        site.storage.store(
            "sim1", size, vds.simulator.now, digest="corrupt:feedbeef"
        )

        resumed = vds.materialize("final", reuse="never", rescue=rescue)
        restore = vds.executor.last_restore
        assert ("sim1", site_name) in restore.quarantined
        assert "s1" in restore.invalidated_steps
        # The provenance blast radius includes the corrupt dataset and
        # everything derived from it.
        assert {"sim1", "final"} <= restore.tainted_datasets
        # Only the producing step re-executed; its second invocation is
        # now on record.
        assert set(resumed.outcomes) == {"s1"}
        assert resumed.succeeded
        assert len(vds.catalog.invocations_of("s1")) == 2
        assert vds.replicas.has("sim1")

    def test_size_mismatch_also_quarantined(self):
        vds = build_vds()
        result = vds.materialize("final", reuse="never")
        rescue = vds.executor.rescue_file(result)
        site_name = result.outcomes["g1"].site
        storage = vds.grid.sites[site_name].storage
        storage.delete("raw1")
        storage.store("raw1", 1, vds.simulator.now)  # truncated file
        vds.materialize("final", reuse="never", rescue=rescue)
        restore = vds.executor.last_restore
        assert ("raw1", site_name) in restore.quarantined
        assert "g1" in restore.invalidated_steps


def _uninterrupted_baseline():
    vds = build_vds()
    result = vds.materialize("final", reuse="never")
    assert result.succeeded
    return (
        set(vds.replicas.lfns()),
        {lfn: vds.replicas.size_of(lfn) for lfn in vds.replicas.lfns()},
    )


class TestResumeEquivalence:
    """The property the whole rescue mechanism exists to guarantee:
    kill-anywhere + resume converges to the same final state as an
    uninterrupted run, with every step executed exactly once."""

    BASELINE = None

    @classmethod
    def baseline(cls):
        if cls.BASELINE is None:
            cls.BASELINE = _uninterrupted_baseline()
        return cls.BASELINE

    @settings(max_examples=25, deadline=None)
    @given(kill_at=st.integers(min_value=0, max_value=80))
    def test_resume_matches_uninterrupted_run(self, kill_at):
        lfns, sizes = self.baseline()
        vds = build_vds()
        result = vds.materialize("final", reuse="never", until=float(kill_at))
        if result.interrupted:
            rescue = vds.executor.rescue_file(result)
            result = vds.materialize("final", reuse="never", rescue=rescue)
        assert result.succeeded
        assert set(vds.replicas.lfns()) == lfns
        for lfn in lfns:
            assert vds.replicas.size_of(lfn) == sizes[lfn]
        for step in STEP_OUTPUTS:
            invocations = vds.catalog.invocations_of(step)
            assert len(invocations) == 1, (
                f"{step} ran {len(invocations)} times after a kill at "
                f"t={kill_at}"
            )
