"""Tests for the deterministic fault injector (FaultPlan/FaultInjector)."""

import pytest

from repro.errors import FaultPlanError
from repro.resilience import (
    FAULT_KINDS,
    Degradation,
    FaultInjector,
    FaultPlan,
    OutageWindow,
)
from tests.resilience.conftest import FAULT_SEED


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        for name in (
            "transient_rate",
            "permanent_rate",
            "transfer_fault_rate",
            "corruption_rate",
        ):
            with pytest.raises(FaultPlanError):
                FaultPlan(**{name: 1.0})
            with pytest.raises(FaultPlanError):
                FaultPlan(**{name: -0.1})

    def test_site_rates_validated(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(site_transient_rates={"a": 1.5})

    def test_empty_outage_window_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(outages=[OutageWindow("a", 10.0, 10.0)])

    def test_speedup_degradation_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(degradations=[Degradation("a", 0.0, 5.0, slowdown=0.5)])

    def test_is_null(self):
        assert FaultPlan().is_null
        assert FaultPlan(seed=7).is_null  # a seed alone injects nothing
        assert not FaultPlan(transient_rate=0.1).is_null
        assert not FaultPlan(outages=[OutageWindow("a", 0, 1)]).is_null
        assert not FaultPlan(site_transient_rates={"a": 0.2}).is_null


class TestFaultPlanSerialization:
    def make_plan(self):
        return FaultPlan(
            seed=FAULT_SEED,
            transient_rate=0.2,
            permanent_rate=0.01,
            transfer_fault_rate=0.05,
            corruption_rate=0.02,
            outages=[OutageWindow("anl", 100.0, 500.0)],
            degradations=[Degradation("uc", 0.0, 50.0, slowdown=4.0)],
            site_transient_rates={"uw": 0.4},
        )

    def test_round_trip(self):
        plan = self.make_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_save_load(self, tmp_path):
        plan = self.make_plan()
        path = tmp_path / "faults.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.load(path)
        with pytest.raises(FaultPlanError):
            FaultPlan.load(tmp_path / "missing.json")

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"outages": [{"start": 0, "end": 1}]})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"transient_rate": "lots"})


class TestDeterminism:
    def test_same_plan_same_verdicts(self):
        plan = FaultPlan(seed=FAULT_SEED, transient_rate=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        jobs = [(f"job{i}", site) for i in range(40) for site in ("x", "y")]
        verdict_a = [a.job_fault(j, s) for j, s in jobs for _ in range(3)]
        verdict_b = [b.job_fault(j, s) for j, s in jobs for _ in range(3)]
        assert verdict_a == verdict_b
        assert "transient" in verdict_a  # rate 0.5 over 240 draws

    def test_different_seeds_diverge(self):
        jobs = [(f"job{i}", "x") for i in range(64)]
        verdicts = []
        for seed in (FAULT_SEED, FAULT_SEED + 1):
            inj = FaultInjector(FaultPlan(seed=seed, transient_rate=0.5))
            verdicts.append([inj.job_fault(j, s) for j, s in jobs])
        assert verdicts[0] != verdicts[1]

    def test_attempts_draw_independently(self):
        # The ordinal advances per (kind, key) ask: a retry is a fresh
        # draw, so a transient fault does not doom every retry.
        inj = FaultInjector(FaultPlan(seed=FAULT_SEED, transient_rate=0.5))
        outcomes = {
            tuple(inj.job_fault(f"j{i}", "x") for _ in range(8))
            for i in range(20)
        }
        assert any(
            "transient" in seq and None in seq for seq in outcomes
        )

    def test_permanent_verdict_is_stable(self):
        inj = FaultInjector(FaultPlan(seed=FAULT_SEED, permanent_rate=0.5))
        condemned = [
            f"j{i}"
            for i in range(20)
            if inj.job_fault(f"j{i}", "x") == "permanent"
        ]
        assert condemned  # rate 0.5 over 20 pairs
        for job in condemned:
            for _ in range(5):
                assert inj.job_fault(job, "x") == "permanent"


class TestOutages:
    def test_window_semantics(self):
        window = OutageWindow("a", 10.0, 20.0)
        assert window.covers(10.0)
        assert window.covers(19.999)
        assert not window.covers(20.0)
        assert window.overlaps(15.0, 30.0)
        assert window.overlaps(0.0, 10.1)
        assert not window.overlaps(20.0, 30.0)
        assert not window.overlaps(0.0, 10.0)

    def test_site_down_and_next_end(self):
        inj = FaultInjector(
            FaultPlan(outages=[OutageWindow("a", 10.0, 20.0)])
        )
        assert inj.site_down("a", 5.0) is None
        assert inj.site_down("b", 15.0) is None
        reason = inj.site_down("a", 15.0)
        assert reason is not None and "down" in reason
        assert inj.next_outage_end("a", 15.0) == 20.0
        assert inj.next_outage_end("a", 25.0) is None
        assert inj.injected["outage"] == 1

    def test_run_fault_outage_beats_transient(self):
        inj = FaultInjector(
            FaultPlan(
                seed=FAULT_SEED,
                transient_rate=0.5,
                outages=[OutageWindow("a", 0.0, 100.0)],
            )
        )
        kind, reason = inj.run_fault("j", "a", 50.0, 60.0)
        assert kind == "outage"
        assert "went down" in reason

    def test_run_fault_healthy(self):
        inj = FaultInjector(FaultPlan(seed=FAULT_SEED))
        assert inj.run_fault("j", "a", 0.0, 10.0) is None
        assert inj.injected == {}


class TestDegradationAndTransfers:
    def test_slowdown_inside_window_only(self):
        inj = FaultInjector(
            FaultPlan(
                degradations=[
                    Degradation("a", 0.0, 10.0, slowdown=3.0),
                    Degradation("a", 5.0, 15.0, slowdown=5.0),
                ]
            )
        )
        assert inj.slowdown("a", 20.0) == 1.0
        assert inj.slowdown("b", 5.0) == 1.0
        assert inj.slowdown("a", 2.0) == 3.0
        assert inj.slowdown("a", 7.0) == 5.0  # max of overlapping windows
        assert inj.injected["straggler"] == 2

    def test_transfer_fault_local_copies_exempt(self):
        inj = FaultInjector(
            FaultPlan(seed=FAULT_SEED, transfer_fault_rate=0.99)
        )
        assert inj.transfer_fault("f", "a", "a", 0.0) is None

    def test_transfer_fault_outage_endpoint(self):
        inj = FaultInjector(FaultPlan(outages=[OutageWindow("b", 0, 50)]))
        reason = inj.transfer_fault("f", "a", "b", 10.0)
        assert reason is not None and "down" in reason

    def test_transfer_fault_seeded_rate(self):
        plan = FaultPlan(seed=FAULT_SEED, transfer_fault_rate=0.5)
        a, b = FaultInjector(plan), FaultInjector(plan)
        pairs = [(f"f{i}", "a", "b") for i in range(40)]
        va = [a.transfer_fault(f, s, d, 0.0) for f, s, d in pairs]
        vb = [b.transfer_fault(f, s, d, 0.0) for f, s, d in pairs]
        assert va == vb
        assert any(v is not None for v in va)
        assert any(v is None for v in va)

    def test_corrupt_output_seeded(self):
        inj = FaultInjector(FaultPlan(seed=FAULT_SEED, corruption_rate=0.5))
        verdicts = [inj.corrupt_output(f"j{i}", f"out{i}") for i in range(40)]
        assert any(verdicts) and not all(verdicts)
        assert inj.injected["corrupt"] == sum(verdicts)

    def test_fault_kind_vocabulary(self):
        assert set(FAULT_KINDS) == {
            "transient",
            "permanent",
            "outage",
            "transfer",
            "corrupt",
            "timeout",
        }
