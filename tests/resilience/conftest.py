"""Shared helpers for the resilience suite.

``FAULT_SEED`` parameterizes every seeded fault plan here; the CI
fault-matrix job reruns the suite under several values (see
``.github/workflows/ci.yml``), so tests must pass for *any* seed —
assert on invariants (determinism, recovery, state equivalence), not
on which particular draws fault.
"""

from __future__ import annotations

import os
from types import SimpleNamespace
from typing import Callable, Optional

from repro.catalog.memory import MemoryCatalog
from repro.grid.gram import GridExecutionService
from repro.grid.network import uniform_topology
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import Site
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest
from repro.planner.strategies import SiteSelector
from repro.resilience import FaultInjector, FaultPlan

#: The CI fault matrix exports FAULT_SEED=0/1/2; locally it is 0.
FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

#: One generator step — the smallest possible plan.
SINGLE_VDL = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "/bin/gen";
}
DV g1->gen( o=@{output:"a0"}, seed="42" );
"""

#: Two independent two-step chains (targets a1 and b1) — the shape
#: that distinguishes fail-fast from run-what-you-can.
TWO_BRANCH_VDL = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "/bin/gen";
}
TR proc( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/proc";
}
DV ga->gen( o=@{output:"a0"}, seed="1" );
DV pa->proc( o=@{output:"a1"}, i=@{input:"a0"} );
DV gb->gen( o=@{output:"b0"}, seed="2" );
DV pb->proc( o=@{output:"b1"}, i=@{input:"b0"} );
"""


class StepKiller(FaultInjector):
    """A test injector that deterministically fails named steps at
    every site, bypassing the seeded draws entirely."""

    def __init__(self, *steps: str, kind: str = "permanent"):
        super().__init__(FaultPlan())
        self.doomed = set(steps)
        self.kind = kind

    def run_fault(self, job, site, start, end):
        if job in self.doomed:
            self._record(self.kind)
            return (self.kind, f"injected {self.kind} fault for test")
        return None


def make_world(
    vdl: str,
    targets: tuple[str, ...],
    sites: tuple[str, ...] = ("a", "b"),
    hosts: int = 4,
    injector: Optional[FaultInjector] = None,
    cpu: Optional[Callable] = None,
    pattern: str = "ship-data",
) -> SimpleNamespace:
    """A small grid world with a plan ready to run, mirroring the
    planner test harness but with fault injection attached."""
    catalog = MemoryCatalog().define(vdl)
    sim = Simulator()
    net = uniform_topology(list(sites))
    site_objects = {name: Site(name, hosts=hosts) for name in sites}
    rls = ReplicaLocationService(net)
    grid = GridExecutionService(
        sim, site_objects, net, rls, injector=injector
    )
    selector = SiteSelector(site_objects, net, rls)
    planner = Planner(
        catalog, has_replica=rls.has, cpu_estimate=cpu or (lambda dv: 10.0)
    )
    plan = planner.plan(
        MaterializationRequest(
            targets=targets, reuse="never", pattern=pattern
        )
    )
    return SimpleNamespace(
        catalog=catalog,
        sim=sim,
        net=net,
        sites=site_objects,
        rls=rls,
        grid=grid,
        selector=selector,
        plan=plan,
        pattern=pattern,
    )
