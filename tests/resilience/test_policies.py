"""Tests for retry policies, circuit breakers and RecoveryConfig."""

import pytest

from repro.errors import PlanningError
from repro.resilience import (
    CLOSED,
    FAIL_FAST,
    HALF_OPEN,
    OPEN,
    RUN_WHAT_YOU_CAN,
    STATE_CODES,
    BreakerBoard,
    CircuitBreaker,
    ExponentialBackoff,
    ImmediateRetry,
    RecoveryConfig,
)


class TestRetryPolicies:
    def test_immediate_is_zero(self):
        policy = ImmediateRetry()
        assert policy.delay(1) == 0.0
        assert policy.delay(99, key="x") == 0.0
        assert policy.describe() == "immediate"

    def test_backoff_doubles_without_jitter(self):
        policy = ExponentialBackoff(base=2.0, factor=2.0, jitter=0.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [
            2.0,
            4.0,
            8.0,
            16.0,
        ]

    def test_backoff_caps_at_max_delay(self):
        policy = ExponentialBackoff(
            base=1.0, factor=10.0, max_delay=50.0, jitter=0.0
        )
        assert policy.delay(10) == 50.0

    def test_jitter_bounded_and_deterministic(self):
        a = ExponentialBackoff(base=4.0, jitter=0.25, seed=3)
        b = ExponentialBackoff(base=4.0, jitter=0.25, seed=3)
        for attempt in range(1, 6):
            raw = min(4.0 * 2.0 ** (attempt - 1), 300.0)
            delay = a.delay(attempt, key="step")
            assert raw <= delay < raw * 1.25
            assert delay == b.delay(attempt, key="step")

    def test_jitter_decorrelates_steps(self):
        policy = ExponentialBackoff(base=4.0, jitter=0.5, seed=0)
        assert policy.delay(1, key="s1") != policy.delay(1, key="s2")

    def test_invalid_parameters(self):
        for kwargs in (
            {"base": -1.0},
            {"factor": 0.5},
            {"max_delay": -1.0},
            {"jitter": -0.1},
        ):
            with pytest.raises(PlanningError):
                ExponentialBackoff(**kwargs)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker("a", failure_threshold=3, cooldown=60.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED
        breaker.record_failure(3.0)
        assert breaker.state == OPEN
        assert not breaker.allows(10.0)
        assert breaker.retry_at(10.0) == 63.0

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker("a", failure_threshold=2)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == CLOSED

    def test_half_open_admits_single_probe(self):
        breaker = CircuitBreaker("a", failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.state == OPEN
        assert breaker.allows(10.0)  # cooldown elapsed -> half-open
        assert breaker.state == HALF_OPEN
        breaker.admit(10.0)
        assert not breaker.allows(10.5)  # probe in flight

    def test_probe_success_closes(self):
        breaker = CircuitBreaker("a", failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.allows(10.0)
        breaker.admit(10.0)
        breaker.record_success(15.0)
        assert breaker.state == CLOSED
        assert breaker.allows(15.0)
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker("a", failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.allows(10.0)
        breaker.admit(10.0)
        breaker.record_failure(12.0)
        assert breaker.state == OPEN
        assert breaker.retry_at(12.0) == 22.0  # fresh cooldown

    def test_transition_log_and_codes(self):
        breaker = CircuitBreaker("a", failure_threshold=1, cooldown=10.0)
        assert breaker.state_code == STATE_CODES[CLOSED] == 0
        breaker.record_failure(0.0)
        assert breaker.state_code == 2
        breaker.allows(10.0)
        assert breaker.state_code == 1
        breaker.record_success(11.0)
        assert [(old, new) for _, old, new in breaker.transitions] == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_invalid_parameters(self):
        with pytest.raises(PlanningError):
            CircuitBreaker("a", failure_threshold=0)
        with pytest.raises(PlanningError):
            CircuitBreaker("a", cooldown=0.0)


class TestBreakerBoard:
    def test_breakers_are_cached_per_site(self):
        board = BreakerBoard(failure_threshold=2, cooldown=30.0)
        assert board.breaker("a") is board.breaker("a")
        assert board.breaker("a").failure_threshold == 2

    def test_available_filters_open_sites(self):
        board = BreakerBoard(failure_threshold=1, cooldown=30.0)
        board.breaker("a").record_failure(0.0)
        assert board.available(["a", "b"], 1.0) == ["b"]
        # After the cooldown the tripped site is probe-eligible again.
        assert board.available(["a", "b"], 31.0) == ["a", "b"]

    def test_earliest_retry(self):
        board = BreakerBoard(failure_threshold=1, cooldown=30.0)
        board.breaker("a").record_failure(0.0)
        board.breaker("b").record_failure(5.0)
        assert board.earliest_retry(["a", "b"], 6.0) == 30.0
        assert board.earliest_retry(["b"], 6.0) == 35.0

    def test_states_snapshot(self):
        board = BreakerBoard(failure_threshold=1)
        board.breaker("b").record_failure(0.0)
        board.breaker("a")
        assert board.states() == {"a": CLOSED, "b": OPEN}
        assert len(list(board)) == 2


class TestRecoveryConfig:
    def test_defaults_are_fail_fast_immediate(self):
        config = RecoveryConfig()
        assert isinstance(config.retry_policy, ImmediateRetry)
        assert config.breakers is None
        assert config.failure_policy == FAIL_FAST
        assert config.step_timeout is None

    def test_rejects_unknown_failure_policy(self):
        with pytest.raises(PlanningError):
            RecoveryConfig(failure_policy="give-up-eventually")

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(PlanningError):
            RecoveryConfig(step_timeout=0.0)

    def test_hardened_posture(self):
        config = RecoveryConfig.hardened(
            seed=7, step_timeout=600.0, breaker_threshold=5
        )
        assert isinstance(config.retry_policy, ExponentialBackoff)
        assert config.retry_policy.seed == 7
        assert config.breakers is not None
        assert config.breakers.failure_threshold == 5
        assert config.failure_policy == RUN_WHAT_YOU_CAN
        assert config.step_timeout == 600.0
        assert config.failover
