"""Tests for the DAGMan-style workflow scheduler (§5.4)."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.errors import ExecutionError
from repro.grid.gram import GridExecutionService
from repro.grid.network import uniform_topology
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import Site
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest
from repro.planner.scheduler import WorkflowScheduler
from repro.planner.strategies import SiteSelector
from tests.conftest import DIAMOND_VDL


def make_world(hosts=4, failure_rate=0.0, seed=3):
    catalog = MemoryCatalog().define(DIAMOND_VDL)
    sim = Simulator()
    net = uniform_topology(["a", "b"])
    sites = {"a": Site("a", hosts=hosts), "b": Site("b", hosts=hosts)}
    rls = ReplicaLocationService(net)
    grid = GridExecutionService(
        sim, sites, net, rls, failure_rate=failure_rate, seed=seed
    )
    selector = SiteSelector(sites, net, rls)
    planner = Planner(catalog, has_replica=rls.has, cpu_estimate=lambda dv: 10.0)
    plan = planner.plan(
        MaterializationRequest(targets=("final",), reuse="never")
    )
    return catalog, sim, grid, selector, plan, rls


class TestExecution:
    def test_runs_whole_dag(self):
        _, _, grid, selector, plan, rls = make_world()
        result = WorkflowScheduler(grid, selector).run(plan)
        assert result.succeeded
        assert set(result.outcomes) == set(plan.steps)
        assert rls.has("final")

    def test_dependency_order_respected(self):
        _, _, grid, selector, plan, _ = make_world()
        result = WorkflowScheduler(grid, selector).run(plan)
        starts = {n: o.record.start_time for n, o in result.outcomes.items()}
        ends = {n: o.record.end_time for n, o in result.outcomes.items()}
        assert starts["s1"] >= ends["g1"]
        assert starts["a1"] >= max(ends["s1"], ends["s2"])

    def test_parallel_branches_overlap(self):
        _, _, grid, selector, plan, _ = make_world()
        result = WorkflowScheduler(grid, selector).run(plan)
        # g1 and g2 have no mutual dependency: same start time.
        assert (
            result.outcomes["g1"].record.start_time
            == result.outcomes["g2"].record.start_time
        )
        # 3 levels of 10s work
        assert result.makespan == pytest.approx(30.0)

    def test_makespan_with_width_one(self):
        _, _, grid, selector, plan, _ = make_world()
        scheduler = WorkflowScheduler(grid, selector, max_hosts=1)
        result = scheduler.run(plan)
        # Serialized on one host per site... width cap applies per site;
        # with the default ship-data both sites are usable, so at least
        # the chain length bound holds.
        assert result.makespan >= 30.0

    def test_total_metrics(self):
        _, _, grid, selector, plan, _ = make_world()
        result = WorkflowScheduler(grid, selector).run(plan)
        assert result.total_cpu_seconds() == pytest.approx(50.0)
        assert result.total_queue_seconds() >= 0.0
        assert result.sites_used() <= {"a", "b"}
        assert 1 <= len(result.hosts_used()) <= 8

    def test_missing_source_detected_before_dispatch(self):
        catalog, sim, grid, selector, _, rls = make_world()
        planner = Planner(catalog, has_replica=lambda lfn: lfn == "ghost")
        catalog.define(
            """
            TR use( output o, input i ) {
              argument stdin = ${input:i};
              argument stdout = ${output:o};
              exec = "/bin/use";
            }
            DV u1->use( o=@{output:"derived"}, i=@{input:"ghost"} );
            """
        )
        plan = planner.plan(
            MaterializationRequest(targets=("derived",), reuse="never")
        )
        assert plan.sources == {"ghost"}
        with pytest.raises(ExecutionError):
            WorkflowScheduler(grid, selector).run(plan)

    def test_step_listener_called(self):
        _, _, grid, selector, plan, _ = make_world()
        seen = []
        scheduler = WorkflowScheduler(
            grid,
            selector,
            step_listener=lambda step, choice, record: seen.append(step.name),
        )
        scheduler.run(plan)
        assert sorted(seen) == sorted(plan.steps)


class TestRetries:
    def test_retries_recover_failures(self):
        _, _, grid, selector, plan, _ = make_world(failure_rate=0.4, seed=0)
        result = WorkflowScheduler(grid, selector, max_retries=10).run(plan)
        assert result.succeeded
        attempts = [o.attempts for o in result.outcomes.values()]
        assert max(attempts) > 1  # at least one retry happened

    def test_exhausted_retries_fail_workflow(self):
        _, _, grid, selector, plan, _ = make_world(failure_rate=0.95, seed=1)
        result = WorkflowScheduler(grid, selector, max_retries=1).run(plan)
        assert not result.succeeded
        assert result.failed_steps

    def test_negative_retries_rejected(self):
        _, _, grid, selector, _, _ = make_world()
        with pytest.raises(Exception):
            WorkflowScheduler(grid, selector, max_retries=-1)
