"""Tests for the four shipping patterns and site selection (§5.2)."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.errors import PlanningError
from repro.grid.network import uniform_topology
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.site import Site
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest
from repro.planner.strategies import ProcedureRegistry, SiteSelector

VDL = """
TR crunch( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/crunch";
}
DV c1->crunch( o=@{output:"out.dat"}, i=@{input:"in.dat"} );
"""


@pytest.fixture
def world():
    catalog = MemoryCatalog().define(VDL)
    net = uniform_topology(["data-site", "cpu-site", "third"], bandwidth=10e6)
    sites = {
        "data-site": Site("data-site", hosts=1),
        "cpu-site": Site("cpu-site", hosts=8),
        "third": Site("third", hosts=4),
    }
    rls = ReplicaLocationService(net)
    # The input lives at data-site only.
    sites["data-site"].storage.store("in.dat", 50_000_000)
    rls.register("in.dat", "data-site", 50_000_000)
    procedures = ProcedureRegistry()
    selector = SiteSelector(sites, net, rls, procedures)
    planner = Planner(catalog, has_replica=rls.has)
    plan = planner.plan(
        MaterializationRequest(targets=("out.dat",), reuse="never")
    )
    step = plan.steps["c1"]
    return sites, rls, procedures, selector, step


class TestCostPieces:
    def test_data_pull_zero_at_holder(self, world):
        _, _, _, selector, step = world
        assert selector.data_pull_seconds(step, "data-site") == 0.0
        assert selector.data_pull_seconds(step, "cpu-site") > 0.0

    def test_procedure_pull(self, world):
        _, _, procedures, selector, step = world
        # Unregistered procedures are free everywhere.
        assert selector.procedure_pull_seconds(step, "cpu-site") == 0.0
        procedures.install("crunch", "data-site")
        procedures.set_size("crunch", 10_000_000)
        assert selector.procedure_pull_seconds(step, "data-site") == 0.0
        assert selector.procedure_pull_seconds(step, "cpu-site") == pytest.approx(1.05)

    def test_queue_estimate(self, world):
        sites, _, _, selector, step = world
        assert selector.queue_estimate_seconds("cpu-site", 0.0) == 0.0
        sites["cpu-site"].compute.allocate(0.0, 100.0)
        # Still 0: other hosts are free.
        assert selector.queue_estimate_seconds("cpu-site", 0.0) == 0.0
        for _ in range(7):
            sites["cpu-site"].compute.allocate(0.0, 100.0)
        assert selector.queue_estimate_seconds("cpu-site", 0.0) == 100.0

    def test_input_bytes_at(self, world):
        _, _, _, selector, step = world
        assert selector.input_bytes_at(step, "data-site") == 50_000_000
        assert selector.input_bytes_at(step, "cpu-site") == 0


class TestPatterns:
    def test_ship_procedure_goes_to_data(self, world):
        _, _, _, selector, step = world
        choice = selector.choose(step, "ship-procedure")
        assert choice.site == "data-site"
        assert choice.transfer_seconds == 0.0  # procedure unregistered

    def test_ship_data_goes_to_procedure_home(self, world):
        _, _, procedures, selector, step = world
        procedures.install("crunch", "cpu-site")
        choice = selector.choose(step, "ship-data")
        assert choice.site == "cpu-site"
        assert choice.transfer_seconds > 0  # data must move

    def test_collocate_requires_both(self, world):
        _, _, procedures, selector, step = world
        procedures.install("crunch", "data-site")
        choice = selector.choose(step, "collocate")
        assert choice.site == "data-site"
        assert choice.transfer_seconds == 0.0
        assert choice.pattern == "collocate"

    def test_collocate_falls_back_when_impossible(self, world):
        _, _, procedures, selector, step = world
        procedures.install("crunch", "cpu-site")  # data elsewhere
        choice = selector.choose(step, "collocate")
        assert choice.pattern == "ship-data"

    def test_ship_both_minimizes_total(self, world):
        sites, _, procedures, selector, step = world
        procedures.install("crunch", "data-site")
        procedures.set_size("crunch", 1_000)  # procedure is tiny
        # data-site's one host is busy for a long time.
        sites["data-site"].compute.allocate(0.0, 10_000.0)
        choice = selector.choose(step, "ship-both")
        assert choice.site in ("cpu-site", "third")
        assert choice.ship_procedure

    def test_unknown_pattern_rejected(self, world):
        _, _, _, selector, step = world
        with pytest.raises(PlanningError):
            selector.choose(step, "teleport")

    def test_candidates_restriction(self, world):
        _, _, _, selector, step = world
        choice = selector.choose(
            step, "ship-both", candidates=["third"]
        )
        assert choice.site == "third"


class TestHealthPenalties:
    """Soft health penalties fold into every pattern's scoring."""

    def test_default_is_penalty_free(self, world):
        _, _, _, selector, step = world
        assert selector.penalties == {}
        assert selector.penalty_seconds("data-site") == 0.0

    def test_ship_data_steers_between_procedure_homes(self, world):
        _, _, procedures, selector, step = world
        # Two homes with equal pull cost: alphabetical tie-break
        # picks cpu-site until a penalty makes third cheaper.
        procedures.install("crunch", "cpu-site")
        procedures.install("crunch", "third")
        assert selector.choose(step, "ship-data").site == "cpu-site"
        selector.set_penalties({"cpu-site": 10_000.0})
        assert selector.choose(step, "ship-data").site == "third"

    def test_ship_both_charges_the_penalty(self, world):
        _, _, procedures, selector, step = world
        procedures.install("crunch", "data-site")
        procedures.set_size("crunch", 1_000)
        baseline = selector.choose(step, "ship-both")
        selector.set_penalties({baseline.site: 10_000.0})
        assert selector.choose(step, "ship-both").site != baseline.site

    def test_ship_procedure_tiebreak(self, world):
        _, _, _, selector, step = world
        # Only data-site holds the input, so even a penalized
        # data-site still wins ship-procedure (sole candidate with
        # the data): the penalty softens, it never excludes.
        selector.set_penalties({"data-site": 10_000.0})
        assert selector.choose(step, "ship-procedure").site == "data-site"

    def test_set_penalty_incremental(self, world):
        _, _, _, selector, step = world
        selector.set_penalty("third", 30.0)
        selector.set_penalty("cpu-site", 60.0)
        assert selector.penalty_seconds("third") == 30.0
        assert selector.penalty_seconds("cpu-site") == 60.0
        # set_penalties replaces the whole table.
        selector.set_penalties({"third": 1.0})
        assert selector.penalty_seconds("cpu-site") == 0.0

    def test_negative_penalties_rejected(self, world):
        _, _, _, selector, step = world
        with pytest.raises(PlanningError):
            selector.set_penalty("third", -1.0)
        with pytest.raises(PlanningError):
            selector.set_penalties({"third": -0.5})


class TestProcedureRegistry:
    def test_install_and_query(self):
        reg = ProcedureRegistry()
        reg.install("t", "a")
        reg.install("t", "b")
        assert reg.installed_at("t") == {"a", "b"}
        assert reg.is_installed("t", "a")
        assert not reg.is_installed("t", "c")

    def test_default_size(self):
        reg = ProcedureRegistry()
        assert reg.size_of("anything") > 0
        reg.set_size("t", 123)
        assert reg.size_of("t") == 123

    def test_selector_requires_sites(self):
        from repro.grid.network import uniform_topology

        net = uniform_topology(["a"])
        with pytest.raises(PlanningError):
            SiteSelector({}, net, ReplicaLocationService(net))
