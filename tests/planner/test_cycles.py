"""Plan.depth / Plan.topological_order must fail loudly (typed
CycleError), never hang or blow the recursion limit."""

import pytest

from repro.core.derivation import Derivation
from repro.core.naming import VDPRef
from repro.core.transformation import SimpleTransformation
from repro.errors import CycleError, CyclicDerivationError, PlanningError
from repro.planner.dag import Plan, PlanStep


def _step(name: str) -> PlanStep:
    tr = SimpleTransformation(
        name="noop", formals=[], executable="/bin/true"
    )
    dv = Derivation(
        name=name,
        transformation=VDPRef("noop", kind="transformation"),
        actuals={},
    )
    return PlanStep(name=name, derivation=dv, transformation=tr)


def _plan(dependencies: dict[str, set[str]]) -> Plan:
    return Plan(
        targets=("t",),
        steps={name: _step(name) for name in dependencies},
        dependencies=dependencies,
    )


class TestErrorHierarchy:
    def test_cycle_error_is_planning_error(self):
        assert issubclass(CycleError, PlanningError)

    def test_cyclic_derivation_error_is_cycle_error(self):
        assert issubclass(CyclicDerivationError, CycleError)


class TestTopologicalOrder:
    def test_two_cycle_raises_naming_stuck_steps(self):
        plan = _plan({"a": {"b"}, "b": {"a"}})
        with pytest.raises(CyclicDerivationError, match="'a'.*'b'"):
            plan.topological_order()

    def test_cycle_catchable_as_cycle_error(self):
        plan = _plan({"a": {"a"}})
        with pytest.raises(CycleError):
            plan.topological_order()

    def test_acyclic_untouched(self):
        plan = _plan({"a": set(), "b": {"a"}, "c": {"a", "b"}})
        assert plan.topological_order() == ["a", "b", "c"]


class TestDepth:
    def test_self_loop_raises(self):
        plan = _plan({"a": {"a"}})
        with pytest.raises(CycleError, match="cycle through step"):
            plan.depth()

    def test_long_cycle_raises(self):
        plan = _plan({"a": {"c"}, "b": {"a"}, "c": {"b"}})
        with pytest.raises(CycleError):
            plan.depth()

    def test_cycle_behind_prefix_raises(self):
        # The cycle is only reachable past an acyclic prefix.
        plan = _plan({"pre": set(), "a": {"pre", "b"}, "b": {"a"}})
        with pytest.raises(CycleError):
            plan.depth()

    def test_diamond_depth(self):
        plan = _plan(
            {"a": set(), "b": {"a"}, "c": {"a"}, "d": {"b", "c"}}
        )
        assert plan.depth() == 3

    def test_deep_chain_does_not_recurse(self):
        # Far past the default recursion limit; must stay iterative.
        n = 5000
        deps = {"s0": set()}
        deps.update({f"s{i}": {f"s{i - 1}"} for i in range(1, n)})
        assert _plan(deps).depth() == n

    def test_ignores_dependencies_outside_plan(self):
        # Reused/pruned steps can linger in dependency sets.
        plan = _plan({"a": {"ghost"}, "b": {"a"}})
        assert plan.depth() == 2
