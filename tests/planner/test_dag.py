"""Tests for plan construction: expansion, reuse, compound flattening."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.errors import PlanningError, UnderivableError
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest

COMPOUND_VDL = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "/bin/gen";
}
TR sim( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/sim";
}
TR pack( output z, input r ) {
  argument stdin = ${input:r};
  argument stdout = ${output:z};
  exec = "/bin/pack";
}
TR simpack( input cfg, inout mid=@{inout:"scratch":""}, output z ) {
  sim( o=${output:mid}, i=${cfg} );
  pack( z=${z}, r=${input:mid} );
}
TR doublewrap( input cfg, inout half=@{inout:"halfway":""}, output z ) {
  simpack( cfg=${cfg}, z=${output:half} );
  pack( z=${z}, r=${input:half} );
}
DV g1->gen( o=@{output:"cfg1"}, seed="9" );
DV sp1->simpack( cfg=@{input:"cfg1"}, z=@{output:"result1"} );
DV dw1->doublewrap( cfg=@{input:"cfg1"}, z=@{output:"result2"} );
"""


@pytest.fixture
def compound_catalog():
    return MemoryCatalog().define(COMPOUND_VDL)


def plan_for(catalog, targets, **kwargs):
    request_kwargs = {
        k: kwargs.pop(k)
        for k in ("reuse", "pattern", "max_hosts")
        if k in kwargs
    }
    planner = Planner(catalog, **kwargs)
    return planner.plan(
        MaterializationRequest(targets=targets, **request_kwargs)
    )


class TestSimpleExpansion:
    def test_diamond_full_plan(self, diamond_catalog):
        plan = plan_for(diamond_catalog, ("final",), reuse="never")
        assert set(plan.steps) == {"g1", "g2", "s1", "s2", "a1"}
        assert plan.dependencies["a1"] == {"s1", "s2"}
        assert plan.dependencies["s1"] == {"g1"}
        assert plan.dependencies["g1"] == set()

    def test_intermediate_target(self, diamond_catalog):
        plan = plan_for(diamond_catalog, ("sim1",), reuse="never")
        assert set(plan.steps) == {"g1", "s1"}

    def test_multiple_targets_share_steps(self, diamond_catalog):
        plan = plan_for(diamond_catalog, ("sim1", "sim2"), reuse="never")
        assert set(plan.steps) == {"g1", "g2", "s1", "s2"}

    def test_depth_and_width(self, diamond_catalog):
        plan = plan_for(diamond_catalog, ("final",), reuse="never")
        assert plan.depth() == 3
        assert plan.width() == 2  # both branches in parallel

    def test_topological_order(self, diamond_catalog):
        plan = plan_for(diamond_catalog, ("final",), reuse="never")
        order = plan.topological_order()
        assert order.index("g1") < order.index("s1") < order.index("a1")

    def test_underivable_raises(self, diamond_catalog):
        with pytest.raises(UnderivableError):
            plan_for(diamond_catalog, ("nonexistent",), reuse="never")

    def test_source_with_replica_is_boundary(self, diamond_catalog):
        plan = plan_for(
            diamond_catalog,
            ("ghost",),
            reuse="never",
            has_replica=lambda lfn: lfn == "ghost",
        )
        assert plan.sources == {"ghost"}
        assert len(plan.steps) == 0


class TestCompoundExpansion:
    def test_single_level(self, compound_catalog):
        plan = plan_for(compound_catalog, ("result1",), reuse="never")
        assert set(plan.steps) == {"g1", "sp1.0.sim", "sp1.1.pack"}
        assert plan.dependencies["sp1.1.pack"] == {"sp1.0.sim"}
        assert plan.dependencies["sp1.0.sim"] == {"g1"}

    def test_scratch_intermediates_marked_temporary(self, compound_catalog):
        plan = plan_for(compound_catalog, ("result1",), reuse="never")
        assert "sp1.mid" in plan.temporaries

    def test_nested_compound(self, compound_catalog):
        plan = plan_for(compound_catalog, ("result2",), reuse="never")
        names = set(plan.steps)
        assert "dw1.0.simpack.0.sim" in names
        assert "dw1.0.simpack.1.pack" in names
        assert "dw1.1.pack" in names
        order = plan.topological_order()
        assert order.index("dw1.0.simpack.1.pack") < order.index("dw1.1.pack")

    def test_unbound_formal_without_default_rejected(self, compound_catalog):
        compound_catalog.define(
            """
            TR broken( input a, output z ) {
              pack( z=${z}, r=${a} );
            }
            """
        )
        # Registration-time validation catches the unbound formal.
        with pytest.raises(Exception):
            compound_catalog.define('DV bad->broken( z=@{output:"zz"} );')
        # Bypassing validation, the planner catches it instead.
        from repro.core.derivation import DatasetArg, Derivation
        from repro.core.naming import VDPRef

        compound_catalog.add_derivation(
            Derivation(
                name="bad",
                transformation=VDPRef("broken", kind="transformation"),
                actuals={"z": DatasetArg("zz", "output")},
            ),
            validate=False,
        )
        with pytest.raises(PlanningError):
            plan_for(compound_catalog, ("zz",), reuse="never")


class TestReusePolicies:
    def test_never_recomputes_everything(self, diamond_catalog):
        plan = plan_for(
            diamond_catalog,
            ("final",),
            reuse="never",
            has_replica=lambda lfn: True,
        )
        assert len(plan.steps) == 5

    def test_always_prunes_available(self, diamond_catalog):
        plan = plan_for(
            diamond_catalog,
            ("final",),
            reuse="always",
            has_replica=lambda lfn: lfn in ("sim1", "sim2"),
        )
        assert set(plan.steps) == {"a1"}
        assert plan.reused == {"sim1", "sim2"}

    def test_always_with_target_available(self, diamond_catalog):
        plan = plan_for(
            diamond_catalog,
            ("final",),
            reuse="always",
            has_replica=lambda lfn: lfn == "final",
        )
        assert len(plan.steps) == 0
        assert plan.reused == {"final"}

    def test_cost_consults_decider(self, diamond_catalog):
        calls = []

        def decider(lfn, cpu):
            calls.append((lfn, cpu))
            return cpu > 1.5  # reuse only when recompute is expensive

        plan = plan_for(
            diamond_catalog,
            ("final",),
            reuse="cost",
            has_replica=lambda lfn: lfn in ("sim1", "raw2"),
            cpu_estimate=lambda dv: 1.0,
            reuse_decider=decider,
        )
        # sim1 subtree costs 2 cpu (g1+s1) -> reused; raw2 costs 1 -> not
        assert "sim1" in plan.reused
        assert "raw2" not in plan.reused
        assert "s1" not in plan.steps
        assert "g2" in plan.steps

    def test_pruning_keeps_needed_upstream(self, diamond_catalog):
        # raw1 reused, but sim1 still needs computing from it.
        plan = plan_for(
            diamond_catalog,
            ("final",),
            reuse="always",
            has_replica=lambda lfn: lfn == "raw1",
        )
        assert "g1" not in plan.steps
        assert "s1" in plan.steps
        assert plan.reused == {"raw1"}


class TestPlanMetrics:
    def test_producers(self, diamond_catalog):
        plan = plan_for(diamond_catalog, ("final",), reuse="never")
        producers = plan.producers()
        assert producers["final"] == "a1"
        assert producers["raw1"] == "g1"

    def test_total_cpu(self, diamond_catalog):
        plan = plan_for(
            diamond_catalog,
            ("final",),
            reuse="never",
            cpu_estimate=lambda dv: 2.0,
        )
        assert plan.total_cpu_seconds() == 10.0

    def test_len(self, diamond_catalog):
        assert len(plan_for(diamond_catalog, ("final",), reuse="never")) == 5


class TestRequestValidation:
    def test_bad_policy(self):
        with pytest.raises(PlanningError):
            MaterializationRequest(targets=("x",), reuse="sometimes")

    def test_bad_pattern(self):
        with pytest.raises(PlanningError):
            MaterializationRequest(targets=("x",), pattern="teleport")

    def test_empty_targets(self):
        with pytest.raises(PlanningError):
            MaterializationRequest(targets=())

    def test_string_target_coerced(self):
        request = MaterializationRequest(targets="x")
        assert request.targets == ("x",)

    def test_bad_max_hosts(self):
        with pytest.raises(PlanningError):
            MaterializationRequest(targets=("x",), max_hosts=0)
