"""Tests for dynamic replication strategies (refs [18,19])."""

import pytest

from repro.errors import PlanningError
from repro.planner.replication import (
    HierarchyConfig,
    ReplicationSimulation,
    STRATEGIES,
)


@pytest.fixture(scope="module")
def simulation():
    return ReplicationSimulation(
        HierarchyConfig(tier1_count=3, leaves_per_tier1=2, file_count=60),
        seed=13,
    )


@pytest.fixture(scope="module")
def results(simulation):
    return {r.strategy: r for r in simulation.compare()}


class TestSetup:
    def test_hierarchy_shape(self, simulation):
        assert len(simulation.tier1) == 3
        assert len(simulation.leaves) == 6
        assert simulation.parent["leaf-0-0"] == "tier1-0"
        assert simulation.parent["tier1-0"] == "tier0"
        assert simulation.path_to_root("leaf-2-1") == [
            "leaf-2-1", "tier1-2", "tier0",
        ]

    def test_trace_deterministic(self):
        config = HierarchyConfig(tier1_count=2, leaves_per_tier1=2,
                                 file_count=20)
        a = ReplicationSimulation(config, seed=5).trace
        b = ReplicationSimulation(config, seed=5).trace
        assert a == b
        c = ReplicationSimulation(config, seed=6).trace
        assert a != c

    def test_trace_covers_all_leaves(self, simulation):
        clients = {client for client, _ in simulation.trace}
        assert clients == set(simulation.leaves)


class TestStrategies:
    def test_unknown_strategy_rejected(self, simulation):
        with pytest.raises(PlanningError):
            simulation.run("quantum")

    def test_all_strategies_complete(self, results):
        assert set(results) == set(STRATEGIES)
        for result in results.values():
            assert result.accesses == len(results["none"].accesses * [0]) or result.accesses > 0

    def test_none_creates_no_replicas(self, results):
        assert results["none"].replicas_created == 0

    def test_caching_reduces_response_time(self, results):
        assert (
            results["caching"].mean_response_seconds
            < results["none"].mean_response_seconds
        )

    def test_cascading_reduces_response_time(self, results):
        assert (
            results["cascading"].mean_response_seconds
            < results["none"].mean_response_seconds
        )

    def test_best_client_reduces_response_time(self, results):
        assert (
            results["best-client"].mean_response_seconds
            < results["none"].mean_response_seconds
        )

    def test_combined_beats_plain_cascading(self, results):
        """[19]'s headline: cascading+caching is the best performer."""
        assert (
            results["cascading-caching"].mean_response_seconds
            <= results["cascading"].mean_response_seconds
        )

    def test_replication_saves_wide_area_bandwidth(self, results):
        assert (
            results["cascading-caching"].total_wide_area_bytes
            < results["none"].total_wide_area_bytes
        )

    def test_rows_render(self, results):
        row = results["none"].row()
        assert row[0] == "none"
        assert len(row) == 6
