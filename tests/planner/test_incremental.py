"""Incremental planning: the event-driven plan cache.

An incremental planner's only contract is *indistinguishability*: every
``plan()`` answer must equal what a freshly constructed planner would
build from the current catalog, no matter which mutations happened in
between.  These tests pin the cache-hit fast path, the content-patch
path, every rebuild trigger (structural change, transformation edit,
replica drift), the instrumentation counters, and — via hypothesis —
the fresh-planner equivalence under random mutation sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.memory import MemoryCatalog
from repro.core.derivation import DatasetArg, Derivation
from repro.observability.instrument import Instrumentation
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest
from repro.workloads import canonical

DIAMOND_VDL = (
    'DV src->canon0( o=@{output:"src.out"}, tag="s" );\n'
    'DV left->canon1( o=@{output:"left.out"}, i0=@{input:"src.out"}, '
    'tag="l" );\n'
    'DV right->canon1( o=@{output:"right.out"}, i0=@{input:"src.out"}, '
    'tag="r" );\n'
    'DV sink->canon2( o=@{output:"sink.out"}, i0=@{input:"left.out"}, '
    'i1=@{input:"right.out"}, tag="k" );\n'
)


def diamond_catalog(instrumentation=None):
    catalog = MemoryCatalog(instrumentation=instrumentation)
    canonical.define_transformations(catalog)
    catalog.define(DIAMOND_VDL)
    return catalog


def mutate_tag(catalog, name, tag):
    """Content-only derivation edit: same edges, different ``tag``."""
    dv = catalog.get_derivation(name)
    actuals = {
        formal: value
        if isinstance(value, str)
        else DatasetArg(
            dataset=value.dataset,
            direction=value.direction,
            temporary=value.temporary,
        )
        for formal, value in dv.actuals.items()
    }
    actuals["tag"] = tag
    catalog.add_derivation(
        Derivation(
            name=dv.name,
            transformation=dv.transformation,
            actuals=actuals,
        ),
        replace=True,
        validate=False,
        auto_declare=False,
    )


def fingerprint(plan):
    """Everything observable about a plan, order-normalized."""
    return {
        "targets": tuple(plan.targets),
        "reused": tuple(sorted(plan.reused)),
        "sources": tuple(sorted(plan.sources)),
        "deps": {
            name: tuple(sorted(deps))
            for name, deps in plan.dependencies.items()
        },
        "steps": {
            name: (
                step.transformation.name,
                step.derivation.inputs(),
                step.derivation.outputs(),
                step.derivation.actuals.get("tag"),
                tuple(sorted(step.output_sizes.items())),
                step.cpu_seconds,
            )
            for name, step in plan.steps.items()
        },
    }


REQUEST = MaterializationRequest(targets=("sink.out",), reuse="never")


class TestPlanCache:
    def test_identical_request_is_a_cache_hit(self):
        obs = Instrumentation()
        catalog = diamond_catalog(instrumentation=obs)
        planner = Planner(catalog, instrumentation=obs, incremental=True)
        first = planner.plan(REQUEST)
        second = planner.plan(REQUEST)
        # Hits return the same patched snapshot, not a copy.
        assert second is first
        assert obs.metrics.get("planner.plan.cache.misses").total() == 1
        assert obs.metrics.get("planner.plan.cache.hits").total() == 1
        # Both plans were served from one cached derivation graph.
        assert obs.metrics.get("planner.graph.cache.hits").total() >= 1

    def test_content_patch_equals_fresh_plan(self):
        catalog = diamond_catalog()
        planner = Planner(catalog, incremental=True)
        cold = planner.plan(REQUEST)
        mutate_tag(catalog, "left", "patched")
        patched = planner.plan(REQUEST)
        assert patched is cold  # patched in place, not rebuilt
        assert patched.steps["left"].derivation.actuals["tag"] == "patched"
        fresh = Planner(catalog).plan(REQUEST)
        assert fingerprint(patched) == fingerprint(fresh)

    def test_structural_change_forces_rebuild(self):
        obs = Instrumentation()
        catalog = diamond_catalog(instrumentation=obs)
        planner = Planner(catalog, instrumentation=obs, incremental=True)
        planner.plan(REQUEST)
        # A new producer for a visited dataset restructures the plan:
        # the cheaper (lexicographically smaller) producer must win,
        # exactly as in a fresh plan.
        catalog.define(
            'DV aleft->canon1( o=@{output:"left.out"}, '
            'i0=@{input:"src.out"}, tag="a" );\n'
        )
        replanned = planner.plan(REQUEST)
        assert obs.metrics.get("planner.plan.cache.misses").total() == 2
        assert "aleft" in replanned.steps and "left" not in replanned.steps
        assert fingerprint(replanned) == fingerprint(
            Planner(catalog).plan(REQUEST)
        )

    def test_derivation_removal_forces_rebuild(self):
        catalog = diamond_catalog()
        catalog.define(
            'DV spare->canon1( o=@{output:"spare.out"}, '
            'i0=@{input:"src.out"}, tag="x" );\n'
        )
        planner = Planner(catalog, incremental=True)
        planner.plan(REQUEST)
        catalog.remove_derivation("spare")
        assert fingerprint(planner.plan(REQUEST)) == fingerprint(
            Planner(catalog).plan(REQUEST)
        )

    def test_replica_drift_forces_rebuild(self):
        """has_replica answers are re-probed on every hit: a sandbox
        file appearing without any catalog event still invalidates."""
        catalog = diamond_catalog()
        on_disk: set[str] = set()
        planner = Planner(
            catalog, has_replica=on_disk.__contains__, incremental=True
        )
        request = MaterializationRequest(
            targets=("sink.out",), reuse="always"
        )
        cold = planner.plan(request)
        assert set(cold.steps) == {"src", "left", "right", "sink"}
        on_disk.add("left.out")
        warm = planner.plan(request)
        assert "left" not in warm.steps
        assert "left.out" in warm.reused
        fresh = Planner(
            catalog, has_replica=on_disk.__contains__
        ).plan(request)
        assert fingerprint(warm) == fingerprint(fresh)

    def test_non_incremental_planner_never_caches(self):
        obs = Instrumentation()
        catalog = diamond_catalog(instrumentation=obs)
        planner = Planner(catalog, instrumentation=obs)
        assert planner.plan(REQUEST) is not planner.plan(REQUEST)
        assert "planner.plan.cache.hits" not in set(obs.metrics.names())


class TestStepsHistogram:
    def test_buckets_span_interactive_to_campaign(self):
        """planner.plan.steps must resolve 10^5/10^6-step plans rather
        than collapsing every large campaign into one overflow bucket."""
        obs = Instrumentation()
        catalog = diamond_catalog(instrumentation=obs)
        Planner(catalog, instrumentation=obs).plan(REQUEST)
        histogram = obs.metrics.get("planner.plan.steps")
        bounds = [bound for bound, _ in histogram.cumulative_buckets()]
        assert 1_000_000 in bounds
        assert 100_000 in bounds
        # The 4-step diamond lands in the <=5 bucket.
        counts = dict(histogram.cumulative_buckets())
        assert counts[5] == 1


class TestIncrementalProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        nodes=st.integers(min_value=6, max_value=40),
        seed=st.integers(min_value=0, max_value=999),
        edits=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=99),
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_random_mutations_equal_fresh_plan(self, nodes, seed, edits):
        """After any sequence of content edits, the incremental
        planner's answer equals a fresh planner's."""
        catalog = MemoryCatalog()
        info = canonical.generate_graph(catalog, nodes=nodes, seed=seed)
        request = MaterializationRequest(
            targets=tuple(sorted(info.sink_datasets)), reuse="never"
        )
        planner = Planner(catalog, incremental=True)
        planner.plan(request)
        for pick, tag in edits:
            name = info.derivations[pick % len(info.derivations)]
            mutate_tag(catalog, name, f"edit-{tag}")
            incremental = planner.plan(request)
            fresh = Planner(catalog).plan(request)
            assert fingerprint(incremental) == fingerprint(fresh)
