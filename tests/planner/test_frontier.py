"""Tests for the incremental ready-set tracker and frontier consistency.

The :class:`~repro.planner.dag.Frontier` replaces the per-tick
``ready_steps(done)`` rescan (O(V·E) over a run) with indegree
decrements; these tests pin its equivalence to the rescan and the new
consistency check that catches plans whose dependency edges point at
pruned steps.
"""

import random

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.errors import PlanningError
from repro.planner.dag import Frontier, Plan, Planner
from repro.planner.request import MaterializationRequest
from tests.conftest import DIAMOND_VDL


def diamond_plan():
    catalog = MemoryCatalog().define(DIAMOND_VDL)
    planner = Planner(catalog)
    return planner.plan(
        MaterializationRequest(targets=("final",), reuse="never")
    )


class TestFrontierParity:
    def test_initial_ready_matches_rescan(self):
        plan = diamond_plan()
        assert Frontier(plan).ready() == plan.ready_steps(set())

    def test_incremental_matches_rescan_at_every_prefix(self):
        """Completing steps in any legal order, the frontier's ready set
        always equals what a full rescan would report."""
        plan = diamond_plan()
        rng = random.Random(7)
        for _ in range(20):
            frontier = Frontier(plan)
            done = set()
            while not frontier.exhausted:
                ready = frontier.ready()
                assert ready == plan.ready_steps(done)
                pick = rng.choice(ready)
                frontier.complete(pick)
                done.add(pick)
            assert plan.ready_steps(done) == []

    def test_complete_returns_newly_released(self):
        plan = diamond_plan()
        frontier = Frontier(plan)
        assert frontier.ready() == ["g1", "g2"]
        assert frontier.complete("g1") == ["s1"]
        assert frontier.complete("g2") == ["s2"]
        assert frontier.complete("s1") == []
        assert frontier.complete("s2") == ["a1"]

    def test_pre_completed_steps(self):
        plan = diamond_plan()
        frontier = Frontier(plan, done={"g1", "g2", "s1"})
        assert frontier.ready() == ["s2"]
        assert frontier.remaining() == 2

    def test_complete_is_idempotent(self):
        plan = diamond_plan()
        frontier = Frontier(plan)
        assert frontier.complete("g1") == ["s1"]
        # A second completion is a no-op: no double release, no
        # double-count (rescue files may list steps redundantly).
        assert frontier.complete("g1") == []
        assert frontier.remaining() == len(plan.steps) - 1

    def test_unknown_step_rejected(self):
        plan = diamond_plan()
        frontier = Frontier(plan)
        with pytest.raises(PlanningError, match="unknown step"):
            frontier.complete("ghost")


class TestFrontierConsistency:
    """Regression: ``ready_steps`` used to silently return steps whose
    predecessors had been pruned (e.g. as reused subgraphs) without the
    dependency edges being fixed up — the dependent steps then either
    dispatched early or hung forever, depending on the caller."""

    def _plan_with(self, steps, dependencies):
        plan = diamond_plan()
        pruned = Plan(targets=plan.targets)
        pruned.steps = {name: plan.steps[name] for name in steps}
        pruned.dependencies = dependencies
        return pruned

    def test_dangling_dependency_raises(self):
        # s1 kept, but its predecessor g1 was pruned without fixing the
        # edge: a rescan used to never return s1 (silent hang).
        plan = self._plan_with(
            ["s1"], {"s1": {"g1"}}
        )
        with pytest.raises(PlanningError, match="pruned or unknown"):
            plan.ready_steps(set())
        with pytest.raises(PlanningError, match="pruned or unknown"):
            Frontier(plan)

    def test_step_missing_from_dependency_map_raises(self):
        plan = self._plan_with(["g1", "g2"], {"g1": set()})
        with pytest.raises(PlanningError, match="never dispatch"):
            plan.ready_steps(set())

    def test_dependency_entry_for_unknown_step_raises(self):
        plan = self._plan_with(["g1"], {"g1": set(), "ghost": set()})
        with pytest.raises(PlanningError, match="unknown step"):
            plan.ready_steps(set())

    def test_consistent_plan_passes(self):
        plan = diamond_plan()
        plan.check_frontier_consistency()  # no raise
        assert plan.ready_steps(set()) == ["g1", "g2"]
