"""Tests for cost models and whole-workflow estimation (§5.3)."""

import pytest

from repro.core.dataset import Dataset
from repro.core.invocation import Invocation, ResourceUsage
from repro.errors import EstimationError
from repro.estimator.cost import (
    Estimator,
    FALLBACK_CPU_SECONDS,
    fit_model,
)
from repro.estimator.workflow import estimate_plan, sweep_hosts
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest


def invocation(dv_name, cpu, bytes_read=0, bytes_written=0, status="success"):
    return Invocation(
        derivation_name=dv_name,
        status=status,
        usage=ResourceUsage(
            cpu_seconds=cpu,
            wall_seconds=cpu,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
        ),
    )


class TestFitModel:
    def test_no_history_fallback(self):
        model = fit_model("t", [])
        assert not model.is_fitted
        assert model.predict_cpu_seconds() == FALLBACK_CPU_SECONDS

    def test_constant_inputs_mean(self):
        invs = [invocation("d", cpu) for cpu in (10.0, 20.0, 30.0)]
        model = fit_model("t", invs)
        assert model.predict_cpu_seconds() == pytest.approx(20.0)
        assert model.samples == 3

    def test_linear_scaling_recovered(self):
        # cpu = 2 + 1e-6 * bytes
        invs = [
            invocation("d", 2 + 1e-6 * b, bytes_read=b)
            for b in (1_000_000, 2_000_000, 4_000_000)
        ]
        model = fit_model("t", invs)
        assert model.predict_cpu_seconds(3_000_000) == pytest.approx(5.0, rel=1e-3)
        assert model.per_byte == pytest.approx(1e-6, rel=1e-3)

    def test_failed_runs_excluded(self):
        invs = [invocation("d", 10.0), invocation("d", 99999.0, status="failure")]
        model = fit_model("t", invs)
        assert model.predict_cpu_seconds() == pytest.approx(10.0)

    def test_negative_slope_clamped(self):
        invs = [
            invocation("d", 100.0, bytes_read=1),
            invocation("d", 1.0, bytes_read=1_000_000),
        ]
        model = fit_model("t", invs)
        assert model.per_byte == 0.0
        assert model.predict_cpu_seconds(10**9) == pytest.approx(50.5)

    def test_output_size_mean(self):
        invs = [
            invocation("d", 1.0, bytes_written=100),
            invocation("d", 1.0, bytes_written=300),
        ]
        assert fit_model("t", invs).predict_output_bytes() == 200


class TestEstimator:
    def test_learns_from_catalog_history(self, diamond_catalog):
        for cpu in (5.0, 15.0):
            diamond_catalog.add_invocation(invocation("s1", cpu))
        estimator = Estimator(diamond_catalog)
        model = estimator.model_for("sim")
        assert model.is_fitted
        assert model.predict_cpu_seconds() == pytest.approx(10.0)
        assert estimator.confidence("sim") == 2

    def test_declared_hints_when_no_history(self, diamond_catalog):
        tr = diamond_catalog.get_transformation("ana")
        tr.attributes.set("cost.cpu_seconds", 42.0)
        tr.attributes.set("cost.output_bytes", 777)
        diamond_catalog.add_transformation(tr, replace=True)
        estimator = Estimator(diamond_catalog)
        model = estimator.model_for("ana")
        assert model.predict_cpu_seconds() == 42.0
        assert model.predict_output_bytes() == 777

    def test_estimate_derivation_uses_input_sizes(self, diamond_catalog):
        diamond_catalog.add_dataset(
            Dataset(name="sim1", attributes={"size": 1_000_000}),
            replace=True,
        )
        diamond_catalog.add_dataset(
            Dataset(name="sim2", attributes={"size": 2_000_000}),
            replace=True,
        )
        for b, cpu in ((1_000_000, 2.0), (3_000_000, 4.0)):
            diamond_catalog.add_invocation(
                invocation("a1", cpu, bytes_read=b)
            )
        estimator = Estimator(diamond_catalog)
        dv = diamond_catalog.get_derivation("a1")
        # inputs total 3 MB -> predicted 4 s (linear fit)
        assert estimator.estimate_derivation(dv) == pytest.approx(4.0)

    def test_estimate_output_bytes_prefers_declared(self, diamond_catalog):
        diamond_catalog.add_dataset(
            Dataset(name="final", attributes={"size": 123}), replace=True
        )
        estimator = Estimator(diamond_catalog)
        dv = diamond_catalog.get_derivation("a1")
        assert estimator.estimate_output_bytes(dv, "final") == 123

    def test_refit(self, diamond_catalog):
        estimator = Estimator(diamond_catalog)
        assert not estimator.model_for("gen").is_fitted
        diamond_catalog.add_invocation(invocation("g1", 7.0))
        estimator.refit()
        assert estimator.model_for("gen").is_fitted


class TestWorkflowEstimate:
    def make_plan(self, diamond_catalog, cpu=10.0):
        planner = Planner(diamond_catalog, cpu_estimate=lambda dv: cpu)
        return planner.plan(
            MaterializationRequest(targets=("final",), reuse="never")
        )

    def test_critical_path(self, diamond_catalog):
        plan = self.make_plan(diamond_catalog)
        estimate = estimate_plan(plan, host_count=100)
        assert estimate.critical_path_seconds == pytest.approx(30.0)
        assert estimate.makespan_seconds == pytest.approx(30.0)

    def test_single_host_serializes(self, diamond_catalog):
        plan = self.make_plan(diamond_catalog)
        estimate = estimate_plan(plan, host_count=1)
        assert estimate.makespan_seconds == pytest.approx(50.0)

    def test_two_hosts_in_between(self, diamond_catalog):
        plan = self.make_plan(diamond_catalog)
        estimate = estimate_plan(plan, host_count=2)
        assert 30.0 <= estimate.makespan_seconds <= 50.0

    def test_transfer_costs_included(self, diamond_catalog):
        plan = self.make_plan(diamond_catalog)
        with_data = estimate_plan(
            plan,
            host_count=4,
            input_bytes={"raw1": 100_000_000},
            bandwidth=10e6,
        )
        without = estimate_plan(plan, host_count=4)
        assert (
            with_data.makespan_seconds
            >= without.makespan_seconds + 9.9
        )
        assert with_data.total_transfer_seconds >= 10.0

    def test_empty_plan(self, diamond_catalog):
        from repro.planner.dag import Plan

        estimate = estimate_plan(Plan(targets=("x",)), host_count=2)
        assert estimate.makespan_seconds == 0.0
        assert estimate.step_count == 0

    def test_invalid_host_count(self, diamond_catalog):
        plan = self.make_plan(diamond_catalog)
        with pytest.raises(EstimationError):
            estimate_plan(plan, host_count=0)

    def test_deadline_query(self, diamond_catalog):
        plan = self.make_plan(diamond_catalog)
        estimate = estimate_plan(plan, host_count=2)
        assert estimate.meets_deadline(1_000.0)
        assert not estimate.meets_deadline(10.0)

    def test_sweep_monotone(self, diamond_catalog):
        plan = self.make_plan(diamond_catalog)
        sweep = sweep_hosts(plan, [1, 2, 4, 8])
        makespans = [sweep[n].makespan_seconds for n in (1, 2, 4, 8)]
        assert makespans == sorted(makespans, reverse=True)
        # Saturates at the critical path.
        assert sweep[8].makespan_seconds == pytest.approx(30.0)


class TestFitSamples:
    """The raw-sample fitting core shared with the history metastore."""

    def test_matches_fit_model(self):
        from repro.estimator.cost import fit_samples

        invs = [
            invocation("d", 2 + 1e-6 * b, bytes_read=b)
            for b in (1_000_000, 2_000_000, 4_000_000)
        ]
        via_invocations = fit_model("t", invs)
        via_samples = fit_samples(
            "t", [(b, 2 + 1e-6 * b, 0) for b in (1e6, 2e6, 4e6)]
        )
        assert via_samples.per_byte == pytest.approx(
            via_invocations.per_byte
        )
        assert via_samples.intercept == pytest.approx(
            via_invocations.intercept
        )

    def test_empty_is_unfitted(self):
        from repro.estimator.cost import fit_samples

        assert not fit_samples("t", []).is_fitted

    def test_train_on_history_pools_all_runs(self, tmp_path):
        from repro.estimator.cost import Estimator
        from repro.observability.history import HistoryStore
        from tests.observability.test_history import write_run

        # Two runs of the same chain at different speeds: the model
        # must be fit over the pooled samples, not the latest run.
        write_run(tmp_path, "run-a", gen_seconds=4.0)
        write_run(tmp_path, "run-b", gen_seconds=8.0)
        store = HistoryStore()
        store.ingest_dir(tmp_path)
        estimator = Estimator(catalog=None)
        trained = estimator.train_on_history(store)
        assert set(trained) == {"gen", "proc"}
        gen = trained["gen"]
        assert gen.samples == 2
        # Identical bytes_read both runs: constant-input mean.
        assert gen.predict_cpu_seconds(100) == pytest.approx(6.0)
        assert estimator.model_for("gen") is gen
