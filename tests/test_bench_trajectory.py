"""Unit tests for the bench-trajectory guard's compare logic."""

from __future__ import annotations

from benchmarks.check_bench_trajectory import (
    check_analysis_scale,
    check_obs_overhead,
    check_parallel_speedup,
)


def obs(live_pct, smoke=False, profiled_pct=1.0, profiler_budget=5.0):
    return {
        "live_overhead_pct": live_pct,
        "profiled_overhead_pct": profiled_pct,
        "profiler_budget_pct": profiler_budget,
        "smoke": smoke,
    }


def speedup(plans):
    return {
        "plans": {
            name: {"speedup_vs_1": {str(w): s for w, s in widths.items()}}
            for name, widths in plans.items()
        }
    }


class TestObsOverhead:
    def test_on_track(self):
        assert check_obs_overhead(obs(5.0), obs(8.0)) == []

    def test_within_tolerance(self):
        assert check_obs_overhead(obs(5.0), obs(29.9)) == []

    def test_drift_past_tolerance_flagged(self):
        problems = check_obs_overhead(obs(5.0), obs(31.0))
        assert len(problems) == 1
        assert "exceeds committed" in problems[0]

    def test_custom_tolerance(self):
        assert check_obs_overhead(obs(5.0), obs(9.0), tolerance_pts=2.0)
        assert not check_obs_overhead(
            obs(5.0), obs(9.0), tolerance_pts=5.0
        )

    def test_committed_smoke_run_flagged(self):
        problems = check_obs_overhead(obs(5.0, smoke=True), obs(5.0))
        assert any("smoke" in p for p in problems)

    def test_missing_fields(self):
        assert check_obs_overhead({}, obs(5.0))
        assert check_obs_overhead(obs(5.0), {})

    def test_profiler_drift_past_tolerance_flagged(self):
        problems = check_obs_overhead(
            obs(5.0, profiled_pct=2.0), obs(5.0, profiled_pct=28.0)
        )
        assert len(problems) == 1
        assert "profiler overhead" in problems[0]

    def test_profiler_within_tolerance(self):
        assert (
            check_obs_overhead(
                obs(5.0, profiled_pct=2.0), obs(5.0, profiled_pct=26.0)
            )
            == []
        )

    def test_committed_profiler_over_its_budget_flagged(self):
        problems = check_obs_overhead(
            obs(5.0, profiled_pct=6.5), obs(5.0, profiled_pct=1.0)
        )
        assert any("its own 5% budget" in p for p in problems)

    def test_missing_profiled_field_flagged(self):
        committed = obs(5.0)
        del committed["profiled_overhead_pct"]
        problems = check_obs_overhead(committed, obs(5.0))
        assert any("profiled_overhead_pct" in p for p in problems)


class TestParallelSpeedup:
    def test_on_track(self):
        base = speedup({"hep": {1: 1.0, 4: 3.4}})
        fresh = speedup({"hep": {1: 1.0, 4: 1.8}})
        assert check_parallel_speedup(base, fresh) == []

    def test_collapse_flagged(self):
        base = speedup({"hep": {1: 1.0, 4: 3.4}})
        fresh = speedup({"hep": {1: 1.0, 4: 1.0}})
        problems = check_parallel_speedup(base, fresh)
        assert len(problems) == 1
        assert "collapsed" in problems[0]

    def test_compares_widest_shared_width(self):
        # Fresh run only measured up to 2 workers: compare at 2.
        base = speedup({"hep": {1: 1.0, 2: 1.9, 4: 3.4}})
        fresh = speedup({"hep": {1: 1.0, 2: 1.7}})
        assert check_parallel_speedup(base, fresh) == []
        fresh_bad = speedup({"hep": {1: 1.0, 2: 0.5}})
        assert check_parallel_speedup(base, fresh_bad)

    def test_missing_plan_flagged(self):
        base = speedup({"hep": {4: 3.4}, "sdss": {4: 2.6}})
        fresh = speedup({"hep": {4: 3.0}})
        problems = check_parallel_speedup(base, fresh)
        assert any("sdss" in p for p in problems)

    def test_empty_committed_flagged(self):
        assert check_parallel_speedup({}, speedup({"hep": {4: 3.0}}))

    def test_custom_floor(self):
        base = speedup({"hep": {4: 3.0}})
        fresh = speedup({"hep": {4: 1.4}})
        assert check_parallel_speedup(base, fresh) == []  # 0.35 floor
        assert check_parallel_speedup(base, fresh, floor_factor=0.5)


class TestAnalysisScale:
    def test_on_track(self):
        base = {"speedup": 75.0, "smoke": False}
        assert check_analysis_scale(base, {"speedup": 40.0}) == []

    def test_collapse_flagged(self):
        base = {"speedup": 75.0, "smoke": False}
        problems = check_analysis_scale(base, {"speedup": 5.0})
        assert len(problems) == 1
        assert "collapsed" in problems[0]

    def test_committed_below_acceptance_floor_flagged(self):
        base = {"speedup": 30.0, "smoke": False}
        problems = check_analysis_scale(base, {"speedup": 30.0})
        assert any("acceptance floor" in p for p in problems)

    def test_committed_smoke_run_flagged(self):
        base = {"speedup": 75.0, "smoke": True}
        problems = check_analysis_scale(base, {"speedup": 75.0})
        assert any("smoke" in p for p in problems)

    def test_missing_fields(self):
        assert check_analysis_scale({}, {"speedup": 75.0})
        assert check_analysis_scale({"speedup": 75.0}, {})

    def test_custom_knobs(self):
        base = {"speedup": 20.0, "smoke": False}
        assert (
            check_analysis_scale(
                base, {"speedup": 12.0}, floor_factor=0.5, min_speedup=15.0
            )
            == []
        )
        assert check_analysis_scale(
            base, {"speedup": 9.0}, floor_factor=0.5, min_speedup=15.0
        )


class TestCommittedBaselines:
    """The committed files themselves must satisfy the guard's shape."""

    def test_committed_files_parse_and_self_compare(self):
        import json
        from benchmarks.check_bench_trajectory import OBS_PATH, SPEEDUP_PATH

        committed_obs = json.loads(OBS_PATH.read_text())
        committed_speedup = json.loads(SPEEDUP_PATH.read_text())
        assert check_obs_overhead(committed_obs, committed_obs) == []
        assert (
            check_parallel_speedup(committed_speedup, committed_speedup)
            == []
        )
        assert not committed_obs["smoke"]
        assert committed_obs["live_overhead_pct"] <= committed_obs[
            "budget_pct"
        ]
        assert committed_obs["profiled_overhead_pct"] <= committed_obs[
            "profiler_budget_pct"
        ]

    def test_committed_analysis_baseline_self_compares(self):
        import json
        from benchmarks.check_bench_trajectory import ANALYSIS_PATH

        committed = json.loads(ANALYSIS_PATH.read_text())
        assert check_analysis_scale(committed, committed) == []
        assert not committed["smoke"]
        assert committed["nodes"] >= 100_000
        assert committed["speedup"] >= 50.0
