"""Package-level tests: error hierarchy, lazy exports, odd names."""

import pytest

import repro
from repro import errors
from repro.catalog.filetree import FileTreeCatalog
from repro.core.dataset import Dataset


class TestErrorHierarchy:
    def test_everything_is_a_virtual_data_error(self):
        leaf_errors = [
            errors.UnknownTypeError,
            errors.TypeConformanceError,
            errors.SignatureMismatchError,
            errors.VDLSyntaxError,
            errors.VDLSemanticError,
            errors.DuplicateEntryError,
            errors.NotFoundError,
            errors.ReferenceError_,
            errors.FederationError,
            errors.InvalidSignatureError,
            errors.UntrustedAuthorityError,
            errors.AccessDeniedError,
            errors.SubmissionError,
            errors.TransferError,
            errors.CyclicDerivationError,
            errors.UnderivableError,
            errors.ExecutionError,
            errors.EstimationError,
        ]
        for cls in leaf_errors:
            assert issubclass(cls, errors.VirtualDataError)

    def test_catching_the_family(self):
        with pytest.raises(errors.VirtualDataError):
            raise errors.NotFoundError("x")
        with pytest.raises(errors.CatalogError):
            raise errors.DuplicateEntryError("x")
        with pytest.raises(errors.SecurityError):
            raise errors.AccessDeniedError("x")

    def test_vdl_syntax_error_position(self):
        err = errors.VDLSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column == 7


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_virtual_data_system(self):
        # Resolved on attribute access, not at import time.
        vds_cls = repro.VirtualDataSystem
        from repro.system import VirtualDataSystem

        assert vds_cls is VirtualDataSystem

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.no_such_thing  # noqa: B018

    def test_core_reexports(self):
        assert repro.Dataset is Dataset


class TestAwkwardNames:
    """Names with ::, @, dots must survive every backend's key encoding."""

    @pytest.mark.parametrize(
        "name", ["example1::t1", "a.b.c", "x+y", "run-1:part:2"]
    )
    def test_filetree_encodes_keys(self, tmp_path, name):
        catalog = FileTreeCatalog(tmp_path / "vdc")
        catalog.add_dataset(Dataset(name=name))
        reopened = FileTreeCatalog(tmp_path / "vdc")
        assert reopened.get_dataset(name).name == name

    def test_versioned_transformation_keys(self, tmp_path):
        catalog = FileTreeCatalog(tmp_path / "vdc")
        catalog.define('TR ns::tool@2.10( output o ) { exec = "/b"; }')
        reopened = FileTreeCatalog(tmp_path / "vdc")
        assert reopened.get_transformation("ns::tool", "2.10").name == "ns::tool"
