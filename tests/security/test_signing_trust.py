"""Tests for signatures, trust chains and authorities (§4.2)."""

import pytest

from repro.core.dataset import Dataset
from repro.core.replica import Replica
from repro.errors import (
    InvalidSignatureError,
    SecurityError,
    UntrustedAuthorityError,
)
from repro.security.identity import KeyStore, Principal
from repro.security.signing import Signer, canonical_encoding
from repro.security.trust import Delegation, TrustStore


@pytest.fixture
def keys():
    store = KeyStore()
    for name in ("root-authority", "calib-team", "alice", "mallory"):
        store.generate(name)
    return store


@pytest.fixture
def signer(keys):
    return Signer(keys)


class TestPrincipalsAndKeys:
    def test_principal_validation(self):
        Principal("alice", "user")
        with pytest.raises(SecurityError):
            Principal("", "user")
        with pytest.raises(SecurityError):
            Principal("x", "wizard")

    def test_key_generation(self):
        store = KeyStore()
        key = store.generate("a")
        assert len(key) >= 16
        assert store.key_of("a") == key
        assert store.has_key("a") and not store.has_key("b")

    def test_duplicate_key_rejected(self):
        store = KeyStore()
        store.generate("a")
        with pytest.raises(SecurityError):
            store.generate("a")

    def test_short_key_rejected(self):
        with pytest.raises(SecurityError):
            KeyStore().generate("a", key=b"short")

    def test_missing_key_raises(self):
        with pytest.raises(SecurityError):
            KeyStore().key_of("ghost")


class TestEntrySigning:
    def test_sign_and_verify(self, signer):
        ds = Dataset(name="run7.raw", attributes={"calibration": "v3"})
        signer.sign_entry(ds, "calib-team")
        signer.verify_entry(ds, "calib-team")
        assert signer.is_signed_by(ds, "calib-team")

    def test_tamper_detected(self, signer):
        ds = Dataset(name="run7.raw", attributes={"calibration": "v3"})
        signer.sign_entry(ds, "calib-team")
        ds.attributes.set("calibration", "v4")
        with pytest.raises(InvalidSignatureError):
            signer.verify_entry(ds, "calib-team")

    def test_unsigned_entry_rejected(self, signer):
        ds = Dataset(name="x")
        with pytest.raises(InvalidSignatureError):
            signer.verify_entry(ds, "calib-team")

    def test_multiple_signers_independent(self, signer):
        ds = Dataset(name="x", attributes={"a": 1})
        signer.sign_entry(ds, "calib-team")
        signer.sign_entry(ds, "alice")
        signer.verify_entry(ds, "calib-team")
        signer.verify_entry(ds, "alice")
        assert set(signer.signers_of(ds)) == {"calib-team", "alice"}

    def test_signature_excluded_from_signed_bytes(self, signer):
        ds = Dataset(name="x", attributes={"a": 1})
        before = canonical_encoding(ds.to_dict())
        signer.sign_entry(ds, "alice")
        after = canonical_encoding(ds.to_dict())
        assert before == after

    def test_works_on_replicas_and_transformations(self, signer, catalog):
        rep = Replica(dataset_name="x", location="anl")
        signer.sign_entry(rep, "alice")
        signer.verify_entry(rep, "alice")
        catalog.define('TR t( output o ) { exec = "/b"; }')
        tr = catalog.get_transformation("t")
        signer.sign_entry(tr, "alice")
        signer.verify_entry(tr, "alice")

    def test_signature_survives_catalog_round_trip(self, signer, catalog):
        ds = Dataset(name="x", attributes={"a": 1})
        signer.sign_entry(ds, "alice")
        catalog.add_dataset(ds)
        fetched = catalog.get_dataset("x")
        signer.verify_entry(fetched, "alice")


class TestAttributeSigning:
    def test_sign_and_verify_attribute(self, signer):
        ds = Dataset(name="x", attributes={"calibration": "v3", "other": 1})
        signer.sign_attribute(ds, "calibration", "calib-team")
        signer.verify_attribute(ds, "calibration", "calib-team")
        # unrelated attributes may change freely
        ds.attributes.set("other", 2)
        signer.verify_attribute(ds, "calibration", "calib-team")

    def test_attribute_tamper_detected(self, signer):
        ds = Dataset(name="x", attributes={"calibration": "v3"})
        signer.sign_attribute(ds, "calibration", "calib-team")
        ds.attributes.set("calibration", "v4")
        with pytest.raises(InvalidSignatureError):
            signer.verify_attribute(ds, "calibration", "calib-team")

    def test_cannot_sign_signature(self, signer):
        ds = Dataset(name="x", attributes={"a": 1})
        signer.sign_entry(ds, "alice")
        with pytest.raises(SecurityError):
            signer.sign_attribute(ds, "sig.alice", "alice")

    def test_missing_attribute_rejected(self, signer):
        with pytest.raises(SecurityError):
            signer.sign_attribute(Dataset(name="x"), "nope", "alice")


class TestTrustChains:
    def test_root_is_trusted(self, keys):
        trust = TrustStore(keys)
        trust.add_root("root-authority")
        assert trust.is_trusted("root-authority")
        assert trust.chain_for("root-authority") == []

    def test_root_needs_key(self, keys):
        trust = TrustStore(keys)
        with pytest.raises(SecurityError):
            trust.add_root("ghost")

    def test_single_delegation(self, keys):
        trust = TrustStore(keys)
        trust.add_root("root-authority")
        trust.delegate("root-authority", "calib-team")
        chain = trust.require_trusted("calib-team")
        assert [d.subject for d in chain] == ["calib-team"]

    def test_multi_level_chain(self, keys):
        trust = TrustStore(keys)
        trust.add_root("root-authority")
        trust.delegate("root-authority", "calib-team")
        trust.delegate("calib-team", "alice")
        chain = trust.require_trusted("alice")
        assert [d.subject for d in chain] == ["calib-team", "alice"]

    def test_untrusted_rejected(self, keys):
        trust = TrustStore(keys)
        trust.add_root("root-authority")
        with pytest.raises(UntrustedAuthorityError):
            trust.require_trusted("mallory")

    def test_forged_delegation_rejected(self, keys):
        trust = TrustStore(keys)
        trust.add_root("root-authority")
        forged = Delegation(
            issuer="root-authority", subject="mallory", signature="00" * 32
        )
        trust.add_delegation(forged)
        assert not trust.is_trusted("mallory")

    def test_scoped_delegation(self, keys):
        trust = TrustStore(keys)
        trust.add_root("root-authority")
        trust.delegate("root-authority", "calib-team", scope="quality")
        assert trust.is_trusted("calib-team", "quality")
        assert not trust.is_trusted("calib-team", "deploy")

    def test_wildcard_scope_covers_all(self, keys):
        trust = TrustStore(keys)
        trust.add_root("root-authority")
        trust.delegate("root-authority", "calib-team")  # scope "*"
        assert trust.is_trusted("calib-team", "anything")

    def test_chain_depth_limited(self, keys):
        trust = TrustStore(keys, max_chain_depth=2)
        trust.add_root("root-authority")
        names = ["root-authority", "calib-team", "alice", "mallory"]
        for issuer, subject in zip(names, names[1:]):
            trust.delegate(issuer, subject)
        assert trust.is_trusted("alice")  # depth 2
        assert not trust.is_trusted("mallory")  # depth 3 > limit

    def test_delegation_cycles_terminate(self, keys):
        trust = TrustStore(keys)
        trust.add_root("root-authority")
        trust.delegate("alice", "mallory")
        trust.delegate("mallory", "alice")  # cycle, no root
        assert not trust.is_trusted("alice")
