"""Tests for access-control policies and quality assessments (§4.2)."""

import pytest

from repro.catalog.federation import FederatedIndex
from repro.catalog.memory import MemoryCatalog
from repro.core.dataset import Dataset
from repro.errors import AccessDeniedError, SecurityError
from repro.security.identity import KeyStore
from repro.security.policy import GuardedCatalog, PolicyEngine, Rule
from repro.security.quality import QualityRegistry
from repro.security.signing import Signer
from repro.security.trust import TrustStore


class TestPolicyEngine:
    def test_default_deny(self):
        assert not PolicyEngine().is_allowed("alice", "read", "dataset", "x")

    def test_first_match_wins(self):
        policy = PolicyEngine()
        policy.deny(principal="alice", action="write")
        policy.allow(principal="alice")
        assert policy.is_allowed("alice", "read", "dataset")
        assert not policy.is_allowed("alice", "write", "dataset")

    def test_glob_names(self):
        policy = PolicyEngine()
        policy.allow(principal="alice", name="public.*")
        assert policy.is_allowed("alice", "read", "dataset", "public.run1")
        assert not policy.is_allowed("alice", "read", "dataset", "secret.run1")

    def test_groups(self):
        policy = PolicyEngine()
        policy.add_to_group("physicists", "alice")
        policy.allow(principal="group:physicists", action="read")
        assert policy.is_allowed("alice", "read", "dataset")
        assert not policy.is_allowed("bob", "read", "dataset")
        assert policy.groups_of("alice") == {"physicists"}

    def test_kind_scoping(self):
        policy = PolicyEngine()
        policy.allow(principal="alice", kind="derivation")
        assert policy.is_allowed("alice", "write", "derivation")
        assert not policy.is_allowed("alice", "write", "dataset")

    def test_authorize_raises(self):
        with pytest.raises(AccessDeniedError):
            PolicyEngine().authorize("alice", "read", "dataset", "x")

    def test_unknown_action_rejected(self):
        with pytest.raises(SecurityError):
            PolicyEngine().is_allowed("alice", "fly", "dataset")

    def test_bad_rule_effect(self):
        with pytest.raises(SecurityError):
            Rule(effect="maybe")


class TestGuardedCatalog:
    @pytest.fixture
    def guarded(self):
        catalog = MemoryCatalog()
        catalog.define('TR t( output o ) { exec = "/b"; }')
        policy = PolicyEngine()
        policy.allow(principal="alice", action="read")
        policy.allow(principal="alice", action="write", kind="derivation")
        policy.allow(principal="alice", action="write", kind="dataset",
                     name="alice.*")
        return GuardedCatalog(catalog, policy, "alice")

    def test_reads_allowed(self, guarded):
        assert guarded.get_transformation("t").name == "t"

    def test_writes_scoped_by_name(self, guarded):
        guarded.add_dataset(Dataset(name="alice.results"))
        with pytest.raises(AccessDeniedError):
            guarded.add_dataset(Dataset(name="bob.results"))

    def test_writes_scoped_by_kind(self, guarded):
        with pytest.raises(AccessDeniedError):
            guarded.add_transformation(guarded.get_transformation("t"))

    def test_guarded_define(self, guarded):
        guarded.define('DV d->t( o=@{output:"alice.out"} );')
        with pytest.raises(AccessDeniedError):
            guarded.define('TR t2( output o ) { exec = "/b"; }')

    def test_delete_denied(self, guarded):
        guarded.add_dataset(Dataset(name="alice.x"))
        with pytest.raises(AccessDeniedError):
            guarded.remove_dataset("alice.x")

    def test_forwarding_of_unguarded(self, guarded):
        assert guarded.counts()["transformation"] == 1


class TestQualityRegistry:
    @pytest.fixture
    def world(self):
        keys = KeyStore()
        keys.generate("collab")
        keys.generate("calib-team")
        keys.generate("mallory")
        trust = TrustStore(keys)
        trust.add_root("collab")
        trust.delegate("collab", "calib-team", scope="quality")
        signer = Signer(keys)
        return keys, trust, signer, QualityRegistry(trust=trust, signer=signer)

    def test_assessment_levels(self, world):
        _, _, _, quality = world
        quality.assess("dataset", "run7", "validated", "calib-team")
        assert quality.level_of("dataset", "run7") == "validated"
        assert quality.meets("dataset", "run7", "raw")
        assert not quality.meets("dataset", "run7", "approved")

    def test_highest_level_wins(self, world):
        _, _, _, quality = world
        quality.assess("dataset", "run7", "raw", "calib-team")
        quality.assess("dataset", "run7", "approved", "calib-team")
        quality.assess("dataset", "run7", "validated", "calib-team")
        assert quality.level_of("dataset", "run7") == "approved"

    def test_untrusted_assessor_rejected(self, world):
        _, _, _, quality = world
        with pytest.raises(Exception):
            quality.assess("dataset", "x", "approved", "mallory")

    def test_unknown_level_rejected(self, world):
        _, _, _, quality = world
        with pytest.raises(SecurityError):
            quality.assess("dataset", "x", "platinum", "calib-team")

    def test_object_signed_on_assessment(self, world):
        _, _, signer, quality = world
        ds = Dataset(name="run7")
        quality.assess("dataset", "run7", "approved", "calib-team", obj=ds)
        assert ds.attributes.get("quality") == "approved"
        signer.verify_entry(ds, "calib-team")

    def test_unknown_object_level(self, world):
        _, _, _, quality = world
        assert quality.level_of("dataset", "never-seen") == "unknown"

    def test_approved_filter_builds_fig4_index(self, world):
        _, _, _, quality = world
        catalog = MemoryCatalog(authority="site.a")
        for i, level in enumerate(["approved", "raw", "approved"]):
            name = f"ds{i}"
            catalog.add_dataset(Dataset(name=name))
            quality.assess("dataset", name, level, "calib-team")
        index = FederatedIndex(
            "community-approved",
            kinds=("dataset",),
            entry_filter=quality.approved_filter(),
        )
        index.attach(catalog)
        assert {e.name for e in index.find("dataset")} == {"ds0", "ds2"}
