"""Shared fixtures for the test suite.

``any_catalog`` parametrizes over all three VDC backends so every
catalog-behaviour test runs against memory, sqlite and filetree
identically — the backends must be observationally equivalent.
"""

from __future__ import annotations

import pytest

from repro.catalog.filetree import FileTreeCatalog
from repro.catalog.memory import MemoryCatalog
from repro.catalog.sqlite import SQLiteCatalog

#: A small but complete pipeline used across many tests: two raw
#: generators feeding simulators feeding a joint analysis.
DIAMOND_VDL = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "/bin/gen";
}
TR sim( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/sim";
}
TR ana( output o, input a, input b ) {
  argument = "-a "${input:a}" -b "${input:b};
  argument stdout = ${output:o};
  exec = "/bin/ana";
}
DV g1->gen( o=@{output:"raw1"}, seed="42" );
DV g2->gen( o=@{output:"raw2"}, seed="43" );
DV s1->sim( o=@{output:"sim1"}, i=@{input:"raw1"} );
DV s2->sim( o=@{output:"sim2"}, i=@{input:"raw2"} );
DV a1->ana( o=@{output:"final"}, a=@{input:"sim1"}, b=@{input:"sim2"} );
"""

#: The Fig-1 example of the paper: prog1 maps fnn -> foo.
FIG1_VDL = """
TR prog1( output Y, input X ) {
  argument = "-f "${input:X};
  argument stdout = ${output:Y};
  exec = "/usr/bin/prog1";
}
DV dfoo->prog1( Y=@{output:"foo"}, X=@{input:"fnn"} );
"""


@pytest.fixture(params=["memory", "sqlite", "filetree"])
def any_catalog(request, tmp_path):
    """One empty catalog per backend."""
    if request.param == "memory":
        yield MemoryCatalog(authority="test.example")
    elif request.param == "sqlite":
        catalog = SQLiteCatalog(authority="test.example")
        yield catalog
        catalog.close()
    else:
        yield FileTreeCatalog(tmp_path / "vdc", authority="test.example")


@pytest.fixture
def catalog():
    """A plain in-memory catalog (most tests don't vary the backend)."""
    return MemoryCatalog(authority="test.example")


@pytest.fixture
def diamond_catalog():
    """An in-memory catalog pre-loaded with the diamond pipeline."""
    return MemoryCatalog(authority="test.example").define(DIAMOND_VDL)
