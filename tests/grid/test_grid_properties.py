"""Property-based tests for grid substrate invariants (hypothesis)."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import TransferError
from repro.grid.simulator import Simulator
from repro.grid.site import ComputeElement, StorageElement


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=30))
def test_simulator_fires_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.from_regex(r"f[0-9]{1,3}", fullmatch=True),
            st.integers(1, 50),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_storage_capacity_never_exceeded(operations):
    se = StorageElement("se", capacity=100)
    clock = 0.0
    for lfn, size in operations:
        clock += 1.0
        try:
            se.store(lfn, size, now=clock)
        except TransferError:
            pass  # oversized or unevictable: rejected is fine
        assert 0 <= se.used <= se.capacity
        # accounting consistency: used equals the sum of held files
        assert se.used == sum(se.file(x).size for x in se.lfns())


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1, 8),
    st.lists(st.floats(0.1, 100, allow_nan=False), min_size=1, max_size=30),
)
def test_compute_element_conservation(hosts, jobs):
    """No host runs two jobs at once; total busy time is conserved."""
    ce = ComputeElement("ce", hosts=hosts)
    intervals: dict[str, list[tuple[float, float]]] = {}
    for cpu in jobs:
        host, start, end = ce.allocate(0.0, cpu)
        intervals.setdefault(host.name, []).append((start, end))
        assert end - start == pytest.approx(cpu)  # speed 1.0
    for host_intervals in intervals.values():
        host_intervals.sort()
        for (s1, e1), (s2, e2) in zip(host_intervals, host_intervals[1:]):
            assert e1 <= s2  # no overlap on one host
    assert ce.busy_seconds == pytest.approx(sum(jobs))
    assert ce.jobs_completed == len(jobs)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.5, 20, allow_nan=False), min_size=2, max_size=20))
def test_more_hosts_never_slower(jobs):
    """Makespan is non-increasing in host count (work-conserving FIFO)."""
    def makespan(hosts):
        ce = ComputeElement("ce", hosts=hosts)
        return max(ce.allocate(0.0, cpu)[2] for cpu in jobs)

    spans = [makespan(h) for h in (1, 2, 4, 8)]
    for a, b in zip(spans, spans[1:]):
        assert b <= a + 1e-9
