"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import GridError
from repro.grid.simulator import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_fire_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(5.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(2.0, outer)
        sim.run()
        assert fired == [("outer", 2.0), ("inner", 7.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(GridError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(10.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [10.0]


class TestRunControl:
    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending() == 1
        sim.run()
        assert fired == [1, 10]

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert not sim.step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending() == 0
        assert sim.events_processed == 0

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            log = []
            sim.schedule(1.0, lambda: log.append(sim.now))
            sim.schedule(1.0, lambda: sim.schedule(0.5, lambda: log.append(sim.now)))
            sim.run()
            return log

        assert run_once() == run_once()
