"""Tests for the replica location service and GRAM-like job service."""

import pytest

from repro.errors import SubmissionError, TransferError
from repro.grid.gram import GridExecutionService, JobSpec
from repro.grid.network import uniform_topology
from repro.grid.objectstore import ObjectStore, ObjectStoreRegistry
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import Site


@pytest.fixture
def net():
    return uniform_topology(["anl", "uc"], bandwidth=10e6, latency=0.05)


@pytest.fixture
def rls(net):
    return ReplicaLocationService(net)


class TestRLS:
    def test_register_and_lookup(self, rls):
        rls.register("f1", "anl", 100)
        assert rls.sites_of("f1") == ["anl"]
        assert rls.has("f1") and rls.has("f1", "anl")
        assert not rls.has("f1", "uc")
        assert rls.size_of("f1") == 100

    def test_unregister(self, rls):
        rls.register("f1", "anl", 100)
        rls.unregister("f1", "anl")
        assert not rls.has("f1")
        with pytest.raises(TransferError):
            rls.unregister("f1", "anl")

    def test_best_source_prefers_destination(self, rls):
        rls.register("f1", "anl", 10_000_000)
        rls.register("f1", "uc", 10_000_000)
        site, seconds = rls.best_source("f1", "uc")
        assert site == "uc"
        assert seconds < 0.1

    def test_best_source_remote(self, rls):
        rls.register("f1", "anl", 10_000_000)
        site, seconds = rls.best_source("f1", "uc")
        assert site == "anl"
        assert seconds == pytest.approx(1.05)

    def test_best_source_missing(self, rls):
        with pytest.raises(TransferError):
            rls.best_source("ghost", "uc")

    def test_counts(self, rls):
        rls.register("f1", "anl", 1)
        rls.register("f1", "uc", 1)
        rls.register("f2", "anl", 1)
        assert rls.replica_count("f1") == 2
        assert rls.total_replicas() == 3
        assert rls.lfns() == ["f1", "f2"]


class TestGram:
    def make_grid(self, net, rls, failure_rate=0.0):
        sim = Simulator()
        sites = {"anl": Site("anl", hosts=2), "uc": Site("uc", hosts=2)}
        grid = GridExecutionService(
            sim, sites, net, rls, failure_rate=failure_rate, seed=11
        )
        return sim, sites, grid

    def test_job_with_staging(self, net, rls):
        sim, sites, grid = self.make_grid(net, rls)
        sites["anl"].storage.store("in.dat", 10_000_000)
        rls.register("in.dat", "anl", 10_000_000)
        record = grid.submit(
            JobSpec(
                name="j",
                site="uc",
                cpu_seconds=5.0,
                inputs=("in.dat",),
                outputs={"out.dat": 1_000_000},
            )
        )
        sim.run()
        assert record.succeeded
        assert record.stage_in_seconds == pytest.approx(1.05)
        assert record.end_time == pytest.approx(6.05)
        assert rls.has("out.dat", "uc")
        assert rls.has("in.dat", "uc")  # staged copy registered
        assert record.bytes_staged == 10_000_000

    def test_no_restaging_when_local(self, net, rls):
        sim, sites, grid = self.make_grid(net, rls)
        sites["uc"].storage.store("in.dat", 10_000_000)
        rls.register("in.dat", "uc", 10_000_000)
        record = grid.submit(
            JobSpec(name="j", site="uc", cpu_seconds=1.0, inputs=("in.dat",))
        )
        sim.run()
        assert record.stage_in_seconds == 0.0
        assert net.total_bytes_moved() == 0

    def test_queueing(self, net, rls):
        sim, _, grid = self.make_grid(net, rls)
        records = [
            grid.submit(JobSpec(name=f"j{i}", site="anl", cpu_seconds=10.0))
            for i in range(4)
        ]
        sim.run()
        ends = sorted(r.end_time for r in records)
        assert ends == [10.0, 10.0, 20.0, 20.0]
        assert records[-1].queue_seconds == 10.0

    def test_missing_input_fails_job(self, net, rls):
        sim, _, grid = self.make_grid(net, rls)
        done = []
        record = grid.submit(
            JobSpec(name="j", site="anl", cpu_seconds=1.0, inputs=("ghost",)),
            on_complete=done.append,
        )
        sim.run()
        assert record.status == "failed"
        assert "ghost" in record.error
        assert done == [record]

    def test_unknown_site_rejected(self, net, rls):
        _, _, grid = self.make_grid(net, rls)
        with pytest.raises(SubmissionError):
            grid.submit(JobSpec(name="j", site="mars", cpu_seconds=1.0))

    def test_failure_injection_deterministic(self, net, rls):
        sim, _, grid = self.make_grid(net, rls, failure_rate=0.5)
        records = [
            grid.submit(JobSpec(name=f"j{i}", site="anl", cpu_seconds=1.0))
            for i in range(30)
        ]
        sim.run()
        failures = sum(1 for r in records if not r.succeeded)
        assert 5 < failures < 25  # roughly half, seeded
        assert grid.failed() and grid.completed()

    def test_completion_callback_and_metrics(self, net, rls):
        sim, _, grid = self.make_grid(net, rls)
        seen = []
        grid.submit(
            JobSpec(name="j", site="anl", cpu_seconds=3.0),
            on_complete=lambda r: seen.append(r.status),
        )
        sim.run()
        assert seen == ["done"]
        assert grid.mean_response_time() == pytest.approx(3.0)

    def test_invalid_failure_rate(self, net, rls):
        sim = Simulator()
        with pytest.raises(SubmissionError):
            GridExecutionService(
                sim, {}, net, rls, failure_rate=1.5
            )


class TestObjectStore:
    def test_put_get_delete(self):
        store = ObjectStore("s")
        store.put("a", payload=1, refs=["b"])
        assert store.get("a").payload == 1
        store.delete("a")
        with pytest.raises(Exception):
            store.get("a")

    def test_closure(self):
        store = ObjectStore("s")
        store.put("a", refs=["b", "c"])
        store.put("b", refs=["d"])
        store.put("c")
        store.put("d", refs=["a"])  # cycle back
        store.put("lonely")
        assert store.closure(["a"]) == {"a", "b", "c", "d"}
        assert store.closure_size(["c"]) == 1

    def test_closure_ignores_dangling(self):
        store = ObjectStore("s")
        store.put("a", refs=["ghost"])
        assert store.closure(["a"]) == {"a"}

    def test_extract(self):
        store = ObjectStore("s")
        store.put("a", payload="pa", refs=["b"])
        store.put("b", payload="pb")
        assert store.extract(["a"]) == {"a": "pa", "b": "pb"}

    def test_registry(self):
        reg = ObjectStoreRegistry()
        store = reg.create("events")
        assert reg.get("events") is store
        assert reg.get_or_create("events") is store
        with pytest.raises(Exception):
            reg.create("events")
        with pytest.raises(Exception):
            reg.get("nope")
        assert reg.names() == ["events"]
