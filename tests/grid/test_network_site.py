"""Tests for the network topology and site compute/storage elements."""

import pytest

from repro.errors import GridError, TransferError
from repro.grid.network import (
    Link,
    NetworkTopology,
    star_topology,
    uniform_topology,
)
from repro.grid.site import ComputeElement, Site, StorageElement


class TestLinks:
    def test_transfer_time_formula(self):
        link = Link("a", "b", bandwidth=10e6, latency=0.05)
        assert link.transfer_time(10_000_000) == pytest.approx(1.05)

    def test_negative_size_rejected(self):
        with pytest.raises(TransferError):
            Link("a", "b").transfer_time(-1)


class TestTopology:
    def test_local_transfers_near_free(self):
        net = uniform_topology(["a"])
        assert net.transfer_time(10_000_000, "a", "a") < 0.1

    def test_custom_link_wins_over_default(self):
        net = uniform_topology(["a", "b"], bandwidth=10e6)
        net.connect("a", "b", bandwidth=100e6, latency=0.0)
        assert net.transfer_time(100_000_000, "a", "b") == pytest.approx(1.0)

    def test_symmetric_connect(self):
        net = NetworkTopology(fully_connected=False)
        net.connect("a", "b", bandwidth=5e6)
        assert net.transfer_time(5_000_000, "b", "a") > 0

    def test_asymmetric_connect(self):
        net = NetworkTopology(fully_connected=False)
        net.connect("a", "b", symmetric=False)
        net.transfer_time(1, "a", "b")
        with pytest.raises(TransferError):
            net.transfer_time(1, "b", "a")

    def test_no_route_when_not_fully_connected(self):
        net = NetworkTopology(fully_connected=False)
        net.add_site("a")
        net.add_site("b")
        with pytest.raises(TransferError):
            net.transfer_time(1, "a", "b")

    def test_accounting(self):
        net = uniform_topology(["a", "b"])
        net.record_transfer(1000, "a", "b")
        net.record_transfer(2000, "a", "b")
        net.record_transfer(5000, "a", "a")  # local: excluded by default
        assert net.total_bytes_moved() == 3000
        assert net.total_transfers() == 2
        assert net.total_bytes_moved(wide_area_only=False) == 8000
        stats = net.stats("a", "b")
        assert stats.transfers == 2
        net.reset_stats()
        assert net.total_transfers() == 0

    def test_star_topology_routes(self):
        net = star_topology("tier0", ["leaf1", "leaf2"], bandwidth=10e6)
        direct = net.transfer_time(10_000_000, "tier0", "leaf1")
        cross = net.transfer_time(10_000_000, "leaf1", "leaf2")
        assert cross > direct  # leaf-leaf is worse than hub-leaf


class TestStorageElement:
    def test_store_and_holds(self):
        se = StorageElement("se", capacity=100)
        se.store("f1", 60)
        assert se.holds("f1")
        assert se.used == 60 and se.free == 40

    def test_lru_eviction(self):
        se = StorageElement("se", capacity=100)
        se.store("old", 50, now=1.0)
        se.store("newer", 50, now=2.0)
        evicted = se.store("incoming", 60, now=3.0)
        assert evicted == ["old", "newer"][:len(evicted)]
        assert "old" in evicted
        assert se.holds("incoming")
        assert se.evictions >= 1

    def test_touch_refreshes_lru(self):
        se = StorageElement("se", capacity=100)
        se.store("a", 50, now=1.0)
        se.store("b", 50, now=2.0)
        se.touch("a", now=3.0)  # now b is the LRU victim
        evicted = se.store("c", 50, now=4.0)
        assert evicted == ["b"]

    def test_pinned_never_evicted(self):
        se = StorageElement("se", capacity=100)
        se.store("precious", 80, now=1.0)
        se.pin("precious")
        with pytest.raises(TransferError):
            se.store("big", 50, now=2.0)
        se.unpin("precious")
        assert se.store("big", 50, now=3.0) == ["precious"]

    def test_oversized_file_rejected(self):
        se = StorageElement("se", capacity=10)
        with pytest.raises(TransferError):
            se.store("huge", 11)

    def test_restore_same_file_is_touch(self):
        se = StorageElement("se", capacity=100)
        se.store("f", 50, now=1.0)
        assert se.store("f", 50, now=2.0) == []
        assert se.used == 50
        assert se.file("f").last_used == 2.0

    def test_delete(self):
        se = StorageElement("se", capacity=100)
        se.store("f", 50)
        se.delete("f")
        assert not se.holds("f")
        with pytest.raises(TransferError):
            se.file("f")

    def test_delete_pinned_rejected(self):
        se = StorageElement("se", capacity=100)
        se.store("f", 10)
        se.pin("f")
        with pytest.raises(GridError):
            se.delete("f")

    def test_capacity_validation(self):
        with pytest.raises(GridError):
            StorageElement("se", capacity=0)


class TestComputeElement:
    def test_fifo_over_hosts(self):
        ce = ComputeElement("ce", hosts=2)
        ends = []
        for _ in range(4):
            _, start, end = ce.allocate(0.0, 10.0)
            ends.append((start, end))
        assert ends == [(0, 10), (0, 10), (10, 20), (10, 20)]

    def test_speed_scales_duration(self):
        fast = ComputeElement("fast", hosts=1, speed=2.0)
        _, start, end = fast.allocate(0.0, 10.0)
        assert end - start == 5.0

    def test_max_hosts_cap(self):
        ce = ComputeElement("ce", hosts=4)
        ends = [ce.allocate(0.0, 10.0, max_hosts=1)[2] for _ in range(3)]
        assert ends == [10.0, 20.0, 30.0]
        assert ce.hosts[1].jobs_run == 0

    def test_free_hosts(self):
        ce = ComputeElement("ce", hosts=3)
        ce.allocate(0.0, 10.0)
        assert ce.free_hosts(5.0) == 2
        assert ce.free_hosts(15.0) == 3

    def test_utilization(self):
        ce = ComputeElement("ce", hosts=2)
        ce.allocate(0.0, 10.0)
        assert ce.utilization(10.0) == pytest.approx(0.5)

    def test_needs_hosts(self):
        with pytest.raises(GridError):
            ComputeElement("ce", hosts=0)


class TestSite:
    def test_composition(self):
        site = Site("anl", hosts=8, storage_capacity=1000)
        assert site.compute.host_count == 8
        assert site.storage.capacity == 1000
        assert "anl" in repr(site)
