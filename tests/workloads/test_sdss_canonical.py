"""Tests for the SDSS cluster-search and canonical-graph workloads (§6)."""

import json

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.executor.local import LocalExecutor
from repro.provenance.graph import DerivationGraph
from repro.provenance.lineage import lineage_report
from repro.workloads import canonical, sdss


class TestSDSSCampaign:
    def test_paper_scale_arithmetic(self):
        """1000 fields at 100/stripe must yield ~5000 derivations."""
        catalog = MemoryCatalog()
        campaign = sdss.define_campaign(
            catalog, fields=50, fields_per_stripe=25
        )
        # 50*4 per-field + (24*2) merges + 2 catalogs = 250
        assert campaign.derivations == 250
        # Extrapolation: the constant is 5 per field + ~10, matching
        # the paper's "about 5000" at 1000 fields.
        assert 5 * campaign.fields == 250

    def test_dag_structure(self):
        catalog = MemoryCatalog()
        campaign = sdss.define_campaign(catalog, fields=6, fields_per_stripe=3)
        graph = DerivationGraph.from_catalog(catalog)
        assert graph.is_acyclic()
        # The ring coalesce makes each merged field depend on three
        # candidate lists.
        dv = catalog.get_derivation("field00001.coalesce")
        assert set(dv.inputs()) == {
            "field00000.cand", "field00001.cand", "field00002.cand",
        }

    def test_stripe_catalog_covers_whole_stripe(self):
        catalog = MemoryCatalog()
        campaign = sdss.define_campaign(catalog, fields=6, fields_per_stripe=3)
        report = lineage_report(catalog, campaign.targets[0])
        derivations = report.all_derivations()
        for f in range(3):
            assert f"field{f:05d}.extract" in derivations

    def test_typed_field_datasets(self):
        catalog = MemoryCatalog()
        campaign = sdss.define_campaign(catalog, fields=2, fields_per_stripe=2)
        ds = catalog.get_dataset(campaign.field_datasets[0])
        assert ds.dataset_type.content == "Image-raw"
        assert ds.size_estimate() == sdss.FIELD_BYTES

    def test_local_execution_finds_clusters(self, tmp_path):
        catalog = MemoryCatalog()
        campaign = sdss.define_campaign(catalog, fields=4, fields_per_stripe=4)
        executor = LocalExecutor(catalog, tmp_path)
        sdss.register_bodies(executor)
        sdss.materialize_fields(executor, campaign, galaxies=150)
        executor.materialize(campaign.targets[0])
        result = json.loads(
            executor.path_for(campaign.targets[0]).read_text()
        )
        # Fields inject 1-3 clusters each; the finder must recover some.
        assert result["count"] >= 2
        richest = result["clusters"][0]
        assert richest["richness"] >= 5

    def test_synth_field_deterministic(self):
        assert sdss.synth_field(3) == sdss.synth_field(3)
        assert sdss.synth_field(3) != sdss.synth_field(4)


class TestCanonicalGraphs:
    def test_requested_node_count(self, catalog):
        graph = canonical.generate_graph(catalog, nodes=75, layers=5, seed=1)
        assert graph.nodes == 75
        assert len(graph.derivations) == 75

    def test_layering_is_acyclic(self, catalog):
        canonical.generate_graph(catalog, nodes=120, layers=8, seed=2)
        assert DerivationGraph.from_catalog(catalog).is_acyclic()

    def test_deterministic_per_seed(self):
        a = MemoryCatalog()
        b = MemoryCatalog()
        ga = canonical.generate_graph(a, nodes=40, layers=4, seed=9)
        gb = canonical.generate_graph(b, nodes=40, layers=4, seed=9)
        assert [a.get_derivation(n).inputs() for n in ga.derivations] == [
            b.get_derivation(n).inputs() for n in gb.derivations
        ]

    def test_fanin_bounded(self, catalog):
        graph = canonical.generate_graph(
            catalog, nodes=60, layers=6, max_fanin=2, seed=3
        )
        for name in graph.derivations:
            assert len(catalog.get_derivation(name).inputs()) <= 2

    def test_fanin_limit_enforced(self, catalog):
        with pytest.raises(ValueError):
            canonical.generate_graph(catalog, max_fanin=99)

    def test_sources_and_sinks(self, catalog):
        graph = canonical.generate_graph(catalog, nodes=50, layers=5, seed=4)
        assert graph.source_datasets
        assert graph.sink_datasets
        provenance = DerivationGraph.from_catalog(catalog)
        assert set(graph.sink_datasets) == provenance.sink_datasets()

    def test_executes_hermetically(self, catalog, tmp_path):
        graph = canonical.generate_graph(catalog, nodes=30, layers=3, seed=5)
        executor = LocalExecutor(catalog, tmp_path)
        canonical.register_bodies(executor)
        sink = sorted(graph.sink_datasets)[0]
        executor.materialize(sink)
        digest = executor.path_for(sink).read_text().strip()
        assert len(digest) == 64  # sha256 hex

    def test_fast_and_vdl_paths_emit_identical_catalogs(self):
        """The object-emission fast path must be indistinguishable from
        the VDL round trip: same derivation payloads, same datasets,
        same graph summary."""
        slow_cat, fast_cat = MemoryCatalog(), MemoryCatalog()
        slow = canonical.generate_graph(
            slow_cat, nodes=60, layers=5, seed=11, fast=False
        )
        fast = canonical.generate_graph(
            fast_cat, nodes=60, layers=5, seed=11, fast=True
        )
        assert slow == fast  # the CanonicalGraph summaries agree
        for name in slow.derivations:
            assert (
                slow_cat.get_derivation(name).to_dict()
                == fast_cat.get_derivation(name).to_dict()
            )
        for lfn in slow.all_datasets:
            assert (
                slow_cat.get_dataset(lfn).to_dict()
                == fast_cat.get_dataset(lfn).to_dict()
            )

    def test_fast_path_auto_selected_above_threshold(self, catalog):
        assert canonical.FAST_PATH_THRESHOLD > 1000  # VDL path for tests

    def test_declared_graph_equals_observed(self, catalog, tmp_path):
        """The paper used canonical apps 'to validate our provenance
        tracking mechanism': executed lineage must equal declared DAG."""
        graph = canonical.generate_graph(catalog, nodes=25, layers=5, seed=6)
        executor = LocalExecutor(catalog, tmp_path)
        canonical.register_bodies(executor)
        sink = sorted(graph.sink_datasets)[0]
        invocations = executor.materialize(sink)
        executed = {inv.derivation_name for inv in invocations}
        declared = DerivationGraph.from_catalog(catalog)
        required = set(
            declared.required_for(sink).derivation_names()
        )
        assert executed == required
