"""Tests for the HEP 4-stage challenge workload (§6)."""

import json

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.executor.local import LocalExecutor
from repro.provenance.lineage import lineage_report
from repro.workloads import hep


@pytest.fixture
def executor(tmp_path):
    catalog = MemoryCatalog()
    ex = LocalExecutor(catalog, tmp_path)
    hep.register_bodies(ex)
    hep.register_analysis_bodies(ex)
    return ex


class TestPipeline:
    def test_four_stage_structure(self, executor):
        target = hep.define_run(executor.catalog, "run1", seed=3, events=50)
        assert target == "run1.hist"
        catalog = executor.catalog
        assert len(catalog.find_derivations(name_glob="run1.*")) == 4
        report = lineage_report(catalog, target)
        assert report.depth() == 4

    def test_executes_end_to_end(self, executor):
        target = hep.define_run(executor.catalog, "run1", seed=3, events=200)
        invocations = executor.materialize(target)
        assert [i.derivation_name for i in invocations] == [
            "run1.gen", "run1.sim", "run1.reco", "run1.ana",
        ]
        histogram = json.loads(executor.path_for(target).read_text())
        assert histogram["passed"] > 0
        assert len(histogram["bins"]) == 10
        assert sum(histogram["bins"]) == histogram["passed"]

    def test_deterministic_per_seed(self, executor, tmp_path):
        t1 = hep.define_run(executor.catalog, "runA", seed=5, events=100)
        t2 = hep.define_run(executor.catalog, "runB", seed=5, events=100)
        executor.materialize(t1)
        executor.materialize(t2)
        assert (
            executor.path_for(t1).read_text()
            == executor.path_for(t2).read_text()
        )

    def test_different_seeds_differ(self, executor):
        t1 = hep.define_run(executor.catalog, "runA", seed=5, events=100)
        t2 = hep.define_run(executor.catalog, "runB", seed=6, events=100)
        executor.materialize(t1)
        executor.materialize(t2)
        assert (
            executor.path_for("runA.events").read_text()
            != executor.path_for("runB.events").read_text()
        )

    def test_ptcut_monotone(self, executor):
        loose = hep.define_run(executor.catalog, "loose", seed=1,
                               events=300, ptcut=10.0)
        tight = hep.define_run(executor.catalog, "tight", seed=1,
                               events=300, ptcut=40.0)
        executor.materialize(loose)
        executor.materialize(tight)
        n_loose = json.loads(executor.path_for(loose).read_text())["passed"]
        n_tight = json.loads(executor.path_for(tight).read_text())["passed"]
        assert n_loose > n_tight

    def test_object_container_stage(self, executor):
        """The reco stage emits the OODBMS-stand-in object container."""
        hep.define_run(executor.catalog, "run1", events=10)
        executor.materialize("run1.objects")
        container = json.loads(executor.path_for("run1.objects").read_text())
        assert container["kind"] == "object-container"
        assert len(container["roots"]) == 10
        assert all(oid in container["objects"] for oid in container["roots"])

    def test_compound_chain_registered(self, executor):
        hep.define_transformations(executor.catalog)
        chain = executor.catalog.get_transformation("hepevt-chain")
        assert chain.is_compound
        assert len(chain.calls) == 4

    def test_cost_hints_attached(self, executor):
        hep.define_transformations(executor.catalog)
        tr = executor.catalog.get_transformation("hepevt-sim")
        assert tr.attributes.get("cost.cpu_seconds") == pytest.approx(2.0)


class TestInteractiveAnalysis:
    def test_per_point_lineage(self, executor):
        """The §6 goal: 'produce, for each data point in the final
        graph, a detailed data lineage report'."""
        graph_ds = hep.define_analysis_chain(
            executor.catalog, "run9", bins=("0", "1", "2")
        )
        executor.materialize(graph_ds)
        graph = json.loads(executor.path_for(graph_ds).read_text())
        assert len(graph["points"]) == 3
        report = lineage_report(executor.catalog, "run9.point2")
        derivations = report.all_derivations()
        assert "run9.hist2" in derivations
        assert "run9.select" in derivations
        assert "run9.gen" in derivations
        assert report.depth() == 5  # gen -> sim -> reco -> select -> hist

    def test_points_count_only_their_bin(self, executor):
        graph_ds = hep.define_analysis_chain(
            executor.catalog, "run8", bins=("0", "1")
        )
        executor.materialize(graph_ds)
        p0 = json.loads(executor.path_for("run8.point0").read_text())
        p1 = json.loads(executor.path_for("run8.point1").read_text())
        assert p0["bin"] == 0 and p1["bin"] == 1

    def test_cutset_respects_expression(self, executor):
        hep.define_analysis_chain(executor.catalog, "run7", bins=("0",))
        executor.materialize("run7.cuts")
        cuts = json.loads(executor.path_for("run7.cuts").read_text())
        assert all(o["pt"] > 30 for o in cuts["objects"].values())
