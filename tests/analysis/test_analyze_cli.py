"""End-to-end tests for ``repro analyze`` and ``repro lint --incremental``."""

import json

import pytest

from repro.cli import main

CONFLICT_VDL = """
TR emitx( output o ) { argument stdout = ${output:o}; exec = "/bin/e"; }
TR twice( output o ) {
  emitx( o=${output:o} );
  emitx( o=${output:o} );
}
DV t1->twice( o=@{output:"dup.out"} );
"""

CLEAN_VDL = """
TR copy( output o, input i ) {
  argument = ${input:i}" "${output:o};
  exec = "/bin/cp";
}
DV c1->copy( o=@{output:"copy.txt"}, i=@{input:"seed.txt"} );
"""

RACY_VDL = CLEAN_VDL + """
DV c2->copy( o=@{output:"copy2.txt"}, i=@{input:"seed.txt"} );
DV c3->copy( o=@{output:"copy2.txt"}, i=@{input:"seed.txt"} );
"""


@pytest.fixture
def run(tmp_path):
    workspace = tmp_path / "ws"

    def invoke(*argv):
        lines = []
        code = main(
            ["--workspace", str(workspace), *argv],
            out=lambda text="": lines.append(str(text)),
        )
        return code, "\n".join(lines)

    return invoke


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestAnalyzeCommand:
    def test_clean_catalog_exits_zero(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CLEAN_VDL))[0] == 0
        code, output = run("analyze")
        assert code == 0
        assert "clean" in output

    def test_conflict_found_and_rendered(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CONFLICT_VDL))[0] == 0
        code, output = run("analyze")
        assert code == 1
        assert "error[VDG631]" in output

    def test_pass_selection_flags(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CONFLICT_VDL))[0] == 0
        # Conflicts selected: the finding appears.
        code, output = run("analyze", "--conflicts")
        assert code == 1 and "VDG631" in output
        # Only staleness selected: the conflict is out of scope.
        code, output = run("analyze", "--stale")
        assert code == 0 and "VDG631" not in output

    def test_json_format_schema(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CONFLICT_VDL))[0] == 0
        code, output = run("analyze", "--format", "json")
        payload = json.loads(output)
        assert payload["exit_code"] == 1 == code
        assert payload["summary"]["error"] == 1
        diag = payload["diagnostics"][0]
        assert diag["code"] == "VDG631"
        # The documented JSON shape (docs/LINTING.md).
        assert set(diag) == {
            "code", "severity", "message", "file", "line", "column",
            "object", "rule",
        }

    def test_stats_table(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CLEAN_VDL))[0] == 0
        code, output = run("analyze", "--stats")
        assert code == 0
        assert "graph:" in output
        for name in ("staleness", "dead-data", "type-flow", "output-conflict"):
            assert name in output

    def test_analyze_records_observability(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CLEAN_VDL))[0] == 0
        assert run("analyze")[0] == 0
        code, output = run("stats")
        assert code == 0
        assert "analysis.incremental.solves" in output


class TestIncrementalLint:
    def test_same_codes_as_cold_lint(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", RACY_VDL))[0] == 0
        cold_code, cold_out = run("lint")
        warm_code, warm_out = run("lint", "--incremental")
        assert cold_code == warm_code == 1
        assert "VDG201" in cold_out and "VDG201" in warm_out

    def test_info_only_catalog_exits_zero(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CLEAN_VDL))[0] == 0
        code, output = run("lint", "--incremental")
        # Both paths agree: one VDG403 info (unproduced input), exit 0.
        assert code == 0
        assert "info[VDG403]" in output
        assert run("lint")[0] == 0

    def test_no_export_no_reparse(self, tmp_path, monkeypatch):
        """The incremental path must never round-trip through VDL."""
        from repro.catalog.base import VirtualDataCatalog
        from repro.catalog.memory import MemoryCatalog
        from repro.analysis.linter import Linter

        catalog = MemoryCatalog().define(RACY_VDL)

        def boom(self):
            raise AssertionError("export_vdl called on the incremental path")

        monkeypatch.setattr(VirtualDataCatalog, "export_vdl", boom)
        result = Linter().lint_catalog(catalog, incremental=True)
        assert any(d.code == "VDG201" for d in result.diagnostics)

    def test_context_is_cached_between_runs(self):
        from repro.catalog.memory import MemoryCatalog

        catalog = MemoryCatalog().define(CLEAN_VDL)
        analyzer = catalog.live_analyzer()
        first = analyzer.lint_context()
        assert analyzer.lint_context() is first
        # A mutation invalidates; the next query rebuilds once.
        catalog.define(
            'DV c9->copy( o=@{output:"c9.txt"}, i=@{input:"seed.txt"} );'
        )
        second = analyzer.lint_context()
        assert second is not first
        assert analyzer.lint_context() is second


class TestStrictPlanReusesContext:
    def test_strict_plan_without_export_roundtrip(
        self, run, tmp_path, monkeypatch
    ):
        from repro.catalog.base import VirtualDataCatalog

        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CLEAN_VDL))[0] == 0

        def boom(self):
            raise AssertionError("plan --strict exported VDL")

        monkeypatch.setattr(VirtualDataCatalog, "export_vdl", boom)
        code, output = run("plan", "copy.txt", "--strict")
        assert code == 0
        assert "plan for copy.txt" in output

    def test_strict_plan_still_gates_on_errors(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", RACY_VDL))[0] == 0
        code, output = run("plan", "copy2.txt", "--strict")
        assert code == 1
        assert "plan aborted" in output
