"""Unit tests for the generic worklist/fixpoint dataflow engine."""

from repro.analysis.dataflow import (
    DataflowPass,
    Digraph,
    ds_node,
    dv_node,
    node_kind,
    node_name,
    solve,
)


def chain(*nodes):
    """a -> b -> c ... as a Digraph."""
    g = Digraph()
    for src, dst in zip(nodes, nodes[1:]):
        g.add_edge(src, dst)
    for node in nodes:
        g.add_node(node)
    return g


class ReachPass(DataflowPass):
    """Fact: node is reachable from a model-designated source set."""

    name = "reach"
    direction = "forward"

    def transfer(self, node, graph, facts, model):
        if node in model["sources"]:
            return True
        return any(facts.get(p) or False for p in graph.pred.get(node, ()))

    def subsumes(self, new, old):
        return bool(new) or not bool(old)


class TestNodeIds:
    def test_prefixes_round_trip(self):
        assert node_name(ds_node("raw1")) == "raw1"
        assert node_name(dv_node("g1")) == "g1"
        assert node_kind(ds_node("raw1")) == "dataset"
        assert node_kind(dv_node("g1")) == "derivation"


class TestDigraph:
    def test_add_edge_creates_nodes(self):
        g = Digraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g
        assert g.succ["a"] == {"b"}
        assert g.pred["b"] == {"a"}

    def test_remove_node_detaches_neighbours(self):
        g = chain("a", "b", "c")
        g.remove_node("b")
        assert "b" not in g
        assert g.succ["a"] == set()
        assert g.pred["c"] == set()

    def test_remove_missing_node_is_noop(self):
        g = Digraph()
        g.remove_node("ghost")
        assert len(g) == 0

    def test_neighbors_both_directions(self):
        g = chain("a", "b", "c")
        assert g.neighbors("b") == {"a", "c"}


class TestFullSolve:
    def test_fixpoint_on_chain(self):
        g = chain("a", "b", "c")
        facts = {}
        result = solve(ReachPass(), g, facts, {"sources": {"a"}})
        assert result.stats.mode == "full"
        assert facts == {"a": True, "b": True, "c": True}

    def test_unreachable_stays_bottom(self):
        g = chain("a", "b")
        g.add_node("island")
        facts = {}
        solve(ReachPass(), g, facts, {"sources": {"a"}})
        assert facts["island"] is False

    def test_cycle_terminates(self):
        g = chain("a", "b", "c")
        g.add_edge("c", "a")
        facts = {}
        solve(ReachPass(), g, facts, {"sources": {"a"}})
        assert all(facts[n] for n in ("a", "b", "c"))

    def test_full_solve_clears_stale_facts(self):
        g = chain("a", "b")
        facts = {"ghost": True}
        solve(ReachPass(), g, facts, {"sources": {"a"}})
        assert "ghost" not in facts


class TestIncrementalSolve:
    def test_increase_propagates_downstream(self):
        g = chain("a", "b", "c", "d")
        model = {"sources": set()}
        facts = {}
        solve(ReachPass(), g, facts, model)
        model["sources"] = {"a"}
        result = solve(ReachPass(), g, facts, model, seeds={"a"})
        assert result.stats.mode == "incremental"
        assert facts == {"a": True, "b": True, "c": True, "d": True}
        assert result.changed == {"a", "b", "c", "d"}

    def test_untouched_region_not_visited(self):
        g = chain("a", "b")
        g.add_edge("x", "y")
        model = {"sources": {"a", "x"}}
        facts = {}
        solve(ReachPass(), g, facts, model)
        result = solve(ReachPass(), g, facts, model, seeds={"a"})
        # The x->y component is quiescent: nothing there is revisited.
        assert result.stats.visited <= 2

    def test_decrease_resets_forward_cone(self):
        g = chain("a", "b", "c")
        model = {"sources": {"a"}}
        facts = {}
        solve(ReachPass(), g, facts, model)
        model["sources"] = set()
        result = solve(ReachPass(), g, facts, model, seeds={"a"})
        assert facts == {"a": False, "b": False, "c": False}
        assert result.stats.reset_cone > 0

    def test_decrease_on_cycle_kills_self_support(self):
        # b and c sustain each other's reachability on a cycle; after
        # the source unplugs, a naive re-propagation would keep both
        # True forever.  The cone reset must drain them.
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "b")
        model = {"sources": {"a"}}
        facts = {}
        solve(ReachPass(), g, facts, model)
        assert facts["b"] and facts["c"]
        model["sources"] = set()
        solve(ReachPass(), g, facts, model, seeds={"a"})
        assert facts == {"a": False, "b": False, "c": False}

    def test_seeds_outside_graph_ignored(self):
        g = chain("a", "b")
        facts = {}
        model = {"sources": {"a"}}
        solve(ReachPass(), g, facts, model)
        result = solve(ReachPass(), g, facts, model, seeds={"gone"})
        assert result.stats.seeds == 0
        assert result.changed == set()

    def test_report_covers_influence_radius(self):
        g = chain("a", "b", "c", "d")
        model = {"sources": set()}
        facts = {}
        solve(ReachPass(), g, facts, model)
        model["sources"] = {"a"}
        pass_ = ReachPass()
        result = solve(pass_, g, facts, model, seeds={"a"})
        # Default report_hops=1: one hop past the last change.
        assert result.report >= result.changed

    def test_report_hops_extends_frontier(self):
        class TwoHopReach(ReachPass):
            report_hops = 2

        g = chain("a", "b", "c", "d")
        model = {"sources": set()}
        facts = {}
        # b..d already settled; only a's fact will change.
        solve(TwoHopReach(), g, facts, model)

        class Frozen(TwoHopReach):
            def transfer(self, node, graph, facts, model):
                if node == "a":
                    return True
                return facts.get(node) or False

        result = solve(Frozen(), g, facts, model, seeds={"a"})
        assert result.changed == {"a"}
        # Two influence hops forward of the change: b and c.
        assert {"b", "c"} <= result.report
        assert "d" not in result.report

    def test_on_fact_change_extras_reach_report(self):
        class Hooked(ReachPass):
            def on_fact_change(self, node, old, new, model):
                return {"far-away"}

        g = chain("a", "b")
        g.add_node("far-away")
        model = {"sources": set()}
        facts = {}
        solve(Hooked(), g, facts, model)
        model["sources"] = {"a"}
        result = solve(Hooked(), g, facts, model, seeds={"a"})
        assert "far-away" in result.report


class TestLocalDirection:
    def test_no_propagation_and_no_cone_reset(self):
        class Label(DataflowPass):
            name = "label"
            direction = "local"

            def transfer(self, node, graph, facts, model):
                return model["labels"].get(node, "")

        g = chain("a", "b")
        model = {"labels": {"a": "x", "b": "y"}}
        facts = {}
        solve(Label(), g, facts, model)
        model["labels"] = {"a": "", "b": "y"}
        result = solve(Label(), g, facts, model, seeds={"a"})
        # Shrink on a local pass must not trigger a cone walk.
        assert result.stats.reset_cone == 0
        assert facts["a"] == ""
        assert facts["b"] == "y"
