"""The incremental analyzer: event intake, pass semantics, lifecycle."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.core.dataset import Dataset
from repro.core.replica import Replica
from repro.core.types import DatasetType
from repro.executor.local import LocalExecutor
from repro.workloads import sdss

PIPELINE_VDL = """
TR gen( output o ) { argument stdout = ${output:o}; exec = "/bin/gen"; }
TR step( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/step";
}
DV g1->gen( o=@{output:"raw"} );
DV s1->step( o=@{output:"mid"}, i=@{input:"raw"} );
DV s2->step( o=@{output:"end"}, i=@{input:"mid"} );
"""


def put_replica(catalog, lfn, rid=None):
    replica = Replica(
        dataset_name=lfn, location="site-a", replica_id=rid or f"rep-{lfn}"
    )
    catalog.add_replica(replica)
    return replica.replica_id


class TestGraphLifecycle:
    def test_built_from_existing_catalog(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        stats = analyzer.stats()
        assert stats["derivations"] == 3
        assert stats["nodes"] == 6  # 3 dv + 3 ds
        assert analyzer.diagnostics() == []

    def test_live_analyzer_is_a_singleton(self):
        catalog = MemoryCatalog()
        assert catalog.live_analyzer() is catalog.live_analyzer()

    def test_derivation_events_update_graph(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        catalog.define('DV s3->step( o=@{output:"extra"}, i=@{input:"end"} );')
        assert analyzer.stats()["derivations"] == 4
        catalog.remove_derivation("s3")
        stats = analyzer.stats()
        assert stats["derivations"] == 3
        assert stats["nodes"] == 6  # dv:s3 and ds:extra both dropped

    def test_shared_dataset_node_survives_one_remover(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        catalog.define('DV s3->step( o=@{output:"alt"}, i=@{input:"mid"} );')
        catalog.remove_derivation("s3")
        # ds:mid is still referenced by s1/s2.
        assert analyzer.stats()["nodes"] == 6

    def test_import_snapshot_triggers_rebuild(self):
        source = MemoryCatalog().define(PIPELINE_VDL)
        catalog = MemoryCatalog()
        analyzer = catalog.live_analyzer()
        assert analyzer.stats()["nodes"] == 0
        catalog.import_snapshot(source.export_snapshot())
        assert analyzer.stats()["derivations"] == 3
        assert analyzer.diagnostics() == []

    def test_close_detaches_from_event_stream(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        before = analyzer.stats()["derivations"]
        analyzer.close()
        catalog.define('DV s3->step( o=@{output:"x"}, i=@{input:"end"} );')
        assert analyzer.stats()["derivations"] == before

    def test_unknown_pass_name_rejected(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        with pytest.raises(KeyError, match="unknown analysis pass"):
            catalog.live_analyzer().diagnostics(passes=["no-such-pass"])

    def test_solves_are_lazy_and_incremental(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        analyzer.diagnostics()
        first = analyzer.stats()["solves"]
        analyzer.diagnostics()  # nothing dirty: no new solves
        assert analyzer.stats()["solves"] == first
        put_replica(catalog, "end")
        analyzer.diagnostics(passes=["dead-data"])
        per_pass = analyzer.stats()["passes"]["dead-data"]
        assert per_pass["mode"] == "incremental"
        assert per_pass["seeds"] >= 1


class TestDeadDataPass:
    def test_unneeded_replica_flagged(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        put_replica(catalog, "mid")
        put_replica(catalog, "end")
        diags = analyzer.diagnostics(passes=["dead-data"])
        # "end" is materialized, so nothing downstream needs "mid".
        assert [d.obj for d in diags if d.code == "VDG611"] == ["mid"]

    def test_sink_replica_never_flagged(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        put_replica(catalog, "end")
        assert analyzer.diagnostics(passes=["dead-data"]) == []

    def test_new_consumer_revives_dead_replica(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        put_replica(catalog, "mid")
        put_replica(catalog, "end")
        assert analyzer.diagnostics(passes=["dead-data"])
        # A new un-materialized consumer of "mid" makes it live again.
        catalog.define('DV s3->step( o=@{output:"alt"}, i=@{input:"mid"} );')
        assert analyzer.diagnostics(passes=["dead-data"]) == []

    def test_replica_removal_clears_finding(self):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        rid = put_replica(catalog, "mid")
        put_replica(catalog, "end")
        assert analyzer.diagnostics(passes=["dead-data"])
        catalog.remove_replica(rid)
        assert analyzer.diagnostics(passes=["dead-data"]) == []

    def test_orphan_invocation_reported(self, tmp_path):
        catalog = MemoryCatalog().define(PIPELINE_VDL)
        analyzer = catalog.live_analyzer()
        executor = LocalExecutor(catalog, tmp_path)
        for name in ("gen", "step"):
            executor.register(
                f"/bin/{name}", lambda ctx: ctx.write_output("o", "x")
            )
        executor.materialize("end")
        no_orphans = analyzer.diagnostics(passes=["dead-data"])
        assert not any(d.code == "VDG612" for d in no_orphans)
        catalog.remove_derivation("s2")
        diags = analyzer.diagnostics(passes=["dead-data"])
        orphans = [d for d in diags if d.code == "VDG612"]
        assert orphans and all("'s2'" in d.message for d in orphans)


class TestStalenessPass:
    def _materialized_sdss(self, tmp_path, fields=3):
        catalog = MemoryCatalog()
        campaign = sdss.define_campaign(
            catalog, fields=fields, fields_per_stripe=fields
        )
        executor = LocalExecutor(catalog, tmp_path)
        sdss.register_bodies(executor)
        sdss.materialize_fields(executor, campaign, galaxies=100)
        executor.materialize(campaign.targets[0])
        return catalog, campaign

    def test_fresh_campaign_is_clean(self, tmp_path):
        catalog, _ = self._materialized_sdss(tmp_path)
        analyzer = catalog.live_analyzer()
        assert analyzer.diagnostics(passes=["staleness"]) == []

    def test_version_bump_flags_exactly_downstream_replicas(self, tmp_path):
        """The PR's acceptance scenario: ``analyze --stale`` must flag
        the downstream replicas of a version-bumped transformation and
        nothing else."""
        catalog, _ = self._materialized_sdss(tmp_path)
        analyzer = catalog.live_analyzer()
        catalog.define(
            'TR sdss-brg@2.0( output brgs, input galaxies, '
            'none maglim="17.0" ) {\n'
            '  argument = "-maglim "${none:maglim};\n'
            "  argument stdin = ${input:galaxies};\n"
            "  argument stdout = ${output:brgs};\n"
            '  exec = "py:sdss-brg";\n'
            "}\n"
        )
        diags = analyzer.diagnostics(passes=["staleness"])
        flagged = {(d.code, d.obj) for d in diags}
        # Direct outputs of the bumped stage: stale at the root.
        assert ("VDG601", "field00000.brg") in flagged
        # Transitively derived replicas: stale via upstream inputs.
        assert ("VDG602", "field00000.cand") in flagged
        assert ("VDG602", "stripe000.catalog") in flagged
        # Upstream of the bump stays clean.
        upstream = {obj for _code, obj in flagged}
        assert not any(obj.endswith(".gal") for obj in upstream)
        assert not any(obj.endswith(".img") for obj in upstream)
        assert all(code != "VDG601" or obj.endswith(".brg")
                   for code, obj in flagged)

    def test_compatibility_assertion_silences_staleness(self, tmp_path):
        catalog, _ = self._materialized_sdss(tmp_path)
        analyzer = catalog.live_analyzer()
        catalog.define(
            "TR sdss-brg@2.0( output brgs, input galaxies, "
            'none maglim="17.5" ) {\n'
            "  argument stdin = ${input:galaxies};\n"
            "  argument stdout = ${output:brgs};\n"
            '  exec = "py:sdss-brg";\n'
            "}\n"
        )
        assert analyzer.diagnostics(passes=["staleness"])
        catalog.versions.assert_compatible(
            "sdss-brg", "1.0", "2.0", authority="survey-board"
        )
        # Compatibility lives outside the event stream; callers must
        # invalidate explicitly (repro analyze always starts fresh).
        analyzer.invalidate()
        assert analyzer.diagnostics(passes=["staleness"]) == []

    def test_rerun_after_bump_clears_staleness(self, tmp_path):
        catalog = MemoryCatalog()
        campaign = sdss.define_campaign(
            catalog, fields=2, fields_per_stripe=2
        )
        executor = LocalExecutor(catalog, tmp_path)
        sdss.register_bodies(executor)
        sdss.materialize_fields(executor, campaign, galaxies=100)
        executor.materialize(campaign.targets[0])
        analyzer = catalog.live_analyzer()
        catalog.define(
            "TR sdss-brg@2.0( output brgs, input galaxies, "
            'none maglim="17.0" ) {\n'
            '  argument = "-maglim "${none:maglim};\n'
            "  argument stdin = ${input:galaxies};\n"
            "  argument stdout = ${output:brgs};\n"
            '  exec = "py:sdss-brg";\n'
            "}\n"
        )
        assert analyzer.diagnostics(passes=["staleness"])
        # Re-executing with the new recipe refreshes the stamps.
        executor.materialize(campaign.targets[0], reuse="never")
        assert analyzer.diagnostics(passes=["staleness"]) == []


class TestTypeFlowPass:
    TYPED_VDL = """
TR consume( output o, input i : SDSS/Simple/ASCII ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/c";
}
TR wrap( output o, input x ) {
  consume( o=${output:o}, i=${input:x} );
}
DV w1->wrap( o=@{output:"res"}, x=@{input:"mydata"} );
"""

    def test_nonconforming_deep_type_flagged(self):
        catalog = MemoryCatalog().define(self.TYPED_VDL)
        analyzer = catalog.live_analyzer()
        catalog.add_dataset(
            Dataset(
                name="mydata",
                dataset_type=DatasetType(
                    content="Image-raw", format="Simple", encoding="Binary"
                ),
            ),
            replace=True,
        )
        diags = analyzer.diagnostics(passes=["type-flow"])
        assert [d.code for d in diags] == ["VDG621"]
        assert "consume.i" in diags[0].message

    def test_untyped_dataset_stays_silent(self):
        # May-analysis: no declared or inferred type means no finding.
        catalog = MemoryCatalog().define(self.TYPED_VDL)
        analyzer = catalog.live_analyzer()
        assert analyzer.diagnostics(passes=["type-flow"]) == []

    def test_retype_event_clears_finding(self):
        catalog = MemoryCatalog().define(self.TYPED_VDL)
        analyzer = catalog.live_analyzer()
        catalog.add_dataset(
            Dataset(
                name="mydata",
                dataset_type=DatasetType(
                    content="Image-raw", format="Simple", encoding="Binary"
                ),
            ),
            replace=True,
        )
        assert analyzer.diagnostics(passes=["type-flow"])
        catalog.add_dataset(
            Dataset(
                name="mydata",
                dataset_type=DatasetType(
                    content="SDSS", format="Simple", encoding="ASCII"
                ),
            ),
            replace=True,
        )
        assert analyzer.diagnostics(passes=["type-flow"]) == []


class TestOutputConflictPass:
    CONFLICT_VDL = """
TR emitx( output o ) { argument stdout = ${output:o}; exec = "/bin/e"; }
TR twice( output o ) {
  emitx( o=${output:o} );
  emitx( o=${output:o} );
}
TR hidden( output o ) {
  emitx( o=${output:o} );
  emitx( o="shared.tmp" );
}
"""

    def test_self_duplicate_through_compound(self):
        catalog = MemoryCatalog().define(
            self.CONFLICT_VDL + 'DV t1->twice( o=@{output:"dup.out"} );'
        )
        diags = catalog.live_analyzer().diagnostics(
            passes=["output-conflict"]
        )
        assert [d.code for d in diags] == ["VDG631"]
        assert "more than once" in diags[0].message

    def test_cross_writer_literal_conflict(self):
        catalog = MemoryCatalog().define(
            self.CONFLICT_VDL
            + 'DV h1->hidden( o=@{output:"h1.out"} );\n'
            + 'DV h2->hidden( o=@{output:"h2.out"} );'
        )
        diags = catalog.live_analyzer().diagnostics(
            passes=["output-conflict"]
        )
        assert len(diags) == 1  # each pair reported once
        assert "'h1' and 'h2'" in diags[0].message
        assert "shared.tmp" in diags[0].message

    def test_removing_one_writer_clears_conflict(self):
        catalog = MemoryCatalog().define(
            self.CONFLICT_VDL
            + 'DV h1->hidden( o=@{output:"h1.out"} );\n'
            + 'DV h2->hidden( o=@{output:"h2.out"} );'
        )
        analyzer = catalog.live_analyzer()
        assert analyzer.diagnostics(passes=["output-conflict"])
        catalog.remove_derivation("h1")
        assert analyzer.diagnostics(passes=["output-conflict"]) == []

    def test_surface_surface_left_to_vdg201(self):
        catalog = MemoryCatalog().define(
            self.CONFLICT_VDL
            + 'DV a->emitx( o=@{output:"same.out"} );\n'
            + 'DV b->emitx( o=@{output:"same.out"} );'
        )
        diags = catalog.live_analyzer().diagnostics(
            passes=["output-conflict"]
        )
        assert diags == []  # the static surface rule owns that pair
