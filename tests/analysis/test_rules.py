"""Golden tests: one minimal triggering program per diagnostic code.

Each snippet here also appears (in spirit) in ``docs/LINTING.md``; if a
rule's behavior changes, update both.
"""

import json

import pytest

from repro.analysis import (
    Linter,
    RuleRegistry,
    Severity,
    default_rules,
    render_json,
)
from repro.analysis.reporters import exit_code
from repro.core.versioning import VersionRegistry

SIMPLE_PAIR = """TR extract( input a, output b ) {
  exec = "/bin/extract";
  argument = ${input:a}" "${output:b};
}
TR analyze( input x, output y ) {
  exec = "/bin/analyze";
  argument = ${input:x}" "${output:y};
}
"""


def lint(source, **kwargs):
    return Linter(**kwargs).lint_source(source, file="p.vdl")


def codes(source, **kwargs):
    return [d.code for d in lint(source, **kwargs).diagnostics]


class TestFrontEndCodes:
    def test_vdg000_parse_error(self):
        result = lint("TR broken( input a {")
        (diag,) = result.diagnostics
        assert diag.code == "VDG000"
        assert diag.severity is Severity.ERROR
        assert diag.span.line == 1
        assert diag.span.column > 0

    def test_vdg010_semantic_error_has_line(self):
        source = (
            'TR t( input a ) {\n'
            '  exec = "/bin/t";\n'
            "  argument = ${input:nope};\n"
            "}\n"
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG010"]
        assert "undeclared formal" in diag.message
        assert diag.span.line == 3

    def test_vdg010_does_not_mask_other_declarations(self):
        # A broken TR must not stop the racy DVs from being checked.
        source = (
            SIMPLE_PAIR
            + 'TR broken( input a ) {\n  exec = "/t";\n'
            + "  argument = ${input:ghost};\n}\n"
            + 'DV d1->extract( a=@{input:"r"}, b=@{output:"o.dat"} );\n'
            + 'DV d2->analyze( x=@{input:"r"}, y=@{output:"o.dat"} );\n'
        )
        found = codes(source)
        assert "VDG010" in found
        assert "VDG201" in found


class TestSignatureCodes:
    def test_vdg001_duplicate_transformation(self):
        source = (
            'TR extract( input a, output b ) {\n  exec = "/e";\n'
            "  argument = ${input:a}${output:b};\n}\n"
            'TR extract( input a, output b ) {\n  exec = "/e2";\n'
            "  argument = ${input:a}${output:b};\n}\n"
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG001"]
        assert diag.span.line == 5

    def test_vdg002_unknown_dv_target(self):
        assert codes('DV d->ghost( a=@{input:"r.dat"} );') == [
            "VDG002",
            "VDG403",
        ]

    def test_vdg002_unknown_compound_callee(self):
        source = (
            "TR outer( input a ) {\n"
            "  ghost( x=${input:a} );\n"
            "}\n"
        )
        assert "VDG002" in codes(source)

    def test_vdg002_skips_remote_targets(self):
        source = 'DV d->vdp://other.org/tr( a=@{input:"r.dat"} );'
        assert "VDG002" not in codes(source)

    def test_vdg101_unknown_actual(self):
        source = SIMPLE_PAIR + (
            'DV d->extract( a=@{input:"r"}, b=@{output:"o"}, zz="1" );'
        )
        assert "VDG101" in codes(source)

    def test_vdg102_missing_required_actual(self):
        source = SIMPLE_PAIR + 'DV d->extract( a=@{input:"r"} );'
        assert "VDG102" in codes(source)

    def test_vdg102_defaulted_formal_not_required(self):
        source = (
            'TR t( input a, none tag="x" ) {\n'
            '  exec = "/t";\n'
            "  argument = ${input:a}${none:tag};\n"
            "}\n"
            'DV d->t( a=@{input:"r"} );\n'
        )
        assert "VDG102" not in codes(source)

    def test_vdg103_direction_mismatch(self):
        source = SIMPLE_PAIR + (
            'DV d->extract( a=@{output:"r"}, b=@{output:"o"} );'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG103"]
        assert "'input'" in diag.message and "'output'" in diag.message

    def test_vdg103_inout_formal_accepts_any_direction(self):
        source = (
            "TR t( inout d ) {\n"
            '  exec = "/t";\n'
            "  argument = ${inout:d};\n"
            "}\n"
            'DV d1->t( d=@{input:"a.dat"} );\n'
        )
        assert "VDG103" not in codes(source)

    def test_vdg104_string_for_dataset_formal(self):
        source = SIMPLE_PAIR + 'DV d->extract( a="oops", b=@{output:"o"} );'
        assert "VDG104" in codes(source)

    def test_vdg104_dataset_for_string_formal(self):
        source = (
            'TR t( none tag ) {\n  exec = "/t";\n'
            "  argument = ${none:tag};\n}\n"
            'DV d->t( tag=@{input:"r.dat"} );\n'
        )
        assert "VDG104" in codes(source)

    def test_vdg105_type_mismatch_across_derivations(self):
        source = (
            "TR make( output o : ROOT-IO-file ) {\n"
            '  exec = "/m";\n  argument = ${output:o};\n}\n'
            "TR need( input i : Spectrometry-raw ) {\n"
            '  exec = "/n";\n  argument = ${input:i};\n}\n'
            'DV p->make( o=@{output:"x.dat"} );\n'
            'DV c->need( i=@{input:"x.dat"} );\n'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG105"]
        assert "x.dat" in diag.message
        assert diag.span.line == 10

    def test_vdg105_silent_when_producer_untyped(self):
        source = SIMPLE_PAIR.replace(
            "input x", "input x : Spectrometry-raw"
        ) + (
            'DV p->extract( a=@{input:"r"}, b=@{output:"mid"} );\n'
            'DV c->analyze( x=@{input:"mid"}, y=@{output:"out"} );\n'
        )
        assert "VDG105" not in codes(source)

    def test_vdg106_unknown_type_name(self):
        source = (
            "TR t( input a : NoSuchType ) {\n"
            '  exec = "/t";\n  argument = ${input:a};\n}\n'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG106"]
        assert "NoSuchType" in diag.message
        # The plain VDG010 for the same failure must be deduplicated.
        assert "VDG010" not in [d.code for d in result.diagnostics]


class TestRaceCodes:
    def test_vdg201_two_pure_outputs(self):
        source = SIMPLE_PAIR + (
            'DV d1->extract( a=@{input:"r"}, b=@{output:"o.dat"} );\n'
            'DV d2->analyze( x=@{input:"r"}, y=@{output:"o.dat"} );\n'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG201"]
        assert diag.severity is Severity.ERROR
        assert "o.dat" in diag.message

    def test_vdg201_single_producer_is_fine(self):
        source = SIMPLE_PAIR + (
            'DV d1->extract( a=@{input:"r"}, b=@{output:"mid"} );\n'
            'DV d2->analyze( x=@{input:"mid"}, y=@{output:"out"} );\n'
        )
        assert "VDG201" not in codes(source)

    def test_vdg202_compound_calls_write_same_sink(self):
        source = (
            "TR step( input i, output o ) {\n"
            '  exec = "/s";\n  argument = ${input:i}${output:o};\n}\n'
            "TR outer( input raw, output final ) {\n"
            "  step( i=${input:raw}, o=${output:final} );\n"
            "  step( i=${input:raw}, o=${output:final} );\n"
            "}\n"
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG202"]
        assert "final" in diag.message

    def test_vdg203_inout_aliases_other_use(self):
        source = (
            "TR upd( inout d ) {\n"
            '  exec = "/u";\n  argument = ${inout:d};\n}\n'
            + SIMPLE_PAIR
            + 'DV d1->upd( d=@{inout:"shared"} );\n'
            'DV d2->extract( a=@{input:"shared"}, b=@{output:"o"} );\n'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG203"]
        assert diag.severity is Severity.WARNING

    def test_vdg203_lone_inout_is_fine(self):
        source = (
            "TR upd( inout d ) {\n"
            '  exec = "/u";\n  argument = ${inout:d};\n}\n'
            'DV d1->upd( d=@{inout:"mine"} );\n'
        )
        assert "VDG203" not in codes(source)


class TestCycleCode:
    def test_vdg301_two_dv_cycle(self):
        source = SIMPLE_PAIR + (
            'DV d1->extract( a=@{input:"b.dat"}, b=@{output:"a.dat"} );\n'
            'DV d2->analyze( x=@{input:"a.dat"}, y=@{output:"b.dat"} );\n'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG301"]
        assert "d1" in diag.message and "d2" in diag.message

    def test_vdg301_self_cycle(self):
        source = SIMPLE_PAIR + (
            'DV d1->extract( a=@{input:"x.dat"}, b=@{output:"x.dat"} );\n'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG301"]
        assert "depends on itself" in diag.message

    def test_vdg301_acyclic_chain_is_fine(self):
        source = SIMPLE_PAIR + (
            'DV d1->extract( a=@{input:"r"}, b=@{output:"mid"} );\n'
            'DV d2->analyze( x=@{input:"mid"}, y=@{output:"out"} );\n'
        )
        assert "VDG301" not in codes(source)


class TestDeadCodeCodes:
    def test_vdg401_unused_string_formal(self):
        source = (
            'TR t( input a, none tag="x" ) {\n'
            '  exec = "/t";\n  argument = ${input:a};\n}\n'
            'DV d->t( a=@{input:"r"} );\n'
        )
        assert "VDG401" in codes(source)

    def test_vdg401_ignores_unreferenced_dataset_formals(self):
        # Dataset formals drive staging even when absent from templates.
        source = (
            "TR t( input a, input extra ) {\n"
            '  exec = "/t";\n  argument = ${input:a};\n}\n'
            'DV d->t( a=@{input:"r"}, extra=@{input:"s"} );\n'
        )
        assert "VDG401" not in codes(source)

    def test_vdg401_compound_flags_any_unbound_formal(self):
        source = (
            "TR step( input i ) {\n"
            '  exec = "/s";\n  argument = ${input:i};\n}\n'
            "TR outer( input used, input unused ) {\n"
            "  step( i=${input:used} );\n"
            "}\n"
            'DV d->outer( used=@{input:"r"}, unused=@{input:"s"} );\n'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG401"]
        assert "unused" in diag.message

    def test_vdg402_never_called(self):
        result = lint(SIMPLE_PAIR)
        found = [d for d in result.diagnostics if d.code == "VDG402"]
        assert {d.obj for d in found} == {"extract", "analyze"}

    def test_vdg402_compound_call_counts_as_use(self):
        source = (
            "TR step( input i ) {\n"
            '  exec = "/s";\n  argument = ${input:i};\n}\n'
            "TR outer( input a ) {\n"
            "  step( i=${input:a} );\n"
            "}\n"
            'DV d->outer( a=@{input:"r"} );\n'
        )
        assert "VDG402" not in codes(source)

    def test_vdg403_consumed_never_produced_is_info(self):
        source = SIMPLE_PAIR + (
            'DV d->extract( a=@{input:"raw"}, b=@{output:"o"} );'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG403"]
        assert diag.severity is Severity.INFO
        assert exit_code(result) != 1 or result.errors

    def test_vdg404_shadowed_dv_name(self):
        source = SIMPLE_PAIR + (
            'DV d->extract( a=@{input:"r"}, b=@{output:"o1"} );\n'
            'DV d->analyze( x=@{input:"o1"}, y=@{output:"o2"} );\n'
        )
        assert "VDG404" in codes(source)


class TestVersionCodes:
    def test_vdg501_invalid_tr_version(self):
        source = (
            "TR t@beta( input a ) {\n"
            '  exec = "/t";\n  argument = ${input:a};\n}\n'
        )
        assert "VDG501" in codes(source)

    def test_vdg502_unknown_requested_version(self):
        source = SIMPLE_PAIR + (
            'DV d->extract@9.9( a=@{input:"r"}, b=@{output:"o"} );'
        )
        result = lint(source)
        (diag,) = [d for d in result.diagnostics if d.code == "VDG502"]
        assert diag.severity is Severity.WARNING
        assert "9.9" in diag.message

    def test_vdg502_matching_version_is_fine(self):
        source = SIMPLE_PAIR + (
            'DV d->extract@1.0( a=@{input:"r"}, b=@{output:"o"} );'
        )
        assert "VDG502" not in codes(source)

    def test_vdg502_suppressed_by_compatibility_assertion(self):
        versions = VersionRegistry()
        versions.assert_compatible("extract", "1.0", "9.9")
        source = SIMPLE_PAIR + (
            'DV d->extract@9.9( a=@{input:"r"}, b=@{output:"o"} );'
        )
        assert "VDG502" not in codes(source, versions=versions)


class TestSuppression:
    RACY = SIMPLE_PAIR + (
        'DV d1->extract( a=@{input:"r"}, b=@{output:"o"} );\n'
        'DV d2->analyze( x=@{input:"r"}, y=@{output:"o"} );\n'
    )

    def test_disable_rule_by_name(self):
        registry = default_rules()
        registry.disable("output-race")
        assert "VDG201" not in codes(self.RACY, registry=registry)

    def test_disable_single_code(self):
        registry = default_rules()
        registry.disable("VDG201")
        found = codes(self.RACY, registry=registry)
        assert "VDG201" not in found
        assert "VDG403" in found  # sibling rules still run

    def test_registry_rejects_duplicate_names(self):
        registry = default_rules()
        with pytest.raises(ValueError, match="duplicate rule name"):
            registry.register(registry.rule("output-race"))

    def test_custom_rule_plugs_in(self):
        from repro.analysis import Diagnostic, Rule

        def no_tabs(ctx):
            return [
                Diagnostic("VDG900", Severity.INFO, "custom finding")
            ]

        registry = RuleRegistry(
            [Rule("no-tabs", ("VDG900",), "demo", no_tabs)]
        )
        assert codes("", registry=registry) == ["VDG900"]


class TestAcceptanceScenario:
    """ISSUE acceptance: collision + cycle + type violation in one
    program reports three distinct codes with positions, exits non-zero,
    and the JSON output is machine-parseable."""

    SOURCE = (
        "TR make( output o : ROOT-IO-file ) {\n"       # 1
        '  exec = "/m";\n  argument = ${output:o};\n}\n'
        "TR need( input i : Spectrometry-raw, output o ) {\n"  # 5
        '  exec = "/n";\n  argument = ${input:i}${output:o};\n}\n'
        'DV p1->make( o=@{output:"x.dat"} );\n'        # 9
        'DV p2->make( o=@{output:"x.dat"} );\n'        # 10
        'DV c->need( i=@{input:"x.dat"}, o=@{output:"y.dat"} );\n'  # 11
        'DV loop1->need( i=@{input:"w1.dat"}, o=@{output:"w2.dat"} );\n'
        'DV loop2->need( i=@{input:"w2.dat"}, o=@{output:"w1.dat"} );\n'
    )

    def test_three_distinct_codes_with_positions(self):
        result = lint(self.SOURCE)
        found = {d.code for d in result.diagnostics}
        assert {"VDG201", "VDG301", "VDG105"} <= found
        by_code = {d.code: d for d in result.diagnostics}
        assert by_code["VDG201"].span.line == 10
        assert by_code["VDG105"].span.line == 11
        assert all(
            d.span.file == "p.vdl" and d.span.line > 0
            for d in result.diagnostics
        )

    def test_exit_code_is_nonzero(self):
        assert exit_code(lint(self.SOURCE)) == 1

    def test_json_output_parses(self):
        payload = json.loads(render_json(lint(self.SOURCE)))
        assert payload["exit_code"] == 1
        assert payload["summary"]["error"] >= 3
        codes_in_json = {d["code"] for d in payload["diagnostics"]}
        assert {"VDG201", "VDG301", "VDG105"} <= codes_in_json
