"""Property: incremental re-analysis ≡ cold full analysis.

Any sequence of catalog mutations, interleaved with queries that force
incremental solves, must leave the live analyzer with *byte-identical*
diagnostics to a fresh analyzer cold-solving the same catalog.  This is
the correctness contract of the whole incremental machinery: the least
fixpoint is order-independent, so no mutation schedule may change it.
"""

from __future__ import annotations

import json

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.analysis.incremental import IncrementalAnalyzer
from repro.catalog.memory import MemoryCatalog
from repro.core.derivation import DatasetArg, Derivation
from repro.core.invocation import Invocation
from repro.core.naming import VDPRef
from repro.core.recipe import stamp_recipe
from repro.core.replica import Replica

#: Small closed universes keep collisions (the interesting case) likely.
DATASETS = [f"d{i}" for i in range(6)]
DERIVATIONS = [f"v{i}" for i in range(5)]

BASE_VDL = """
TR step( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/step";
}
TR twostep( output o, input i ) {
  step( o=${output:o}, i=${input:i} );
  step( o="scratch.tmp", i=${input:i} );
}
"""

define_op = st.tuples(
    st.just("define"),
    st.sampled_from(DERIVATIONS),
    st.sampled_from(DATASETS),  # output
    st.sampled_from(DATASETS),  # input
    st.sampled_from(["step", "twostep"]),
)
remove_op = st.tuples(st.just("remove"), st.sampled_from(DERIVATIONS))
replicate_op = st.tuples(st.just("replicate"), st.sampled_from(DATASETS))
drop_replica_op = st.tuples(st.just("drop-replica"), st.sampled_from(DATASETS))
run_op = st.tuples(st.just("run"), st.sampled_from(DERIVATIONS))
bump_op = st.tuples(st.just("bump"), st.sampled_from(["step", "twostep"]))
query_op = st.tuples(st.just("query"))

operations = st.lists(
    st.one_of(
        define_op,
        remove_op,
        replicate_op,
        drop_replica_op,
        run_op,
        bump_op,
        query_op,
    ),
    min_size=1,
    max_size=12,
)


class Driver:
    """Applies one mutation op to a catalog, tolerating no-ops."""

    def __init__(self, catalog: MemoryCatalog) -> None:
        self.catalog = catalog
        self.counter = 0
        self.replicas: dict[str, list[str]] = {}

    def apply(self, op: tuple) -> None:
        self.counter += 1
        kind = op[0]
        if kind == "define":
            _, name, out, inp, target = op
            if out == inp:
                return  # would be a self-loop; the generator skips it
            dv = Derivation(
                name=name,
                transformation=VDPRef.parse(
                    target, default_kind="transformation"
                ),
                actuals={
                    "o": DatasetArg(dataset=out, direction="output"),
                    "i": DatasetArg(dataset=inp, direction="input"),
                },
            )
            self.catalog.add_derivation(dv, replace=True, validate=False)
        elif kind == "remove":
            _, name = op
            if self.catalog.has_derivation(name):
                self.catalog.remove_derivation(name)
        elif kind == "replicate":
            _, lfn = op
            replica = Replica(
                dataset_name=lfn,
                location="site-a",
                replica_id=f"r{self.counter}",
            )
            self.catalog.add_replica(replica)
            self.replicas.setdefault(lfn, []).append(replica.replica_id)
        elif kind == "drop-replica":
            _, lfn = op
            ids = self.replicas.get(lfn)
            if ids:
                self.catalog.remove_replica(ids.pop())
        elif kind == "run":
            _, name = op
            if not self.catalog.has_derivation(name):
                return
            dv = self.catalog.get_derivation(name)
            tr = self.catalog.get_transformation(
                dv.transformation.name.split("@")[0]
            )
            invocation = Invocation(
                derivation_name=name,
                invocation_id=f"inv-{self.counter:04d}",
                start_time=float(self.counter),
            )
            stamp_recipe(invocation, dv, tr)
            self.catalog.add_invocation(invocation)
        elif kind == "bump":
            _, tr_name = op
            body = (
                "  argument stdin = ${input:i};\n"
                "  argument stdout = ${output:o};\n"
                f'  exec = "/bin/{tr_name}-{self.counter}";\n'
                if tr_name == "step"
                else "  step( o=${output:o}, i=${input:i} );\n"
            )
            self.catalog.define(
                f"TR {tr_name}@1.{self.counter}( output o, input i ) {{\n"
                f"{body}}}\n"
            )


def rendered(diagnostics) -> str:
    return json.dumps([d.as_dict() for d in diagnostics], sort_keys=True)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_incremental_equals_cold_full_analysis(ops):
    catalog = MemoryCatalog()
    catalog.define(BASE_VDL)
    live = IncrementalAnalyzer(catalog)
    try:
        driver = Driver(catalog)
        for op in ops:
            if op[0] == "query":
                live.diagnostics()  # force an incremental solve mid-run
            else:
                driver.apply(op)
        incremental = rendered(live.diagnostics())
        cold = IncrementalAnalyzer(catalog)
        try:
            full = rendered(cold.diagnostics())
        finally:
            cold.close()
        assert incremental == full
    finally:
        live.close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_incremental_lint_context_tracks_mutations(ops):
    """The live lint context lists exactly the catalog's derivations."""
    catalog = MemoryCatalog()
    catalog.define(BASE_VDL)
    live = IncrementalAnalyzer(catalog)
    try:
        driver = Driver(catalog)
        for op in ops:
            if op[0] != "query":
                driver.apply(op)
        context = live.lint_context()
        assert sorted(d.name for d in context.dvs) == sorted(
            catalog.derivation_names()
        )
    finally:
        live.close()
