"""Lint the shipped workloads: the canonical generator must be clean,
and the SDSS/HEP catalogs must produce exactly their known findings."""

from repro.analysis import Linter, Severity
from repro.analysis.reporters import exit_code
from repro.catalog.memory import MemoryCatalog
from repro.workloads import canonical, hep, sdss


def lint_catalog(catalog):
    return Linter().lint_catalog(catalog)


class TestCanonical:
    def test_generated_graph_lints_clean(self):
        # max_fanin=4 exercises every declared canonical arity, so no
        # dead-code findings either: zero diagnostics (ISSUE acceptance).
        catalog = MemoryCatalog()
        canonical.generate_graph(catalog, nodes=60, max_fanin=4, seed=1)
        result = lint_catalog(catalog)
        assert result.diagnostics == []
        assert exit_code(result) == 0

    def test_unused_arity_is_flagged_not_erroneous(self):
        # A small graph that never reaches fan-in 4 leaves canon4 dead.
        catalog = MemoryCatalog()
        canonical.generate_graph(catalog, nodes=30, max_fanin=3, seed=7)
        result = lint_catalog(catalog)
        assert [d.code for d in result.diagnostics] == ["VDG402"]
        assert result.diagnostics[0].obj == "canon4"
        assert exit_code(result) == 2


class TestSDSS:
    def test_campaign_has_only_raw_field_infos(self):
        # Raw field images come off the telescope: consumed, never
        # produced.  That must stay INFO so the campaign exits clean.
        catalog = MemoryCatalog()
        sdss.define_transformations(catalog)
        sdss.define_campaign(catalog, fields=3)
        result = lint_catalog(catalog)
        assert {d.code for d in result.diagnostics} == {"VDG403"}
        assert all(
            d.severity is Severity.INFO for d in result.diagnostics
        )
        assert len(result.diagnostics) == 3  # one per raw field image
        assert exit_code(result) == 0

    def test_info_suppressible(self):
        from repro.analysis import default_rules

        registry = default_rules()
        registry.disable("VDG403")
        catalog = MemoryCatalog()
        sdss.define_transformations(catalog)
        sdss.define_campaign(catalog, fields=2)
        result = Linter(registry=registry).lint_catalog(catalog)
        assert result.diagnostics == []


class TestHEP:
    def test_run_flags_unused_chain_tr(self):
        catalog = MemoryCatalog()
        hep.define_transformations(catalog)
        hep.define_analysis_chain(catalog, "run1")
        result = lint_catalog(catalog)
        assert [(d.code, d.obj) for d in result.diagnostics] == [
            ("VDG402", "hepevt-chain")
        ]

    def test_chain_derivation_makes_catalog_clean(self):
        catalog = MemoryCatalog()
        hep.define_transformations(catalog)
        hep.define_analysis_chain(catalog, "run1")
        # Target the compound chain once; all its formals have defaults.
        catalog.define(
            'DV chain1->hepevt-chain( histogram=@{output:"chain.hist"} );'
        )
        result = lint_catalog(catalog)
        assert result.diagnostics == []
