"""Property tests: lint results are stable under unparse/reparse, and
the linter never raises — whatever the input.

``parse -> unparse -> parse -> lint`` must report the same diagnostic
codes as linting the original text: the linter's findings are facts
about the *program*, not about its formatting.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import Linter, render_json
from repro.core.derivation import DatasetArg, Derivation
from repro.core.naming import VDPRef
from repro.core.transformation import (
    ArgumentTemplate,
    FormalArg,
    FormalRef,
    SimpleTransformation,
)
from repro.vdl.semantics import compile_vdl
from repro.vdl.unparser import unparse

ident = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
lfn = st.from_regex(r"[a-z][a-z0-9_.]{0,8}", fullmatch=True)
direction = st.sampled_from(["input", "output", "inout", "none"])


@st.composite
def programs(draw) -> str:
    """VDL text for a random set of TRs plus DVs targeting them.

    Derivation actuals are drawn from each target's real formals (so
    arity findings stay rare and races/dead-code dominate), but LFNs
    collide freely — exactly the cross-object territory the whole-
    program rules patrol.
    """
    tr_names = draw(st.lists(ident, min_size=1, max_size=3, unique=True))
    trs = []
    for name in tr_names:
        formal_names = draw(
            st.lists(ident, min_size=1, max_size=3, unique=True)
        )
        formals = [
            FormalArg(name=fname, direction=draw(direction))
            for fname in formal_names
        ]
        parts = tuple(
            FormalRef(
                f.name, f.direction if f.direction != "none" else None
            )
            for f in formals
        )
        trs.append(
            SimpleTransformation(
                name=name,
                formals=formals,
                executable="/bin/" + name,
                arguments=[ArgumentTemplate(parts=parts)],
            )
        )
    dvs = []
    n_dvs = draw(st.integers(0, 4))
    dv_names = draw(
        st.lists(ident, min_size=n_dvs, max_size=n_dvs, unique=True)
    )
    for dv_name in dv_names:
        tr = draw(st.sampled_from(trs))
        actuals = {}
        for formal in tr.signature.formals:
            if formal.direction == "none":
                actuals[formal.name] = draw(lfn)
            else:
                actuals[formal.name] = DatasetArg(
                    dataset=draw(lfn), direction=formal.direction
                )
        dvs.append(
            Derivation(
                name=dv_name,
                transformation=VDPRef(tr.name, kind="transformation"),
                actuals=actuals,
            )
        )
    return unparse(trs, dvs)


def lint_codes(source: str):
    result = Linter().lint_source(source)
    return sorted(d.code for d in result.diagnostics)


@settings(max_examples=50, deadline=None)
@given(programs())
def test_lint_stable_under_roundtrip(source):
    first = lint_codes(source)
    objects = compile_vdl(source)
    rewritten = unparse(objects.transformations, objects.derivations)
    assert lint_codes(rewritten) == first


@settings(max_examples=50, deadline=None)
@given(programs())
def test_lint_deterministic_and_sorted(source):
    result = Linter().lint_source(source)
    again = Linter().lint_source(source)
    assert [d.render() for d in result.diagnostics] == [
        d.render() for d in again.diagnostics
    ]
    lines = [d.span.line for d in result.diagnostics]
    assert lines == sorted(lines)
    render_json(result)  # must never raise


@settings(max_examples=80, deadline=None)
@given(st.text(max_size=200))
def test_linter_never_raises_on_junk(source):
    result = Linter().lint_source(source)
    # Junk either parses to something lintable or yields VDG000.
    assert all(d.code.startswith("VDG") for d in result.diagnostics)
