"""Inline ``# vdg: noqa[...]`` suppressions (docs/LINTING.md)."""

from repro.analysis.diagnostics import Diagnostic, Severity, Span
from repro.analysis.linter import Linter
from repro.analysis.suppressions import (
    ALL,
    apply_suppressions,
    is_suppressed,
    parse_suppressions,
)

WARN_VDL = """TR emit( output o, none tag="x" ) {
  argument stdout = ${output:o};
  exec = "/bin/echo";
}
DV e1->emit( o=@{output:"seed.txt"} );
"""


def diag(code, line):
    return Diagnostic(
        code=code,
        severity=Severity.WARNING,
        message="m",
        span=Span(file="f.vdl", line=line),
    )


class TestParsing:
    def test_bare_noqa_suppresses_everything(self):
        table = parse_suppressions("x\nstuff  # vdg: noqa\n")
        assert table == {2: ALL}

    def test_coded_noqa_lists_codes(self):
        table = parse_suppressions("a  # vdg: noqa[VDG201, VDG401]\n")
        assert table == {1: frozenset({"VDG201", "VDG401"})}

    def test_empty_bracket_means_all(self):
        assert parse_suppressions("a  # vdg: noqa[]\n") == {1: ALL}

    def test_case_and_spacing_insensitive(self):
        table = parse_suppressions("a  #  VDG : NOQA [ vdg201 ]\n")
        assert table == {1: frozenset({"VDG201"})}

    def test_plain_comment_is_not_a_suppression(self):
        assert parse_suppressions("a  # just words\n") == {}

    def test_no_comment_lines(self):
        assert parse_suppressions("TR t( output o ) { }\n") == {}


class TestMatching:
    def test_matches_line_and_code(self):
        table = {3: frozenset({"VDG401"})}
        assert is_suppressed(diag("VDG401", 3), table)
        assert not is_suppressed(diag("VDG401", 4), table)
        assert not is_suppressed(diag("VDG999", 3), table)

    def test_all_matches_any_code(self):
        table = {3: ALL}
        assert is_suppressed(diag("VDG401", 3), table)

    def test_apply_without_source_is_identity(self):
        diags = [diag("VDG401", 1)]
        assert apply_suppressions(diags, None) == diags

    def test_apply_filters_only_matching(self):
        source = "a\nb  # vdg: noqa[VDG401]\n"
        diags = [diag("VDG401", 2), diag("VDG402", 2), diag("VDG401", 1)]
        kept = apply_suppressions(diags, source)
        assert [(d.code, d.span.line) for d in kept] == [
            ("VDG402", 2),
            ("VDG401", 1),
        ]


class TestLinterIntegration:
    def test_noqa_silences_a_warning_in_source(self):
        noisy = Linter().lint_source(WARN_VDL, file="p.vdl")
        assert any(d.code == "VDG401" for d in noisy.diagnostics)
        line = next(
            d.span.line for d in noisy.diagnostics if d.code == "VDG401"
        )
        lines = WARN_VDL.splitlines()
        lines[line - 1] += "  # vdg: noqa[VDG401]"
        quiet = Linter().lint_source("\n".join(lines) + "\n", file="p.vdl")
        assert not any(d.code == "VDG401" for d in quiet.diagnostics)

    def test_noqa_is_line_scoped(self):
        # A suppression on an unrelated line must not hide the finding.
        source = "# vdg: noqa[VDG401]\n" + WARN_VDL
        result = Linter().lint_source(source, file="p.vdl")
        assert any(d.code == "VDG401" for d in result.diagnostics)
