"""Tests for the diagnostic primitives (Severity, Span, Diagnostic)."""

import pytest

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    Span,
    count_by_severity,
    max_severity,
)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"
        assert str(Severity.INFO) == "info"

    def test_parse_round_trips(self):
        for severity in Severity:
            assert Severity.parse(str(severity)) is severity

    def test_parse_is_case_insensitive(self):
        assert Severity.parse("ERROR") is Severity.ERROR

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestSpan:
    def test_file_line(self):
        assert str(Span(file="p.vdl", line=12)) == "p.vdl:12"

    def test_file_line_column(self):
        assert str(Span(file="p.vdl", line=12, column=3)) == "p.vdl:12:3"

    def test_unknown_position_renders_file_only(self):
        assert str(Span(file="p.vdl")) == "p.vdl"


class TestDiagnostic:
    def _diag(self, **kw):
        base = dict(
            code="VDG201",
            severity=Severity.ERROR,
            message="two producers",
            span=Span(file="p.vdl", line=4),
            obj="out.dat",
            rule="output-race",
        )
        base.update(kw)
        return Diagnostic(**base)

    def test_render(self):
        assert self._diag().render() == "p.vdl:4: error[VDG201]: two producers"

    def test_as_dict(self):
        d = self._diag().as_dict()
        assert d["code"] == "VDG201"
        assert d["severity"] == "error"
        assert d["file"] == "p.vdl"
        assert d["line"] == 4
        assert d["object"] == "out.dat"
        assert d["rule"] == "output-race"

    def test_sort_key_orders_by_file_then_line(self):
        a = self._diag(span=Span(file="a.vdl", line=9))
        b = self._diag(span=Span(file="b.vdl", line=1))
        c = self._diag(span=Span(file="a.vdl", line=2))
        assert sorted([a, b, c], key=Diagnostic.sort_key) == [c, a, b]


class TestAggregates:
    def test_max_severity_empty(self):
        assert max_severity([]) is None

    def test_max_severity(self):
        diags = [
            Diagnostic("VDG403", Severity.INFO, "x"),
            Diagnostic("VDG401", Severity.WARNING, "y"),
        ]
        assert max_severity(diags) is Severity.WARNING

    def test_count_by_severity_always_has_all_keys(self):
        counts = count_by_severity([])
        assert counts == {"info": 0, "warning": 0, "error": 0}

    def test_count_by_severity(self):
        diags = [
            Diagnostic("VDG201", Severity.ERROR, "a"),
            Diagnostic("VDG201", Severity.ERROR, "b"),
            Diagnostic("VDG403", Severity.INFO, "c"),
        ]
        assert count_by_severity(diags) == {
            "error": 2,
            "warning": 0,
            "info": 1,
        }
