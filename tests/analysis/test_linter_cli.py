"""End-to-end tests for ``repro lint``, ``plan --strict``, and the
positioned front-end errors in ``define``."""

import json

import pytest

from repro.cli import main

CLEAN_VDL = """
TR copy( output o, input i ) {
  argument = ${input:i}" "${output:o};
  exec = "/bin/cp";
}
TR emit( output o ) {
  argument stdout = ${output:o};
  argument msg = "hello-vdg";
  exec = "/bin/echo";
}
DV e1->emit( o=@{output:"seed.txt"} );
DV c1->copy( o=@{output:"copy.txt"}, i=@{input:"seed.txt"} );
"""

RACY_VDL = CLEAN_VDL + """
DV c2->copy( o=@{output:"copy.txt"}, i=@{input:"seed.txt"} );
"""

WARN_VDL = """
TR emit( output o, none tag="x" ) {
  argument stdout = ${output:o};
  exec = "/bin/echo";
}
DV e1->emit( o=@{output:"seed.txt"} );
"""


@pytest.fixture
def run(tmp_path):
    workspace = tmp_path / "ws"

    def invoke(*argv):
        lines = []
        code = main(
            ["--workspace", str(workspace), *argv],
            out=lambda text="": lines.append(str(text)),
        )
        return code, "\n".join(lines)

    return invoke


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestLintFiles:
    def test_clean_file_exits_zero(self, run, tmp_path):
        code, output = run("lint", _write(tmp_path, "p.vdl", CLEAN_VDL))
        assert code == 0
        assert "clean" in output

    def test_errors_exit_one_with_positions(self, run, tmp_path):
        path = _write(tmp_path, "p.vdl", RACY_VDL)
        code, output = run("lint", path)
        assert code == 1
        assert "error[VDG201]" in output
        # Findings carry file:line prefixes into the CLI output.
        assert f"{path}:" in output

    def test_warnings_only_exit_two(self, run, tmp_path):
        code, output = run("lint", _write(tmp_path, "p.vdl", WARN_VDL))
        assert code == 2
        assert "warning[VDG401]" in output

    def test_json_format_parses(self, run, tmp_path):
        code, output = run(
            "lint", _write(tmp_path, "p.vdl", RACY_VDL), "--format", "json"
        )
        assert code == 1
        payload = json.loads(output)
        assert payload["exit_code"] == 1
        assert any(d["code"] == "VDG201" for d in payload["diagnostics"])

    def test_no_rule_suppression(self, run, tmp_path):
        path = _write(tmp_path, "p.vdl", RACY_VDL)
        code, output = run("lint", path, "--no-rule", "VDG201")
        assert code == 0
        assert "VDG201" not in output

    def test_multiple_files_worst_exit_wins(self, run, tmp_path):
        clean = _write(tmp_path, "a.vdl", CLEAN_VDL)
        warn = _write(tmp_path, "b.vdl", WARN_VDL)
        assert run("lint", clean, warn)[0] == 2

    def test_parse_error_reported_not_raised(self, run, tmp_path):
        code, output = run(
            "lint", _write(tmp_path, "p.vdl", "TR broken( input {")
        )
        assert code == 1
        assert "VDG000" in output


class TestLintWorkspace:
    def test_requires_workspace_when_no_files(self, run):
        code, output = run("lint")
        assert code == 1
        assert "no workspace" in output

    def test_lints_defined_catalog(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", RACY_VDL))[0] == 0
        code, output = run("lint")
        assert code == 1
        assert "VDG201" in output
        assert "<workspace>" in output

    def test_lint_records_observability(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CLEAN_VDL))[0] == 0
        assert run("lint")[0] == 0
        code, output = run("stats")
        assert code == 0
        assert "analysis.runs" in output


class TestStrictPlan:
    def test_strict_aborts_on_lint_errors(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", RACY_VDL))[0] == 0
        code, output = run("plan", "copy.txt", "--strict")
        assert code == 1
        assert "plan aborted" in output
        assert "VDG201" in output

    def test_strict_passes_clean_catalog(self, run, tmp_path):
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", CLEAN_VDL))[0] == 0
        code, output = run("plan", "copy.txt", "--strict")
        assert code == 0
        assert "plan for copy.txt" in output

    def test_default_plan_skips_lint(self, run, tmp_path):
        # Races don't stop the planner unless --strict asks for it.
        assert run("init")[0] == 0
        assert run("define", _write(tmp_path, "p.vdl", RACY_VDL))[0] == 0
        code, output = run("plan", "copy.txt")
        assert code == 0
        assert "VDG" not in output


class TestDefinePositions:
    def test_syntax_error_carries_file_and_line(self, run, tmp_path):
        assert run("init")[0] == 0
        path = _write(tmp_path, "bad.vdl", "TR broken( input a {")
        code, output = run("define", path)
        assert code == 1
        assert f"{path}:1: error:" in output

    def test_semantic_error_carries_file_and_line(self, run, tmp_path):
        assert run("init")[0] == 0
        source = (
            'TR t( input a ) {\n  exec = "/t";\n'
            "  argument = ${input:ghost};\n}\n"
        )
        path = _write(tmp_path, "bad.vdl", source)
        code, output = run("define", path)
        assert code == 1
        assert f"{path}:3: error:" in output
        assert "undeclared formal" in output


class TestSystemFacade:
    def test_lint_source_and_catalog(self):
        from repro.system import VirtualDataSystem

        vds = VirtualDataSystem()
        vds.define(CLEAN_VDL)
        assert vds.lint().clean
        racy = 'DV c2->copy( o=@{output:"copy.txt"}, i=@{input:"seed.txt"} );'
        result = vds.lint(CLEAN_VDL + racy)
        assert any(d.code == "VDG201" for d in result.diagnostics)
