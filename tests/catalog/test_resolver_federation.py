"""Tests for cross-catalog resolution (Figs 2-3) and federation (Fig 4)."""

import pytest

from repro.catalog.federation import FederatedIndex, scan_catalogs
from repro.catalog.memory import MemoryCatalog
from repro.catalog.resolver import CatalogNetwork, ReferenceResolver
from repro.core.dataset import Dataset
from repro.core.naming import VDPRef
from repro.core.types import DatasetType
from repro.errors import FederationError, ReferenceError_


def fig2_network():
    """The exact Fig 2 scenario: Wisconsin defines srch and cmpsim
    (composed of Illinois' sim and cmp); Illinois defines srch-muon
    against Wisconsin's srch."""
    net = CatalogNetwork()
    wisconsin = net.register(MemoryCatalog(authority="physics.wisconsin.edu"))
    illinois = net.register(MemoryCatalog(authority="physics.illinois.edu"))
    illinois.define(
        """
        TR sim( output out, input cfg ) {
          argument stdin = ${input:cfg};
          argument stdout = ${output:out};
          exec = "/usr/bin/sim";
        }
        TR cmp( output z, input raw ) {
          argument stdin = ${input:raw};
          argument stdout = ${output:z};
          exec = "/usr/bin/cmp";
        }
        """
    )
    wisconsin.define(
        """
        TR srch( output hits, input events, none particle="any" ) {
          argument = "-p "${none:particle};
          argument stdin = ${input:events};
          argument stdout = ${output:hits};
          exec = "/usr/bin/srch";
        }
        TR cmpsim( input cfg, inout mid=@{inout:"cmpsim.mid":""}, output z ) {
          vdp://physics.illinois.edu/sim( out=${output:mid}, cfg=${cfg} );
          vdp://physics.illinois.edu/cmp( z=${z}, raw=${input:mid} );
        }
        """
    )
    illinois.define(
        """
        DV srch-muon->vdp://physics.wisconsin.edu/srch(
            hits=@{output:"muon.hits"}, events=@{input:"events.all"},
            particle="muon" );
        """
    )
    return net, wisconsin, illinois


class TestCatalogNetwork:
    def test_register_requires_authority(self):
        with pytest.raises(ReferenceError_):
            CatalogNetwork().register(MemoryCatalog())

    def test_lookup(self):
        net, wisconsin, _ = fig2_network()
        assert net.catalog("physics.wisconsin.edu") is wisconsin
        with pytest.raises(ReferenceError_):
            net.catalog("nowhere.edu")

    def test_iteration_sorted(self):
        net, _, _ = fig2_network()
        assert net.authorities() == [
            "physics.illinois.edu", "physics.wisconsin.edu",
        ]
        assert len(net) == 2
        assert "physics.illinois.edu" in net


class TestFig2Resolution:
    def test_derivation_to_remote_transformation(self):
        net, wisconsin, illinois = fig2_network()
        resolver = ReferenceResolver(illinois, net)
        dv = illinois.get_derivation("srch-muon")
        tr, where = resolver.transformation(dv.transformation)
        assert tr.name == "srch"
        assert where is wisconsin

    def test_compound_with_remote_callees(self):
        net, wisconsin, illinois = fig2_network()
        resolver = ReferenceResolver(wisconsin, net)
        cmpsim = wisconsin.get_transformation("cmpsim")
        callees = resolver.expand_compound(cmpsim)
        assert callees[0].name == "sim"
        assert callees[1].name == "cmp"

    def test_dangling_hyperlink(self):
        net, wisconsin, _ = fig2_network()
        resolver = ReferenceResolver(wisconsin, net)
        with pytest.raises(ReferenceError_):
            resolver.transformation(
                VDPRef("ghost", authority="physics.illinois.edu",
                       kind="transformation")
            )

    def test_local_preferred_over_scope_chain(self):
        net, wisconsin, illinois = fig2_network()
        illinois.define('TR srch( output o ) { exec = "/local/srch"; }')
        resolver = ReferenceResolver(
            illinois, net, scope_chain=["physics.wisconsin.edu"]
        )
        tr, where = resolver.transformation(VDPRef("srch"))
        assert where is illinois


class TestFig3CrossServerLineage:
    def make_tiers(self):
        """Personal -> group -> collaboration provenance chain."""
        net = CatalogNetwork()
        collab = net.register(MemoryCatalog(authority="collab.org"))
        group = net.register(MemoryCatalog(authority="group.org"))
        personal = MemoryCatalog(authority="me.org")
        collab.define(
            """
            TR calibrate( output cal, input raw ) {
              argument stdin = ${input:raw};
              argument stdout = ${output:cal};
              exec = "/bin/calib";
            }
            DV calib1->calibrate( cal=@{output:"calibrated.v1"},
                                  raw=@{input:"detector.raw"} );
            """
        )
        group.define(
            """
            TR reduce( output red, input cal ) {
              argument stdin = ${input:cal};
              argument stdout = ${output:red};
              exec = "/bin/reduce";
            }
            DV reduce1->reduce( red=@{output:"reduced.v1"},
                                cal=@{input:"calibrated.v1"} );
            """
        )
        personal.define(
            """
            TR myplot( output plot, input red ) {
              argument stdin = ${input:red};
              argument stdout = ${output:plot};
              exec = "/bin/plot";
            }
            DV plot1->myplot( plot=@{output:"myplot.png"},
                              red=@{input:"reduced.v1"} );
            """
        )
        resolver = ReferenceResolver(
            personal, net, scope_chain=["group.org", "collab.org"]
        )
        return resolver

    def test_producers_cross_servers(self):
        resolver = self.make_tiers()
        producers = resolver.producers_of("reduced.v1")
        assert [(dv.name, where) for dv, where in producers] == [
            ("reduce1", "group.org")
        ]

    def test_full_chain(self):
        from repro.provenance.lineage import cross_catalog_lineage

        resolver = self.make_tiers()
        report = cross_catalog_lineage(resolver, "myplot.png")
        assert report.depth() == 3
        assert report.all_derivations() == {"plot1", "reduce1", "calib1"}
        rendered = report.render()
        assert "@group.org" in rendered
        assert "@collab.org" in rendered


@pytest.fixture
def four_catalogs():
    """Fig 4: four catalogs at different locations/scopes."""
    net = CatalogNetwork()
    catalogs = []
    for i, authority in enumerate(
        ["personal.a", "personal.b", "group.x", "collab.org"]
    ):
        catalog = net.register(MemoryCatalog(authority=authority))
        for j in range(5):
            catalog.add_dataset(
                Dataset(
                    name=f"ds-{authority.split('.')[0]}-{i}{j}",
                    dataset_type=DatasetType(content="SDSS"),
                    attributes={"quality": "approved" if j % 2 == 0 else "raw"},
                )
            )
        catalogs.append(catalog)
    return catalogs


class TestFederatedIndex:
    def test_attach_and_count(self, four_catalogs):
        index = FederatedIndex("all", kinds=("dataset",))
        for catalog in four_catalogs:
            index.attach(catalog)
        assert len(index) == 20
        assert index.members() == [c.authority for c in four_catalogs]

    def test_attach_requires_authority(self):
        index = FederatedIndex("x")
        with pytest.raises(FederationError):
            index.attach(MemoryCatalog())

    def test_find_matches_scan(self, four_catalogs):
        index = FederatedIndex("all", kinds=("dataset",))
        for catalog in four_catalogs:
            index.attach(catalog)
        via_index = {
            (e.authority, e.name) for e in index.find("dataset", name_glob="ds-*")
        }
        via_scan = set(scan_catalogs(four_catalogs, "dataset", name_glob="ds-*"))
        assert via_index == via_scan

    def test_type_query(self, four_catalogs):
        index = FederatedIndex("all", kinds=("dataset",))
        for catalog in four_catalogs:
            index.attach(catalog)
        hits = index.find("dataset", conforms_to=DatasetType(content="SDSS"))
        assert len(hits) == 20
        assert index.find("dataset", conforms_to=DatasetType(content="CMS")) == []

    def test_live_mode_tracks_changes(self, four_catalogs):
        index = FederatedIndex("live", mode="live", kinds=("dataset",))
        index.attach(four_catalogs[0])
        four_catalogs[0].add_dataset(Dataset(name="fresh"))
        assert any(e.name == "fresh" for e in index.find("dataset"))
        four_catalogs[0].remove_dataset("fresh")
        assert not any(e.name == "fresh" for e in index.find("dataset"))

    def test_periodic_mode_goes_stale(self, four_catalogs):
        index = FederatedIndex("stale", mode="periodic", kinds=("dataset",))
        index.attach(four_catalogs[0])
        before = len(index)
        four_catalogs[0].add_dataset(Dataset(name="fresh"))
        assert len(index) == before  # not yet visible
        assert index.pending_updates == 1
        index.refresh()
        assert len(index) == before + 1
        assert index.pending_updates == 0

    def test_deep_index_attribute_query(self, four_catalogs):
        index = FederatedIndex("deep", depth="deep", kinds=("dataset",))
        for catalog in four_catalogs:
            index.attach(catalog)
        approved = index.find("dataset", attributes={"quality": "approved"})
        assert len(approved) == 12  # 3 of 5 per catalog

    def test_shallow_index_rejects_attribute_query(self, four_catalogs):
        index = FederatedIndex("shallow", depth="shallow", kinds=("dataset",))
        index.attach(four_catalogs[0])
        with pytest.raises(FederationError):
            index.find("dataset", attributes={"quality": "approved"})

    def test_entry_filter_scopes_index(self, four_catalogs):
        index = FederatedIndex(
            "approved-only",
            depth="deep",
            kinds=("dataset",),
            entry_filter=lambda e: e.attribute("quality") == "approved",
        )
        for catalog in four_catalogs:
            index.attach(catalog)
        assert len(index) == 12

    def test_entry_ref_resolves(self, four_catalogs):
        net = CatalogNetwork()
        for catalog in four_catalogs:
            net.register(catalog)
        index = FederatedIndex("all", kinds=("dataset",))
        index.attach(four_catalogs[2])
        entry = index.find("dataset")[0]
        resolver = ReferenceResolver(four_catalogs[0], net)
        ds, where = resolver.dataset(entry.ref())
        assert ds.name == entry.name
        assert where.authority == entry.authority

    def test_transformations_and_derivations_indexed(self, four_catalogs):
        four_catalogs[0].define(
            'TR t( output o ) { exec = "/b"; } DV d->t( o=@{output:"x"} );'
        )
        index = FederatedIndex("all")
        index.attach(four_catalogs[0])
        assert index.find("transformation", name_glob="t")
        assert index.find("derivation", name_glob="d")
