"""Property-based tests on catalog round-trip fidelity (hypothesis).

Random schema objects must survive the store/fetch cycle of every
backend bit-for-bit (as observed through their dict forms), and
snapshots must transport whole catalogs losslessly.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.catalog.memory import MemoryCatalog
from repro.catalog.sqlite import SQLiteCatalog
from repro.core.dataset import Dataset
from repro.core.derivation import DatasetArg, Derivation
from repro.core.descriptors import FileDescriptor, VirtualDescriptor
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.core.naming import VDPRef
from repro.core.replica import Replica
from repro.core.types import DatasetType

name = st.from_regex(r"[a-z][a-z0-9_.]{0,14}", fullmatch=True)
scalar = st.one_of(
    st.text(
        alphabet=st.characters(codec="ascii", min_codepoint=32,
                               exclude_characters='"\\'),
        max_size=10,
    ),
    st.integers(-1_000_000, 1_000_000),
    st.booleans(),
)
attributes = st.dictionaries(
    st.from_regex(r"[a-z][a-z0-9_.]{0,10}", fullmatch=True),
    scalar,
    max_size=4,
)


@st.composite
def datasets(draw) -> Dataset:
    descriptor = (
        FileDescriptor(path=draw(name), size=draw(st.integers(0, 10**9)))
        if draw(st.booleans())
        else VirtualDescriptor(size_hint=draw(st.none() | st.integers(0, 10**6)))
    )
    return Dataset(
        name=draw(name),
        dataset_type=DatasetType(
            content=draw(st.sampled_from(["CMS", "SDSS", "Dataset-content"]))
        ),
        descriptor=descriptor,
        attributes=draw(attributes),
        producer=draw(st.none() | name),
    )


@st.composite
def derivations(draw) -> Derivation:
    actual_names = draw(
        st.lists(name, min_size=1, max_size=4, unique=True)
    )
    actuals = {}
    for i, formal in enumerate(actual_names):
        if draw(st.booleans()):
            actuals[formal] = draw(
                st.text(
                    alphabet=st.characters(
                        codec="ascii", min_codepoint=32,
                        exclude_characters='"\\',
                    ),
                    max_size=8,
                )
            )
        else:
            actuals[formal] = DatasetArg(
                dataset=f"{draw(name)}{i}",
                direction=draw(st.sampled_from(["input", "output", "inout"])),
                temporary=draw(st.booleans()),
            )
    return Derivation(
        name=draw(name),
        transformation=VDPRef(draw(name), kind="transformation"),
        actuals=actuals,
        environment=draw(
            st.dictionaries(
                st.from_regex(r"[A-Z]{1,8}", fullmatch=True),
                st.from_regex(r"[a-z0-9]{0,8}", fullmatch=True),
                max_size=3,
            )
        ),
        attributes=draw(attributes),
    )


@st.composite
def invocations(draw) -> Invocation:
    return Invocation(
        derivation_name=draw(name),
        status=draw(st.sampled_from(["success", "failure", "aborted"])),
        start_time=draw(st.floats(0, 1e9, allow_nan=False)),
        context=ExecutionContext.make(
            site=draw(name),
            host=draw(name),
            environment=draw(
                st.dictionaries(
                    st.from_regex(r"[A-Z]{1,6}", fullmatch=True),
                    st.from_regex(r"[a-z0-9]{0,6}", fullmatch=True),
                    max_size=2,
                )
            ),
        ),
        usage=ResourceUsage(
            cpu_seconds=draw(st.floats(0, 1e6, allow_nan=False)),
            wall_seconds=draw(st.floats(0, 1e6, allow_nan=False)),
            bytes_read=draw(st.integers(0, 10**12)),
            bytes_written=draw(st.integers(0, 10**12)),
        ),
        exit_code=draw(st.integers(-128, 255)),
        error=draw(st.none() | st.from_regex(r"[a-z ]{0,20}", fullmatch=True)),
    )


BACKENDS = ("memory", "sqlite")


def make_catalog(kind):
    return MemoryCatalog() if kind == "memory" else SQLiteCatalog()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(datasets(), st.sampled_from(BACKENDS))
def test_dataset_round_trip(ds, kind):
    catalog = make_catalog(kind)
    catalog.add_dataset(ds)
    assert catalog.get_dataset(ds.name).to_dict() == ds.to_dict()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(derivations(), st.sampled_from(BACKENDS))
def test_derivation_round_trip(dv, kind):
    catalog = make_catalog(kind)
    catalog.add_derivation(dv, validate=False, auto_declare=False)
    assert catalog.get_derivation(dv.name).to_dict() == dv.to_dict()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(invocations(), st.sampled_from(BACKENDS))
def test_invocation_round_trip(inv, kind):
    catalog = make_catalog(kind)
    catalog.add_invocation(inv)
    assert (
        catalog.get_invocation(inv.invocation_id).to_dict() == inv.to_dict()
    )


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(datasets())
def test_replica_round_trip(ds):
    catalog = MemoryCatalog()
    rep = Replica(
        dataset_name=ds.name,
        location="anl",
        size=ds.size_estimate(),
        digest="aa" * 16,
    )
    catalog.add_replica(rep)
    assert catalog.get_replica(rep.replica_id).to_dict() == rep.to_dict()
    assert [r.replica_id for r in catalog.replicas_of(ds.name)] == [
        rep.replica_id
    ]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(derivations(), min_size=1, max_size=5,
             unique_by=lambda d: d.name)
)
def test_snapshot_transport_lossless(dvs):
    source = MemoryCatalog()
    for dv in dvs:
        source.add_derivation(dv, validate=False)
    destination = SQLiteCatalog()
    destination.import_snapshot(source.export_snapshot())
    assert destination.counts() == source.counts()
    for dv in dvs:
        assert destination.get_derivation(dv.name).to_dict() == dv.to_dict()
    # Relationship indexes rebuilt identically.
    for dv in dvs:
        for output in dv.outputs():
            assert {d.name for d in destination.producers_of(output)} == {
                d.name for d in source.producers_of(output)
            }
