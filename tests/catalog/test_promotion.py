"""Tests for publishing definitions between catalogs (§4.1 promotion)."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.catalog.promotion import promote
from repro.catalog.resolver import CatalogNetwork, ReferenceResolver
from repro.errors import NotFoundError
from repro.provenance.lineage import lineage_report
from repro.security.identity import KeyStore
from repro.security.signing import Signer


@pytest.fixture
def world():
    """Alice's personal catalog derives from group-level data."""
    net = CatalogNetwork()
    group = net.register(MemoryCatalog(authority="group.org"))
    personal = MemoryCatalog(authority="alice.org")
    group.define(
        """
        TR reduce( output red, input raw ) {
          argument stdin = ${input:raw};
          argument stdout = ${output:red};
          exec = "/grp/reduce";
        }
        DV reduce1->reduce( red=@{output:"reduced.v1"},
                            raw=@{input:"raw.2002"} );
        """
    )
    personal.define(
        """
        TR polish( output fin, input red ) {
          argument stdin = ${input:red};
          argument stdout = ${output:fin};
          exec = "/home/alice/polish";
        }
        TR megapolish( input red, inout mid=@{inout:"mp.mid":""},
                       output fin ) {
          polish( fin=${output:mid}, red=${red} );
          polish( fin=${fin}, red=${input:mid} );
        }
        DV mine->polish( fin=@{output:"alice.result"},
                         red=@{input:"reduced.v1"} );
        DV mine2->megapolish( fin=@{output:"alice.double"},
                              red=@{input:"reduced.v1"} );
        """
    )
    resolver = ReferenceResolver(personal, net, scope_chain=["group.org"])
    collaboration = MemoryCatalog(authority="collab.org")
    return resolver, personal, group, collaboration


class TestPromote:
    def test_full_recipe_promoted(self, world):
        resolver, personal, group, collaboration = world
        report = promote("alice.result", resolver, collaboration)
        # The whole chain: alice.result <- mine <- reduced.v1 <- reduce1
        assert "alice.result" in report.datasets
        assert "reduced.v1" in report.datasets
        assert set(report.derivations) == {"mine", "reduce1"}
        assert set(report.transformations) == {"polish@1.0", "reduce@1.0"}
        # The promoted recipe is self-contained: lineage works at the
        # destination without any scope chain.
        trail = lineage_report(collaboration, "alice.result")
        assert trail.all_derivations() == {"mine", "reduce1"}

    def test_promotion_localizes_references(self, world):
        resolver, _, _, collaboration = world
        promote("alice.result", resolver, collaboration)
        for name in ("mine", "reduce1"):
            assert collaboration.get_derivation(name).transformation.is_local

    def test_compound_callees_come_along(self, world):
        resolver, _, _, collaboration = world
        report = promote("alice.double", resolver, collaboration)
        assert "megapolish@1.0" in report.transformations
        assert "polish@1.0" in report.transformations

    def test_idempotent(self, world):
        resolver, _, _, collaboration = world
        promote("alice.result", resolver, collaboration)
        second = promote("alice.result", resolver, collaboration)
        assert second.total() == 0
        assert second.skipped  # everything already there

    def test_without_provenance(self, world):
        resolver, _, _, collaboration = world
        report = promote(
            "alice.result", resolver, collaboration,
            include_provenance=False,
        )
        assert report.datasets == ["alice.result"]
        assert report.derivations == []
        assert collaboration.counts()["transformation"] == 0

    def test_unknown_dataset(self, world):
        resolver, _, _, collaboration = world
        with pytest.raises(NotFoundError):
            promote("nope", resolver, collaboration)

    def test_signed_on_promotion(self, world):
        resolver, _, _, collaboration = world
        keys = KeyStore()
        keys.generate("collab-curator")
        signer = Signer(keys)
        promote(
            "alice.result",
            resolver,
            collaboration,
            signer=signer,
            authority="collab-curator",
        )
        ds = collaboration.get_dataset("alice.result")
        signer.verify_entry(ds, "collab-curator")
        tr = collaboration.get_transformation("polish")
        signer.verify_entry(tr, "collab-curator")

    def test_invocations_stay_behind(self, world):
        resolver, personal, _, collaboration = world
        from repro.core.invocation import Invocation

        personal.add_invocation(Invocation(derivation_name="mine"))
        promote("alice.result", resolver, collaboration)
        assert collaboration.invocations_of("mine") == []
