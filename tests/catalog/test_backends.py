"""Backend-equivalence tests: memory, sqlite and filetree must behave
identically for every catalog operation (they share all semantics in
the base class; these tests pin that contract)."""

import pytest

from repro.catalog.filetree import FileTreeCatalog
from repro.catalog.sqlite import SQLiteCatalog
from repro.core.dataset import Dataset
from repro.core.derivation import DatasetArg, Derivation
from repro.core.descriptors import FileDescriptor
from repro.core.invocation import Invocation, ResourceUsage
from repro.core.naming import VDPRef
from repro.core.replica import Replica
from repro.core.types import DatasetType
from repro.errors import (
    DuplicateEntryError,
    NotFoundError,
    TypeConformanceError,
)
from tests.conftest import DIAMOND_VDL, FIG1_VDL


class TestDatasets:
    def test_add_get(self, any_catalog):
        ds = Dataset(name="foo", dataset_type=DatasetType(content="CMS"))
        any_catalog.add_dataset(ds)
        got = any_catalog.get_dataset("foo")
        assert got.name == "foo"
        assert got.dataset_type.content == "CMS"

    def test_duplicate_rejected(self, any_catalog):
        any_catalog.add_dataset(Dataset(name="foo"))
        with pytest.raises(DuplicateEntryError):
            any_catalog.add_dataset(Dataset(name="foo"))

    def test_replace(self, any_catalog):
        any_catalog.add_dataset(Dataset(name="foo"))
        updated = Dataset(
            name="foo", descriptor=FileDescriptor(path="/d/foo", size=1)
        )
        any_catalog.add_dataset(updated, replace=True)
        assert not any_catalog.get_dataset("foo").is_virtual

    def test_missing_raises(self, any_catalog):
        with pytest.raises(NotFoundError):
            any_catalog.get_dataset("nope")

    def test_remove(self, any_catalog):
        any_catalog.add_dataset(Dataset(name="foo"))
        any_catalog.remove_dataset("foo")
        assert not any_catalog.has_dataset("foo")
        with pytest.raises(NotFoundError):
            any_catalog.remove_dataset("foo")

    def test_names_sorted(self, any_catalog):
        for name in ("zz", "aa", "mm"):
            any_catalog.add_dataset(Dataset(name=name))
        assert any_catalog.dataset_names() == ["aa", "mm", "zz"]

    def test_attributes_survive(self, any_catalog):
        ds = Dataset(name="foo", attributes={"quality": "raw", "runs": 3})
        any_catalog.add_dataset(ds)
        got = any_catalog.get_dataset("foo")
        assert got.attributes.get("quality") == "raw"
        assert got.attributes.get("runs") == 3


class TestReplicas:
    def test_add_and_lookup_by_dataset(self, any_catalog):
        rep = Replica(dataset_name="foo", location="anl", size=10)
        any_catalog.add_replica(rep)
        found = any_catalog.replicas_of("foo")
        assert [r.replica_id for r in found] == [rep.replica_id]
        assert found[0].location == "anl"

    def test_duplicate_rejected(self, any_catalog):
        rep = Replica(dataset_name="foo", location="anl")
        any_catalog.add_replica(rep)
        with pytest.raises(DuplicateEntryError):
            any_catalog.add_replica(rep)

    def test_remove_updates_index(self, any_catalog):
        rep = Replica(dataset_name="foo", location="anl")
        any_catalog.add_replica(rep)
        any_catalog.remove_replica(rep.replica_id)
        assert any_catalog.replicas_of("foo") == []

    def test_multiple_replicas(self, any_catalog):
        a = Replica(dataset_name="foo", location="anl")
        b = Replica(dataset_name="foo", location="uc")
        any_catalog.add_replica(a)
        any_catalog.add_replica(b)
        assert {r.location for r in any_catalog.replicas_of("foo")} == {
            "anl", "uc",
        }


class TestTransformations:
    def test_vdl_define_and_get(self, any_catalog):
        any_catalog.define(FIG1_VDL)
        tr = any_catalog.get_transformation("prog1")
        assert tr.executable == "/usr/bin/prog1"

    def test_versions(self, any_catalog):
        any_catalog.define('TR t@1.0( output o ) { exec = "/old"; }')
        any_catalog.define('TR t@2.0( output o ) { exec = "/new"; }')
        assert any_catalog.get_transformation("t").executable == "/new"
        assert any_catalog.get_transformation("t", "1.0").executable == "/old"

    def test_duplicate_version_rejected(self, any_catalog):
        any_catalog.define('TR t( output o ) { exec = "/a"; }')
        with pytest.raises(DuplicateEntryError):
            any_catalog.define('TR t( output o ) { exec = "/b"; }')

    def test_remove(self, any_catalog):
        any_catalog.define('TR t( output o ) { exec = "/a"; }')
        any_catalog.remove_transformation("t", "1.0")
        assert not any_catalog.has_transformation("t")

    def test_missing_raises(self, any_catalog):
        with pytest.raises(NotFoundError):
            any_catalog.get_transformation("nope")


class TestDerivations:
    def test_auto_declares_datasets(self, any_catalog):
        any_catalog.define(FIG1_VDL)
        assert any_catalog.has_dataset("foo")
        assert any_catalog.has_dataset("fnn")
        assert any_catalog.get_dataset("foo").producer == "dfoo"
        assert any_catalog.get_dataset("fnn").producer is None

    def test_producer_consumer_indexes(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        assert [d.name for d in any_catalog.producers_of("final")] == ["a1"]
        assert [d.name for d in any_catalog.consumers_of("raw1")] == ["s1"]
        assert any_catalog.producers_of("nothere") == []

    def test_validation_against_transformation(self, any_catalog):
        any_catalog.define(FIG1_VDL)
        bad = Derivation(
            name="bad",
            transformation=VDPRef("prog1", kind="transformation"),
            actuals={"Y": DatasetArg("out", "output")},  # X missing
        )
        with pytest.raises(Exception):
            any_catalog.add_derivation(bad)

    def test_type_conformance_checked(self, any_catalog):
        any_catalog.define(
            "TR typed( output o : SDSS, input i : CMS ) "
            '{ exec = "/bin/typed"; }'
        )
        any_catalog.add_dataset(
            Dataset(name="wrong", dataset_type=DatasetType(content="UChicago"))
        )
        bad = Derivation(
            name="bad",
            transformation=VDPRef("typed", kind="transformation"),
            actuals={
                "o": DatasetArg("out", "output"),
                "i": DatasetArg("wrong", "input"),
            },
        )
        with pytest.raises(TypeConformanceError):
            any_catalog.add_derivation(bad)

    def test_remote_transformation_tolerated(self, any_catalog):
        dv = Derivation(
            name="remote",
            transformation=VDPRef(
                "srch", authority="w.edu", kind="transformation"
            ),
            actuals={"x": DatasetArg("data", "input")},
        )
        any_catalog.add_derivation(dv)  # no local validation possible
        assert any_catalog.get_derivation("remote").transformation.authority == "w.edu"

    def test_remove_updates_indexes(self, any_catalog):
        any_catalog.define(FIG1_VDL)
        any_catalog.remove_derivation("dfoo")
        assert any_catalog.producers_of("foo") == []


class TestInvocations:
    def test_add_and_query(self, any_catalog):
        any_catalog.define(FIG1_VDL)
        inv = Invocation(
            derivation_name="dfoo",
            usage=ResourceUsage(cpu_seconds=20.0, wall_seconds=20.0),
        )
        any_catalog.add_invocation(inv)
        got = any_catalog.invocations_of("dfoo")
        assert len(got) == 1
        assert got[0].usage.cpu_seconds == 20.0

    def test_duplicate_rejected(self, any_catalog):
        inv = Invocation(derivation_name="d")
        any_catalog.add_invocation(inv)
        with pytest.raises(DuplicateEntryError):
            any_catalog.add_invocation(inv)


class TestPersistence:
    def test_filetree_survives_reopen(self, tmp_path):
        root = tmp_path / "vdc"
        first = FileTreeCatalog(root, authority="a.example")
        first.define(DIAMOND_VDL)
        first.add_replica(Replica(dataset_name="final", location="anl"))
        reopened = FileTreeCatalog(root, authority="a.example")
        assert reopened.counts() == first.counts()
        assert [d.name for d in reopened.producers_of("final")] == ["a1"]
        assert len(reopened.replicas_of("final")) == 1

    def test_sqlite_file_survives_reopen(self, tmp_path):
        path = str(tmp_path / "vdc.db")
        with SQLiteCatalog(path, authority="a.example") as first:
            first.define(DIAMOND_VDL)
            counts = first.counts()
        with SQLiteCatalog(path, authority="a.example") as reopened:
            assert reopened.counts() == counts
            assert [d.name for d in reopened.consumers_of("sim1")] == ["a1"]

    def test_snapshot_round_trip(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        from repro.catalog.memory import MemoryCatalog

        other = MemoryCatalog()
        other.import_snapshot(any_catalog.export_snapshot())
        assert other.counts() == any_catalog.counts()
        assert [d.name for d in other.producers_of("final")] == ["a1"]

    def test_export_vdl_reimportable(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        from repro.catalog.memory import MemoryCatalog

        other = MemoryCatalog().define(any_catalog.export_vdl())
        assert other.counts()["transformation"] == 3
        assert other.counts()["derivation"] == 5


class TestNotifications:
    def test_events_fired(self, any_catalog):
        events = []
        any_catalog.subscribe(lambda *e: events.append(e))
        any_catalog.add_dataset(Dataset(name="x"))
        any_catalog.remove_dataset("x")
        assert ("put", "dataset", "x") in events
        assert ("delete", "dataset", "x") in events

    def test_unsubscribe(self, any_catalog):
        events = []
        listener = lambda *e: events.append(e)  # noqa: E731
        any_catalog.subscribe(listener)
        any_catalog.unsubscribe(listener)
        any_catalog.add_dataset(Dataset(name="x"))
        assert events == []
