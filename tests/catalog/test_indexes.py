"""Tests for the catalog fast paths: secondary indexes, the decoded-
payload cache, and bulk (deferred-commit) mutation batches.

All tests run against every backend (``any_catalog``): the fast paths
live in the base class and must not change observable behaviour.
"""

import threading

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.catalog.sqlite import SQLiteCatalog
from repro.errors import NotFoundError
from tests.conftest import DIAMOND_VDL


class TestByTransformationIndex:
    def test_derivations_of_transformation(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        assert [
            dv.name for dv in any_catalog.derivations_of_transformation("sim")
        ] == ["s1", "s2"]
        assert [
            dv.name for dv in any_catalog.derivations_of_transformation("ana")
        ] == ["a1"]
        assert any_catalog.derivations_of_transformation("nope") == []

    def test_find_derivations_uses_index(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        found = any_catalog.find_derivations(transformation="gen")
        assert sorted(dv.name for dv in found) == ["g1", "g2"]

    def test_index_follows_removal(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        any_catalog.remove_derivation("s1")
        assert [
            dv.name for dv in any_catalog.derivations_of_transformation("sim")
        ] == ["s2"]
        # Producer/consumer indexes unlink too.
        assert any_catalog.producers_of("sim1") == []
        assert [dv.name for dv in any_catalog.consumers_of("raw1")] == []

    def test_rebuild_from_cold_store(self, tmp_path):
        """A snapshot import rebuilds every index from storage."""
        source = MemoryCatalog().define(DIAMOND_VDL)
        dest = MemoryCatalog()
        dest.import_snapshot(source.export_snapshot())
        assert [
            dv.name for dv in dest.derivations_of_transformation("sim")
        ] == ["s1", "s2"]
        assert [dv.name for dv in dest.producers_of("final")] == ["a1"]
        assert dest.transformation_names() == ["ana", "gen", "sim"]


class TestPayloadCache:
    def test_repeat_lookups_hit(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        any_catalog.get_derivation("a1")
        before = any_catalog.cache_stats()["hits"]
        any_catalog.get_derivation("a1")
        any_catalog.get_derivation("a1")
        assert any_catalog.cache_stats()["hits"] >= before + 2

    def test_mutation_invalidates(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        ds = any_catalog.get_dataset("final")
        ds.attributes.set("quality", "gold")
        any_catalog.add_dataset(ds, replace=True)
        assert (
            any_catalog.get_dataset("final").attributes.get("quality")
            == "gold"
        )

    def test_delete_invalidates(self, any_catalog):
        any_catalog.define(DIAMOND_VDL)
        any_catalog.get_derivation("a1")
        any_catalog.remove_derivation("a1")
        with pytest.raises(NotFoundError):
            any_catalog.get_derivation("a1")

    def test_cached_objects_are_isolated(self, any_catalog):
        """Mutating a returned object never leaks into the cache."""
        any_catalog.define(DIAMOND_VDL)
        first = any_catalog.get_dataset("final")
        first.attributes.set("mutated", "yes")
        second = any_catalog.get_dataset("final")
        assert second.attributes.get("mutated") is None


class TestBulk:
    def test_reads_observe_writes_inside_bulk(self, any_catalog):
        with any_catalog.bulk():
            any_catalog.define(DIAMOND_VDL)
            assert any_catalog.has_derivation("a1")
            assert [
                dv.name for dv in any_catalog.producers_of("final")
            ] == ["a1"]

    def test_bulk_persists_after_exit(self, tmp_path):
        path = tmp_path / "bulk.db"
        with SQLiteCatalog(str(path)) as catalog:
            with catalog.bulk():
                catalog.define(DIAMOND_VDL)
        with SQLiteCatalog(str(path)) as reopened:
            assert reopened.derivation_names() == [
                "a1", "g1", "g2", "s1", "s2",
            ]

    def test_bulk_is_not_atomic(self, any_catalog):
        """Mutations before an exception stay applied — bulk defers
        durability work only, matching non-bulk per-op semantics."""
        with pytest.raises(RuntimeError):
            with any_catalog.bulk():
                any_catalog.define(DIAMOND_VDL)
                raise RuntimeError("boom")
        assert any_catalog.has_derivation("a1")

    def test_nesting_flushes_once_at_outermost_exit(self, tmp_path):
        path = tmp_path / "nest.db"
        with SQLiteCatalog(str(path)) as catalog:
            with catalog.bulk():
                with catalog.bulk():
                    catalog.define(DIAMOND_VDL)
                assert catalog._in_bulk  # inner exit didn't flush
            assert not catalog._in_bulk


class TestThreadSafety:
    def test_concurrent_mutation_smoke(self, any_catalog):
        """8 threads registering disjoint datasets: none lost."""
        from repro.core.dataset import Dataset

        errors = []

        def worker(base):
            try:
                for i in range(25):
                    any_catalog.add_dataset(Dataset(name=f"ds{base}_{i}"))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(any_catalog.dataset_names()) == 200
