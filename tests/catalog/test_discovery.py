"""Tests for catalog discovery queries (§2 Discovery, §5.5)."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.core.dataset import Dataset
from repro.core.descriptors import FileDescriptor
from repro.core.types import DatasetType


@pytest.fixture
def loaded():
    catalog = MemoryCatalog()
    catalog.define(
        """
        TR galaxy-search( output clusters : SDSS, input survey : FITS-file ) {
          argument stdin = ${input:survey};
          argument stdout = ${output:clusters};
          exec = "/bin/maxbcg";
        }
        TR event-sim( output events : Simulation, none seed="1" ) {
          argument = "-s "${none:seed};
          argument stdout = ${output:events};
          exec = "/bin/sim";
        }
        DV search1->galaxy-search( clusters=@{output:"clusters.run1"},
                                   survey=@{input:"survey.2002"} );
        DV sim1->event-sim( events=@{output:"events.run1"}, seed="7" );
        """
    )
    catalog.add_dataset(
        Dataset(
            name="survey.2003",
            dataset_type=DatasetType(content="FITS-file"),
            descriptor=FileDescriptor(path="/data/survey", size=10),
            attributes={"year": 2003},
        ),
        replace=False,
    )
    return catalog


class TestFindDatasets:
    def test_by_glob(self, loaded):
        names = [d.name for d in loaded.find_datasets(name_glob="survey.*")]
        assert names == ["survey.2002", "survey.2003"]

    def test_by_type(self, loaded):
        hits = loaded.find_datasets(conforms_to=DatasetType(content="SDSS"))
        assert {d.name for d in hits} >= {"survey.2003", "clusters.run1"}
        none = loaded.find_datasets(conforms_to=DatasetType(content="UChicago"))
        assert none == []

    def test_by_attributes(self, loaded):
        hits = loaded.find_datasets(attributes={"year": 2003})
        assert [d.name for d in hits] == ["survey.2003"]

    def test_by_virtual_state(self, loaded):
        virtual = {d.name for d in loaded.find_datasets(virtual=True)}
        materialized = {d.name for d in loaded.find_datasets(virtual=False)}
        assert "clusters.run1" in virtual
        assert materialized == {"survey.2003"}

    def test_combined_filters(self, loaded):
        hits = loaded.find_datasets(
            name_glob="survey.*", attributes={"year": 2003}
        )
        assert len(hits) == 1


class TestFindTransformations:
    def test_the_paper_discovery_question(self, loaded):
        """'I want to search an astronomical database for galaxies with
        certain characteristics. If a program that performs this
        analysis exists, I won't have to write one from scratch.'"""
        hits = loaded.find_transformations(
            consumes=DatasetType(content="FITS-file")
        )
        assert [t.name for t in hits] == ["galaxy-search"]

    def test_by_produces(self, loaded):
        hits = loaded.find_transformations(
            produces=DatasetType(content="Zebra-file")
        )
        # event-sim outputs Simulation; Zebra-file is a subtype, so a
        # Zebra-file product can be produced by it.
        assert [t.name for t in hits] == ["event-sim"]

    def test_by_glob(self, loaded):
        assert [
            t.name for t in loaded.find_transformations(name_glob="event*")
        ] == ["event-sim"]

    def test_no_match(self, loaded):
        assert loaded.find_transformations(name_glob="zzz*") == []


class TestFindDerivations:
    def test_by_transformation(self, loaded):
        assert [
            d.name
            for d in loaded.find_derivations(transformation="event-sim")
        ] == ["sim1"]

    def test_by_produces(self, loaded):
        """'If the program has already been run and the results stored,
        I'll save weeks of computation.'"""
        assert [
            d.name for d in loaded.find_derivations(produces="clusters.run1")
        ] == ["search1"]

    def test_by_consumes(self, loaded):
        assert [
            d.name for d in loaded.find_derivations(consumes="survey.2002")
        ] == ["search1"]

    def test_by_glob(self, loaded):
        assert [
            d.name for d in loaded.find_derivations(name_glob="s*1")
        ] == ["search1", "sim1"]

    def test_produces_and_transformation(self, loaded):
        assert (
            loaded.find_derivations(
                produces="clusters.run1", transformation="event-sim"
            )
            == []
        )
