"""Edge-case tests across subsystems (gap sweep)."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.grid.gram import GridExecutionService, JobSpec
from repro.grid.network import uniform_topology
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import Site
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest
from repro.system import VirtualDataSystem


class TestGramSetupSeconds:
    def test_setup_charged_before_queue(self):
        sim = Simulator()
        net = uniform_topology(["a"])
        sites = {"a": Site("a", hosts=1)}
        grid = GridExecutionService(sim, sites, net, ReplicaLocationService(net))
        record = grid.submit(
            JobSpec(name="j", site="a", cpu_seconds=10.0, setup_seconds=5.0)
        )
        sim.run()
        assert record.stage_in_seconds == 5.0
        assert record.start_time == 5.0
        assert record.end_time == 15.0


class TestMultipleProducers:
    def test_planner_picks_deterministically(self):
        catalog = MemoryCatalog().define(
            """
            TR make( output o, none tag="x" ) {
              argument = "-t "${none:tag};
              argument stdout = ${output:o};
              exec = "/bin/make";
            }
            DV zeta->make( o=@{output:"shared"}, tag="z" );
            DV alpha->make( o=@{output:"shared"}, tag="a" );
            """
        )
        planner = Planner(catalog)
        plans = [
            planner.plan(
                MaterializationRequest(targets=("shared",), reuse="never")
            )
            for _ in range(3)
        ]
        # Always the alphabetically-first producer, every time.
        assert all(set(p.steps) == {"alpha"} for p in plans)


class TestSystemEdges:
    def test_estimate_without_grid_uses_one_host(self):
        vds = VirtualDataSystem()
        vds.define(
            'TR t( output o ) { argument stdout = ${output:o};'
            ' exec = "/b"; } DV d->t( o=@{output:"x"} );'
        )
        plan = vds.plan("x", reuse="never")
        estimate = vds.estimate(plan)
        assert estimate.host_count == 1

    def test_build_index_skips_anonymous_home(self):
        vds = VirtualDataSystem()  # no authority
        partner = VirtualDataSystem(authority="p.org")
        vds.share_with(partner.catalog)
        index = vds.build_index("x")
        assert index.members() == ["p.org"]

    def test_replicas_property_requires_grid(self):
        with pytest.raises(Exception):
            VirtualDataSystem().replicas


class TestCliEdges:
    def test_invalidate_by_transformation(self, tmp_path):
        from repro.cli import main

        ws = tmp_path / "ws"
        vdl = tmp_path / "p.vdl"
        vdl.write_text(
            'TR t( output o ) { argument stdout = ${output:o};'
            ' exec = "/b"; } DV d->t( o=@{output:"x"} );'
        )
        lines = []
        out = lambda text="": lines.append(str(text))  # noqa: E731
        assert main(["--workspace", str(ws), "init"], out=out) == 0
        assert main(["--workspace", str(ws), "define", str(vdl)], out=out) == 0
        assert (
            main(
                ["--workspace", str(ws), "invalidate",
                 "--transformation", "t"],
                out=out,
            )
            == 0
        )
        joined = "\n".join(lines)
        assert "x" in joined and "d" in joined


class TestSchedulerPeakInFlight:
    def test_peak_reported(self):
        from tests.conftest import DIAMOND_VDL
        vds = VirtualDataSystem.with_grid({"a": 8})
        vds.define(DIAMOND_VDL)
        result = vds.materialize("final", reuse="never")
        assert result.peak_in_flight == 2  # the two gen branches

    def test_cap_of_one_serializes(self):
        from tests.conftest import DIAMOND_VDL
        vds = VirtualDataSystem.with_grid({"a": 8})
        vds.define(DIAMOND_VDL)
        result = vds.materialize("final", reuse="never", max_hosts=1)
        assert result.peak_in_flight == 1
