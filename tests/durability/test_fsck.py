"""Tests for the RecoveryManager behind ``repro fsck``."""

import json

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.durability.atomic import TMP_MARKER
from repro.durability.journal import IntentJournal, load_journal_state
from repro.durability.recovery import (
    PREFLIGHT_AUTO_REPAIR,
    Finding,
    FsckReport,
    RecoveryManager,
    sandbox_filename,
)
from repro.executor.local import LocalExecutor

PIPELINE = """
TR make( output o ) {
  argument stdout = ${output:o};
  exec = "py:make";
}
TR copy( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "py:copy";
}
DV mk->make( o=@{output:"base.txt"} );
DV cp->copy( o=@{output:"derived.txt"}, i=@{input:"base.txt"} );
"""


@pytest.fixture
def workspace(tmp_path):
    """A materialized two-step pipeline with a full recovery setup."""
    catalog = MemoryCatalog().define(PIPELINE)
    sandbox = tmp_path / "sandbox"
    executor = LocalExecutor(
        catalog, sandbox, quarantine_dir=tmp_path / "quarantine"
    )
    executor.register(
        "py:make", lambda ctx: ctx.write_output("o", "base-bytes")
    )
    executor.register(
        "py:copy",
        lambda ctx: ctx.write_output("o", ctx.read_input("i").upper()),
    )
    executor.materialize("derived.txt")
    recovery = RecoveryManager(
        catalog,
        sandbox_dir=sandbox,
        journal_dir=tmp_path / "journal",
        rescue_dir=tmp_path / "rescue",
        runs_dir=tmp_path / "runs",
        quarantine_dir=tmp_path / "quarantine",
    )
    return catalog, executor, recovery, tmp_path


class TestCleanWorkspace:
    def test_clean_pass(self, workspace):
        _, _, recovery, _ = workspace
        report = recovery.fsck()
        assert report.clean and not report.corrupted
        assert report.checked_replicas == 2
        assert report.checked_files == 2
        assert "workspace is clean" in report.render()

    def test_report_shapes(self, workspace):
        _, _, recovery, _ = workspace
        report = recovery.fsck()
        data = report.to_dict()
        assert data["clean"] is True
        assert data["checked"]["replicas"] == 2
        json.dumps(data)  # must be serializable for --format json


class TestReplicaFindings:
    def test_phantom_replica(self, workspace):
        catalog, executor, recovery, _ = workspace
        executor.path_for("derived.txt").unlink()
        report = recovery.fsck()
        assert report.counts().get("phantom-replica") == 1
        assert report.corrupted

        repaired = recovery.fsck(repair=True)
        assert all(f.repaired for f in repaired.findings
                   if f.kind == "phantom-replica")
        assert catalog.replicas_of("derived.txt") == []

    def test_corrupt_replica_cascades_to_invalidation(self, workspace):
        catalog, executor, recovery, tmp_path = workspace
        # Flip bytes in the *upstream* output; same length so only the
        # content digest can catch it.
        executor.path_for("base.txt").write_bytes(b"fake-bytes")
        report = recovery.fsck(repair=True)
        kinds = report.counts()
        assert kinds.get("corrupt-replica") == 1
        # The corrupt file is quarantined, not deleted.
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert any(p.name.startswith("base.txt") for p in quarantined)
        # Downstream provenance is reset so planning re-derives.
        assert catalog.replicas_of("base.txt") == []
        assert catalog.get_dataset("base.txt").is_virtual

    def test_structural_mode_skips_digests(self, workspace):
        _, executor, recovery, _ = workspace
        executor.path_for("base.txt").write_bytes(b"fake-bytes")  # same size
        report = recovery.fsck(checksums=False)
        assert report.counts().get("corrupt-replica") is None
        assert not report.checksums_verified

    def test_size_mismatch_caught_even_structurally(self, workspace):
        _, executor, recovery, _ = workspace
        executor.path_for("base.txt").write_bytes(b"wrong length entirely")
        report = recovery.fsck(checksums=False)
        assert report.counts().get("corrupt-replica") == 1


class TestInvocationFindings:
    def test_half_committed_invocation(self, workspace):
        catalog, _, recovery, _ = workspace
        # Simulate a crash that persisted the invocation but lost a
        # replica it binds.
        inv = catalog.invocations_of("mk")[0]
        replica_id = next(iter(inv.replica_bindings.values()))
        catalog.restore_payload("replica", replica_id, None)
        report = recovery.fsck(checksums=False)
        assert report.counts().get("half-committed-invocation") == 1
        recovery.fsck(repair=True)
        assert catalog.invocations_of("mk") == []


class TestFileFindings:
    def test_orphan_file_is_warning(self, workspace):
        _, executor, recovery, _ = workspace
        (executor.workdir / "mystery.dat").write_bytes(b"???")
        report = recovery.fsck()
        assert report.counts().get("orphan-file") == 1
        assert not report.corrupted  # warnings never block

    def test_orphan_output_is_error(self, workspace):
        catalog, executor, recovery, _ = workspace
        # Output bytes on disk, but no replica record: the crash hit
        # between stage-out and the provenance commit.
        for replica in catalog.replicas_of("derived.txt"):
            catalog.restore_payload("replica", replica.replica_id, None)
        inv = catalog.invocations_of("cp")[0]
        catalog.restore_payload("invocation", inv.invocation_id, None)
        report = recovery.fsck(checksums=False)
        assert report.counts().get("orphan-output") == 1
        assert report.corrupted
        recovery.fsck(repair=True)
        assert not executor.path_for("derived.txt").exists()
        assert catalog.get_dataset("derived.txt").is_virtual

    def test_stale_dataset_state(self, workspace):
        catalog, executor, recovery, _ = workspace
        # File and replicas both gone, dataset still says materialized.
        executor.path_for("derived.txt").unlink()
        for replica in catalog.replicas_of("derived.txt"):
            catalog.restore_payload("replica", replica.replica_id, None)
        report = recovery.fsck(repair=True)
        assert report.counts().get("stale-dataset-state") == 1
        assert catalog.get_dataset("derived.txt").is_virtual

    def test_stale_temporary_swept(self, workspace):
        _, executor, recovery, _ = workspace
        stale = executor.workdir / f"out.txt{TMP_MARKER}xyz"
        stale.write_bytes(b"partial")
        report = recovery.fsck(repair=True)
        assert report.counts().get("stale-temporary") == 1
        assert not stale.exists()


class TestJournalFindings:
    def test_uncommitted_txn_rolled_back(self, workspace):
        catalog, _, recovery, tmp_path = workspace
        from repro.core.dataset import Dataset

        ghost = Dataset(name="ghost").to_dict()
        journal = IntentJournal(tmp_path / "journal")
        catalog.attach_journal(journal)
        txn = journal.begin("crashed")
        journal.record(txn, "put", "dataset", "ghost", payload=ghost)
        catalog.restore_payload("dataset", "ghost", ghost)
        journal.close()  # died before commit

        report = recovery.fsck(checksums=False)
        assert report.counts().get("uncommitted-txn") == 1
        assert report.corrupted

        recovery.fsck(repair=True)
        assert not catalog.has_dataset("ghost")
        # Rolled-back history is checkpointed away: next pass is clean.
        assert load_journal_state(tmp_path / "journal").clean
        assert not recovery.fsck(checksums=False).corrupted

    def test_corrupt_journal_quarantined(self, workspace):
        _, _, recovery, tmp_path = workspace
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir()
        (journal_dir / "catalog.journal").write_text(
            'GARBAGE\n{"type": "begin", "txn": "t"}\n'
        )
        report = recovery.fsck(repair=True)
        assert report.counts().get("journal-corrupt") == 1
        assert (journal_dir / "catalog.journal.corrupt").exists()


class TestRescueFindings:
    def test_torn_rescue_tail_rewritten(self, workspace):
        from repro.resilience.rescue import RescueFile

        _, _, recovery, tmp_path = workspace
        rescue_dir = tmp_path / "rescue"
        rescue_dir.mkdir()
        rescue = RescueFile(targets=("a",), signature="sig")
        target = rescue_dir / "run.rescue.json"
        rescue.save(target)
        with open(target, "a") as handle:
            handle.write('{"kind": "completed", "st')  # torn append
        report = recovery.fsck(repair=True)
        assert report.counts().get("torn-rescue-tail") == 1
        # The rewrite cleared the tear.
        assert not RescueFile.load(target).truncated

    def test_corrupt_rescue_quarantined(self, workspace):
        _, _, recovery, tmp_path = workspace
        rescue_dir = tmp_path / "rescue"
        rescue_dir.mkdir()
        bad = rescue_dir / "bad.rescue.json"
        bad.write_text("not json")
        report = recovery.fsck(repair=True)
        assert report.counts().get("corrupt-rescue-file") == 1
        assert not bad.exists()
        assert any(
            p.name.startswith("bad.rescue.json")
            for p in (tmp_path / "quarantine").iterdir()
        )


class TestPreflight:
    def test_preflight_repairs_journal_only(self, workspace):
        catalog, executor, recovery, tmp_path = workspace
        # One journal problem (auto-repaired) and one replica problem
        # (reported but untouched).
        journal = IntentJournal(tmp_path / "journal")
        txn = journal.begin("crashed")
        journal.record(txn, "put", "dataset", "ghost", payload=None)
        journal.close()
        catalog.attach_journal(IntentJournal(tmp_path / "journal"))
        executor.path_for("derived.txt").unlink()

        report = recovery.preflight()
        by_kind = {f.kind: f for f in report.findings}
        assert by_kind["uncommitted-txn"].repaired
        assert not by_kind["phantom-replica"].repaired
        assert report.corrupted  # the phantom still blocks

    def test_preflight_kinds_are_real(self):
        # Guard against drift between the constant and the taxonomy.
        assert set(PREFLIGHT_AUTO_REPAIR) == {
            "torn-journal-tail",
            "uncommitted-txn",
            "stale-temporary",
        }


class TestReportSemantics:
    def test_severity_ordering(self):
        report = FsckReport()
        report.add(Finding("a", "warning", "x", "d"))
        report.add(Finding("b", "info", "y", "d"))
        assert not report.corrupted
        report.add(Finding("c", "error", "z", "d"))
        assert report.corrupted
        assert len(report.unrepaired("warning")) == 2
        assert len(report.unrepaired("info")) == 3

    def test_repaired_errors_do_not_block(self):
        report = FsckReport()
        report.add(Finding("c", "error", "z", "d", repaired=True))
        assert not report.corrupted

    def test_sandbox_filename_flattens_paths(self):
        assert sandbox_filename("runs/2026/x.dat") == "runs_2026_x.dat"
