"""Tests for the intent journal: scan, rollback, replay, torn tails."""

import json

from repro.catalog.memory import MemoryCatalog
from repro.core.dataset import Dataset
from repro.durability.journal import (
    JOURNAL_FILENAME,
    IntentJournal,
    load_journal_state,
    quarantine_journal,
    replay_into,
    rollback_uncommitted,
)


def journal_path(tmp_path):
    return tmp_path / JOURNAL_FILENAME


def write_committed_txn(tmp_path, key="d1"):
    journal = IntentJournal(tmp_path)
    txn = journal.begin("test")
    journal.record(
        txn, "put", "dataset", key, payload={"name": key}, prev=None
    )
    journal.commit(txn, 1)
    journal.close()
    return journal


class TestScan:
    def test_empty_journal_is_clean(self, tmp_path):
        state = load_journal_state(tmp_path)
        assert state.clean
        assert state.committed == [] and state.uncommitted == []

    def test_committed_txn_reconstructed(self, tmp_path):
        write_committed_txn(tmp_path)
        state = load_journal_state(tmp_path)
        assert state.clean
        assert len(state.committed) == 1
        txn = state.committed[0]
        assert txn.label == "test"
        assert [op.key for op in txn.ops] == ["d1"]
        assert txn.ops[0].payload == {"name": "d1"}

    def test_missing_commit_marker_is_uncommitted(self, tmp_path):
        journal = IntentJournal(tmp_path)
        txn = journal.begin("crashed")
        journal.record(txn, "put", "dataset", "d1", payload={"name": "d1"})
        journal.close()  # no commit: the process died here
        state = load_journal_state(tmp_path)
        assert not state.clean
        assert [t.txn_id for t in state.uncommitted] == [txn]

    def test_torn_final_line_detected_not_corrupt(self, tmp_path):
        write_committed_txn(tmp_path)
        with open(journal_path(tmp_path), "a") as handle:
            handle.write('{"type": "op", "txn": "x", "op"')  # torn append
        state = load_journal_state(tmp_path)
        assert state.torn_tail and not state.corrupt
        assert len(state.committed) == 1  # prefix fully usable

    def test_mid_file_garbage_is_corrupt(self, tmp_path):
        write_committed_txn(tmp_path)
        with open(journal_path(tmp_path), "a") as handle:
            handle.write("GARBAGE NOT JSON\n")
            handle.write(json.dumps({"type": "begin", "txn": "t9"}) + "\n")
        state = load_journal_state(tmp_path)
        assert state.corrupt

    def test_quarantine_moves_journal_aside(self, tmp_path):
        write_committed_txn(tmp_path)
        target = quarantine_journal(tmp_path)
        assert target is not None and target.exists()
        assert not journal_path(tmp_path).exists()


class TestTornTailRepair:
    def test_append_after_tear_truncates_first(self, tmp_path):
        write_committed_txn(tmp_path, key="a")
        with open(journal_path(tmp_path), "a") as handle:
            handle.write('{"type": "op", "txn"')  # crash mid-append
        # A new writer must discard the tear before appending, or the
        # tear would end up mid-file and scan as corruption.
        write_committed_txn(tmp_path, key="b")
        state = load_journal_state(tmp_path)
        assert state.clean
        assert len(state.committed) == 2

    def test_parseable_tail_without_newline_also_truncated(self, tmp_path):
        write_committed_txn(tmp_path, key="a")
        with open(journal_path(tmp_path), "a") as handle:
            handle.write('{"type": "begin", "txn": "t", "label": ""}')
        write_committed_txn(tmp_path, key="b")
        # Without truncation the next append would concatenate onto the
        # newline-less tail, producing an unparseable mid-file line.
        state = load_journal_state(tmp_path)
        assert state.clean and not state.corrupt


class TestRecovery:
    def test_rollback_restores_prev_payloads(self, tmp_path):
        catalog = MemoryCatalog()
        catalog.add_dataset(Dataset(name="d1"))
        before = catalog.get_dataset("d1").to_dict()
        journal = IntentJournal(tmp_path)
        txn = journal.begin("update")
        new = dict(before)
        new["attributes"] = {"quality": "bad"}
        journal.record(
            txn, "put", "dataset", "d1", payload=new, prev=before
        )
        journal.record(
            txn, "put", "dataset", "d2", payload={**before, "name": "d2"}
        )
        journal.close()  # crash before commit
        # Pretend both ops were applied before the kill.
        catalog.restore_payload("dataset", "d1", new)
        catalog.restore_payload("dataset", "d2", {**before, "name": "d2"})

        state = load_journal_state(tmp_path)
        touched = rollback_uncommitted(catalog, state)
        assert ("dataset", "d1") in touched and ("dataset", "d2") in touched
        assert dict(catalog.get_dataset("d1").attributes) == {}
        assert not catalog.has_dataset("d2")

    def test_rollback_is_idempotent(self, tmp_path):
        catalog = MemoryCatalog()
        journal = IntentJournal(tmp_path)
        txn = journal.begin("add")
        journal.record(
            txn, "put", "dataset", "dx", payload={"name": "dx"}, prev=None
        )
        journal.close()
        state = load_journal_state(tmp_path)
        # Crash could land before the op was applied: rollback of an
        # absent key must not raise, and a second pass changes nothing.
        rollback_uncommitted(catalog, state)
        rollback_uncommitted(catalog, state)
        assert not catalog.has_dataset("dx")

    def test_replay_reconstructs_committed_history(self, tmp_path):
        source = MemoryCatalog()
        journal = IntentJournal(tmp_path, keep_history=True)
        source.attach_journal(journal)
        with source.transaction(label="commit-1"):
            source.add_dataset(Dataset(name="a"))
            source.add_dataset(Dataset(name="b"))
        with source.transaction(label="commit-2"):
            source.remove_dataset("b")
        journal.close()

        rebuilt = MemoryCatalog()
        state = load_journal_state(tmp_path)
        applied = replay_into(rebuilt, state)
        assert applied == 3
        assert rebuilt.dataset_names() == ["a"]

    def test_replay_skips_uncommitted(self, tmp_path):
        journal = IntentJournal(tmp_path)
        txn = journal.begin("lost")
        journal.record(
            txn, "put", "dataset", "ghost", payload={"name": "ghost"}
        )
        journal.close()
        rebuilt = MemoryCatalog()
        assert replay_into(rebuilt, load_journal_state(tmp_path)) == 0
        assert not rebuilt.has_dataset("ghost")


class TestCheckpoint:
    def test_checkpoint_truncates(self, tmp_path):
        write_committed_txn(tmp_path)
        journal = IntentJournal(tmp_path)
        journal.checkpoint()
        journal.close()
        assert journal_path(tmp_path).stat().st_size == 0
        assert load_journal_state(tmp_path).clean

    def test_commit_counts_metric(self, tmp_path):
        from repro.observability.instrument import Instrumentation

        obs = Instrumentation()
        journal = IntentJournal(tmp_path, instrumentation=obs)
        txn = journal.begin("metered")
        journal.commit(txn, 0)
        journal.close()
        metrics = obs.metrics.to_dict()
        assert any("durability.journal.commits" in k for k in metrics)
