"""Integration tests: checksum verification on replica consumption.

A corrupt sandbox file must never satisfy reuse — the executor
quarantines it, drops its records, invalidates downstream provenance,
and the next materialize transparently re-derives from the recipe.
"""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.executor.local import LocalExecutor
from repro.observability.instrument import Instrumentation

PIPELINE = """
TR make( output o ) {
  argument stdout = ${output:o};
  exec = "py:make";
}
TR copy( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "py:copy";
}
DV mk->make( o=@{output:"base.txt"} );
DV cp->copy( o=@{output:"derived.txt"}, i=@{input:"base.txt"} );
"""


@pytest.fixture
def executor(tmp_path):
    catalog = MemoryCatalog().define(PIPELINE)
    ex = LocalExecutor(
        catalog,
        tmp_path / "sandbox",
        quarantine_dir=tmp_path / "quarantine",
        instrumentation=Instrumentation(),
    )
    ex.register("py:make", lambda ctx: ctx.write_output("o", "base-bytes"))
    ex.register(
        "py:copy",
        lambda ctx: ctx.write_output("o", ctx.read_input("i").upper()),
    )
    return ex


class TestHasValidReplica:
    def test_clean_file_verifies(self, executor):
        executor.materialize("base.txt")
        assert executor.has_valid_replica("base.txt")

    def test_missing_file_fails(self, executor):
        assert not executor.has_valid_replica("base.txt")

    def test_unrecorded_file_verifies_trivially(self, executor):
        # A user-staged source has no replica record to check against.
        executor.path_for("staged.dat").write_bytes(b"hand-made")
        assert executor.has_valid_replica("staged.dat")

    def test_tampered_file_quarantined(self, executor):
        executor.materialize("base.txt")
        path = executor.path_for("base.txt")
        path.write_bytes(b"fake-bytes")  # same size, different content

        assert not executor.has_valid_replica("base.txt")
        assert not path.exists()
        assert executor.catalog.replicas_of("base.txt") == []
        assert executor.catalog.get_dataset("base.txt").is_virtual
        quarantined = list(executor.quarantine_dir.iterdir())
        assert any(p.name.startswith("base.txt") for p in quarantined)

    def test_checksum_failure_counted(self, executor):
        executor.materialize("base.txt")
        executor.path_for("base.txt").write_bytes(b"fake-bytes")
        executor.has_valid_replica("base.txt")
        metrics = executor.obs.metrics.to_dict()
        assert any("durability.checksum.failures" in k for k in metrics)

    def test_verification_cache_skips_rehash(self, executor, monkeypatch):
        executor.materialize("base.txt")
        assert executor.has_valid_replica("base.txt")
        # Second consult must be served from the (size, mtime) stamp.
        import repro.executor.local as local_mod

        def explode(*a, **k):
            raise AssertionError("digest recomputed despite clean stamp")

        monkeypatch.setattr(local_mod, "verify_file", explode)
        assert executor.has_valid_replica("base.txt")


class TestRederivation:
    def test_corrupt_upstream_rederived_downstream_rebuilt(self, executor):
        executor.materialize("derived.txt")
        # Corrupt the upstream output after the fact.  The intact
        # downstream copy keeps satisfying reuse until the corrupt
        # replica is actually consumed — then the quarantine taints
        # the whole blast radius.
        executor.path_for("base.txt").write_bytes(b"fake-bytes")
        assert executor.materialize("derived.txt") == []  # no consumption
        assert not executor.has_valid_replica("base.txt")  # consume: boom

        invocations = executor.materialize("derived.txt")
        # The quarantine invalidated both datasets, so both re-derive.
        assert {i.derivation_name for i in invocations} == {"mk", "cp"}
        assert (
            executor.path_for("derived.txt").read_bytes() == b"BASE-BYTES"
        )
        assert executor.has_valid_replica("base.txt")
        assert executor.has_valid_replica("derived.txt")

    def test_clean_rematerialize_still_reuses(self, executor):
        executor.materialize("derived.txt")
        again = executor.materialize("derived.txt")
        assert again == []  # nothing to re-run; reuse hit
