"""Tests for replica content digests and verification."""

import hashlib

from repro.durability.checksum import (
    DIGEST_PREFIX,
    file_digest,
    verify_bytes,
    verify_file,
)


class TestDigest:
    def test_file_digest_matches_hashlib(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"virtual data" * 1000)
        assert file_digest(path) == hashlib.sha256(
            b"virtual data" * 1000
        ).hexdigest()

    def test_streams_large_files(self, tmp_path):
        # Bigger than one read chunk, to exercise the streaming loop.
        blob = b"x" * (3 * 1024 * 1024 + 17)
        path = tmp_path / "big.bin"
        path.write_bytes(blob)
        assert file_digest(path) == hashlib.sha256(blob).hexdigest()

    def test_verify_bytes(self):
        digest = hashlib.sha256(b"abc").hexdigest()
        assert verify_bytes(b"abc", digest)
        assert not verify_bytes(b"abd", digest)


class TestVerifyFile:
    def test_clean_file_passes(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_bytes(b"content")
        assert verify_file(path, size=7, digest=file_digest(path))

    def test_missing_file_fails(self, tmp_path):
        assert not verify_file(tmp_path / "gone.txt", size=1)

    def test_size_mismatch_fails(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_bytes(b"abc")
        assert not verify_file(path, size=4)

    def test_content_mismatch_fails(self, tmp_path):
        path = tmp_path / "flip.txt"
        path.write_bytes(b"abc")
        digest = file_digest(path)
        path.write_bytes(b"abd")  # same size, different bytes
        assert not verify_file(path, size=3, digest=digest)

    def test_simulated_digest_is_skipped(self, tmp_path):
        # Grid replicas carry a `sha256:`-prefixed pseudo-digest that
        # is not a real content hash; verify must not recompute it.
        path = tmp_path / "sim.txt"
        path.write_bytes(b"anything")
        assert verify_file(path, size=8, digest=DIGEST_PREFIX + "deadbeef")

    def test_none_digest_checks_size_only(self, tmp_path):
        path = tmp_path / "sized.txt"
        path.write_bytes(b"12345")
        assert verify_file(path, size=5, digest=None)
        assert not verify_file(path, size=6, digest=None)
