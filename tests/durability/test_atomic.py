"""Tests for the atomic file-replacement helpers."""

import json

import pytest

from repro.durability.atomic import (
    TMP_MARKER,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sweep_temporaries,
)


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_leaves_no_temporaries_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "content")
        leftovers = [p for p in tmp_path.iterdir() if TMP_MARKER in p.name]
        assert leftovers == []

    def test_json_round_trips_with_trailing_newline(self, tmp_path):
        target = tmp_path / "result.json"
        atomic_write_json(target, {"b": 2, "a": [1, 2]})
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": [1, 2], "b": 2}

    def test_json_compact_mode(self, tmp_path):
        target = tmp_path / "compact.json"
        atomic_write_json(target, {"k": 1}, indent=None)
        assert target.read_text() == '{"k": 1}\n'

    def test_fsync_variant_still_lands(self, tmp_path):
        target = tmp_path / "durable.txt"
        atomic_write_text(target, "synced", fsync=True)
        assert target.read_text() == "synced"

    def test_failed_serialization_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "keep.json"
        atomic_write_json(target, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        # Old content survives; no temp debris accumulates forever.
        assert json.loads(target.read_text()) == {"ok": True}


class TestSweep:
    def test_removes_only_marked_files(self, tmp_path):
        keep = tmp_path / "data.json"
        keep.write_text("{}")
        stale = tmp_path / f"data.json{TMP_MARKER}abc123"
        stale.write_text("partial")
        removed = sweep_temporaries(tmp_path)
        assert removed == [stale]
        assert keep.exists() and not stale.exists()

    def test_missing_directory_is_noop(self, tmp_path):
        assert sweep_temporaries(tmp_path / "nope") == []

    def test_does_not_recurse(self, tmp_path):
        sub = tmp_path / "sub"
        sub.mkdir()
        nested = sub / f"x{TMP_MARKER}1"
        nested.write_text("partial")
        assert sweep_temporaries(tmp_path) == []
        assert nested.exists()
