"""Crash matrix: real SIGKILL at every commit point, then recovery.

The definitive durability test.  For several pipeline seeds, a real
``python -m repro materialize`` subprocess is killed (SIGKILL, no
cleanup handlers) at each seeded crashpoint along the stage-out /
provenance-commit path.  After every kill, ``fsck --repair`` plus a
rerun must converge to byte-for-byte the same final state as a run
that was never interrupted — and a final fsck must come back clean.

Kill points are discovered, not hard-coded: a clean instrumented run
logs every crashpoint it passes (``REPRO_CRASHPOINT_LOG``), and the
matrix then arms ``REPRO_CRASH_AFTER=N`` for each N.  New crashpoints
added to the commit path are automatically covered.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

SRC = Path(__file__).resolve().parents[2] / "src"

VDL_TEMPLATE = """
TR emit( output o ) {{
  argument stdout = ${{output:o}};
  argument msg = "{message}";
  exec = "/bin/echo";
}}
TR copy( output o, input i ) {{
  argument = ${{input:i}}" "${{output:o}};
  exec = "/bin/cp";
}}
DV e1->emit( o=@{{output:"seed.txt"}} );
DV c1->copy( o=@{{output:"copy.txt"}}, i=@{{input:"seed.txt"}} );
"""

SEEDS = ["alpha-0xA", "bravo-0xB", "charlie-0xC"]


def cli(workspace: Path, *argv: str) -> tuple[int, str]:
    """Run a CLI command in-process (fast path for setup/recovery)."""
    lines: list[str] = []
    code = main(
        ["--workspace", str(workspace), *argv],
        out=lambda text="": lines.append(str(text)),
    )
    return code, "\n".join(lines)


def make_workspace(tmp_path: Path, name: str, message: str) -> Path:
    workspace = tmp_path / name
    vdl = tmp_path / f"{name}.vdl"
    vdl.write_text(VDL_TEMPLATE.format(message=message))
    assert cli(workspace, "init")[0] == 0
    assert cli(workspace, "define", str(vdl))[0] == 0
    return workspace


def materialize_subprocess(workspace: Path, extra_env: dict) -> int:
    """A real child process, killable by a real SIGKILL."""
    env = {
        **os.environ,
        "PYTHONPATH": str(SRC),
        **extra_env,
    }
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "--workspace",
            str(workspace),
            "materialize",
            "copy.txt",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    return proc.returncode


@pytest.fixture(scope="module")
def crashpoint_count(tmp_path_factory):
    """How many crashpoints one clean materialize passes through."""
    tmp_path = tmp_path_factory.mktemp("discovery")
    workspace = make_workspace(tmp_path, "ws", SEEDS[0])
    log = tmp_path / "crashpoints.log"
    code = materialize_subprocess(
        workspace, {"REPRO_CRASHPOINT_LOG": str(log)}
    )
    assert code == 0
    hits = [line for line in log.read_text().splitlines() if line.strip()]
    # The commit path must traverse stage-out, per-op commit points,
    # the pre-marker window, and post-commit.
    names = {h.split()[0] if " " in h else h for h in hits}
    assert any(n.startswith("executor.stage-out") for n in names)
    assert any(n.startswith("catalog.commit.op") for n in names)
    assert any(n.startswith("catalog.commit.pre-marker") for n in names)
    assert any(n.startswith("executor.post-commit") for n in names)
    return len(hits)


def reference_state(tmp_path: Path, message: str) -> bytes:
    workspace = make_workspace(tmp_path, "reference", message)
    assert cli(workspace, "materialize", "copy.txt")[0] == 0
    return (workspace / "sandbox" / "copy.txt").read_bytes()


class TestCrashMatrix:
    @pytest.mark.parametrize("seed_index", range(len(SEEDS)))
    def test_kill_recover_converge(
        self, tmp_path, crashpoint_count, seed_index
    ):
        message = SEEDS[seed_index]
        expected = reference_state(tmp_path, message)
        # Seed 0 sweeps every kill point; the other seeds keep the
        # matrix fast by sampling first, middle, and last.
        if seed_index == 0:
            kill_points = range(1, crashpoint_count + 1)
        else:
            kill_points = sorted(
                {1, (crashpoint_count + 1) // 2, crashpoint_count}
            )
        for n in kill_points:
            workspace = make_workspace(tmp_path, f"kill-{n}", message)
            code = materialize_subprocess(
                workspace, {"REPRO_CRASH_AFTER": str(n)}
            )
            assert code == -signal.SIGKILL, (
                f"kill point {n}: expected SIGKILL, got exit {code}"
            )

            # Recovery: fsck --repair must clear every blocking
            # finding (exit 0 == not corrupted afterwards).
            code, output = cli(workspace, "fsck", "--repair")
            assert code == 0, f"kill point {n}: fsck --repair said:\n{output}"

            # Rerun converges on the uninterrupted final state.
            code, output = cli(workspace, "materialize", "copy.txt")
            assert code == 0, f"kill point {n}: rerun said:\n{output}"
            final = (workspace / "sandbox" / "copy.txt").read_bytes()
            assert final == expected, f"kill point {n}: wrong bytes"

            # And the recovered workspace passes a full fsck.
            code, output = cli(workspace, "fsck")
            assert code == 0, f"kill point {n}: final fsck said:\n{output}"


class TestKillWithoutRepair:
    def test_preflight_alone_recovers_journal_crash(
        self, tmp_path, crashpoint_count
    ):
        """A rerun without explicit fsck must also converge.

        The materialize preflight auto-repairs journal findings; any
        remaining corruption (orphan outputs) must make it refuse
        rather than silently proceed.
        """
        expected = reference_state(tmp_path, SEEDS[0])
        converged = refused = 0
        for n in range(1, crashpoint_count + 1):
            workspace = make_workspace(tmp_path, f"norepair-{n}", SEEDS[0])
            assert (
                materialize_subprocess(
                    workspace, {"REPRO_CRASH_AFTER": str(n)}
                )
                == -signal.SIGKILL
            )
            code, output = cli(workspace, "materialize", "copy.txt")
            if code == 0:
                final = workspace / "sandbox" / "copy.txt"
                assert final.read_bytes() == expected
                converged += 1
            else:
                # Refusal is the only acceptable alternative, and it
                # must say why and how to proceed.
                assert code == 2, f"kill point {n}: exit {code}\n{output}"
                assert "fsck" in output
                refused = refused + 1
                # After repair the same command succeeds.
                assert cli(workspace, "fsck", "--repair")[0] == 0
                code, _ = cli(workspace, "materialize", "copy.txt")
                assert code == 0
        assert converged + refused == crashpoint_count
        assert converged > 0  # journal-only crashes self-heal


class TestCrashpointPlumbing:
    def test_unarmed_crashpoints_are_free(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CRASH_AFTER", raising=False)
        monkeypatch.delenv("REPRO_CRASHPOINT_LOG", raising=False)
        from repro.durability.crashpoints import crashpoint, crashpoints_armed

        assert not crashpoints_armed()
        crashpoint("anything")  # must be a no-op, not a kill

    def test_match_filter_limits_kills(self, tmp_path):
        """REPRO_CRASH_MATCH restricts counting to one site prefix."""
        workspace = make_workspace(tmp_path, "match", SEEDS[0])
        code = materialize_subprocess(
            workspace,
            {
                "REPRO_CRASH_AFTER": "1",
                "REPRO_CRASH_MATCH": "executor.post-commit",
            },
        )
        assert code == -signal.SIGKILL
        # Provenance committed before the kill: recovery needs no
        # repairs beyond the preflight, and nothing re-runs.
        code, output = cli(workspace, "fsck")
        assert code == 0, output
