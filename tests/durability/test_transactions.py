"""Tests for crash-atomic catalog transactions across all backends."""

import pytest

from repro.catalog.filetree import FileTreeCatalog
from repro.catalog.memory import MemoryCatalog
from repro.catalog.sqlite import SQLiteCatalog
from repro.core.dataset import Dataset
from repro.core.replica import Replica
from repro.durability.journal import IntentJournal, load_journal_state


@pytest.fixture(params=["memory", "sqlite", "filetree"])
def any_catalog(request, tmp_path):
    if request.param == "memory":
        yield MemoryCatalog()
    elif request.param == "sqlite":
        with SQLiteCatalog(str(tmp_path / "cat.db")) as catalog:
            yield catalog
    else:
        yield FileTreeCatalog(tmp_path / "cat")


class TestRollback:
    def test_exception_rolls_back_all_ops(self, any_catalog):
        any_catalog.add_dataset(Dataset(name="keep"))
        with pytest.raises(RuntimeError):
            with any_catalog.transaction(label="doomed"):
                any_catalog.add_dataset(Dataset(name="a"))
                any_catalog.add_replica(
                    Replica(dataset_name="a", location="anl")
                )
                raise RuntimeError("boom")
        assert not any_catalog.has_dataset("a")
        assert any_catalog.replicas_of("a") == []
        assert any_catalog.has_dataset("keep")

    def test_rollback_restores_replaced_payload(self, any_catalog):
        any_catalog.add_dataset(
            Dataset(name="d", attributes={"quality": "good"})
        )
        with pytest.raises(RuntimeError):
            with any_catalog.transaction():
                any_catalog.add_dataset(
                    Dataset(name="d", attributes={"quality": "bad"}),
                    replace=True,
                )
                raise RuntimeError("boom")
        assert any_catalog.get_dataset("d").attributes["quality"] == "good"

    def test_rollback_restores_deleted_entry(self, any_catalog):
        any_catalog.add_dataset(Dataset(name="d"))
        with pytest.raises(RuntimeError):
            with any_catalog.transaction():
                any_catalog.remove_dataset("d")
                raise RuntimeError("boom")
        assert any_catalog.has_dataset("d")

    def test_indexes_stay_coherent_after_rollback(self, any_catalog):
        replica = Replica(dataset_name="d", location="anl")
        with pytest.raises(RuntimeError):
            with any_catalog.transaction():
                any_catalog.add_replica(replica)
                raise RuntimeError("boom")
        # The by-dataset index must not keep a ghost of the rolled-back
        # replica; a later add of the same record must succeed cleanly.
        assert any_catalog.replicas_of("d") == []
        any_catalog.add_replica(replica)
        assert len(any_catalog.replicas_of("d")) == 1

    def test_successful_transaction_commits(self, any_catalog):
        with any_catalog.transaction(label="ok"):
            any_catalog.add_dataset(Dataset(name="a"))
            any_catalog.add_dataset(Dataset(name="b"))
        assert any_catalog.dataset_names() == ["a", "b"]

    def test_nested_transaction_joins_outer(self, any_catalog):
        with pytest.raises(RuntimeError):
            with any_catalog.transaction():
                any_catalog.add_dataset(Dataset(name="outer"))
                with any_catalog.transaction():
                    any_catalog.add_dataset(Dataset(name="inner"))
                # Inner committed from its own view, but the outer txn
                # fails: everything rolls back together.
                raise RuntimeError("boom")
        assert not any_catalog.has_dataset("outer")
        assert not any_catalog.has_dataset("inner")


class TestBulk:
    def test_bulk_is_not_exception_atomic(self, any_catalog):
        # Pinned semantics: bulk() optimizes commits but does not
        # promise rollback on failure (unlike transaction()).
        with pytest.raises(RuntimeError):
            with any_catalog.bulk():
                any_catalog.add_dataset(Dataset(name="survivor"))
                raise RuntimeError("boom")
        assert any_catalog.has_dataset("survivor")


class TestJournalIntegration:
    def test_committed_txn_lands_in_journal(self, tmp_path):
        catalog = MemoryCatalog()
        catalog.attach_journal(IntentJournal(tmp_path, keep_history=True))
        with catalog.transaction(label="landing"):
            catalog.add_dataset(Dataset(name="a"))
        state = load_journal_state(tmp_path)
        assert state.clean
        assert [t.label for t in state.committed] == ["landing"]

    def test_rolled_back_txn_leaves_clean_journal(self, tmp_path):
        catalog = MemoryCatalog()
        catalog.attach_journal(IntentJournal(tmp_path, keep_history=True))
        with pytest.raises(RuntimeError):
            with catalog.transaction(label="doomed"):
                catalog.add_dataset(Dataset(name="a"))
                raise RuntimeError("boom")
        state = load_journal_state(tmp_path)
        # The rollback is journaled as compensating ops and committed,
        # so a crash after it cannot re-lose the rollback; the net
        # replay effect is zero.
        assert state.clean
        rebuilt = MemoryCatalog()
        from repro.durability.journal import replay_into

        replay_into(rebuilt, state)
        assert not rebuilt.has_dataset("a")

    def test_mutation_outside_transaction_not_journaled(self, tmp_path):
        catalog = MemoryCatalog()
        catalog.attach_journal(IntentJournal(tmp_path, keep_history=True))
        catalog.add_dataset(Dataset(name="solo"))
        state = load_journal_state(tmp_path)
        assert state.committed == [] and state.uncommitted == []


class TestSQLiteNativeRollback:
    def test_native_rollback_without_journal(self, tmp_path):
        path = str(tmp_path / "native.db")
        with SQLiteCatalog(path) as catalog:
            catalog.add_dataset(Dataset(name="keep"))
            with pytest.raises(RuntimeError):
                with catalog.transaction():
                    catalog.add_dataset(Dataset(name="lost"))
                    raise RuntimeError("boom")
            assert catalog.has_dataset("keep")
            assert not catalog.has_dataset("lost")
        # Reopen: the rollback must be durable, not just in-memory.
        with SQLiteCatalog(path) as reopened:
            assert reopened.has_dataset("keep")
            assert not reopened.has_dataset("lost")

    def test_commit_durable_across_reopen(self, tmp_path):
        path = str(tmp_path / "commit.db")
        with SQLiteCatalog(path) as catalog:
            with catalog.transaction(label="persist"):
                catalog.add_dataset(Dataset(name="a"))
                catalog.add_replica(Replica(dataset_name="a", location="x"))
        with SQLiteCatalog(path) as reopened:
            assert reopened.has_dataset("a")
            assert len(reopened.replicas_of("a")) == 1
