"""The paper's figures as executable scenarios.

Each test class reconstructs one figure of the paper exactly and checks
the relationships the figure depicts.
"""

import pytest

from repro.catalog.federation import FederatedIndex
from repro.catalog.memory import MemoryCatalog
from repro.catalog.resolver import CatalogNetwork, ReferenceResolver
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.core.replica import Replica
from repro.provenance.lineage import cross_catalog_lineage, lineage_report


class TestFigure1:
    """The five basic objects: dataset foo of type2 produced by
    applying prog1( in type1 X, out type2 Y ) to dataset fnn, with a
    physical replica at U.Chicago and a 20-second invocation."""

    @pytest.fixture
    def catalog(self):
        catalog = MemoryCatalog()
        catalog.types.register("content", "type1")
        catalog.types.register("content", "type2")
        catalog.define(
            """
            TR prog1( output Y : type2, input X : type1 ) {
              argument = "-f "${input:X};
              argument stdout = ${output:Y};
              exec = "/usr/bin/prog1";
            }
            DV dfoo->prog1( Y=@{output:"foo"}, X=@{input:"fnn"} );
            """
        )
        catalog.add_replica(
            Replica(dataset_name="foo", location="U.Chicago")
        )
        catalog.add_invocation(
            Invocation(
                derivation_name="dfoo",
                context=ExecutionContext.make(site="U.Chicago"),
                usage=ResourceUsage(cpu_seconds=20.0, wall_seconds=20.0),
            )
        )
        return catalog

    def test_all_five_objects_present(self, catalog):
        counts = catalog.counts()
        assert counts["transformation"] == 1
        assert counts["derivation"] == 1
        assert counts["dataset"] == 2  # foo and fnn auto-declared
        assert counts["replica"] == 1
        assert counts["invocation"] == 1

    def test_dataset_typed_from_signature(self, catalog):
        # Auto-declared datasets inherit the formal's (single) type.
        assert catalog.get_dataset("foo").dataset_type.content == "type2"
        assert catalog.get_dataset("fnn").dataset_type.content == "type1"

    def test_instance_of_edge(self, catalog):
        dv = catalog.get_derivation("dfoo")
        tr = catalog.get_transformation(dv.transformation.name)
        dv.check_against(tr)  # the "instance of" relationship validates

    def test_physical_replica_of_edge(self, catalog):
        replicas = catalog.replicas_of("foo")
        assert replicas[0].location == "U.Chicago"

    def test_invocation_of_edge(self, catalog):
        invs = catalog.invocations_of("dfoo")
        assert invs[0].usage.cpu_seconds == 20.0
        assert invs[0].context.site == "U.Chicago"

    def test_provenance_relationship(self, catalog):
        report = lineage_report(catalog, "foo")
        assert report.steps[0].derivation.name == "dfoo"
        assert "fnn" in report.steps[0].inputs
        assert report.steps[0].inputs["fnn"].is_source


class TestFigure2:
    """Virtual data hyperlinks between the Wisconsin and Illinois
    servers: cmpsim composed of remote sim+cmp, srch-muon invoking
    remote srch."""

    @pytest.fixture
    def network(self):
        net = CatalogNetwork()
        wisconsin = net.register(
            MemoryCatalog(authority="physics.wisconsin.edu")
        )
        illinois = net.register(
            MemoryCatalog(authority="physics.illinois.edu")
        )
        illinois.define(
            """
            TR sim( output out, input cfg ) {
              argument stdin = ${input:cfg};
              argument stdout = ${output:out};
              exec = "/usr/bin/sim";
            }
            TR cmp( output z, input raw ) {
              argument stdin = ${input:raw};
              argument stdout = ${output:z};
              exec = "/usr/bin/cmp";
            }
            """
        )
        wisconsin.define(
            """
            TR srch( output hits, input events, none particle="any" ) {
              argument = "-p "${none:particle};
              argument stdin = ${input:events};
              argument stdout = ${output:hits};
              exec = "/usr/bin/srch";
            }
            TR cmpsim( input cfg, inout mid=@{inout:"cmpsim.mid":""},
                       output z ) {
              vdp://physics.illinois.edu/sim( out=${output:mid}, cfg=${cfg} );
              vdp://physics.illinois.edu/cmp( z=${z}, raw=${input:mid} );
            }
            """
        )
        illinois.define(
            """
            DV srch-muon->vdp://physics.wisconsin.edu/srch(
                hits=@{output:"muon.hits"},
                events=@{input:"events.all"},
                particle="muon" );
            """
        )
        return net, wisconsin, illinois

    def test_all_hyperlinks_resolve(self, network):
        net, wisconsin, illinois = network
        resolver = ReferenceResolver(wisconsin, net)
        cmpsim = wisconsin.get_transformation("cmpsim")
        callees = resolver.expand_compound(cmpsim)
        assert callees[0].name == "sim" and callees[1].name == "cmp"
        resolver_il = ReferenceResolver(illinois, net)
        srch, where = resolver_il.transformation(
            illinois.get_derivation("srch-muon").transformation
        )
        assert srch.name == "srch" and where is wisconsin

    def test_cross_catalog_plan_executes(self, network):
        """A derivation of the Wisconsin compound over Illinois parts
        must expand into a runnable cross-catalog plan."""
        from repro.planner.dag import Planner
        from repro.planner.request import MaterializationRequest

        net, wisconsin, _ = network
        wisconsin.define(
            """
            DV pack1->cmpsim( cfg=@{input:"config.A"},
                              z=@{output:"packed.A"} );
            """
        )
        resolver = ReferenceResolver(wisconsin, net)
        planner = Planner(
            wisconsin,
            resolver=resolver,
            has_replica=lambda lfn: lfn == "config.A",
        )
        plan = planner.plan(
            MaterializationRequest(targets=("packed.A",), reuse="never")
        )
        assert set(plan.steps) == {"pack1.0.sim", "pack1.1.cmp"}
        assert plan.sources == {"config.A"}
        assert "pack1.mid" in plan.temporaries


class TestFigure3:
    """Dataset dependency hyperlinks across personal, group and
    collaboration servers."""

    @pytest.fixture
    def tiers(self):
        net = CatalogNetwork()
        collab = net.register(MemoryCatalog(authority="collab.org"))
        group = net.register(MemoryCatalog(authority="group.org"))
        personal = MemoryCatalog(authority="alice.personal")
        collab.define(
            """
            TR official-reco( output dst, input raw ) {
              argument stdin = ${input:raw};
              argument stdout = ${output:dst};
              exec = "/opt/reco";
            }
            DV reco.v7->official-reco( dst=@{output:"dst.v7"},
                                       raw=@{input:"raw.2002"} );
            """
        )
        group.define(
            """
            TR skim( output sel, input dst ) {
              argument stdin = ${input:dst};
              argument stdout = ${output:sel};
              exec = "/grp/skim";
            }
            DV skim.muons->skim( sel=@{output:"muons.v7"},
                                 dst=@{input:"dst.v7"} );
            """
        )
        personal.define(
            """
            TR fit( output plot, input sel ) {
              argument stdin = ${input:sel};
              argument stdout = ${output:plot};
              exec = "/home/alice/fit";
            }
            DV myfit->fit( plot=@{output:"mass.plot"},
                           sel=@{input:"muons.v7"} );
            """
        )
        return ReferenceResolver(
            personal, net, scope_chain=["group.org", "collab.org"]
        )

    def test_lineage_spans_three_servers(self, tiers):
        report = cross_catalog_lineage(tiers, "mass.plot")
        assert report.depth() == 3
        authorities = set()

        def walk(r):
            for step in r.steps:
                authorities.add(step.authority)
                for sub in step.inputs.values():
                    walk(sub)

        walk(report)
        assert authorities == {"alice.personal", "group.org", "collab.org"}

    def test_raw_source_at_the_bottom(self, tiers):
        report = cross_catalog_lineage(tiers, "mass.plot")
        assert report.all_source_datasets() == {"raw.2002"}


class TestFigure4:
    """Indexing the virtual data grid at multiple levels: personal,
    group, and collaboration-wide indexes differ in scope."""

    @pytest.fixture
    def world(self):
        net = CatalogNetwork()
        personals = [
            net.register(MemoryCatalog(authority=f"personal{i}.org"))
            for i in range(3)
        ]
        group = net.register(MemoryCatalog(authority="group.org"))
        collab = net.register(MemoryCatalog(authority="collab.org"))
        for i, personal in enumerate(personals):
            personal.define(
                f'TR mytool{i}( output o ) {{ exec = "/bin/t{i}"; }}'
                f' DV mine{i}->mytool{i}( o=@{{output:"scratch{i}"}} );'
            )
        group.define(
            'TR grptool( output o ) { exec = "/grp/tool"; }'
            ' DV grun->grptool( o=@{output:"group.data"} );'
        )
        collab.define(
            'TR official( output o ) { exec = "/opt/official"; }'
            ' DV orun->official( o=@{output:"official.data"} );'
        )
        return personals, group, collab

    def test_personal_index_scope(self, world):
        personals, group, _ = world
        index = FederatedIndex("personal0+group")
        index.attach(personals[0])
        index.attach(group)
        names = {e.name for e in index.find("derivation")}
        assert names == {"mine0", "grun"}

    def test_collaboration_wide_index(self, world):
        personals, group, collab = world
        index = FederatedIndex("collab-wide")
        for catalog in [*personals, group, collab]:
            index.attach(catalog)
        derivations = {e.name for e in index.find("derivation")}
        assert derivations == {"mine0", "mine1", "mine2", "grun", "orun"}

    def test_indexes_differ_by_scope(self, world):
        personals, group, collab = world
        official_only = FederatedIndex("official")
        official_only.attach(collab)
        wide = FederatedIndex("wide")
        for catalog in [*personals, group, collab]:
            wide.attach(catalog)
        assert len(official_only) < len(wide)
        assert not official_only.find("derivation", name_glob="mine*")
        assert wide.find("derivation", name_glob="mine*")
