"""Full-stack tests through the VirtualDataSystem facade (Fig 5)."""

import pytest

from repro import VirtualDataSystem
from repro.workloads import sdss
from tests.conftest import DIAMOND_VDL


@pytest.fixture
def vds():
    system = VirtualDataSystem.with_grid(
        {"anl": 8, "uc": 8}, authority="vds.test"
    )
    system.define(DIAMOND_VDL)
    return system


class TestProcessFlow:
    def test_composition(self, vds):
        assert vds.catalog.counts()["transformation"] == 3
        assert vds.catalog.counts()["derivation"] == 5

    def test_planning(self, vds):
        plan = vds.plan("final", reuse="never")
        assert len(plan) == 5
        assert plan.depth() == 3

    def test_estimation_before_derivation(self, vds):
        plan = vds.plan("final", reuse="never")
        estimate = vds.estimate(plan)
        assert estimate.makespan_seconds > 0
        assert estimate.total_cpu_seconds == plan.total_cpu_seconds()

    def test_derivation_records_provenance(self, vds):
        result = vds.materialize("final", reuse="never")
        assert result.succeeded
        assert vds.replicas.has("final")
        assert vds.catalog.invocations_of("a1")
        lineage = vds.lineage("final")
        assert lineage.all_derivations() == {"g1", "g2", "s1", "s2", "a1"}
        assert lineage.steps[0].invocations

    def test_discovery(self, vds):
        hits = vds.discover_datasets(name_glob="sim*")
        assert {d.name for d in hits} == {"sim1", "sim2"}
        transformations = vds.discover_transformations(name_glob="a*")
        assert [t.name for t in transformations] == ["ana"]

    def test_deadline_feasibility(self, vds):
        assert vds.can_meet_deadline("final", 1e6)
        assert not vds.can_meet_deadline("final", 0.001)

    def test_reuse_across_requests(self, vds):
        vds.materialize("sim1", reuse="never")
        plan = vds.plan("final", reuse="always")
        assert "sim1" in plan.reused
        assert "s1" not in plan.steps
        result = vds.materialize("final", reuse="always")
        assert result.succeeded

    def test_estimate_vs_measured_shape(self, vds):
        plan = vds.plan("final", reuse="never")
        estimate = vds.estimate(plan)
        result = vds.materialize("final", reuse="never")
        # The analytic estimate should be within 3x of simulated truth.
        ratio = estimate.makespan_seconds / max(result.makespan, 1e-9)
        assert 1 / 3 <= ratio <= 3

    def test_sharing_and_federation(self, vds):
        other = VirtualDataSystem(authority="partner.org")
        other.define(
            'TR remote-tool( output o ) { exec = "/bin/rt"; }'
        )
        vds.share_with(other.catalog)
        tr, where = vds.resolver.transformation(
            __import__("repro.core.naming", fromlist=["VDPRef"]).VDPRef(
                "remote-tool"
            )
        )
        assert where is other.catalog
        index = vds.build_index("everything")
        assert "partner.org" in index.members()
        assert index.find("transformation", name_glob="remote-tool")

    def test_grid_required_for_materialize(self):
        no_grid = VirtualDataSystem()
        no_grid.define(DIAMOND_VDL)
        assert len(no_grid.plan("final", reuse="never")) == 5
        with pytest.raises(Exception):
            no_grid.materialize("final")


class TestSeededData:
    def test_seed_dataset(self, vds):
        vds.seed_dataset("survey.raw", "anl", 1_000_000)
        assert vds.replicas.has("survey.raw", "anl")
        assert vds.catalog.has_dataset("survey.raw")
        ds = vds.discover_datasets(name_glob="survey.*")[0]
        assert ds.size_estimate() == 1_000_000


class TestSDSSOnGrid:
    def test_small_campaign_on_grid(self):
        vds = VirtualDataSystem.with_grid(
            {"anl": 16, "uc": 16, "uw": 16, "ufl": 16},
            authority="sdss.test",
        )
        campaign = sdss.define_campaign(
            vds.catalog, fields=8, fields_per_stripe=4
        )
        for i, field in enumerate(campaign.field_datasets):
            vds.seed_dataset(
                field,
                ["anl", "uc", "uw", "ufl"][i % 4],
                sdss.FIELD_BYTES,
            )
        result = vds.materialize(tuple(campaign.targets), reuse="never")
        assert result.succeeded
        assert len(result.outcomes) == campaign.derivations
        assert len(result.sites_used()) >= 2
        lineage = vds.lineage(campaign.targets[0])
        assert lineage.depth() >= 5
