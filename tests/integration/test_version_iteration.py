"""Integration: iterating over changeable analysis codes (§6).

"...iterate in an unstructured manner over a small number of
changeable analysis codes..."  The catalog must keep every version of
an analysis transformation, track which version produced which data,
and let compatibility assertions decide what survives a code change.
"""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.executor.local import LocalExecutor
from repro.provenance.equivalence import EquivalenceChecker


@pytest.fixture
def lab(tmp_path):
    catalog = MemoryCatalog()
    catalog.define(
        """
        TR analyze@1.0( output o, input i ) {
          argument stdin = ${input:i};
          argument stdout = ${output:o};
          exec = "py:analyze-v1";
        }
        TR analyze@1.1( output o, input i ) {
          argument stdin = ${input:i};
          argument stdout = ${output:o};
          exec = "py:analyze-v2";
        }
        DV run.a->analyze( o=@{output:"result.a"}, i=@{input:"events"} );
        """
    )
    executor = LocalExecutor(catalog, tmp_path)
    executor.register("py:analyze-v1", lambda ctx: ctx.write_output(
        "o", "v1:" + ctx.read_input("i").decode()))
    executor.register("py:analyze-v2", lambda ctx: ctx.write_output(
        "o", "v2:" + ctx.read_input("i").decode()))
    executor.path_for("events").write_text("data")
    return catalog, executor


class TestVersionIteration:
    def test_both_versions_kept(self, lab):
        catalog, _ = lab
        assert catalog.get_transformation("analyze", "1.0").executable == "py:analyze-v1"
        assert catalog.get_transformation("analyze", "1.1").executable == "py:analyze-v2"

    def test_latest_version_wins_by_default(self, lab):
        catalog, executor = lab
        executor.materialize("result.a")
        assert executor.path_for("result.a").read_text() == "v2:data"

    def test_versions_registered_in_registry(self, lab):
        catalog, _ = lab
        assert [str(v) for v in catalog.versions.versions("analyze")] == [
            "1.0", "1.1",
        ]

    def test_semantic_equivalence_gate(self, lab):
        """Data made with 1.0 counts as equivalent to 1.1 products only
        after the community asserts compatibility."""
        catalog, _ = lab
        catalog.define(
            'DV run.b->analyze( o=@{output:"result.b"}, i=@{input:"events"} );'
        )
        for name, version in (("run.a", "1.0"), ("run.b", "1.1")):
            dv = catalog.get_derivation(name)
            dv.attributes.set("transformation_version", version)
            catalog.add_derivation(dv, replace=True)
        checker = EquivalenceChecker(catalog)
        assert not checker.semantic_equal("result.a", "result.b")
        catalog.versions.assert_compatible(
            "analyze", "1.0", "1.1", authority="physics-board"
        )
        assert checker.semantic_equal("result.a", "result.b")

    def test_invalidating_one_version_only(self, lab):
        """A bug found in v1.1 must not taint v1.0 products... at
        name granularity both versions share the transformation name,
        so the conservative blast radius includes both — the version
        filter is then applied via invocation records."""
        from repro.provenance.graph import DerivationGraph
        from repro.provenance.invalidation import invalidated_by

        catalog, executor = lab
        executor.materialize("result.a")
        graph = DerivationGraph.from_catalog(catalog)
        blast = invalidated_by(graph, bad_transformations=["analyze"])
        assert "result.a" in blast.tainted_datasets
        # The invocation record pins which executable actually ran,
        # letting an auditor exonerate runs of the other version.
        inv = catalog.invocations_of("run.a")[0]
        assert inv.succeeded
