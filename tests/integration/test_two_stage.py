"""Integration: the §3.2 two-stage parameter-file adapter end to end.

A transformation expecting its parameters in a file is wrapped in the
two-stage compound; the planner flattens it and the local executor
really runs both stages — stage 1 writes the parameter file, stage 2
reads it.
"""

import json

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.core.transformation import FormalArg, two_stage
from repro.executor.local import LocalExecutor
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest
from repro.vdl.semantics import compile_vdl


@pytest.fixture
def catalog():
    catalog = MemoryCatalog()
    # The param writer (stage 1) and the real app (stage 2).
    catalog.define(
        """
        TR write-params( output paramfile, none cut="0", none mode="fast" ) {
          argument = "-cut "${none:cut}" -mode "${none:mode};
          argument stdout = ${output:paramfile};
          exec = "py:write-params";
        }
        TR legacy-app( output result, input paramfile, input data ) {
          argument = "-p "${input:paramfile};
          argument stdin = ${input:data};
          argument stdout = ${output:result};
          exec = "py:legacy-app";
        }
        """
    )
    adapter = two_stage(
        "legacy-adapter",
        catalog.get_transformation("legacy-app"),
        params=[FormalArg("cut", "none"), FormalArg("mode", "none")],
    )
    catalog.add_transformation(adapter)
    catalog.define(
        """
        DV a1->legacy-adapter( cut="42", mode="slow",
                               data=@{input:"input.dat"},
                               result=@{output:"answer.dat"} );
        """
    )
    return catalog


def write_params_body(ctx):
    ctx.write_output(
        "paramfile",
        json.dumps({"cut": ctx.parameters["cut"], "mode": ctx.parameters["mode"]}),
    )


def legacy_app_body(ctx):
    params = json.loads(ctx.read_input("paramfile").decode())
    data = ctx.read_input("data").decode()
    ctx.write_output(
        "result", f"cut={params['cut']} mode={params['mode']} n={len(data)}"
    )


class TestTwoStage:
    def test_plan_flattens_to_two_steps(self, catalog):
        planner = Planner(catalog)
        plan = planner.plan(
            MaterializationRequest(targets=("answer.dat",), reuse="never")
        )
        # input.dat has no producer: it is a plan source (pre-existing).
        assert plan.sources == {"input.dat"}
        names = sorted(plan.steps)
        assert names == ["a1.0.write-params", "a1.1.legacy-app"]
        assert plan.dependencies["a1.1.legacy-app"] == {"a1.0.write-params"}
        # The hidden param file is a scratch intermediate.
        assert "a1.paramfile" in plan.temporaries

    def test_executes_end_to_end(self, catalog, tmp_path):
        executor = LocalExecutor(catalog, tmp_path)
        executor.register("py:write-params", write_params_body)
        executor.register("py:legacy-app", legacy_app_body)
        executor.path_for("input.dat").write_text("x" * 10)
        invocations = executor.materialize("answer.dat")
        assert [i.derivation_name for i in invocations] == [
            "a1.0.write-params", "a1.1.legacy-app",
        ]
        assert (
            executor.path_for("answer.dat").read_text()
            == "cut=42 mode=slow n=10"
        )

    def test_adapter_round_trips_through_vdl(self, catalog):
        from repro.vdl.unparser import unparse_transformation

        adapter = catalog.get_transformation("legacy-adapter")
        text = unparse_transformation(adapter)
        rebuilt = compile_vdl(text).transformation("legacy-adapter")
        assert rebuilt.is_compound
        assert [c.target.name for c in rebuilt.calls] == [
            "write-params", "legacy-app",
        ]
