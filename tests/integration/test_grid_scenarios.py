"""Integration tests: compound workflows, patterns, determinism on grid."""

import pytest

from repro.system import VirtualDataSystem

COMPOUND_VDL = """
TR sim( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/sim";
}
TR pack( output z, input r ) {
  argument stdin = ${input:r};
  argument stdout = ${output:z};
  exec = "/bin/pack";
}
TR simpack( input cfg, inout mid=@{inout:"scratch":""}, output z ) {
  sim( o=${output:mid}, i=${cfg} );
  pack( z=${z}, r=${input:mid} );
}
DV sp1->simpack( cfg=@{input:"cfg.dat"}, z=@{output:"result.z"} );
"""


def build(sites=None, **kwargs):
    vds = VirtualDataSystem.with_grid(
        sites or {"a": 4, "b": 4}, authority="it.example", **kwargs
    )
    vds.define(COMPOUND_VDL)
    for name, cpu in (("sim", 20.0), ("pack", 5.0)):
        tr = vds.catalog.get_transformation(name)
        tr.attributes.set("cost.cpu_seconds", cpu)
        tr.attributes.set("cost.output_bytes", 10_000_000)
        vds.catalog.add_transformation(tr, replace=True)
    vds.seed_dataset("cfg.dat", sorted(vds.grid.sites)[0], 1_000_000)
    return vds


class TestCompoundOnGrid:
    def test_compound_expands_and_runs(self):
        vds = build()
        result = vds.materialize("result.z", reuse="never")
        assert result.succeeded
        assert set(result.outcomes) == {"sp1.0.sim", "sp1.1.pack"}
        # The expanded sub-derivations became provenance records.
        assert vds.catalog.has_derivation("sp1.0.sim")
        assert vds.catalog.invocations_of("sp1.1.pack")

    def test_intermediate_registered_on_grid(self):
        vds = build()
        vds.materialize("result.z", reuse="never")
        assert vds.replicas.has("sp1.mid")
        assert vds.replicas.has("result.z")

    def test_sequential_dependency_respected(self):
        vds = build()
        result = vds.materialize("result.z", reuse="never")
        sim = result.outcomes["sp1.0.sim"].record
        pack = result.outcomes["sp1.1.pack"].record
        assert pack.start_time >= sim.end_time
        assert result.makespan == pytest.approx(
            25.0 + result.total_stage_in_seconds(), abs=1.0
        )


class TestPatternsEndToEnd:
    @pytest.mark.parametrize(
        "pattern", ["collocate", "ship-procedure", "ship-data", "ship-both"]
    )
    def test_every_pattern_completes(self, pattern):
        vds = build()
        result = vds.materialize("result.z", reuse="never", pattern=pattern)
        assert result.succeeded
        assert vds.replicas.has("result.z")


class TestDeterminism:
    def run_once(self, seed=0):
        vds = build(failure_rate=0.2, seed=seed)
        vds.executor.max_retries = 10
        result = vds.materialize("result.z", reuse="never")
        return (
            result.makespan,
            tuple(
                (n, o.record.start_time, o.record.end_time, o.attempts)
                for n, o in sorted(result.outcomes.items())
            ),
        )

    def test_same_seed_same_trace(self):
        assert self.run_once(seed=3) == self.run_once(seed=3)

    def test_different_seed_may_differ(self):
        # Not guaranteed in general, but with 20% failures the retry
        # schedules almost surely diverge for some seed pair; assert
        # at least one of a few seeds differs to avoid flakiness.
        baseline = self.run_once(seed=3)
        assert any(self.run_once(seed=s) != baseline for s in (4, 5, 6, 7))


class TestWorkflowAccounting:
    def test_queue_and_stage_metrics_consistent(self):
        vds = build(sites={"solo": 1})
        vds.seed_dataset("cfg2.dat", "solo", 1_000_000)
        vds.define(
            'DV sp2->simpack( cfg=@{input:"cfg2.dat"},'
            ' z=@{output:"result2.z"} );'
        )
        result = vds.materialize(
            ("result.z", "result2.z"), reuse="never"
        )
        assert result.succeeded
        # 4 steps on one host: total cpu is 50 s; makespan >= cpu since
        # everything serializes.
        assert result.total_cpu_seconds() == pytest.approx(50.0)
        assert result.makespan >= 50.0
        assert result.peak_in_flight >= 1
