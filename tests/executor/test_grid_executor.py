"""Tests for grid execution with provenance write-back."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.errors import ExecutionError
from repro.executor.events import EventLog
from repro.executor.grid_executor import GridExecutor
from repro.grid.gram import GridExecutionService
from repro.grid.network import uniform_topology
from repro.grid.replica_catalog import ReplicaLocationService
from repro.grid.simulator import Simulator
from repro.grid.site import Site
from repro.planner.request import MaterializationRequest
from repro.planner.strategies import SiteSelector
from tests.conftest import DIAMOND_VDL


@pytest.fixture
def world():
    catalog = MemoryCatalog().define(DIAMOND_VDL)
    for name in ("gen", "sim", "ana"):
        tr = catalog.get_transformation(name)
        tr.attributes.set("cost.cpu_seconds", 10.0)
        tr.attributes.set("cost.output_bytes", 1_000_000)
        catalog.add_transformation(tr, replace=True)
    sim = Simulator()
    net = uniform_topology(["a", "b"])
    sites = {"a": Site("a", hosts=4), "b": Site("b", hosts=4)}
    rls = ReplicaLocationService(net)
    grid = GridExecutionService(sim, sites, net, rls)
    executor = GridExecutor(catalog, grid, SiteSelector(sites, net, rls))
    return catalog, executor, rls, sim


class TestMaterialize:
    def test_end_to_end(self, world):
        catalog, executor, rls, _ = world
        result = executor.materialize(
            MaterializationRequest(targets=("final",), reuse="never")
        )
        assert result.succeeded
        assert rls.has("final")

    def test_invocations_recorded_with_site_identity(self, world):
        catalog, executor, _, _ = world
        executor.materialize(
            MaterializationRequest(targets=("final",), reuse="never")
        )
        invs = catalog.invocations_of("a1")
        assert len(invs) == 1
        assert invs[0].context.site in ("a", "b")
        assert invs[0].context.host
        assert invs[0].usage.cpu_seconds == 10.0

    def test_replicas_recorded(self, world):
        catalog, executor, _, _ = world
        executor.materialize(
            MaterializationRequest(targets=("final",), reuse="never")
        )
        replicas = catalog.replicas_of("final")
        assert len(replicas) == 1
        assert replicas[0].size == 1_000_000
        inv = catalog.invocations_of("a1")[0]
        assert inv.replica_bindings["o"] == replicas[0].replica_id

    def test_cost_reuse_avoids_recompute(self, world):
        catalog, executor, rls, _ = world
        executor.materialize(
            MaterializationRequest(targets=("sim1",), reuse="never")
        )
        plan = executor.plan(
            MaterializationRequest(targets=("final",), reuse="cost")
        )
        # sim1 replica exists: transferring 1 MB beats 20 s recompute.
        assert "sim1" in plan.reused
        assert "s1" not in plan.steps
        result = executor.run(plan)
        assert result.succeeded
        assert rls.has("final")

    def test_estimator_learns_across_runs(self, world):
        catalog, executor, _, _ = world
        executor.materialize(
            MaterializationRequest(targets=("sim1",), reuse="never")
        )
        executor.estimator.refit()
        assert executor.estimator.confidence("gen") == 1

    def test_failure_raises(self, world):
        catalog, executor, _, _ = world
        executor.grid.failure_rate = 0.95
        executor.max_retries = 0
        with pytest.raises(ExecutionError):
            executor.materialize(
                MaterializationRequest(targets=("final",), reuse="never")
            )

    def test_provenance_recording_optional(self, world):
        catalog, executor, _, _ = world
        executor.record_provenance = False
        executor.materialize(
            MaterializationRequest(targets=("sim1",), reuse="never")
        )
        assert catalog.invocations_of("s1") == []


class TestEventLog:
    def test_collects_and_filters(self):
        log = EventLog()
        log.emit(1.0, "submit", "j1", site="a")
        log.emit(2.0, "done", "j1")
        log.emit(3.0, "submit", "j2")
        assert len(log) == 3
        assert log.subjects("submit") == ["j1", "j2"]
        assert log.events("done")[0].time == 2.0
        assert log.events()[0].detail == {"site": "a"}

    def test_listeners(self):
        log = EventLog()
        seen = []
        log.listen(seen.append)
        event = log.emit(1.0, "x", "s")
        assert seen == [event]
