"""Recording and tracing under the parallel local engine.

Pool workers run on threads with empty context-local span stacks, so
``executor.execute`` spans used to mis-parent (attach to whatever the
worker last saw) when ``workers > 1``.  The executor now hands the
``executor.materialize`` span across the pool boundary explicitly;
these tests pin that, and run the ×20 wide-fanout stress with a live
recorder attached — no dropped spans, no mis-parented spans, counter
totals identical to sequential execution.
"""

from __future__ import annotations

from repro.catalog.memory import MemoryCatalog
from repro.executor.local import LocalExecutor
from repro.observability.instrument import Instrumentation
from repro.observability.recorder import FlightRecorder, RunRecord
from repro.workloads import canonical
from tests.executor.test_parallel import (
    catalog_end_state,
    wide_vdl,
)

STEPS_IN_WIDE16 = 22  # 1 src + 16 mid + 4 merge + 1 final


def build_instrumented(tmp_path, vdl, tag):
    obs = Instrumentation()
    catalog = MemoryCatalog(instrumentation=obs)
    canonical.define_transformations(catalog)
    catalog.define(vdl)
    executor = LocalExecutor(
        catalog, tmp_path / tag, instrumentation=obs
    )
    canonical.register_bodies(executor)
    return obs, catalog, executor


def span_parents(obs):
    """(materialize span, execute spans) from one recorded run."""
    materialize = obs.tracer.spans("executor.materialize")
    assert len(materialize) == 1
    executes = obs.tracer.spans("executor.execute")
    return materialize[0], executes


class TestSpanParenting:
    def test_parallel_invoke_spans_parent_to_materialize(self, tmp_path):
        obs, _, executor = build_instrumented(
            tmp_path, wide_vdl(), "par"
        )
        executor.materialize("final.out", workers=4)
        mspan, executes = span_parents(obs)
        assert len(executes) == 12  # 1 src + 8 mid + 2 merge + 1 final
        assert all(s.parent_id == mspan.span_id for s in executes)

    def test_sequential_parenting_unchanged(self, tmp_path):
        obs, _, executor = build_instrumented(
            tmp_path, wide_vdl(), "seq"
        )
        executor.materialize("final.out")
        mspan, executes = span_parents(obs)
        assert all(s.parent_id == mspan.span_id for s in executes)

    def test_worker_threads_are_stamped_on_spans(self, tmp_path):
        obs, _, executor = build_instrumented(
            tmp_path, wide_vdl(16), "thr"
        )
        executor.materialize("final.out", workers=8)
        _, executes = span_parents(obs)
        threads = {s.thread for s in executes}
        assert len(threads) > 1  # work really crossed threads


class TestStressWithRecording:
    def test_twenty_reps_no_drops_no_misparents(self, tmp_path):
        """×20 at workers=8 with the flight recorder attached."""
        ref_obs, ref_catalog, ref_executor = build_instrumented(
            tmp_path, wide_vdl(16), "ref"
        )
        ref_invocations = ref_executor.materialize("final.out")
        expected_names = sorted(
            inv.derivation_name for inv in ref_invocations
        )
        reference_state = catalog_end_state(ref_catalog)
        reference_invoked = ref_obs.metrics.get(
            "executor.invocations"
        ).total()
        assert reference_invoked == STEPS_IN_WIDE16

        for rep in range(20):
            obs, catalog, executor = build_instrumented(
                tmp_path, wide_vdl(16), f"rep{rep}"
            )
            recorder = FlightRecorder.start(
                tmp_path / f"runs{rep}", command="stress"
            )
            obs.attach_recorder(recorder)
            invocations = executor.materialize("final.out", workers=8)
            recorder.finalize(obs, status="ok")

            names = sorted(
                inv.derivation_name for inv in invocations
            )
            assert names == expected_names, f"rep {rep}: lost/dup steps"
            assert catalog_end_state(catalog) == reference_state

            # Counter totals exactly match the sequential run.
            assert (
                obs.metrics.get("executor.invocations").total()
                == reference_invoked
            ), f"rep {rep}: counter drift"

            # No dropped spans: one execute span per step, every one
            # parented to the materialize span.
            mspan, executes = span_parents(obs)
            assert len(executes) == STEPS_IN_WIDE16, f"rep {rep}"
            assert all(
                s.parent_id == mspan.span_id for s in executes
            ), f"rep {rep}: mis-parented span"

            # The record captured every layer, one line per event.
            record = RunRecord.load(recorder.path)
            assert len(record.invocations) == STEPS_IN_WIDE16
            assert len(record.step_attempts) == STEPS_IN_WIDE16
            assert all(
                t["status"] == "success"
                for t in record.step_timings().values()
            )
            assert (
                record.counter_total("executor.invocations")
                == reference_invoked
            )
            assert len(
                record.spans
            ) == len(obs.tracer.spans()), f"rep {rep}: dropped span"


class TestRecordedFailures:
    def test_failed_and_skipped_steps_reach_the_record(self, tmp_path):
        import pytest

        from repro.errors import MaterializationError
        from tests.executor.test_parallel import FAIL_VDL

        obs, _, executor = build_instrumented(tmp_path, FAIL_VDL, "frec")

        def routed(ctx):
            if ctx.parameters["tag"] == "b":
                raise RuntimeError("injected failure")
            canonical._canon_body(ctx)

        executor.register("py:canon1", routed)
        recorder = FlightRecorder.start(tmp_path / "runs", command="fail")
        obs.attach_recorder(recorder)
        with pytest.raises(MaterializationError):
            executor.materialize(
                "top.out", workers=4, failure_policy="run-what-you-can"
            )
        recorder.finalize(obs, status="error")
        record = RunRecord.load(recorder.path)
        timings = record.step_timings()
        assert timings["bad"]["status"] == "failure"
        assert timings["ok"]["status"] == "success"
        skipped = {
            e["step"]
            for e in record.events
            if e["kind"] == "step.skipped"
        }
        assert skipped == {"down", "top"}
        # Failed invocations are recorded too (status != success).
        statuses = {
            i["derivation_name"]: i["status"] for i in record.invocations
        }
        assert statuses["bad"] == "failure"
