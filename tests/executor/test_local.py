"""Tests for the local sandbox executor with real provenance capture."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.errors import ExecutionError
from repro.executor.local import LocalExecutor

PIPELINE = """
TR make-greeting( output o, none words="2" ) {
  argument = "-n "${none:words};
  argument stdout = ${output:o};
  exec = "py:make-greeting";
}
TR shout( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "py:shout";
}
DV mk->make-greeting( o=@{output:"greeting.txt"}, words="3" );
DV sh->shout( o=@{output:"loud.txt"}, i=@{input:"greeting.txt"} );
"""


@pytest.fixture
def executor(tmp_path):
    catalog = MemoryCatalog().define(PIPELINE)
    ex = LocalExecutor(catalog, tmp_path / "sandbox")
    ex.register(
        "py:make-greeting",
        lambda ctx: ctx.write_output(
            "o", "hello " * int(ctx.parameters["words"])
        ),
    )
    ex.register(
        "py:shout",
        lambda ctx: ctx.write_output("o", ctx.read_input("i").decode().upper()),
    )
    return ex


class TestExecute:
    def test_single_derivation(self, executor):
        inv = executor.execute("mk")
        assert inv.succeeded
        assert executor.path_for("greeting.txt").read_text() == "hello hello hello "
        assert inv.usage.bytes_written == len("hello hello hello ")

    def test_missing_input_rejected(self, executor):
        with pytest.raises(ExecutionError):
            executor.execute("sh")  # greeting.txt not yet materialized

    def test_provenance_records_written(self, executor):
        executor.execute("mk")
        catalog = executor.catalog
        invs = catalog.invocations_of("mk")
        assert len(invs) == 1
        replicas = catalog.replicas_of("greeting.txt")
        assert len(replicas) == 1
        assert replicas[0].digest is not None
        assert invs[0].replica_bindings["o"] == replicas[0].replica_id
        assert not catalog.get_dataset("greeting.txt").is_virtual

    def test_failing_body_records_failure(self, executor):
        def boom(ctx):
            raise ValueError("physics is broken")

        executor.register("py:make-greeting", boom)
        with pytest.raises(ExecutionError):
            executor.execute("mk")
        invs = executor.catalog.invocations_of("mk")
        assert len(invs) == 1
        assert invs[0].status == "failure"
        assert "physics is broken" in invs[0].error

    def test_missing_output_is_failure(self, executor):
        executor.register("py:make-greeting", lambda ctx: None)  # writes nothing
        with pytest.raises(ExecutionError):
            executor.execute("mk")

    def test_unregistered_executable_rejected(self, executor):
        executor.catalog.define(
            'TR ghost( output o ) { argument stdout = ${output:o};'
            ' exec = "/no/such/binary"; }'
            ' DV g->ghost( o=@{output:"x"} );'
        )
        with pytest.raises(ExecutionError):
            executor.execute("g")

    def test_compound_rejected_directly(self, executor):
        executor.catalog.define(
            """
            TR comp( input i, output o ) {
              shout( o=${o}, i=${i} );
            }
            DV c->comp( i=@{input:"greeting.txt"}, o=@{output:"yy"} );
            """
        )
        with pytest.raises(ExecutionError):
            executor.execute("c")


class TestMaterialize:
    def test_end_to_end(self, executor):
        invocations = executor.materialize("loud.txt")
        assert [i.derivation_name for i in invocations] == ["mk", "sh"]
        assert executor.path_for("loud.txt").read_text() == "HELLO HELLO HELLO "

    def test_reuse_skips_existing(self, executor):
        executor.materialize("loud.txt")
        again = executor.materialize("loud.txt")
        assert again == []

    def test_reuse_never_recomputes(self, executor):
        executor.materialize("loud.txt")
        again = executor.materialize("loud.txt", reuse="never")
        assert len(again) == 2

    def test_run_context_streams_and_argv(self, executor):
        captured = {}

        def probing_body(ctx):
            captured["argv"] = ctx.argv
            captured["streams"] = dict(ctx.streams)
            ctx.write_output("o", "x")

        executor.register("py:make-greeting", probing_body)
        executor.execute("mk")
        assert captured["argv"] == ("-n 3",)
        assert "stdout" in captured["streams"]

    def test_environment_passed(self, tmp_path):
        catalog = MemoryCatalog().define(
            """
            TR envy( output o, none m="9" ) {
              argument stdout = ${output:o};
              env.MAXMEM = ${none:m};
              exec = "py:envy";
            }
            DV e->envy( o=@{output:"env.txt"}, m="512" );
            """
        )
        ex = LocalExecutor(catalog, tmp_path)
        ex.register(
            "py:envy",
            lambda ctx: ctx.write_output("o", ctx.environment["MAXMEM"]),
        )
        ex.execute("e")
        assert ex.path_for("env.txt").read_text() == "512"
        inv = catalog.invocations_of("e")[0]
        assert inv.context.environment_dict()["MAXMEM"] == "512"
