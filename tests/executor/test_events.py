"""EventLog robustness: listener isolation, ring buffer, obs bridge."""

from __future__ import annotations

import pytest

from repro.executor.events import EventLog
from repro.observability import Instrumentation


class TestListenerIsolation:
    def test_raising_listener_does_not_break_emit(self):
        log = EventLog()

        def bad(event):
            raise RuntimeError("listener exploded")

        log.listen(bad)
        event = log.emit(1.0, "submit", "j1")
        assert event.kind == "submit"

    def test_later_listeners_still_run(self):
        log = EventLog()
        seen = []

        def bad(event):
            raise RuntimeError("boom")

        log.listen(bad)
        log.listen(seen.append)
        log.emit(1.0, "submit", "j1")
        assert [e.kind for e in seen] == ["submit"]

    def test_failure_recorded_as_listener_error_event(self):
        log = EventLog()

        def bad(event):
            raise ValueError("bad value")

        log.listen(bad)
        log.emit(1.0, "submit", "j1")
        errors = log.events("listener-error")
        assert len(errors) == 1
        assert errors[0].subject == "submit"
        assert "ValueError: bad value" in errors[0].detail["error"]

    def test_listener_errors_not_redelivered_to_listeners(self):
        # A listener that always raises must not trigger itself again
        # via the listener-error event it causes.
        log = EventLog()
        calls = []

        def bad(event):
            calls.append(event.kind)
            raise RuntimeError("always")

        log.listen(bad)
        log.emit(1.0, "submit", "j1")
        assert calls == ["submit"]
        assert len(log.events("listener-error")) == 1

    def test_unlisten(self):
        log = EventLog()
        seen = []
        log.listen(seen.append)
        log.unlisten(seen.append)
        log.emit(1.0, "x", "s")
        assert seen == []


class TestRingBuffer:
    def test_default_is_unbounded(self):
        log = EventLog()
        for i in range(1000):
            log.emit(float(i), "tick", str(i))
        assert len(log) == 1000
        assert log.dropped == 0

    def test_max_events_keeps_newest(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.emit(float(i), "tick", str(i))
        assert len(log) == 3
        assert [e.subject for e in log.events()] == ["2", "3", "4"]
        assert log.dropped == 2

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)
        with pytest.raises(ValueError):
            EventLog(max_events=-1)


class TestObservabilityBridge:
    def test_events_land_as_span_events(self):
        obs = Instrumentation()
        log = EventLog(instrumentation=obs)
        with obs.span("scheduler.run") as span:
            log.emit(1.0, "submit", "g1", site="anl")
        assert span.events[0]["name"] == "submit"
        assert span.events[0]["attributes"]["subject"] == "g1"
        assert span.events[0]["attributes"]["site"] == "anl"

    def test_events_are_counted(self):
        obs = Instrumentation()
        log = EventLog(instrumentation=obs)
        log.emit(1.0, "submit", "g1")
        log.emit(2.0, "submit", "g2")
        log.emit(3.0, "done", "g1")
        counter = obs.metrics.get("events.emitted")
        assert counter.value(kind="submit") == 2
        assert counter.value(kind="done") == 1

    def test_listener_errors_are_counted(self):
        obs = Instrumentation()
        log = EventLog(instrumentation=obs)
        log.listen(lambda e: (_ for _ in ()).throw(RuntimeError("x")))
        log.emit(1.0, "submit", "g1")
        assert obs.metrics.get("events.listener_errors").total() == 1

    def test_unbridged_log_works_without_instrumentation(self):
        log = EventLog()
        log.emit(1.0, "submit", "g1")
        assert len(log) == 1
