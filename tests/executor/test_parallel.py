"""Concurrency tests for the parallel local materialization engine.

The stress test runs a wide fan-out canonical plan at ``workers=8``
twenty times, asserting no lost or duplicated invocations and a
catalog end-state identical to sequential execution; a hypothesis
property then checks the parallel/sequential replica-set equality over
generated graph shapes.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.memory import MemoryCatalog
from repro.errors import ExecutionError, MaterializationError
from repro.executor.local import LocalExecutor
from repro.workloads import canonical


def wide_vdl(width=8):
    """1 source -> ``width`` parallel steps -> tree merge -> 1 sink."""
    assert width % 4 == 0
    chunks = ['DV src->canon0( o=@{output:"src.out"}, tag="s" );\n']
    for i in range(width):
        chunks.append(
            f'DV mid{i:02d}->canon1( o=@{{output:"mid{i:02d}.out"}}, '
            f'i0=@{{input:"src.out"}}, tag="m{i}" );\n'
        )
    groups = [
        [f"mid{i:02d}.out" for i in range(g * 4, g * 4 + 4)]
        for g in range(width // 4)
    ]
    for g, members in enumerate(groups):
        bindings = ", ".join(
            f'i{k}=@{{input:"{ds}"}}' for k, ds in enumerate(members)
        )
        chunks.append(
            f'DV merge{g}->canon4( o=@{{output:"merge{g}.out"}}, '
            f'{bindings}, tag="g{g}" );\n'
        )
    bindings = ", ".join(
        f'i{k}=@{{input:"merge{g}.out"}}' for k, g in enumerate(range(len(groups)))
    )
    chunks.append(
        f'DV final->canon{len(groups)}( o=@{{output:"final.out"}}, '
        f'{bindings}, tag="f" );\n'
    )
    return "".join(chunks)


def build_executor(tmp_path, vdl, tag):
    catalog = MemoryCatalog()
    canonical.define_transformations(catalog)
    catalog.define(vdl)
    workdir = tmp_path / tag
    executor = LocalExecutor(catalog, workdir)
    canonical.register_bodies(executor)
    return catalog, executor


def catalog_end_state(catalog):
    """The observable catalog outcome of a run, modulo run-specific
    identifiers and timings: which datasets got replicas (with which
    digests) and which derivations were invoked how many times."""
    replicas = sorted(
        (r.dataset_name, r.digest)
        for rid in catalog.replica_ids()
        for r in [catalog.get_replica(rid)]
    )
    invocations = sorted(
        (catalog.get_invocation(iid).derivation_name,
         catalog.get_invocation(iid).status)
        for iid in catalog.invocation_ids()
    )
    return replicas, invocations


class TestParallelParity:
    def test_workers1_matches_legacy_order(self, tmp_path):
        catalog, executor = build_executor(tmp_path, wide_vdl(), "w1")
        invocations = executor.materialize("final.out")
        plan_order = [inv.derivation_name for inv in invocations]
        catalog2, executor2 = build_executor(tmp_path, wide_vdl(), "w1b")
        parallel = executor2.materialize("final.out", workers=4)
        assert [inv.derivation_name for inv in parallel] == plan_order
        assert catalog_end_state(catalog) == catalog_end_state(catalog2)

    def test_stress_wide_fanout(self, tmp_path):
        """20 repetitions at workers=8: every step exactly once, end
        state identical to the sequential run."""
        ref_catalog, ref_executor = build_executor(
            tmp_path, wide_vdl(16), "ref"
        )
        ref_invocations = ref_executor.materialize("final.out")
        expected = sorted(inv.derivation_name for inv in ref_invocations)
        reference = catalog_end_state(ref_catalog)
        for rep in range(20):
            catalog, executor = build_executor(
                tmp_path, wide_vdl(16), f"rep{rep}"
            )
            invocations = executor.materialize("final.out", workers=8)
            names = [inv.derivation_name for inv in invocations]
            assert sorted(names) == expected, f"rep {rep}: lost/dup steps"
            assert len(set(names)) == len(names), f"rep {rep}: duplicates"
            assert catalog_end_state(catalog) == reference, f"rep {rep}"

    def test_observed_concurrency(self, tmp_path):
        """With 8 workers on a width-16 layer, >1 step overlaps."""
        catalog, executor = build_executor(tmp_path, wide_vdl(16), "conc")
        active = 0
        peak = 0
        guard = threading.Lock()
        barrier_body = canonical._canon_body

        def tracking(ctx):
            nonlocal active, peak
            with guard:
                active += 1
                peak = max(peak, active)
            try:
                import time

                time.sleep(0.01)
                barrier_body(ctx)
            finally:
                with guard:
                    active -= 1

        executor.register("py:canon1", tracking)
        executor.materialize("final.out", workers=8)
        assert peak > 1


FAIL_VDL = (
    'DV src->canon0( o=@{output:"src.out"}, tag="s" );\n'
    'DV ok->canon1( o=@{output:"ok.out"}, i0=@{input:"src.out"}, tag="a" );\n'
    'DV bad->canon1( o=@{output:"bad.out"}, i0=@{input:"src.out"}, tag="b" );\n'
    'DV down->canon1( o=@{output:"down.out"}, i0=@{input:"bad.out"}, tag="c" );\n'
    'DV top->canon2( o=@{output:"top.out"}, i0=@{input:"ok.out"}, '
    'i1=@{input:"down.out"}, tag="t" );\n'
)


def build_failing_executor(tmp_path, tag):
    catalog, executor = build_executor(tmp_path, FAIL_VDL, tag)

    def routed(ctx):
        if ctx.parameters["tag"] == "b":
            raise RuntimeError("injected failure")
        canonical._canon_body(ctx)

    executor.register("py:canon1", routed)
    return catalog, executor


class TestFailurePolicies:
    def test_fail_fast_raises_original_error(self, tmp_path):
        _, executor = build_failing_executor(tmp_path, "ff")
        with pytest.raises(ExecutionError, match="injected failure"):
            executor.materialize("top.out", workers=4)

    def test_fail_fast_is_default(self, tmp_path):
        _, executor = build_failing_executor(tmp_path, "ffd")
        with pytest.raises(ExecutionError):
            executor.materialize("top.out", workers=4)

    def test_run_what_you_can_completes_independent_work(self, tmp_path):
        _, executor = build_failing_executor(tmp_path, "rwyc")
        with pytest.raises(MaterializationError) as exc_info:
            executor.materialize(
                "top.out", workers=4, failure_policy="run-what-you-can"
            )
        err = exc_info.value
        done = [inv.derivation_name for inv in err.invocations]
        assert "ok" in done  # independent of the failed subtree
        assert err.failed == ["bad"]
        assert err.skipped == ["down", "top"]

    def test_run_what_you_can_sequential(self, tmp_path):
        """The run-what-you-can engine honors workers=1 too."""
        _, executor = build_failing_executor(tmp_path, "rwyc1")
        with pytest.raises(MaterializationError) as exc_info:
            executor.materialize(
                "top.out", workers=1, failure_policy="run-what-you-can"
            )
        assert exc_info.value.failed == ["bad"]

    def test_bad_policy_rejected(self, tmp_path):
        _, executor = build_executor(tmp_path, FAIL_VDL, "badpol")
        with pytest.raises(ValueError, match="failure policy"):
            executor.materialize("top.out", failure_policy="shrug")

    def test_bad_workers_rejected(self, tmp_path):
        _, executor = build_executor(tmp_path, FAIL_VDL, "badw")
        with pytest.raises(ValueError, match="workers"):
            executor.materialize("top.out", workers=0)


class TestPoolMetrics:
    def test_cache_and_pool_metrics_registered(self, tmp_path):
        from repro.observability.instrument import Instrumentation

        obs = Instrumentation()
        catalog = MemoryCatalog(instrumentation=obs)
        canonical.define_transformations(catalog)
        catalog.define(wide_vdl())
        executor = LocalExecutor(catalog, tmp_path / "obs", instrumentation=obs)
        canonical.register_bodies(executor)
        executor.materialize("final.out", workers=4)
        names = set(obs.metrics.names())
        assert "catalog.index.hits" in names
        assert "catalog.index.misses" in names
        assert "executor.pool.in_flight" in names
        assert obs.metrics.get("catalog.index.hits").total() > 0
        assert obs.metrics.get("catalog.index.misses").total() > 0
        # The gauge drains back to zero once the pool shuts down.
        assert obs.metrics.get("executor.pool.in_flight").value() == 0


class TestParallelProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        nodes=st.integers(min_value=4, max_value=24),
        layers=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=999),
        workers=st.sampled_from([2, 4, 8]),
    )
    def test_parallel_equals_sequential_replicas(
        self, tmp_path_factory, nodes, layers, seed, workers
    ):
        """For any generated canonical graph, parallel and sequential
        materialization produce the same replica set."""
        results = []
        for tag, n_workers in (("seq", 1), ("par", workers)):
            catalog = MemoryCatalog()
            graph = canonical.generate_graph(
                catalog, nodes=nodes, layers=layers, seed=seed
            )
            workdir = tmp_path_factory.mktemp(f"prop-{tag}")
            executor = LocalExecutor(catalog, workdir)
            canonical.register_bodies(executor)
            target = graph.sink_datasets[0]
            executor.materialize(target, workers=n_workers)
            results.append(
                sorted(
                    (r.dataset_name, r.digest)
                    for rid in catalog.replica_ids()
                    for r in [catalog.get_replica(rid)]
                )
            )
        assert results[0] == results[1]
