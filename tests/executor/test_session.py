"""Tests for interactive sessions and log snapshots (§5.1)."""

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.errors import ExecutionError
from repro.executor.local import LocalExecutor
from repro.executor.session import InteractiveSession
from repro.provenance.lineage import lineage_report

TOOLS = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "py:gen";
}
TR double( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "py:double";
}
"""


@pytest.fixture
def session(tmp_path):
    catalog = MemoryCatalog().define(TOOLS)
    executor = LocalExecutor(catalog, tmp_path)
    executor.register(
        "py:gen",
        lambda ctx: ctx.write_output("o", "x" * int(ctx.parameters["seed"])),
    )
    executor.register(
        "py:double",
        lambda ctx: ctx.write_output("o", ctx.read_input("i") * 2),
    )
    return InteractiveSession(executor, prefix="mysess")


class TestInteractiveRuns:
    def test_run_generates_names(self, session):
        outputs = session.run("gen", seed="4")
        assert outputs == ("mysess.0001.o",)
        assert session.executor.path_for(outputs[0]).read_text() == "xxxx"

    def test_explicit_output_names(self, session):
        outputs = session.run("gen", seed="2", o="my.data")
        assert outputs == ("my.data",)

    def test_chaining_runs(self, session):
        (raw,) = session.run("gen", seed="3")
        (doubled,) = session.run("double", i=raw)
        assert session.executor.path_for(doubled).read_text() == "xxxxxx"
        # The catalog tracked everything automatically.
        report = lineage_report(session.catalog, doubled)
        assert report.depth() == 2

    def test_missing_input_rejected(self, session):
        with pytest.raises(ExecutionError):
            session.run("double")  # no input binding

    def test_missing_string_uses_default(self, session):
        (out,) = session.run("gen")  # seed defaults to "1"
        assert session.executor.path_for(out).read_text() == "x"

    def test_history_log(self, session):
        session.run("gen", seed="2")
        (raw,) = session.run("gen", seed="5", o="raw5")
        session.run("double", i=raw)
        lines = session.history()
        assert len(lines) == 3
        assert "gen(seed='5')" in lines[1]
        assert "raw5" in lines[1]
        assert session.datasets_created()[-1].endswith(".o")

    def test_derivations_tagged_with_session(self, session):
        session.run("gen", seed="2")
        dv = session.catalog.get_derivation("mysess.0001")
        assert dv.attributes.get("session") == "mysess"


class TestSnapshot:
    def test_snapshot_into_permanent_catalog(self, session):
        (raw,) = session.run("gen", seed="9")
        (doubled,) = session.run("double", i=raw)
        permanent = MemoryCatalog(authority="collab.org")
        report = session.snapshot(
            permanent, names={doubled: "published.result"}
        )
        assert permanent.has_dataset("published.result")
        assert not permanent.has_dataset(doubled)
        # Full recipe came along and was re-pointed at the new name.
        trail = lineage_report(permanent, "published.result")
        assert len(trail.all_derivations()) == 2
        assert report.transformations  # gen and double published too

    def test_snapshot_keeps_session_catalog_intact(self, session):
        (raw,) = session.run("gen", seed="9")
        permanent = MemoryCatalog(authority="collab.org")
        session.snapshot(permanent, names={raw: "kept"})
        assert session.catalog.has_dataset(raw)  # session side unchanged

    def test_snapshot_signed(self, session):
        from repro.security.identity import KeyStore
        from repro.security.signing import Signer

        keys = KeyStore()
        keys.generate("curator")
        signer = Signer(keys)
        (raw,) = session.run("gen", seed="2")
        permanent = MemoryCatalog(authority="collab.org")
        session.snapshot(
            permanent,
            names={raw: raw},
            signer=signer,
            authority="curator",
        )
        signer.verify_entry(permanent.get_dataset(raw), "curator")
