"""Process-pool backend: parity with thread/sequential, pickle safety.

The process backend must be observably indistinguishable from the
thread backend and the sequential path — same replicas (by digest),
same invocation records, same counters — because only the *where* of
execution changes, never the *what*.  A hypothesis property checks the
three-way equivalence over generated canonical graphs; the pickle
tests pin the preflight's field-level attribution and the
run-what-you-can semantics around unpicklable payloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.memory import MemoryCatalog
from repro.errors import ExecutionError, MaterializationError
from repro.executor.local import LocalExecutor
from repro.observability.instrument import Instrumentation
from repro.workloads import canonical

from tests.executor.test_parallel import (
    build_executor,
    catalog_end_state,
    wide_vdl,
)

BACKENDS = (("seq", "thread", 1), ("thread", "thread", 4), ("proc", "process", 4))


class TestProcessParity:
    def test_three_way_end_state_parity(self, tmp_path):
        """sequential == thread == process on a wide fan-out plan."""
        states = {}
        orders = {}
        for tag, backend, workers in BACKENDS:
            catalog, executor = build_executor(tmp_path, wide_vdl(8), tag)
            invocations = executor.materialize(
                "final.out", workers=workers, backend=backend
            )
            states[tag] = catalog_end_state(catalog)
            orders[tag] = [inv.derivation_name for inv in invocations]
        assert states["seq"] == states["thread"] == states["proc"]
        # The returned invocation list is plan-ordered on every backend.
        assert orders["seq"] == orders["thread"] == orders["proc"]

    def test_counter_parity(self, tmp_path):
        """The collector reproduces the thread backend's counters."""
        totals = {}
        for tag, backend, workers in (
            ("thread", "thread", 4),
            ("proc", "process", 4),
        ):
            obs = Instrumentation()
            catalog = MemoryCatalog(instrumentation=obs)
            canonical.define_transformations(catalog)
            catalog.define(wide_vdl(8))
            executor = LocalExecutor(
                catalog, tmp_path / f"ctr-{tag}", instrumentation=obs
            )
            canonical.register_bodies(executor)
            executor.materialize(
                "final.out", workers=workers, backend=backend
            )
            totals[tag] = {
                name: obs.metrics.get(name).total()
                for name in (
                    "executor.invocations",
                    "executor.bytes_written",
                )
            }
        assert totals["thread"] == totals["proc"]
        assert totals["proc"]["executor.invocations"] == 12  # 1+8+2+1

    def test_process_backend_sequential_worker(self, tmp_path):
        """workers=1 with backend='process' still round-trips payloads."""
        catalog, executor = build_executor(tmp_path, wide_vdl(4), "p1")
        invocations = executor.materialize(
            "final.out", workers=1, backend="process"
        )
        assert len(invocations) == len(catalog.derivation_names())

    def test_unknown_backend_rejected(self, tmp_path):
        _, executor = build_executor(tmp_path, wide_vdl(4), "bad")
        with pytest.raises(ValueError, match="backend"):
            executor.materialize("final.out", backend="coroutine")


class TestProcessProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        nodes=st.integers(min_value=4, max_value=18),
        layers=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_process_equals_sequential(
        self, tmp_path_factory, nodes, layers, seed
    ):
        """For any generated canonical graph, the process backend's
        catalog end state is byte-identical to sequential execution."""
        states = []
        for tag, backend, workers in (
            ("seq", "thread", 1),
            ("proc", "process", 2),
        ):
            catalog = MemoryCatalog()
            graph = canonical.generate_graph(
                catalog, nodes=nodes, layers=layers, seed=seed
            )
            workdir = tmp_path_factory.mktemp(f"pb-{tag}")
            executor = LocalExecutor(catalog, workdir)
            canonical.register_bodies(executor)
            executor.materialize(graph.sink_datasets[0], workers=workers)
            if backend == "process":
                # Re-run through the process pool on a fresh catalog so
                # reuse can't mask a divergence.
                catalog = MemoryCatalog()
                graph = canonical.generate_graph(
                    catalog, nodes=nodes, layers=layers, seed=seed
                )
                executor = LocalExecutor(
                    catalog, tmp_path_factory.mktemp("pb-proc2")
                )
                canonical.register_bodies(executor)
                executor.materialize(
                    graph.sink_datasets[0],
                    workers=workers,
                    backend="process",
                )
            states.append(catalog_end_state(catalog))
        assert states[0] == states[1]


PICKLE_VDL = (
    'DV src->canon0( o=@{output:"src.out"}, tag="s" );\n'
    'DV lam->canon1( o=@{output:"lam.out"}, i0=@{input:"src.out"}, '
    'tag="l" );\n'
    'DV ok->canon2( o=@{output:"ok.out"}, i0=@{input:"src.out"}, '
    'i1=@{input:"src.out"}, tag="o" );\n'
    'DV top->canon2( o=@{output:"top.out"}, i0=@{input:"lam.out"}, '
    'i1=@{input:"ok.out"}, tag="t" );\n'
)


def build_lambda_executor(tmp_path, tag):
    """canon1's body is a lambda: fine in-process, unpicklable."""
    catalog = MemoryCatalog()
    canonical.define_transformations(catalog)
    catalog.define(PICKLE_VDL)
    executor = LocalExecutor(catalog, tmp_path / tag)
    canonical.register_bodies(executor)
    executor.register("py:canon1", lambda ctx: canonical._canon_body(ctx))
    return catalog, executor


class TestPickleFailure:
    def test_error_names_the_body_field(self, tmp_path):
        _, executor = build_lambda_executor(tmp_path, "pf")
        with pytest.raises(ExecutionError) as exc_info:
            executor.materialize("lam.out", workers=2, backend="process")
        message = str(exc_info.value)
        assert "'lam'" in message
        assert "field 'body'" in message
        assert "module-level" in message  # the actionable hint

    def test_thread_backend_unaffected_by_lambda(self, tmp_path):
        """The same registration works on the thread backend — the
        restriction is a process-boundary fact, not a new API rule."""
        catalog, executor = build_lambda_executor(tmp_path, "pf-thread")
        executor.materialize("lam.out", workers=2, backend="thread")
        replicas, _ = catalog_end_state(catalog)
        assert any(name == "lam.out" for name, _ in replicas)

    def test_run_what_you_can_past_pickle_failure(self, tmp_path):
        """An unpicklable step fails cleanly; independent work runs."""
        catalog, executor = build_lambda_executor(tmp_path, "pf-rwyc")
        with pytest.raises(MaterializationError) as exc_info:
            executor.materialize(
                "top.out",
                workers=2,
                backend="process",
                failure_policy="run-what-you-can",
            )
        err = exc_info.value
        assert err.failed == ["lam"]
        assert err.skipped == ["top"]
        done = [inv.derivation_name for inv in err.invocations]
        assert "ok" in done and "src" in done
        # The pickle failure recorded no invocation for the bad step.
        recorded = {
            catalog.get_invocation(iid).derivation_name
            for iid in catalog.invocation_ids()
        }
        assert "lam" not in recorded
