"""Process-pool backend: parity with thread/sequential, pickle safety.

The process backend must be observably indistinguishable from the
thread backend and the sequential path — same replicas (by digest),
same invocation records, same counters — because only the *where* of
execution changes, never the *what*.  A hypothesis property checks the
three-way equivalence over generated canonical graphs; the pickle
tests pin the preflight's field-level attribution and the
run-what-you-can semantics around unpicklable payloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.memory import MemoryCatalog
from repro.errors import ExecutionError, MaterializationError
from repro.executor.local import LocalExecutor
from repro.observability.instrument import Instrumentation
from repro.workloads import canonical

from tests.executor.test_parallel import (
    build_executor,
    catalog_end_state,
    wide_vdl,
)

BACKENDS = (("seq", "thread", 1), ("thread", "thread", 4), ("proc", "process", 4))


class TestProcessParity:
    def test_three_way_end_state_parity(self, tmp_path):
        """sequential == thread == process on a wide fan-out plan."""
        states = {}
        orders = {}
        for tag, backend, workers in BACKENDS:
            catalog, executor = build_executor(tmp_path, wide_vdl(8), tag)
            invocations = executor.materialize(
                "final.out", workers=workers, backend=backend
            )
            states[tag] = catalog_end_state(catalog)
            orders[tag] = [inv.derivation_name for inv in invocations]
        assert states["seq"] == states["thread"] == states["proc"]
        # The returned invocation list is plan-ordered on every backend.
        assert orders["seq"] == orders["thread"] == orders["proc"]

    def test_counter_parity(self, tmp_path):
        """The collector reproduces the thread backend's counters."""
        totals = {}
        for tag, backend, workers in (
            ("thread", "thread", 4),
            ("proc", "process", 4),
        ):
            obs = Instrumentation()
            catalog = MemoryCatalog(instrumentation=obs)
            canonical.define_transformations(catalog)
            catalog.define(wide_vdl(8))
            executor = LocalExecutor(
                catalog, tmp_path / f"ctr-{tag}", instrumentation=obs
            )
            canonical.register_bodies(executor)
            executor.materialize(
                "final.out", workers=workers, backend=backend
            )
            totals[tag] = {
                name: obs.metrics.get(name).total()
                for name in (
                    "executor.invocations",
                    "executor.bytes_written",
                )
            }
        assert totals["thread"] == totals["proc"]
        assert totals["proc"]["executor.invocations"] == 12  # 1+8+2+1

    def test_worker_counters_ride_alongside_parity_counters(self, tmp_path):
        """The relay ships worker.* metrics without perturbing the
        executor.* counters the collector replays for parity."""
        obs = Instrumentation()
        catalog = MemoryCatalog(instrumentation=obs)
        canonical.define_transformations(catalog)
        catalog.define(wide_vdl(8))
        executor = LocalExecutor(
            catalog, tmp_path / "wctr", instrumentation=obs
        )
        canonical.register_bodies(executor)
        executor.materialize("final.out", workers=4, backend="process")
        assert obs.metrics.get("worker.invocations").total() == 12
        assert obs.metrics.get("worker.invocations").total() == (
            obs.metrics.get("executor.invocations").total()
        )
        assert obs.metrics.get("worker.bytes_written").total() == (
            obs.metrics.get("executor.bytes_written").total()
        )
        seconds = obs.metrics.get("worker.invocation.seconds")
        assert seconds.count() == 12 and seconds.sum() > 0

    def test_process_backend_sequential_worker(self, tmp_path):
        """workers=1 with backend='process' still round-trips payloads."""
        catalog, executor = build_executor(tmp_path, wide_vdl(4), "p1")
        invocations = executor.materialize(
            "final.out", workers=1, backend="process"
        )
        assert len(invocations) == len(catalog.derivation_names())

    def test_unknown_backend_rejected(self, tmp_path):
        _, executor = build_executor(tmp_path, wide_vdl(4), "bad")
        with pytest.raises(ValueError, match="backend"):
            executor.materialize("final.out", backend="coroutine")


class TestProcessProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        nodes=st.integers(min_value=4, max_value=18),
        layers=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_process_equals_sequential(
        self, tmp_path_factory, nodes, layers, seed
    ):
        """For any generated canonical graph, the process backend's
        catalog end state is byte-identical to sequential execution."""
        states = []
        for tag, backend, workers in (
            ("seq", "thread", 1),
            ("proc", "process", 2),
        ):
            catalog = MemoryCatalog()
            graph = canonical.generate_graph(
                catalog, nodes=nodes, layers=layers, seed=seed
            )
            workdir = tmp_path_factory.mktemp(f"pb-{tag}")
            executor = LocalExecutor(catalog, workdir)
            canonical.register_bodies(executor)
            executor.materialize(graph.sink_datasets[0], workers=workers)
            if backend == "process":
                # Re-run through the process pool on a fresh catalog so
                # reuse can't mask a divergence.
                catalog = MemoryCatalog()
                graph = canonical.generate_graph(
                    catalog, nodes=nodes, layers=layers, seed=seed
                )
                executor = LocalExecutor(
                    catalog, tmp_path_factory.mktemp("pb-proc2")
                )
                canonical.register_bodies(executor)
                executor.materialize(
                    graph.sink_datasets[0],
                    workers=workers,
                    backend="process",
                )
            states.append(catalog_end_state(catalog))
        assert states[0] == states[1]


PICKLE_VDL = (
    'DV src->canon0( o=@{output:"src.out"}, tag="s" );\n'
    'DV lam->canon1( o=@{output:"lam.out"}, i0=@{input:"src.out"}, '
    'tag="l" );\n'
    'DV ok->canon2( o=@{output:"ok.out"}, i0=@{input:"src.out"}, '
    'i1=@{input:"src.out"}, tag="o" );\n'
    'DV top->canon2( o=@{output:"top.out"}, i0=@{input:"lam.out"}, '
    'i1=@{input:"ok.out"}, tag="t" );\n'
)


def build_lambda_executor(tmp_path, tag):
    """canon1's body is a lambda: fine in-process, unpicklable."""
    catalog = MemoryCatalog()
    canonical.define_transformations(catalog)
    catalog.define(PICKLE_VDL)
    executor = LocalExecutor(catalog, tmp_path / tag)
    canonical.register_bodies(executor)
    executor.register("py:canon1", lambda ctx: canonical._canon_body(ctx))
    return catalog, executor


class TestPickleFailure:
    def test_error_names_the_body_field(self, tmp_path):
        _, executor = build_lambda_executor(tmp_path, "pf")
        with pytest.raises(ExecutionError) as exc_info:
            executor.materialize("lam.out", workers=2, backend="process")
        message = str(exc_info.value)
        assert "'lam'" in message
        assert "field 'body'" in message
        assert "module-level" in message  # the actionable hint

    def test_thread_backend_unaffected_by_lambda(self, tmp_path):
        """The same registration works on the thread backend — the
        restriction is a process-boundary fact, not a new API rule."""
        catalog, executor = build_lambda_executor(tmp_path, "pf-thread")
        executor.materialize("lam.out", workers=2, backend="thread")
        replicas, _ = catalog_end_state(catalog)
        assert any(name == "lam.out" for name, _ in replicas)

    def test_run_what_you_can_past_pickle_failure(self, tmp_path):
        """An unpicklable step fails cleanly; independent work runs."""
        catalog, executor = build_lambda_executor(tmp_path, "pf-rwyc")
        with pytest.raises(MaterializationError) as exc_info:
            executor.materialize(
                "top.out",
                workers=2,
                backend="process",
                failure_policy="run-what-you-can",
            )
        err = exc_info.value
        assert err.failed == ["lam"]
        assert err.skipped == ["top"]
        done = [inv.derivation_name for inv in err.invocations]
        assert "ok" in done and "src" in done
        # The pickle failure recorded no invocation for the bad step.
        recorded = {
            catalog.get_invocation(iid).derivation_name
            for iid in catalog.invocation_ids()
        }
        assert "lam" not in recorded


def instrumented_process_run(tmp_path, tag, vdl, target="final.out"):
    """Materialize ``target`` on the process backend under a live obs."""
    obs = Instrumentation()
    catalog = MemoryCatalog(instrumentation=obs)
    canonical.define_transformations(catalog)
    catalog.define(vdl)
    executor = LocalExecutor(catalog, tmp_path / tag, instrumentation=obs)
    canonical.register_bodies(executor)
    error = None
    try:
        executor.materialize(target, workers=4, backend="process")
    except (ExecutionError, MaterializationError) as exc:
        error = exc
    return obs, error


class TestTelemetryRelay:
    """Worker spans/events merge into the parent's single trace."""

    def test_every_executed_step_has_a_worker_span(self, tmp_path):
        obs, error = instrumented_process_run(tmp_path, "relay", wide_vdl(8))
        assert error is None
        roots = obs.tracer.spans("worker.invocation")
        assert len(roots) == 12  # 1+8+2+1 on wide_vdl(8)
        assert len({s.attributes["step"] for s in roots}) == 12
        assert all(s.status == "ok" for s in roots)

    def test_worker_spans_parented_under_materialize(self, tmp_path):
        obs, _ = instrumented_process_run(tmp_path, "parent", wide_vdl(8))
        by_id = {s.span_id: s for s in obs.tracer.spans()}
        mat = obs.tracer.spans("executor.materialize")[0]
        for root in obs.tracer.spans("worker.invocation"):
            assert root.parent_id == mat.span_id
            assert root.thread.startswith("worker-")
            assert root.attributes["worker_pid"] == int(
                root.thread.split("-", 1)[1]
            )
        for run in obs.tracer.spans("worker.run"):
            parent = by_id[run.parent_id]
            assert parent.name == "worker.invocation"
            # Children nest inside their parent's rebased window.
            assert parent.start_wall <= run.start_wall
            assert run.end_wall <= parent.end_wall + 1e-6

    def test_worker_spans_land_inside_the_parent_window(self, tmp_path):
        """Clock-skew alignment: grafted spans sit inside the parent's
        perf_counter window, not at some other process's epoch."""
        obs, _ = instrumented_process_run(tmp_path, "skew", wide_vdl(8))
        mat = obs.tracer.spans("executor.materialize")[0]
        for span in obs.tracer.spans("worker.invocation"):
            assert span.end_wall > span.start_wall
            assert mat.start_wall - 1.0 <= span.start_wall
            assert span.end_wall <= mat.end_wall + 1.0

    def test_failure_ships_error_span_and_stream_tail(self, tmp_path):
        """A worker-side failure still merges its telemetry — status,
        error text, and the missing-executable span are all visible."""
        vdl = 'DV src->canon0( o=@{output:"src.out"}, tag="s" );\n'
        obs = Instrumentation()
        catalog = MemoryCatalog(instrumentation=obs)
        canonical.define_transformations(catalog)
        catalog.define(vdl)
        executor = LocalExecutor(
            catalog, tmp_path / "fail", instrumentation=obs
        )
        # No bodies registered: the worker hits the missing-executable
        # refusal (commit=False) — exactly the no-invocation path.
        with pytest.raises(ExecutionError):
            executor.materialize("src.out", workers=2, backend="process")
        roots = obs.tracer.spans("worker.invocation")
        assert len(roots) == 1
        assert roots[0].status == "error"
        assert "does not exist" in roots[0].error
        assert obs.metrics.get("worker.invocations").total() == 1

    def test_recorded_run_exports_per_worker_perfetto_tracks(
        self, tmp_path
    ):
        """A recorded process-backend run renders as the parent process
        plus one Perfetto process track per worker pid, and the trace
        passes the shape validator."""
        from repro.observability.analysis import (
            chrome_trace,
            validate_chrome_trace,
        )
        from repro.observability.recorder import FlightRecorder, RunRecord

        obs = Instrumentation()
        recorder = FlightRecorder.start(
            tmp_path / "runs", command="materialize final.out"
        )
        obs.attach_recorder(recorder)
        catalog = MemoryCatalog(instrumentation=obs)
        canonical.define_transformations(catalog)
        catalog.define(wide_vdl(8))
        executor = LocalExecutor(
            catalog, tmp_path / "trace", instrumentation=obs
        )
        canonical.register_bodies(executor)
        executor.materialize("final.out", workers=4, backend="process")
        recorder.finalize(obs, status="ok")

        record = RunRecord.load(recorder.path)
        trace = chrome_trace(record)
        assert validate_chrome_trace(trace) == []
        worker_pids = {
            s["attributes"]["worker_pid"]
            for s in record.spans
            if s["name"] == "worker.invocation"
        }
        assert worker_pids and 1 not in worker_pids
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "process_name"
        }
        assert set(process_names) == {1, *worker_pids}
        for pid in worker_pids:
            assert process_names[pid] == f"worker {pid}"
        # Every worker span event sits on its worker's process track.
        for event in trace["traceEvents"]:
            if event.get("ph") == "X" and event["name"].startswith(
                "worker."
            ):
                assert event["pid"] in worker_pids
