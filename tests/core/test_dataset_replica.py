"""Tests for Dataset and Replica schema objects."""

import pytest

from repro.core.dataset import Dataset
from repro.core.descriptors import FileDescriptor
from repro.core.replica import Replica
from repro.core.types import DatasetType
from repro.errors import SchemaError


class TestDataset:
    def test_defaults_to_virtual(self):
        ds = Dataset(name="foo")
        assert ds.is_virtual
        assert ds.dataset_type.is_any()

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Dataset(name="")
        with pytest.raises(SchemaError):
            Dataset(name="-leading-dash")

    def test_dotted_names_allowed(self):
        Dataset(name="run1.exp15.T1932.summary")

    def test_materialized_copy(self):
        ds = Dataset(name="foo", attributes={"owner": "alice"})
        mat = ds.materialized(FileDescriptor(path="/tmp/foo", size=10))
        assert not mat.is_virtual
        assert ds.is_virtual  # original untouched
        assert mat.attributes.get("owner") == "alice"

    def test_size_estimate_preference_order(self):
        by_attr = Dataset(
            name="a",
            descriptor=FileDescriptor(path="x", size=5),
            attributes={"size": 99},
        )
        assert by_attr.size_estimate() == 99
        by_descriptor = Dataset(
            name="b", descriptor=FileDescriptor(path="x", size=5)
        )
        assert by_descriptor.size_estimate() == 5
        by_default = Dataset(name="c")
        assert by_default.size_estimate(default=7) == 7

    def test_dict_round_trip(self):
        ds = Dataset(
            name="foo",
            dataset_type=DatasetType(content="CMS"),
            descriptor=FileDescriptor(path="/data/foo", size=3),
            attributes={"quality": "approved"},
            producer="dv1",
        )
        rebuilt = Dataset.from_dict(ds.to_dict())
        assert rebuilt.name == "foo"
        assert rebuilt.dataset_type == ds.dataset_type
        assert rebuilt.descriptor == ds.descriptor
        assert rebuilt.attributes.get("quality") == "approved"
        assert rebuilt.producer == "dv1"

    def test_str_mentions_state(self):
        assert "virtual" in str(Dataset(name="v"))
        assert "file" in str(
            Dataset(name="m", descriptor=FileDescriptor(path="x"))
        )

    def test_attributes_dict_coerced(self):
        ds = Dataset(name="x", attributes={"k": 1})
        assert ds.attributes.get("k") == 1


class TestReplica:
    def test_requires_location(self):
        with pytest.raises(SchemaError):
            Replica(dataset_name="foo", location="")

    def test_ids_unique(self):
        a = Replica(dataset_name="foo", location="x")
        b = Replica(dataset_name="foo", location="x")
        assert a.replica_id != b.replica_id

    def test_size_estimate(self):
        explicit = Replica(dataset_name="f", location="x", size=10)
        assert explicit.size_estimate() == 10
        from_descriptor = Replica(
            dataset_name="f",
            location="x",
            descriptor=FileDescriptor(path="p", size=20),
        )
        assert from_descriptor.size_estimate() == 20
        assert Replica(dataset_name="f", location="x").size_estimate(3) == 3

    def test_dict_round_trip(self):
        rep = Replica(
            dataset_name="foo",
            location="U.Chicago",
            descriptor=FileDescriptor(path="/d/foo"),
            size=12,
            digest="abc",
            attributes={"tier": 1},
        )
        rebuilt = Replica.from_dict(rep.to_dict())
        assert rebuilt.replica_id == rep.replica_id
        assert rebuilt.location == "U.Chicago"
        assert rebuilt.digest == "abc"
        assert rebuilt.descriptor == rep.descriptor
        assert rebuilt.attributes.get("tier") == 1

    def test_str(self):
        rep = Replica(dataset_name="foo", location="anl")
        assert "foo@anl" in str(rep)
