"""Property-based tests for the type system (hypothesis).

Random hierarchies per dimension; the invariants are the partial-order
laws subtype checking must obey, and the monotonicity of conformance.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.types import DIMENSIONS, DatasetType, TypeRegistry

names = st.lists(
    st.from_regex(r"[A-Z][a-z]{1,6}", fullmatch=True),
    min_size=2,
    max_size=12,
    unique=True,
)


@st.composite
def registries(draw) -> tuple[TypeRegistry, dict[str, list[str]]]:
    """A registry with a random forest in each dimension."""
    registry = TypeRegistry()
    per_dimension: dict[str, list[str]] = {}
    for dim in DIMENSIONS:
        dim_names = [f"{dim[0].upper()}{n}" for n in draw(names)]
        registered: list[str] = []
        for name in dim_names:
            parent = (
                draw(st.sampled_from(registered))
                if registered and draw(st.booleans())
                else None
            )
            registry.register(dim, name, parent)
            registered.append(name)
        per_dimension[dim] = registered
    return registry, per_dimension


@settings(max_examples=60, deadline=None)
@given(registries())
def test_subtype_reflexive(reg_names):
    registry, per_dimension = reg_names
    for dim, dim_names in per_dimension.items():
        for name in dim_names:
            assert registry.is_subtype(dim, name, name)


@settings(max_examples=60, deadline=None)
@given(registries())
def test_subtype_transitive(reg_names):
    registry, per_dimension = reg_names
    for dim, dim_names in per_dimension.items():
        for a in dim_names:
            for b in dim_names:
                if not registry.is_subtype(dim, a, b):
                    continue
                for c in dim_names:
                    if registry.is_subtype(dim, b, c):
                        assert registry.is_subtype(dim, a, c)


@settings(max_examples=60, deadline=None)
@given(registries())
def test_subtype_antisymmetric(reg_names):
    registry, per_dimension = reg_names
    for dim, dim_names in per_dimension.items():
        for a in dim_names:
            for b in dim_names:
                if a == b:
                    continue
                both = registry.is_subtype(dim, a, b) and registry.is_subtype(
                    dim, b, a
                )
                assert not both


@settings(max_examples=60, deadline=None)
@given(registries())
def test_ancestry_matches_subtyping(reg_names):
    registry, per_dimension = reg_names
    for dim, dim_names in per_dimension.items():
        for name in dim_names:
            ancestry = registry.ancestry(dim, name)
            # subtype of exactly the names on its ancestry path
            for other in dim_names:
                expected = other in ancestry
                assert registry.is_subtype(dim, name, other) == expected


@settings(max_examples=60, deadline=None)
@given(registries())
def test_conformance_weakens_up_the_hierarchy(reg_names):
    """If actual conforms to formal F, it conforms to every ancestor
    of F (generalizing a formal never rejects previously valid data)."""
    registry, per_dimension = reg_names
    contents = per_dimension["content"]
    actual = DatasetType(content=contents[-1])
    for formal_name in registry.ancestry("content", contents[-1]):
        formal = DatasetType(content=formal_name)
        assert registry.conforms(actual, formal)


@settings(max_examples=60, deadline=None)
@given(registries())
def test_everything_conforms_to_any(reg_names):
    registry, per_dimension = reg_names
    any_type = DatasetType()
    for content in per_dimension["content"]:
        for fmt in per_dimension["format"][:3]:
            actual = DatasetType(content=content, format=fmt)
            assert registry.conforms(actual, any_type)
