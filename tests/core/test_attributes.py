"""Tests for arbitrary attributes and annotation history."""

import pytest

from repro.core.attributes import Annotation, AttributeSet
from repro.errors import SchemaError


class TestAnnotation:
    def test_basic(self):
        note = Annotation(key="quality", value="approved", author="alice")
        assert note.value == "approved"

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            Annotation(key="", value=1)

    def test_scalar_values_accepted(self):
        for value in ("x", 1, 1.5, True):
            assert Annotation(key="k", value=value).value == value

    def test_flat_list_accepted(self):
        note = Annotation(key="k", value=[1, 2, 3])
        assert note.value == [1, 2, 3]

    def test_nested_list_rejected(self):
        with pytest.raises(SchemaError):
            Annotation(key="k", value=[[1]])

    def test_dict_value_rejected(self):
        with pytest.raises(SchemaError):
            Annotation(key="k", value={"a": 1})


class TestAttributeSet:
    def test_set_get(self):
        attrs = AttributeSet()
        attrs.set("owner", "alice")
        assert attrs.get("owner") == "alice"
        assert attrs["owner"] == "alice"

    def test_get_default(self):
        assert AttributeSet().get("nope", 7) == 7

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            AttributeSet()["nope"]

    def test_initial_dict(self):
        attrs = AttributeSet({"a": 1, "b": "x"})
        assert attrs.as_dict() == {"a": 1, "b": "x"}

    def test_history_preserved(self):
        attrs = AttributeSet()
        attrs.set("calib", "v1", author="bob")
        attrs.set("calib", "v2", author="alice")
        history = attrs.history("calib")
        assert [n.value for n in history] == ["v1", "v2"]
        assert [n.author for n in history] == ["bob", "alice"]
        assert attrs.get("calib") == "v2"

    def test_contains_len_iter(self):
        attrs = AttributeSet({"b": 2, "a": 1})
        assert "a" in attrs and "c" not in attrs
        assert len(attrs) == 2
        assert list(attrs) == ["a", "b"]

    def test_remove(self):
        attrs = AttributeSet({"a": 1})
        attrs.remove("a")
        assert "a" not in attrs
        with pytest.raises(KeyError):
            attrs.remove("a")

    def test_matches(self):
        attrs = AttributeSet({"a": 1, "b": "x"})
        assert attrs.matches({"a": 1})
        assert attrs.matches({"a": 1, "b": "x"})
        assert not attrs.matches({"a": 2})
        assert not attrs.matches({"missing": 1})

    def test_equality_on_current_values(self):
        a = AttributeSet({"k": 1})
        b = AttributeSet()
        b.set("k", 0)
        b.set("k", 1)
        assert a == b  # history differs, current values equal

    def test_copy_is_deep(self):
        attrs = AttributeSet({"a": 1})
        clone = attrs.copy()
        clone.set("a", 2)
        assert attrs.get("a") == 1
        assert clone.get("a") == 2
        assert len(clone.history("a")) == 2

    def test_setitem(self):
        attrs = AttributeSet()
        attrs["x"] = 5
        assert attrs.get("x") == 5

    def test_keys_sorted(self):
        attrs = AttributeSet({"z": 1, "a": 2})
        assert attrs.keys() == ["a", "z"]
