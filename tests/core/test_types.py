"""Tests for the three-dimensional dataset type model (§3.1, App. C)."""

import pytest

from repro.core.types import (
    ANY_DATASET,
    DIMENSION_ROOTS,
    DIMENSIONS,
    TypeRegistry,
    TypeUnion,
    default_registry,
)
from repro.errors import TypeSystemError, UnknownTypeError


@pytest.fixture
def registry():
    return default_registry()


class TestRegistration:
    def test_dimension_roots_preregistered(self):
        reg = TypeRegistry()
        for dim in DIMENSIONS:
            assert reg.knows(dim, DIMENSION_ROOTS[dim])

    def test_register_under_root_by_default(self):
        reg = TypeRegistry()
        reg.register("content", "Physics")
        assert reg.parent("content", "Physics") == DIMENSION_ROOTS["content"]

    def test_register_subtype(self):
        reg = TypeRegistry()
        reg.register("content", "Physics")
        reg.register("content", "CMS-sim", parent="Physics")
        assert reg.parent("content", "CMS-sim") == "Physics"

    def test_register_is_case_insensitive(self):
        reg = TypeRegistry()
        reg.register("content", "Physics")
        assert reg.knows("content", "physics")
        assert reg.knows("content", "PHYSICS")

    def test_reregister_same_parent_is_noop(self):
        reg = TypeRegistry()
        reg.register("content", "Physics")
        reg.register("content", "Physics")  # no error

    def test_reregister_different_parent_rejected(self):
        reg = TypeRegistry()
        reg.register("content", "A")
        reg.register("content", "B")
        reg.register("content", "X", parent="A")
        with pytest.raises(TypeSystemError):
            reg.register("content", "X", parent="B")

    def test_unknown_parent_rejected(self):
        reg = TypeRegistry()
        with pytest.raises(UnknownTypeError):
            reg.register("content", "X", parent="Nope")

    def test_unknown_dimension_rejected(self):
        reg = TypeRegistry()
        with pytest.raises(TypeSystemError):
            reg.register("flavour", "X")

    def test_register_hierarchy(self):
        reg = TypeRegistry()
        reg.register_hierarchy("format", {"A": {"B": {"C": {}}, "D": {}}})
        assert reg.ancestry("format", "C") == [
            "C", "B", "A", DIMENSION_ROOTS["format"],
        ]
        assert reg.parent("format", "D") == "A"


class TestSubtyping:
    def test_reflexive(self, registry):
        assert registry.is_subtype("content", "CMS", "CMS")

    def test_child_of_parent(self, registry):
        assert registry.is_subtype("content", "Simulation", "CMS")

    def test_grandchild(self, registry):
        assert registry.is_subtype("content", "Zebra-file", "CMS")

    def test_not_ancestor(self, registry):
        assert not registry.is_subtype("content", "CMS", "Simulation")

    def test_siblings_unrelated(self, registry):
        assert not registry.is_subtype("content", "SDSS", "CMS")

    def test_everything_subtype_of_root(self, registry):
        assert registry.is_subtype(
            "content", "Zebra-file", DIMENSION_ROOTS["content"]
        )

    def test_unknown_ancestor_raises(self, registry):
        with pytest.raises(UnknownTypeError):
            registry.is_subtype("content", "CMS", "Martian")

    def test_descendants(self, registry):
        kids = registry.descendants("content", "CMS")
        assert "Simulation" in kids and "Zebra-file" in kids
        assert "SDSS" not in kids

    def test_ancestry_of_root(self, registry):
        assert registry.ancestry("format", DIMENSION_ROOTS["format"]) == [
            DIMENSION_ROOTS["format"]
        ]


class TestDatasetType:
    def test_default_is_any(self):
        assert ANY_DATASET.is_any()
        assert str(ANY_DATASET) == "Dataset"

    def test_make_type_validates(self, registry):
        t = registry.make_type(content="CMS", format="Fileset")
        assert t.content == "CMS"
        with pytest.raises(UnknownTypeError):
            registry.make_type(content="NoSuch")

    def test_as_dict(self, registry):
        t = registry.make_type(content="CMS")
        d = t.as_dict()
        assert d["content"] == "CMS"
        assert set(d) == set(DIMENSIONS)

    def test_str_non_any(self, registry):
        t = registry.make_type(content="CMS", format="Fileset", encoding="Text")
        assert "CMS" in str(t) and "Fileset" in str(t)


class TestConformance:
    def test_exact_match_conforms(self, registry):
        t = registry.make_type(content="Simulation")
        assert registry.conforms(t, t)

    def test_specialization_conforms(self, registry):
        actual = registry.make_type(
            content="Zebra-file", format="Simple", encoding="ASCII"
        )
        formal = registry.make_type(
            content="CMS", format="Fileset", encoding="Text"
        )
        assert registry.conforms(actual, formal)

    def test_generalization_does_not_conform(self, registry):
        actual = registry.make_type(content="CMS")
        formal = registry.make_type(content="Zebra-file")
        assert not registry.conforms(actual, formal)

    def test_must_conform_in_every_dimension(self, registry):
        actual = registry.make_type(content="Zebra-file", encoding="SAS")
        formal = registry.make_type(content="CMS", encoding="Text")
        assert not registry.conforms(actual, formal)

    def test_anything_conforms_to_any(self, registry):
        actual = registry.make_type(
            content="Zebra-file", format="Tar-archive", encoding="EBCDIC"
        )
        assert registry.conforms(actual, ANY_DATASET)

    def test_union_accepts_any_member(self, registry):
        union = TypeUnion(
            members=(
                registry.make_type(content="CMS"),
                registry.make_type(content="SDSS"),
            )
        )
        assert union.accepts(registry.make_type(content="FITS-file"), registry)
        assert union.accepts(registry.make_type(content="Simulation"), registry)
        assert not union.accepts(
            registry.make_type(content="UChicago"), registry
        )

    def test_empty_union_rejected(self):
        with pytest.raises(TypeSystemError):
            TypeUnion(members=())

    def test_union_str(self, registry):
        union = TypeUnion(members=(registry.make_type(content="CMS"),))
        assert "CMS" in str(union)


class TestDefaultRegistry:
    def test_appendix_c_formats(self, registry):
        for name in ("Fileset", "Tar-archive", "SQL-table", "Excel-95"):
            assert registry.knows("format", name)

    def test_appendix_c_encodings(self, registry):
        for name in ("ASCII", "EBCDIC", "HDF-5-file", "SAS-transport"):
            assert registry.knows("encoding", name)

    def test_appendix_c_contents(self, registry):
        for name in ("UChicago-student-record", "Geant-4-file", "FITS-file"):
            assert registry.knows("content", name)

    def test_iteration_yields_all_nodes(self, registry):
        nodes = list(registry)
        assert ("format", "Tar-archive", "Fileset") in nodes
        assert len(nodes) > 40
