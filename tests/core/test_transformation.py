"""Tests for simple/compound transformations and type signatures (§3.2)."""

import pytest

from repro.core.naming import VDPRef
from repro.core.transformation import (
    ArgumentTemplate,
    CompoundTransformation,
    FormalArg,
    FormalRef,
    SimpleTransformation,
    TransformationCall,
    TransformationSignature,
    two_stage,
)
from repro.core.types import DatasetType, TypeUnion, default_registry
from repro.errors import (
    SchemaError,
    SignatureMismatchError,
    TypeConformanceError,
)


def simple_tr(name="t1"):
    return SimpleTransformation(
        name,
        [
            FormalArg("out", "output"),
            FormalArg("inp", "input"),
            FormalArg("level", "none", default="5"),
        ],
        executable="/bin/app",
        arguments=(
            ArgumentTemplate(parts=("-l ", FormalRef("level", "none"))),
            ArgumentTemplate(parts=(FormalRef("inp", "input"),), name="stdin"),
            ArgumentTemplate(parts=(FormalRef("out", "output"),), name="stdout"),
        ),
        environment={
            "MAXMEM": ArgumentTemplate(parts=(FormalRef("level"),)),
        },
    )


class TestFormalArg:
    def test_direction_validation(self):
        with pytest.raises(SchemaError):
            FormalArg("x", "sideways")

    def test_predicates(self):
        assert FormalArg("x", "none").is_string
        assert FormalArg("x", "input").is_input
        assert FormalArg("x", "output").is_output
        inout = FormalArg("x", "inout")
        assert inout.is_input and inout.is_output

    def test_str(self):
        assert "none" in str(FormalArg("x", "none"))
        assert "input" in str(FormalArg("x", "input"))


class TestSignature:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TransformationSignature(
                [FormalArg("a", "input"), FormalArg("a", "output")]
            )

    def test_lookup(self):
        sig = TransformationSignature([FormalArg("a", "input")])
        assert sig.formal("a").name == "a"
        assert "a" in sig and "b" not in sig
        with pytest.raises(SignatureMismatchError):
            sig.formal("b")

    def test_partitions(self):
        sig = simple_tr().signature
        assert [f.name for f in sig.inputs()] == ["inp"]
        assert [f.name for f in sig.outputs()] == ["out"]
        assert [f.name for f in sig.strings()] == ["level"]

    def test_check_actuals_missing_required(self):
        sig = simple_tr().signature
        with pytest.raises(SignatureMismatchError):
            sig.check_actuals({"out": "x"})  # inp missing, no default

    def test_check_actuals_default_fills(self):
        sig = simple_tr().signature
        sig.check_actuals({"out": "x", "inp": "y"})  # level has default

    def test_check_actuals_unknown_name(self):
        sig = simple_tr().signature
        with pytest.raises(SignatureMismatchError):
            sig.check_actuals({"out": "x", "inp": "y", "bogus": "z"})

    def test_type_conformance_enforced(self):
        reg = default_registry()
        sig = TransformationSignature(
            [
                FormalArg(
                    "inp",
                    "input",
                    dataset_types=TypeUnion(
                        members=(DatasetType(content="CMS"),)
                    ),
                )
            ]
        )
        good = {"inp": DatasetType(content="Simulation")}
        bad = {"inp": DatasetType(content="SDSS")}
        sig.check_actuals({"inp": "x"}, reg, good)
        with pytest.raises(TypeConformanceError):
            sig.check_actuals({"inp": "x"}, reg, bad)

    def test_type_signature_render(self):
        text = simple_tr().signature.type_signature()
        assert "none level" in text
        assert "output" in text


class TestSimpleTransformation:
    def test_command_line_skips_streams(self):
        tr = simple_tr()
        argv = tr.command_line({"level": "9", "inp": "i.dat", "out": "o.dat"})
        assert argv == ("-l 9",)

    def test_stream_redirects(self):
        tr = simple_tr()
        streams = tr.stream_redirects(
            {"level": "9", "inp": "i.dat", "out": "o.dat"}
        )
        assert streams == {"stdin": "i.dat", "stdout": "o.dat"}

    def test_environment_rendering(self):
        tr = simple_tr()
        env = tr.rendered_environment(
            {"level": "9", "inp": "i", "out": "o"}
        )
        assert env == {"MAXMEM": "9"}

    def test_unknown_template_ref_rejected(self):
        with pytest.raises(SchemaError):
            SimpleTransformation(
                "bad",
                [FormalArg("a", "input")],
                executable="/bin/x",
                arguments=(
                    ArgumentTemplate(parts=(FormalRef("nope", "input"),)),
                ),
            )

    def test_render_unbound_raises(self):
        tr = simple_tr()
        with pytest.raises(SignatureMismatchError):
            tr.command_line({})

    def test_is_not_compound(self):
        assert not simple_tr().is_compound

    def test_qualified_name(self):
        tr = SimpleTransformation(
            "t", [FormalArg("o", "output")], executable="/bin/t", version="2.1"
        )
        assert tr.qualified_name == "t@2.1"

    def test_to_dict_contains_xml(self):
        data = simple_tr().to_dict()
        assert data["name"] == "t1"
        assert "<transformation" in data["xml"]


class TestCompoundTransformation:
    def make_compound(self):
        return CompoundTransformation(
            "comp",
            [
                FormalArg("src", "input"),
                FormalArg("mid", "inout", default="scratch",
                          temporary_default=True),
                FormalArg("dst", "output"),
            ],
            calls=[
                TransformationCall(
                    target=VDPRef("stage1", kind="transformation"),
                    bindings={
                        "o": FormalRef("mid", "output"),
                        "i": FormalRef("src", "input"),
                    },
                ),
                TransformationCall(
                    target=VDPRef("stage2", kind="transformation"),
                    bindings={
                        "o": FormalRef("dst", "output"),
                        "i": FormalRef("mid", "input"),
                    },
                ),
            ],
        )

    def test_is_compound(self):
        assert self.make_compound().is_compound

    def test_requires_calls(self):
        with pytest.raises(SchemaError):
            CompoundTransformation("c", [FormalArg("o", "output")], calls=[])

    def test_unknown_binding_ref_rejected(self):
        with pytest.raises(SchemaError):
            CompoundTransformation(
                "c",
                [FormalArg("o", "output")],
                calls=[
                    TransformationCall(
                        target=VDPRef("x", kind="transformation"),
                        bindings={"a": FormalRef("nope")},
                    )
                ],
            )

    def test_call_dependencies(self):
        comp = self.make_compound()
        directions = {
            0: {"mid": "output", "src": "input"},
            1: {"dst": "output", "mid": "input"},
        }
        assert comp.call_dependencies(directions) == [(0, 1)]


class TestTwoStage:
    def make_inner(self):
        return SimpleTransformation(
            "realapp",
            [
                FormalArg("paramfile", "input"),
                FormalArg("data", "input"),
                FormalArg("result", "output"),
            ],
            executable="/bin/realapp",
        )

    def test_builds_compound(self):
        adapter = two_stage(
            "app-adapter",
            self.make_inner(),
            params=[FormalArg("cut", "none"), FormalArg("mode", "none")],
        )
        assert adapter.is_compound
        assert len(adapter.calls) == 2
        names = {f.name for f in adapter.signature.formals}
        assert {"cut", "mode", "data", "result", "paramfile"} <= names
        # Stage 1 writes params; stage 2 invokes the inner executable.
        assert adapter.calls[0].target.name == "write-params"
        assert adapter.calls[1].target.name == "realapp"

    def test_rejects_non_string_params(self):
        with pytest.raises(SchemaError):
            two_stage(
                "x", self.make_inner(), params=[FormalArg("d", "input")]
            )

    def test_rejects_output_paramfile(self):
        inner = SimpleTransformation(
            "bad",
            [FormalArg("paramfile", "output"), FormalArg("o", "output")],
            executable="/bin/bad",
        )
        with pytest.raises(SchemaError):
            two_stage("x", inner, params=[])

    def test_rejects_param_collision(self):
        with pytest.raises(SchemaError):
            two_stage(
                "x", self.make_inner(), params=[FormalArg("data", "none")]
            )
