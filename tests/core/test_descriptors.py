"""Tests for the dataset descriptor spectrum (§3.1)."""

import pytest

from repro.core.descriptors import (
    ArchiveDescriptor,
    FileDescriptor,
    FileSlice,
    FilesetDescriptor,
    IndexedDescriptor,
    ObjectClosureDescriptor,
    SliceDescriptor,
    SpreadsheetDescriptor,
    SQLRowsDescriptor,
    VirtualDescriptor,
    descriptor_from_dict,
    descriptor_to_dict,
)
from repro.errors import SchemaError

ALL_DESCRIPTORS = [
    FileDescriptor(path="a.dat", size=100),
    FilesetDescriptor(paths=("a", "b"), size=200),
    SliceDescriptor(slices=(FileSlice("a", 0, 10), FileSlice("b", 5, 20))),
    ArchiveDescriptor(archive_path="x.tar", members=("m1", "m2"), size=300),
    IndexedDescriptor(index_path="idx.db", data_paths=("d1", "d2")),
    SQLRowsDescriptor(database="db", tables=("t",), keys=("1", "2")),
    ObjectClosureDescriptor(store="oo", roots=("r1",)),
    SpreadsheetDescriptor(workbook="wb.xls", regions=("Sheet1!A1:B2",)),
    VirtualDescriptor(size_hint=42),
]


class TestValidation:
    def test_file_requires_path(self):
        with pytest.raises(SchemaError):
            FileDescriptor(path="")

    def test_fileset_requires_paths(self):
        with pytest.raises(SchemaError):
            FilesetDescriptor(paths=())

    def test_fileset_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            FilesetDescriptor(paths=("a", "a"))

    def test_slice_requires_nonnegative(self):
        with pytest.raises(SchemaError):
            FileSlice("a", -1, 10)
        with pytest.raises(SchemaError):
            FileSlice("a", 0, -1)

    def test_slice_descriptor_requires_slices(self):
        with pytest.raises(SchemaError):
            SliceDescriptor(slices=())

    def test_archive_format_checked(self):
        with pytest.raises(SchemaError):
            ArchiveDescriptor(archive_path="x", archive_format="rar")

    def test_sql_rows_needs_keys_or_range(self):
        with pytest.raises(SchemaError):
            SQLRowsDescriptor(database="db", tables=("t",))
        SQLRowsDescriptor(database="db", tables=("t",), key_range=("a", "z"))

    def test_object_closure_needs_roots(self):
        with pytest.raises(SchemaError):
            ObjectClosureDescriptor(store="s", roots=())

    def test_spreadsheet_needs_regions(self):
        with pytest.raises(SchemaError):
            SpreadsheetDescriptor(workbook="wb", regions=())


class TestBehaviour:
    def test_file_files_and_size(self):
        d = FileDescriptor(path="a.dat", size=100)
        assert d.files() == ("a.dat",)
        assert d.nominal_size() == 100

    def test_slice_size_sums_lengths(self):
        d = SliceDescriptor(
            slices=(FileSlice("a", 0, 10), FileSlice("a", 20, 30))
        )
        assert d.nominal_size() == 40
        assert d.files() == ("a",)  # deduplicated

    def test_indexed_files_include_index(self):
        d = IndexedDescriptor(index_path="i", data_paths=("d",))
        assert d.files() == ("i", "d")

    def test_sql_row_count_hint(self):
        d = SQLRowsDescriptor(
            database="db", tables=("t1", "t2"), keys=("1", "2", "3")
        )
        assert d.row_count_hint() == 6
        ranged = SQLRowsDescriptor(
            database="db", tables=("t",), key_range=("a", "z")
        )
        assert ranged.row_count_hint() is None

    def test_sql_overlap(self):
        a = SQLRowsDescriptor(database="db", tables=("t",), keys=("1", "2"))
        b = SQLRowsDescriptor(database="db", tables=("t",), keys=("2", "3"))
        c = SQLRowsDescriptor(database="db", tables=("t",), keys=("9",))
        d = SQLRowsDescriptor(database="other", tables=("t",), keys=("1",))
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert not a.overlaps(d)

    def test_sql_overlap_range_conservative(self):
        a = SQLRowsDescriptor(database="db", tables=("t",), keys=("1",))
        b = SQLRowsDescriptor(
            database="db", tables=("t",), key_range=("0", "5")
        )
        assert a.overlaps(b)

    def test_virtual_is_sizeless_by_default(self):
        assert VirtualDescriptor().nominal_size() is None
        assert VirtualDescriptor(size_hint=5).nominal_size() == 5


class TestSerialization:
    @pytest.mark.parametrize(
        "descriptor", ALL_DESCRIPTORS, ids=lambda d: d.KIND
    )
    def test_round_trip(self, descriptor):
        data = descriptor_to_dict(descriptor)
        rebuilt = descriptor_from_dict(data)
        assert rebuilt == descriptor
        assert rebuilt.KIND == descriptor.KIND

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            descriptor_from_dict({"kind": "martian"})

    def test_dict_has_kind_tag(self):
        assert descriptor_to_dict(FileDescriptor(path="a"))["kind"] == "file"
