"""Tests for vdp:// references and structured versioning."""

import pytest

from repro.core.naming import VDPRef, check_object_name
from repro.core.versioning import Version, VersionRegistry
from repro.errors import SchemaError


class TestObjectNames:
    def test_valid_names(self):
        for name in ("foo", "example1::t1", "run1.exp15", "srch-muon", "a+b"):
            assert check_object_name(name) == name

    def test_invalid_names(self):
        for name in ("", "-x", "/abs", "a b"):
            with pytest.raises(SchemaError):
                check_object_name(name)


class TestVDPRef:
    def test_local_ref(self):
        ref = VDPRef("srch")
        assert ref.is_local
        assert ref.uri() == "srch"
        assert ref.vdl_text() == "srch"

    def test_remote_ref_uri(self):
        ref = VDPRef("srch", authority="physics.wisconsin.edu")
        assert not ref.is_local
        assert ref.uri() == "vdp://physics.wisconsin.edu/srch"
        assert ref.vdl_text() == "vdp://physics.wisconsin.edu/srch"

    def test_remote_ref_with_kind(self):
        ref = VDPRef("srch", authority="w.edu", kind="transformation")
        assert ref.uri() == "vdp://w.edu/transformation/srch"
        assert ref.vdl_text() == "vdp://w.edu/srch"

    def test_parse_bare_name(self):
        ref = VDPRef.parse("srch", default_kind="transformation")
        assert ref.is_local and ref.kind == "transformation"

    def test_parse_full_uri(self):
        ref = VDPRef.parse("vdp://w.edu/transformation/srch")
        assert ref.authority == "w.edu"
        assert ref.kind == "transformation"
        assert ref.name == "srch"

    def test_parse_uri_without_kind(self):
        ref = VDPRef.parse("vdp://w.edu/srch", default_kind="derivation")
        assert ref.kind == "derivation"

    def test_parse_round_trip(self):
        for text in ("x", "vdp://a.b/x", "vdp://a.b/dataset/x"):
            ref = VDPRef.parse(text)
            assert VDPRef.parse(ref.uri()) == ref

    def test_invalid_kind(self):
        with pytest.raises(SchemaError):
            VDPRef("x", kind="martian")

    def test_invalid_authority(self):
        with pytest.raises(SchemaError):
            VDPRef("x", authority="not valid!")

    def test_localized_and_at(self):
        ref = VDPRef("x", authority="a.edu", kind="dataset")
        local = ref.localized()
        assert local.is_local and local.kind == "dataset"
        again = local.at("b.edu")
        assert again.authority == "b.edu"

    def test_namespaced_name(self):
        ref = VDPRef.parse("example1::t1")
        assert ref.name == "example1::t1"


class TestVersion:
    def test_parse_and_str(self):
        v = Version.parse("1.2.3")
        assert str(v) == "1.2.3"

    def test_invalid(self):
        for text in ("", "a.b", "1..2", "-1"):
            with pytest.raises(SchemaError):
                Version.parse(text)

    def test_trailing_zero_normalization(self):
        assert Version.parse("1.0") == Version.parse("1")
        assert Version.parse("1.0.0") == Version.parse("1.0")
        assert hash(Version.parse("1.0")) == hash(Version.parse("1"))

    def test_ordering(self):
        assert Version.parse("1.2") < Version.parse("1.10")
        assert Version.parse("2.0") > Version.parse("1.99")
        assert Version.parse("1.0") <= Version.parse("1")
        assert Version.parse("1.1") >= Version.parse("1.1")


class TestVersionRegistry:
    def test_register_and_latest(self):
        reg = VersionRegistry()
        reg.register("t", "1.0")
        reg.register("t", "2.0")
        reg.register("t", "1.5")
        assert str(reg.latest("t")) == "2.0"
        assert [str(v) for v in reg.versions("t")] == ["1.0", "1.5", "2.0"]

    def test_latest_unknown(self):
        assert VersionRegistry().latest("nope") is None

    def test_equivalence_reflexive(self):
        reg = VersionRegistry()
        assert reg.equivalent("t", "1.0", "1.0")

    def test_equivalence_via_assertion(self):
        reg = VersionRegistry()
        reg.assert_compatible("t", "1.0", "1.1")
        assert reg.equivalent("t", "1.0", "1.1")
        assert reg.equivalent("t", "1.1", "1.0")  # symmetric

    def test_equivalence_transitive(self):
        reg = VersionRegistry()
        reg.assert_compatible("t", "1.0", "1.1")
        reg.assert_compatible("t", "1.1", "1.2")
        assert reg.equivalent("t", "1.0", "1.2")

    def test_scopes_do_not_mix(self):
        reg = VersionRegistry()
        reg.assert_compatible("t", "1.0", "1.1", scope="semantic")
        assert not reg.equivalent("t", "1.0", "1.1", scope="exact")

    def test_exact_satisfies_semantic(self):
        reg = VersionRegistry()
        reg.assert_compatible("t", "1.0", "1.1", scope="exact")
        assert reg.equivalent("t", "1.0", "1.1", scope="semantic")

    def test_per_transformation_isolation(self):
        reg = VersionRegistry()
        reg.assert_compatible("t", "1.0", "1.1")
        assert not reg.equivalent("other", "1.0", "1.1")

    def test_equivalence_class(self):
        reg = VersionRegistry()
        reg.assert_compatible("t", "1.0", "1.1")
        reg.assert_compatible("t", "1.1", "1.2")
        reg.register("t", "9.9")
        cls = reg.equivalence_class("t", "1.1")
        assert [str(v) for v in cls] == ["1.0", "1.1", "1.2"]

    def test_assertions_listed(self):
        reg = VersionRegistry()
        reg.assert_compatible("t", "1.0", "1.1", authority="cms")
        assert reg.assertions("t")[0].authority == "cms"
