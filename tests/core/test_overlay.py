"""Tests for overlaid virtual datasets and storage reclamation (§8)."""

import pytest

from repro.core.dataset import Dataset
from repro.core.descriptors import (
    FileDescriptor,
    FileSlice,
    FilesetDescriptor,
    SliceDescriptor,
)
from repro.core.overlay import OverlayStore
from repro.errors import SchemaError


def slice_dataset(name, path, offset, length):
    return Dataset(
        name=name,
        descriptor=SliceDescriptor(
            slices=(FileSlice(path, offset, length),)
        ),
    )


@pytest.fixture
def store():
    return OverlayStore()


class TestRegistration:
    def test_files_from_descriptor(self, store):
        ds = Dataset(
            name="d1",
            descriptor=FilesetDescriptor(paths=("a.dat", "b.dat")),
        )
        store.register(ds)
        assert store.files_of("d1") == {"a.dat", "b.dat"}
        assert store.refcount("a.dat") == 1

    def test_bare_name_requires_files(self, store):
        with pytest.raises(SchemaError):
            store.register("d1")
        store.register("d1", files=["x"])
        assert store.files_of("d1") == {"x"}

    def test_reregistration_replaces_claims(self, store):
        store.register("d1", files=["a", "b"])
        store.register("d1", files=["b", "c"])
        assert store.files_of("d1") == {"b", "c"}
        assert store.refcount("a") == 0

    def test_shared_files_counted_once_per_dataset(self, store):
        store.register("d1", files=["shared"])
        store.register("d2", files=["shared"])
        assert store.refcount("shared") == 2
        assert store.referencers_of("shared") == {"d1", "d2"}


class TestOverlap:
    def test_overlapping_datasets(self, store):
        store.register("d1", files=["events.bin", "own1"])
        store.register("d2", files=["events.bin", "own2"])
        store.register("d3", files=["elsewhere"])
        assert store.overlapping("d1") == {"d2"}
        assert store.overlapping("d3") == set()

    def test_slice_overlap_byte_precise(self, store):
        a = slice_dataset("a", "events.bin", 0, 100)
        b = slice_dataset("b", "events.bin", 50, 100)
        c = slice_dataset("c", "events.bin", 200, 50)
        d = slice_dataset("d", "other.bin", 0, 100)
        assert store.slice_overlaps(a, b)
        assert not store.slice_overlaps(a, c)
        assert not store.slice_overlaps(a, d)

    def test_slice_overlap_adjacent_not_overlapping(self, store):
        a = slice_dataset("a", "f", 0, 100)
        b = slice_dataset("b", "f", 100, 100)
        assert not store.slice_overlaps(a, b)

    def test_non_slice_falls_back_to_file_grain(self, store):
        a = Dataset(name="a", descriptor=FileDescriptor(path="x"))
        b = slice_dataset("b", "x", 0, 10)
        assert store.slice_overlaps(a, b)


class TestReclamation:
    def test_drop_frees_unshared_files_only(self, store):
        store.register("d1", files=["shared", "only1"],
                       sizes={"shared": 100, "only1": 40})
        store.register("d2", files=["shared"], sizes={"shared": 100})
        report = store.reclaim(drop=["d1"])
        assert report.freed_files == ("only1",)
        assert report.freed_bytes == 40
        assert "shared" in report.retained_files
        assert store.refcount("shared") == 1

    def test_last_reference_frees_shared(self, store):
        store.register("d1", files=["shared"], sizes={"shared": 100})
        store.register("d2", files=["shared"])
        store.reclaim(drop=["d1"])
        report = store.reclaim(drop=["d2"])
        assert report.freed_files == ("shared",)
        assert report.freed_bytes == 100

    def test_pinned_files_survive(self, store):
        store.register("d1", files=["precious"], sizes={"precious": 10})
        store.pin("precious")
        report = store.reclaim(drop=["d1"])
        assert report.freed_files == ()
        assert "precious" in report.retained_files
        store.unpin("precious")
        assert store.reclaim().freed_files == ("precious",)

    def test_collectable_listing(self, store):
        store.register("d1", files=["a"])
        store.drop("d1")
        assert store.collectable() == ["a"]

    def test_reclaim_reports_dropped(self, store):
        store.register("d1", files=["a"])
        report = store.reclaim(drop=["d1"])
        assert report.dropped_datasets == ("d1",)
        assert store.datasets() == []
