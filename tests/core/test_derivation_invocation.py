"""Tests for derivations (provenance edges) and invocation records."""

import pytest

from repro.core.derivation import DatasetArg, Derivation
from repro.core.invocation import (
    ExecutionContext,
    Invocation,
    ResourceUsage,
)
from repro.core.naming import VDPRef
from repro.core.transformation import (
    ArgumentTemplate,
    FormalArg,
    FormalRef,
    SimpleTransformation,
)
from repro.errors import SchemaError, SignatureMismatchError


def prog1():
    """The Fig 1 transformation: prog1(in X, out Y)."""
    return SimpleTransformation(
        "prog1",
        [FormalArg("Y", "output"), FormalArg("X", "input")],
        executable="/usr/bin/prog1",
        arguments=(ArgumentTemplate(parts=("-f ", FormalRef("X", "input"))),),
    )


def fig1_derivation():
    """Fig 1: foo produced by applying prog1 to fnn."""
    return Derivation(
        name="d1",
        transformation=VDPRef("prog1", kind="transformation"),
        actuals={
            "Y": DatasetArg("foo", "output"),
            "X": DatasetArg("fnn", "input"),
        },
    )


class TestDatasetArg:
    def test_direction_none_rejected(self):
        with pytest.raises(SchemaError):
            DatasetArg("x", "none")

    def test_predicates(self):
        assert DatasetArg("x", "input").is_input
        assert DatasetArg("x", "output").is_output
        both = DatasetArg("x", "inout")
        assert both.is_input and both.is_output

    def test_str_renders_vdl_form(self):
        assert str(DatasetArg("foo", "output")) == '@{output:"foo"}'


class TestDerivation:
    def test_fig1_edges(self):
        dv = fig1_derivation()
        assert dv.inputs() == ("fnn",)
        assert dv.outputs() == ("foo",)
        assert dv.produces("foo") and not dv.produces("fnn")
        assert dv.consumes("fnn") and not dv.consumes("foo")

    def test_inout_appears_on_both_sides(self):
        dv = Derivation(
            name="d",
            transformation=VDPRef("t", kind="transformation"),
            actuals={"a": DatasetArg("x", "inout")},
        )
        assert dv.inputs() == ("x",) and dv.outputs() == ("x",)

    def test_rejects_non_transformation_ref(self):
        with pytest.raises(SchemaError):
            Derivation(
                name="d",
                transformation=VDPRef("x", kind="dataset"),
            )

    def test_rejects_bad_actual_type(self):
        with pytest.raises(SchemaError):
            Derivation(
                name="d",
                transformation=VDPRef("t", kind="transformation"),
                actuals={"a": 42},
            )

    def test_check_against_ok(self):
        fig1_derivation().check_against(prog1())

    def test_check_against_wrong_transformation(self):
        dv = fig1_derivation()
        other = SimpleTransformation(
            "other", [FormalArg("Y", "output"), FormalArg("X", "input")],
            executable="/bin/x",
        )
        with pytest.raises(SignatureMismatchError):
            dv.check_against(other)

    def test_check_against_string_for_dataset(self):
        dv = Derivation(
            name="d",
            transformation=VDPRef("prog1", kind="transformation"),
            actuals={"Y": DatasetArg("foo", "output"), "X": "oops"},
        )
        with pytest.raises(SignatureMismatchError):
            dv.check_against(prog1())

    def test_check_against_dataset_for_string(self):
        tr = SimpleTransformation(
            "t",
            [FormalArg("o", "output"), FormalArg("n", "none")],
            executable="/bin/t",
        )
        dv = Derivation(
            name="d",
            transformation=VDPRef("t", kind="transformation"),
            actuals={
                "o": DatasetArg("out", "output"),
                "n": DatasetArg("bad", "input"),
            },
        )
        with pytest.raises(SignatureMismatchError):
            dv.check_against(tr)

    def test_check_against_direction_mismatch(self):
        dv = Derivation(
            name="d",
            transformation=VDPRef("prog1", kind="transformation"),
            actuals={
                "Y": DatasetArg("foo", "input"),  # formal is output
                "X": DatasetArg("fnn", "input"),
            },
        )
        with pytest.raises(SignatureMismatchError):
            dv.check_against(prog1())

    def test_dict_round_trip(self):
        dv = fig1_derivation()
        dv.environment["MAXMEM"] = "100000"
        dv.attributes.set("owner", "alice")
        rebuilt = Derivation.from_dict(dv.to_dict())
        assert rebuilt.name == dv.name
        assert rebuilt.inputs() == dv.inputs()
        assert rebuilt.outputs() == dv.outputs()
        assert rebuilt.environment == {"MAXMEM": "100000"}
        assert rebuilt.attributes.get("owner") == "alice"
        assert rebuilt.transformation.name == "prog1"

    def test_remote_transformation_round_trip(self):
        dv = Derivation(
            name="srch-muon",
            transformation=VDPRef(
                "srch", authority="physics.wisconsin.edu",
                kind="transformation",
            ),
            actuals={},
        )
        rebuilt = Derivation.from_dict(dv.to_dict())
        assert rebuilt.transformation.authority == "physics.wisconsin.edu"


class TestInvocation:
    def test_defaults(self):
        inv = Invocation(derivation_name="d1")
        assert inv.succeeded
        assert inv.end_time == inv.start_time

    def test_status_validation(self):
        with pytest.raises(SchemaError):
            Invocation(derivation_name="d1", status="meh")

    def test_negative_usage_rejected(self):
        with pytest.raises(SchemaError):
            ResourceUsage(cpu_seconds=-1)
        with pytest.raises(SchemaError):
            ResourceUsage(bytes_read=-1)

    def test_end_time(self):
        inv = Invocation(
            derivation_name="d",
            start_time=100.0,
            usage=ResourceUsage(wall_seconds=20.0),
        )
        assert inv.end_time == 120.0

    def test_context_environment(self):
        ctx = ExecutionContext.make(
            site="anl", environment={"B": "2", "A": "1"}
        )
        assert ctx.environment_dict() == {"A": "1", "B": "2"}
        assert ctx.environment == (("A", "1"), ("B", "2"))

    def test_dict_round_trip(self):
        inv = Invocation(
            derivation_name="d1",
            status="failure",
            start_time=10.0,
            context=ExecutionContext.make(
                site="U.Chicago", host="node7", environment={"X": "1"}
            ),
            usage=ResourceUsage(
                cpu_seconds=20.0,
                wall_seconds=25.0,
                bytes_read=100,
                bytes_written=200,
            ),
            replica_bindings={"Y": "rep-1"},
            exit_code=3,
            error="boom",
        )
        rebuilt = Invocation.from_dict(inv.to_dict())
        assert rebuilt.invocation_id == inv.invocation_id
        assert not rebuilt.succeeded
        assert rebuilt.context.site == "U.Chicago"
        assert rebuilt.usage.wall_seconds == 25.0
        assert rebuilt.replica_bindings == {"Y": "rep-1"}
        assert rebuilt.error == "boom"

    def test_ids_unique(self):
        a = Invocation(derivation_name="d")
        b = Invocation(derivation_name="d")
        assert a.invocation_id != b.invocation_id

    def test_str(self):
        inv = Invocation(derivation_name="d1")
        assert "d1" in str(inv)
