"""Tests for the workspace CLI (`python -m repro`)."""

import pytest

from repro.cli import main

VDL = """
TR copy( output o, input i ) {
  argument = ${input:i}" "${output:o};
  exec = "/bin/cp";
}
TR emit( output o ) {
  argument stdout = ${output:o};
  argument msg = "hello-vdg";
  exec = "/bin/echo";
}
DV e1->emit( o=@{output:"seed.txt"} );
DV c1->copy( o=@{output:"copy.txt"}, i=@{input:"seed.txt"} );
"""


@pytest.fixture
def run(tmp_path):
    """Invoke the CLI in an isolated workspace, capturing output."""
    workspace = tmp_path / "ws"

    def invoke(*argv):
        lines = []
        code = main(
            ["--workspace", str(workspace), *argv],
            out=lambda text="": lines.append(str(text)),
        )
        return code, "\n".join(lines)

    return invoke


@pytest.fixture
def defined(run, tmp_path):
    vdl_file = tmp_path / "pipeline.vdl"
    vdl_file.write_text(VDL)
    assert run("init")[0] == 0
    assert run("define", str(vdl_file))[0] == 0
    return run


class TestLifecycle:
    def test_init_creates_workspace(self, run):
        code, output = run("init")
        assert code == 0
        assert "initialized" in output

    def test_commands_require_workspace(self, run):
        code, output = run("list", "datasets")
        assert code == 1
        assert "no workspace" in output

    def test_define_reports_additions(self, run, tmp_path):
        vdl_file = tmp_path / "p.vdl"
        vdl_file.write_text(VDL)
        run("init")
        code, output = run("define", str(vdl_file))
        assert code == 0
        assert "transformation" in output and "derivation" in output

    def test_state_persists_across_invocations(self, defined):
        code, output = defined("list", "transformations")
        assert code == 0
        assert "copy@1.0" in output and "emit@1.0" in output


class TestQueries:
    def test_list_datasets(self, defined):
        code, output = defined("list", "datasets")
        assert code == 0
        assert "seed.txt  [virtual] <- e1" in output
        assert "copy.txt  [virtual] <- c1" in output

    def test_list_derivations(self, defined):
        _, output = defined("list", "derivations")
        assert "c1 -> copy (in: seed.txt; out: copy.txt)" in output

    def test_plan_shows_topological_order(self, defined):
        code, output = defined("plan", "copy.txt", "--reuse", "never")
        assert code == 0
        assert output.index("e1:") < output.index("c1:")
        assert "2 steps" in output

    def test_lineage(self, defined):
        code, output = defined("lineage", "copy.txt")
        assert code == 0
        assert "<- c1 -> copy" in output
        assert "<- e1 -> emit" in output

    def test_invalidate(self, defined):
        code, output = defined("invalidate", "--dataset", "seed.txt")
        assert code == 0
        assert "copy.txt" in output
        assert "c1" in output

    def test_export_vdl_round_trips(self, defined, tmp_path):
        code, output = defined("export", "--format", "vdl")
        assert code == 0
        from repro.vdl.semantics import compile_vdl

        program = compile_vdl(output)
        assert {t.name for t in program.transformations} == {"copy", "emit"}

    def test_export_xml(self, defined):
        code, output = defined("export", "--format", "xml")
        assert code == 0
        assert output.startswith("<vdl>")


class TestMaterialize:
    def test_real_subprocess_execution(self, defined):
        """The emit/copy pipeline uses real /bin binaries end to end."""
        code, output = defined("materialize", "copy.txt")
        assert code == 0
        assert "ran e1: success" in output
        assert "ran c1: success" in output
        assert "copy.txt ->" in output

    def test_rematerialize_is_noop(self, defined):
        defined("materialize", "copy.txt")
        code, output = defined("materialize", "copy.txt")
        assert code == 0
        assert "already materialized" in output

    def test_invocations_recorded(self, defined):
        defined("materialize", "copy.txt")
        code, output = defined("list", "invocations")
        assert code == 0
        assert "e1" in output and "c1" in output


class TestAdHocRun:
    def test_run_tracks_and_numbers(self, defined):
        code, output = defined("run", "emit", "o=adhoc.txt")
        assert code == 0
        assert "ran cli.0001: success" in output
        code, output = defined(
            "run", "copy", "i=adhoc.txt", "o=adhoc2.txt"
        )
        assert code == 0
        assert "ran cli.0002: success" in output  # numbering continues
        code, output = defined("lineage", "adhoc2.txt")
        assert "cli.0001" in output and "cli.0002" in output

    def test_bad_binding_rejected(self, defined):
        code, output = defined("run", "emit", "noequals")
        assert code == 1
        assert "name=value" in output


class TestObservability:
    def test_stats_requires_a_prior_run(self, defined):
        code, output = defined("stats")
        assert code == 1
        assert "no observability snapshot" in output

    def test_materialize_then_stats(self, defined):
        defined("materialize", "copy.txt")
        code, output = defined("stats")
        assert code == 0
        assert "executor.invocations" in output
        assert "catalog.ops" in output

    def test_stats_prometheus_format(self, defined):
        defined("materialize", "copy.txt")
        code, output = defined("stats", "--format", "prom")
        assert code == 0
        assert "# TYPE executor_invocations counter" in output

    def test_stats_json_format(self, defined):
        import json

        defined("materialize", "copy.txt")
        code, output = defined("stats", "--format", "json")
        assert code == 0
        metrics = json.loads(output)
        assert metrics["executor.invocations"]["kind"] == "counter"

    def test_materialize_then_trace(self, defined):
        defined("materialize", "copy.txt")
        code, output = defined("trace")
        assert code == 0
        assert "executor.materialize" in output
        assert "executor.execute" in output
        assert "derivation=e1" in output

    def test_adhoc_run_is_traced_too(self, defined):
        defined("run", "emit", "o=adhoc.txt")
        code, output = defined("trace")
        assert code == 0
        assert "executor.execute" in output

    def test_snapshot_reflects_latest_run_only(self, defined):
        defined("materialize", "copy.txt")
        defined("run", "emit", "o=adhoc.txt")
        code, output = defined("trace")
        assert code == 0
        assert "derivation=cli.0001" in output
        assert "derivation=e1" not in output


class TestRunRecords:
    def test_materialize_writes_a_run_record(self, defined, tmp_path):
        code, output = defined("materialize", "copy.txt")
        assert code == 0
        assert "run record: run-" in output
        records = list((tmp_path / "ws" / "runs").glob("*/record.jsonl"))
        assert len(records) == 1

    def test_no_record_opts_out(self, defined, tmp_path):
        code, output = defined("materialize", "copy.txt", "--no-record")
        assert code == 0
        assert "run record" not in output
        assert not (tmp_path / "ws" / "runs").exists()

    def test_adhoc_run_is_recorded_too(self, defined, tmp_path):
        code, output = defined("run", "emit", "o=adhoc.txt")
        assert code == 0
        assert "run record: run-" in output

    def test_report_lists_runs_when_id_omitted(self, defined):
        code, output = defined("report")
        assert code == 0
        assert "no recorded runs" in output
        defined("materialize", "copy.txt")
        code, output = defined("report")
        assert code == 0
        assert "available runs" in output
        assert "materialize copy.txt" in output

    def test_report_renders_critical_path(self, defined):
        defined("materialize", "copy.txt")
        code, output = defined("report", "latest")
        assert code == 0
        assert "critical path" in output
        assert "e1" in output and "c1" in output
        assert "makespan" in output

    def test_report_json(self, defined):
        import json

        defined("materialize", "copy.txt")
        code, output = defined("report", "latest", "--json")
        assert code == 0
        data = json.loads(output)
        assert data["status"] == "ok"
        assert [s["step"] for s in data["critical_path"]["steps"]] == [
            "e1", "c1",
        ]

    def test_report_unknown_run_fails(self, defined):
        defined("materialize", "copy.txt")
        code, output = defined("report", "run-nope")
        assert code == 1
        assert "run-nope" in output

    def test_stats_run_selector(self, defined):
        import json

        code, output = defined("materialize", "copy.txt")
        run_id = next(
            line.split(": ", 1)[1]
            for line in output.splitlines()
            if line.startswith("run record: ")
        )
        code, output = defined("stats", "--run")  # no id: list runs
        assert code == 0
        assert run_id in output
        code, output = defined(
            "stats", "--run", run_id, "--format", "json"
        )
        assert code == 0
        metrics = json.loads(output)
        assert metrics["executor.invocations"]["kind"] == "counter"

    def test_trace_run_selector_and_chrome_export(self, defined, tmp_path):
        import json

        defined("materialize", "copy.txt")
        code, output = defined("trace", "--run")  # no id: list runs
        assert code == 0
        assert "available runs" in output
        code, output = defined("trace", "--run", "latest")
        assert code == 0
        assert "executor.materialize" in output
        code, output = defined("trace", "--chrome", "--output", "-")
        assert code == 0
        trace = json.loads(output)
        from repro.observability import validate_chrome_trace

        assert validate_chrome_trace(trace) == []
        assert any(
            e["name"] == "e1" for e in trace["traceEvents"]
        )

    def test_trace_chrome_writes_next_to_the_record(self, defined, tmp_path):
        import json

        defined("materialize", "copy.txt")
        code, output = defined("trace", "--chrome")
        assert code == 0
        assert "chrome trace written to" in output
        assert "ui.perfetto.dev" in output
        traces = list((tmp_path / "ws" / "runs").glob("*/trace.json"))
        assert len(traces) == 1
        json.loads(traces[0].read_text())

    def test_progress_flag_ticks(self, defined, capsys):
        code, output = defined("materialize", "copy.txt", "--progress")
        assert code == 0
        ticker = capsys.readouterr().err
        assert "done" in ticker and "elapsed" in ticker


class TestRunHistory:
    """The cross-run surface: runs / diff / regress / health / metrics."""

    @pytest.fixture
    def seeded(self, run, tmp_path):
        """A workspace with deterministic synthesized run records."""
        from tests.observability.test_history import write_run

        assert run("init")[0] == 0
        runs_dir = tmp_path / "ws" / "runs"
        for i in range(3):
            write_run(runs_dir, f"run-{i}")
        return run, runs_dir

    def test_runs_lists_oldest_first(self, seeded):
        run, _ = seeded
        code, output = run("runs")
        assert code == 0
        assert "3 recorded run(s), oldest first:" in output
        lines = output.splitlines()
        assert lines[1].strip().startswith("run-0")
        assert "status=ok" in output
        assert "makespan=10.000s" in output

    def test_runs_empty_workspace(self, run):
        run("init")
        code, output = run("runs")
        assert code == 0
        assert "no recorded runs" in output

    def test_prune_keeps_newest(self, seeded):
        run, runs_dir = seeded
        code, output = run("runs", "prune", "--keep", "1")
        assert code == 0
        assert "pruned run-0" in output and "pruned run-1" in output
        assert sorted(p.name for p in runs_dir.iterdir()) == ["run-2"]
        # The aggregates survived into the history store.
        code, output = run("regress", "--run", "latest")
        assert code == 0  # run-2 vs the retained run-0/run-1 baseline

    def test_prune_nothing_to_do(self, seeded):
        run, _ = seeded
        code, output = run("runs", "prune", "--keep", "5")
        assert code == 0
        assert "nothing to prune" in output

    def test_prune_negative_keep_rejected(self, seeded):
        run, _ = seeded
        code, output = run("runs", "prune", "--keep", "-1")
        assert code == 1
        assert "error:" in output

    def test_diff_clean_pair(self, seeded):
        run, _ = seeded
        code, output = run("diff", "run-0", "run-1")
        assert code == 0
        assert "no significant regressions" in output

    def test_diff_flags_slowdown(self, run, tmp_path):
        from tests.observability.test_history import write_run

        run("init")
        runs_dir = tmp_path / "ws" / "runs"
        write_run(runs_dir, "run-base")
        write_run(runs_dir, "run-slow", proc_seconds=10.0)
        code, output = run("diff", "run-base", "run-slow")
        assert code == 0  # diff reports; regress gates
        assert "REGRESSED: proc" in output
        import json

        code, output = run("diff", "run-base", "run-slow", "--json")
        assert json.loads(output)["regressions"] == ["proc"]

    def test_regress_gates_with_exit_2(self, seeded):
        run, runs_dir = seeded
        from tests.observability.test_history import write_run

        write_run(runs_dir, "run-slow", proc_seconds=10.0)
        code, output = run("regress", "--run", "run-slow")
        assert code == 2
        assert "REGRESSED: proc" in output

    def test_regress_clean_exits_0(self, seeded):
        run, _ = seeded
        code, output = run("regress")  # latest vs the others
        assert code == 0

    def test_regress_without_baseline_errors(self, run, tmp_path):
        from tests.observability.test_history import write_run

        run("init")
        write_run(tmp_path / "ws" / "runs", "run-only")
        code, output = run("regress")
        assert code == 1
        assert "no baseline" in output

    def test_health_reports_degraded_site(self, run, tmp_path):
        from tests.observability.test_health import faulty_run

        run("init")
        faulty_run(tmp_path / "ws" / "runs", "run-f")
        code, output = run("health")
        assert code == 0  # reporting never gates without --check
        assert "bad" in output
        code, output = run("health", "--check")
        assert code == 2
        import json

        code, output = run("health", "--json")
        data = json.loads(output)
        bad = next(s for s in data["sites"] if s["site"] == "bad")
        assert bad["status"] in ("degraded", "critical")

    def test_health_without_runs_errors(self, run):
        run("init")
        code, output = run("health")
        assert code == 1
        assert "no recorded runs" in output

    def test_metrics_openmetrics_validates(self, defined):
        from repro.observability import validate_openmetrics

        defined("materialize", "copy.txt")
        code, output = defined("metrics", "--openmetrics")
        assert code == 0
        text = output + "\n"
        assert validate_openmetrics(text) == []
        assert "executor_invocations_total" in output
        # Health gauges ride along once history exists.
        assert "site_health_status" in output

    def test_metrics_human_rendering(self, defined):
        defined("materialize", "copy.txt")
        code, output = defined("metrics")
        assert code == 0
        assert "executor.invocations" in output
        assert "site.health.status" in output


class TestExitCodes:
    """Satellite: one consistent operational-error contract."""

    def test_unknown_run_everywhere_is_exit_1(self, defined):
        defined("materialize", "copy.txt")
        for argv in (
            ["stats", "--run", "run-nope"],
            ["trace", "--run", "run-nope"],
            ["report", "run-nope"],
            ["diff", "run-nope", "latest"],
            ["regress", "--run", "run-nope"],
            ["metrics", "--run", "run-nope"],
        ):
            code, output = defined(*argv)
            assert code == 1, argv
            assert "error:" in output, argv
            assert "run-nope" in output, argv
            assert "Traceback" not in output, argv

    def test_errors_go_to_stderr_by_default(self, tmp_path, capsys):
        code = main(
            ["--workspace", str(tmp_path / "ws"), "list", "datasets"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
        assert "no workspace" in captured.err
        assert captured.out == ""
