"""Tests for the VDL parser against Appendix A's concrete examples."""

import pytest

from repro.errors import VDLSyntaxError
from repro.vdl.ast import (
    ArgumentStmtNode,
    CallStmtNode,
    DatasetRefNode,
    EnvStmtNode,
    ExecStmtNode,
    FormalRefNode,
    ProfileStmtNode,
)
from repro.vdl.parser import parse

#: Appendix A's first example, verbatim modulo whitespace.
APPENDIX_T1 = """
TR t1( output a2, input a1, none env="100000", none pa="500" ) {
  argument parg = "-p "${none:pa};
  argument farg = "-f "${input:a1};
  argument xarg = "-x -y ";
  argument stdout = ${output:a2};
  exec = "/usr/bin/app3";
  env.MAXMEM = ${none:env};
}
"""

APPENDIX_D1 = """
DV d1->example1::t1(
  a2=@{output:"run1.exp15.T1932.summary"},
  a1=@{input:"run1.exp15.T1932.raw"},
  env="20000",
  pa="600"
);
"""

APPENDIX_TRANS4 = """
TR trans4( input a2, input a1,
           inout a5=@{inout:"anywhere":""},
           inout a4=@{inout:"somewhere":""},
           output a3 ) {
  trans1( a2=${output:a4}, a1=${a1} );
  trans2( a2=${output:a5}, a1=${a2} );
  trans3( a2=${input:a5}, a1=${input:a4}, a3=${output:a3} );
}
"""


class TestTransformationDecl:
    def test_appendix_t1_formals(self):
        decl = parse(APPENDIX_T1).transformations()[0]
        assert decl.name == "t1"
        assert [f.name for f in decl.formals] == ["a2", "a1", "env", "pa"]
        assert [f.direction for f in decl.formals] == [
            "output", "input", "none", "none",
        ]
        assert decl.formals[2].default == "100000"

    def test_appendix_t1_body(self):
        decl = parse(APPENDIX_T1).transformations()[0]
        args = [s for s in decl.body if isinstance(s, ArgumentStmtNode)]
        assert [a.name for a in args] == ["parg", "farg", "xarg", "stdout"]
        assert args[0].parts == ("-p ", FormalRefNode("pa", "none", args[0].parts[1].line))
        execs = [s for s in decl.body if isinstance(s, ExecStmtNode)]
        assert execs[0].path == "/usr/bin/app3"
        envs = [s for s in decl.body if isinstance(s, EnvStmtNode)]
        assert envs[0].variable == "MAXMEM"

    def test_unnamed_argument(self):
        src = 'TR t( input i ) { argument = "-x "${input:i}; exec = "/b"; }'
        decl = parse(src).transformations()[0]
        args = [s for s in decl.body if isinstance(s, ArgumentStmtNode)]
        assert args[0].name is None

    def test_profile_statement(self):
        src = 'TR t( output o ) { profile hints.pfnHint = "/usr/bin/app1"; }'
        decl = parse(src).transformations()[0]
        profiles = [s for s in decl.body if isinstance(s, ProfileStmtNode)]
        assert profiles[0].key == "hints.pfnHint"
        assert profiles[0].value == "/usr/bin/app1"

    def test_compound_body(self):
        decl = parse(APPENDIX_TRANS4).transformations()[0]
        assert decl.is_compound()
        calls = [s for s in decl.body if isinstance(s, CallStmtNode)]
        assert [c.target for c in calls] == ["trans1", "trans2", "trans3"]
        # ${a1} without direction
        first_bindings = dict(calls[0].bindings)
        assert first_bindings["a1"] == FormalRefNode(
            "a1", None, first_bindings["a1"].line
        )

    def test_temporary_default(self):
        decl = parse(APPENDIX_TRANS4).transformations()[0]
        a5 = decl.formals[2]
        assert isinstance(a5.default, DatasetRefNode)
        assert a5.default.temporary
        assert a5.default.lfn == "anywhere"

    def test_empty_formals(self):
        decl = parse("TR t() { exec = \"/b\"; }").transformations()[0]
        assert decl.formals == ()

    def test_type_annotations(self):
        src = """
        TR t( output o : SDSS/Simple/ASCII | CMS,
              input i : Fileset ) { exec = "/b"; }
        """
        decl = parse(src).transformations()[0]
        assert decl.formals[0].type_expr.members == (
            ("SDSS", "Simple", "ASCII"),
            ("CMS", "-", "-"),
        )
        assert decl.formals[1].type_expr.members == (("Fileset", "-", "-"),)

    def test_versioned_name(self):
        decl = parse('TR t@2.1( output o ) { exec = "/b"; }').transformations()[0]
        assert decl.name == "t" and decl.version == "2.1"


class TestDerivationDecl:
    def test_appendix_d1(self):
        decl = parse(APPENDIX_D1).derivations()[0]
        assert decl.name == "d1"
        assert decl.target == "example1::t1"
        actuals = dict(decl.actuals)
        assert actuals["a2"] == DatasetRefNode(
            "output", "run1.exp15.T1932.summary", False, actuals["a2"].line
        )
        assert actuals["env"] == "20000"

    def test_vdp_target(self):
        src = 'DV d->vdp://physics.wisconsin.edu/srch( x="1" );'
        decl = parse(src).derivations()[0]
        assert decl.target == "vdp://physics.wisconsin.edu/srch"

    def test_empty_actuals(self):
        decl = parse("DV d->t();").derivations()[0]
        assert decl.actuals == ()

    def test_case_insensitive_keywords(self):
        program = parse('tr t( output o ) { exec = "/b"; } dv d->t();')
        assert len(program.transformations()) == 1
        assert len(program.derivations()) == 1


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "TR",  # truncated
            "TR t( output ) { }",  # missing formal name
            "TR t( sideways x ) { }",  # bad direction
            'TR t( output o ) { exec = "/b" }',  # missing semicolon
            "DV d->t( x=y );",  # bare ident actual
            "DV d t();",  # missing arrow
            'TR t( output o ) { argument = @{output:"x"}; }',  # @ in template
            "XX blah",  # unknown declaration
            'DV d->t( a=@{none:"x"} );',  # none direction in dataset ref
            'DV d->t( a=@{output:"x":"junk"} );',  # non-empty third field
            "DV d->vdp://host( );",  # vdp without object name
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(VDLSyntaxError):
            parse(source)

    def test_error_position_reported(self):
        with pytest.raises(VDLSyntaxError) as exc:
            parse("TR t( output o ) {\n  bogus bogus bogus;\n}")
        assert "line 2" in str(exc.value)
