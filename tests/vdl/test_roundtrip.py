"""Round-trip tests: text -> objects -> text/XML -> objects."""

import pytest

from repro.core.derivation import DatasetArg
from repro.vdl.semantics import compile_vdl
from repro.vdl.unparser import unparse
from repro.vdl.xml_io import from_xml, to_xml

CORPUS = [
    # Appendix A basic transformation + derivation
    """
    TR t1( output a2, input a1, none env="100000", none pa="500" ) {
      argument parg = "-p "${none:pa};
      argument farg = "-f "${input:a1};
      argument xarg = "-x -y ";
      argument stdout = ${output:a2};
      exec = "/usr/bin/app3";
      env.MAXMEM = ${none:env};
    }
    DV d1->example1::t1( a2=@{output:"run1.exp15.T1932.summary"},
                         a1=@{input:"run1.exp15.T1932.raw"},
                         env="20000", pa="600" );
    """,
    # chained derivations (the provenance example)
    """
    TR trans1( output a2, input a1 ) {
      argument stdin = ${input:a1};
      argument stdout = ${output:a2};
      exec = "/usr/bin/app1";
    }
    DV usetrans1->trans1( a2=@{output:"file2"}, a1=@{input:"file1"} );
    DV usetrans2->trans1( a2=@{output:"file3"}, a1=@{input:"file2"} );
    """,
    # compound with scratch intermediates and remote callee
    """
    TR trans4( input a2, input a1, inout a5=@{inout:"anywhere":""},
               inout a4=@{inout:"somewhere":""}, output a3 ) {
      trans1( a2=${output:a4}, a1=${a1} );
      trans2( a2=${output:a5}, a1=${a2} );
      vdp://physics.illinois.edu/trans3( a2=${input:a5}, a1=${input:a4},
                                         a3=${output:a3} );
    }
    """,
    # typed formals, unions, profile hints, versions
    """
    TR typed@2.0( output o : SDSS/Simple/ASCII | CMS,
                  input i : Fileset, none n="1" ) {
      argument = "-n "${none:n}" -i "${input:i};
      argument stdout = ${output:o};
      profile hints.pfnHint = "/usr/bin/typed";
      profile hints.queue = "long";
    }
    """,
    # escapes in strings
    r"""
    TR esc( output o ) {
      argument = "quote \" backslash \\ tab ";
      argument stdout = ${output:o};
      exec = "/bin/esc";
    }
    """,
]


def signature_of(program):
    """A structural fingerprint for comparing programs."""
    out = []
    for tr in program.transformations:
        formals = tuple(
            (f.name, f.direction, f.default, f.temporary_default,
             tuple((m.content, m.format, m.encoding)
                   for m in f.dataset_types.members))
            for f in tr.signature.formals
        )
        if tr.is_compound:
            body = tuple(
                (c.target.uri(), tuple(sorted(
                    (k, v if isinstance(v, str) else ("ref", v.name, v.direction))
                    for k, v in c.bindings.items())))
                for c in tr.calls
            )
        else:
            body = (
                tr.executable,
                tuple((t.name, t.parts) for t in tr.arguments),
                tuple(sorted(
                    (k, v.parts) for k, v in tr.environment.items())),
                tuple(sorted(tr.profile_hints.items())),
            )
        out.append(("TR", tr.name, tr.version, formals, body))
    for dv in program.derivations:
        actuals = tuple(sorted(
            (k, v if isinstance(v, str)
             else ("ds", v.dataset, v.direction, v.temporary))
            for k, v in dv.actuals.items()))
        out.append(("DV", dv.name, dv.transformation.uri(), actuals))
    return tuple(out)


@pytest.mark.parametrize("source", CORPUS, ids=range(len(CORPUS)))
def test_text_round_trip(source):
    program = compile_vdl(source)
    text = unparse(program.transformations, program.derivations)
    again = compile_vdl(text)
    assert signature_of(again) == signature_of(program)


@pytest.mark.parametrize("source", CORPUS, ids=range(len(CORPUS)))
def test_xml_round_trip(source):
    program = compile_vdl(source)
    document = to_xml(program.transformations, program.derivations)
    transformations, derivations = from_xml(document)

    class Box:
        pass

    box = Box()
    box.transformations = transformations
    box.derivations = derivations
    assert signature_of(box) == signature_of(program)


@pytest.mark.parametrize("source", CORPUS, ids=range(len(CORPUS)))
def test_double_round_trip_stabilizes(source):
    """unparse(parse(unparse(x))) == unparse(x): output is a fixpoint."""
    program = compile_vdl(source)
    once = unparse(program.transformations, program.derivations)
    twice_program = compile_vdl(once)
    twice = unparse(twice_program.transformations, twice_program.derivations)
    assert once == twice


def test_xml_rejects_wrong_root():
    with pytest.raises(Exception):
        from_xml("<nope/>")


def test_dataset_arg_temporary_survives_both_paths():
    source = 'DV d->t( a=@{inout:"scratch":""} );'
    program = compile_vdl(source)
    text = unparse((), program.derivations)
    assert compile_vdl(text).derivation("d").actuals["a"].temporary
    _, derivations = from_xml(to_xml((), program.derivations))
    assert derivations[0].actuals["a"] == DatasetArg("scratch", "inout", True)
