"""Tests for VDL semantic analysis (lowering to core objects)."""

import pytest

from repro.core.derivation import DatasetArg
from repro.core.transformation import (
    CompoundTransformation,
    FormalRef,
    SimpleTransformation,
)
from repro.core.types import DIMENSION_ROOTS, default_registry
from repro.errors import VDLSemanticError
from repro.vdl.semantics import compile_vdl


class TestSimpleLowering:
    def test_full_example(self):
        prog = compile_vdl(
            """
            TR t1( output a2, input a1, none env="100000", none pa="500" ) {
              argument parg = "-p "${none:pa};
              argument stdout = ${output:a2};
              exec = "/usr/bin/app3";
              env.MAXMEM = ${none:env};
            }
            """
        )
        t1 = prog.transformation("t1")
        assert isinstance(t1, SimpleTransformation)
        assert t1.executable == "/usr/bin/app3"
        assert t1.command_line({"pa": "9", "a1": "i", "a2": "o", "env": "m"}) == ("-p 9",)
        assert t1.stream_redirects({"pa": "9", "a1": "i", "a2": "o", "env": "m"}) == {"stdout": "o"}
        assert t1.rendered_environment({"pa": "9", "a1": "i", "a2": "o", "env": "m"}) == {"MAXMEM": "m"}

    def test_pfn_hint_as_executable(self):
        prog = compile_vdl(
            'TR t( output o ) { argument stdout = ${output:o};'
            ' profile hints.pfnHint = "/usr/bin/app1"; }'
        )
        assert prog.transformation("t").executable == "/usr/bin/app1"

    def test_missing_executable_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl("TR t( output o ) { argument stdout = ${output:o}; }")

    def test_undeclared_ref_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl(
                'TR t( output o ) { argument = ${input:nope};'
                ' exec = "/b"; }'
            )

    def test_direction_mismatch_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl(
                'TR t( output o, input i ) { argument = ${output:i};'
                ' exec = "/b"; }'
            )

    def test_inout_referenced_as_either(self):
        prog = compile_vdl(
            'TR t( inout m ) { argument a = ${input:m};'
            ' argument b = ${output:m}; exec = "/b"; }'
        )
        assert prog.transformation("t")

    def test_multiple_exec_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl('TR t( output o ) { exec = "/a"; exec = "/b"; }')

    def test_string_default_on_dataset_formal_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl('TR t( input i="literal" ) { exec = "/b"; }')

    def test_dataset_default_direction_must_match(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl(
                'TR t( output o=@{input:"x"} ) { exec = "/b"; }'
            )

    def test_version_from_header(self):
        prog = compile_vdl('TR t@3.2( output o ) { exec = "/b"; }')
        assert prog.transformation("t").version == "3.2"


class TestTypes:
    def test_triple_resolution(self):
        prog = compile_vdl(
            'TR t( input i : SDSS/Simple/ASCII ) { exec = "/b"; }'
        )
        member = prog.transformation("t").signature.formal("i").dataset_types.members[0]
        assert member.content == "SDSS"
        assert member.format == "Simple"
        assert member.encoding == "ASCII"

    def test_single_name_found_in_any_dimension(self):
        prog = compile_vdl('TR t( input i : Tar-archive ) { exec = "/b"; }')
        member = prog.transformation("t").signature.formal("i").dataset_types.members[0]
        assert member.format == "Tar-archive"
        assert member.content == DIMENSION_ROOTS["content"]

    def test_union(self):
        prog = compile_vdl(
            'TR t( input i : CMS | SDSS ) { exec = "/b"; }'
        )
        members = prog.transformation("t").signature.formal("i").dataset_types.members
        assert {m.content for m in members} == {"CMS", "SDSS"}

    def test_unknown_type_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl('TR t( input i : Martian ) { exec = "/b"; }')

    def test_unknown_type_in_triple_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl(
                'TR t( input i : CMS/Nope/ASCII ) { exec = "/b"; }'
            )

    def test_custom_registry(self):
        reg = default_registry()
        reg.register("content", "Genomics")
        prog = compile_vdl(
            'TR t( input i : Genomics ) { exec = "/b"; }', registry=reg
        )
        assert prog.transformation("t")


class TestCompoundLowering:
    SRC = """
    TR trans4( input a2, input a1,
               inout a5=@{inout:"anywhere":""},
               output a3 ) {
      trans1( a2=${output:a5}, a1=${a1} );
      vdp://physics.illinois.edu/cmp( a2=${input:a5}, a1=${input:a2},
                                      a3=${output:a3} );
    }
    """

    def test_lowering(self):
        prog = compile_vdl(self.SRC)
        t4 = prog.transformation("trans4")
        assert isinstance(t4, CompoundTransformation)
        assert len(t4.calls) == 2
        assert t4.calls[1].target.authority == "physics.illinois.edu"
        assert isinstance(t4.calls[0].bindings["a1"], FormalRef)

    def test_temporary_default_carried(self):
        prog = compile_vdl(self.SRC)
        a5 = prog.transformation("trans4").signature.formal("a5")
        assert a5.default == "anywhere"
        assert a5.temporary_default

    def test_mixed_body_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl(
                """
                TR bad( output o, input i ) {
                  exec = "/bin/x";
                  other( a=${i} );
                }
                """
            )

    def test_call_ref_to_unknown_formal_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl("TR bad( output o ) { callee( a=${nope} ); }")


class TestDerivationLowering:
    def test_lowering(self):
        prog = compile_vdl(
            """
            DV d1->example1::t1(
              a2=@{output:"out.dat"}, a1=@{input:"in.dat"}, pa="600" );
            """
        )
        dv = prog.derivation("d1")
        assert dv.transformation.name == "example1::t1"
        assert dv.actuals["a2"] == DatasetArg("out.dat", "output")
        assert dv.actuals["pa"] == "600"

    def test_duplicate_actual_rejected(self):
        with pytest.raises(VDLSemanticError):
            compile_vdl('DV d->t( a="1", a="2" );')

    def test_remote_target(self):
        prog = compile_vdl(
            'DV srch-muon->vdp://physics.wisconsin.edu/srch( p="muon" );'
        )
        dv = prog.derivation("srch-muon")
        assert dv.transformation.authority == "physics.wisconsin.edu"
        assert dv.transformation.kind == "transformation"

    def test_temporary_dataset_arg(self):
        prog = compile_vdl('DV d->t( a=@{inout:"scratch":""} );')
        assert prog.derivation("d").actuals["a"].temporary
