"""Tests for the VDL lexer."""

import pytest

from repro.errors import VDLSyntaxError
from repro.vdl.lexer import (
    TT_ARROW,
    TT_AT_LBRACE,
    TT_COLON,
    TT_DOLLAR_LBRACE,
    TT_EOF,
    TT_IDENT,
    TT_SLASH,
    TT_STRING,
    tokenize,
)


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        assert kinds("") == [TT_EOF]

    def test_whitespace_only(self):
        assert kinds("  \n\t ") == [TT_EOF]

    def test_identifier(self):
        tokens = tokenize("hello")
        assert tokens[0].type == TT_IDENT
        assert tokens[0].value == "hello"

    def test_dotted_and_dashed_idents(self):
        assert values("run1.exp15 srch-muon env.MAXMEM") == [
            "run1.exp15", "srch-muon", "env.MAXMEM",
        ]

    def test_namespace_colons_are_tokens(self):
        assert kinds("example1::t1")[:4] == [
            TT_IDENT, TT_COLON, TT_COLON, TT_IDENT,
        ]

    def test_arrow_vs_dash(self):
        tokens = tokenize("d1->srch-muon")
        assert [t.type for t in tokens[:3]] == [TT_IDENT, TT_ARROW, TT_IDENT]
        assert tokens[2].value == "srch-muon"

    def test_trailing_dash_not_in_name(self):
        # "a- b" : the dash cannot end an identifier
        tokens = tokenize("ab ->x")
        assert tokens[0].value == "ab"

    def test_composite_openers(self):
        assert kinds("${ @{")[:2] == [TT_DOLLAR_LBRACE, TT_AT_LBRACE]

    def test_positions_are_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].type == TT_STRING
        assert tokens[0].value == "hello world"

    def test_escapes(self):
        assert tokenize(r'"a\"b\\c\nd"')[0].value == 'a"b\\c\nd'

    def test_empty_string(self):
        assert tokenize('""')[0].value == ""

    def test_unterminated_string(self):
        with pytest.raises(VDLSyntaxError):
            tokenize('"abc')

    def test_newline_in_string_rejected(self):
        with pytest.raises(VDLSyntaxError):
            tokenize('"a\nb"')


class TestComments:
    def test_hash_comment(self):
        assert values("a # comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* anything\n at all */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(VDLSyntaxError):
            tokenize("/* never ends")

    def test_slashes_are_not_comments(self):
        # vdp:// must survive lexing
        assert kinds("vdp://h/x")[:5] == [
            TT_IDENT, TT_COLON, TT_SLASH, TT_SLASH, TT_IDENT,
        ]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(VDLSyntaxError) as exc:
            tokenize("a ^ b")
        assert exc.value.line == 1

    def test_error_carries_position(self):
        with pytest.raises(VDLSyntaxError) as exc:
            tokenize("ok\n   ^")
        assert exc.value.line == 2
