"""Property-based tests for the VDL front-end (hypothesis).

Random programs are generated at the *object* level, unparsed to text,
re-compiled and compared — so the property `compile(unparse(p)) == p`
is exercised over a far larger space than the hand-written corpus.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.derivation import DatasetArg, Derivation
from repro.core.naming import VDPRef
from repro.core.transformation import (
    ArgumentTemplate,
    FormalArg,
    FormalRef,
    SimpleTransformation,
)
from repro.vdl.semantics import compile_vdl
from repro.vdl.unparser import unparse
from repro.vdl.xml_io import from_xml, to_xml

ident = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
lfn = st.from_regex(r"[a-z][a-z0-9_.]{0,12}", fullmatch=True)
literal = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters='\n\r', min_codepoint=32
    ),
    max_size=12,
)
direction = st.sampled_from(["input", "output", "inout", "none"])


@st.composite
def formals(draw) -> list[FormalArg]:
    names = draw(
        st.lists(ident, min_size=1, max_size=5, unique=True)
    )
    out = []
    for name in names:
        d = draw(direction)
        default = None
        temporary = False
        if d == "none" and draw(st.booleans()):
            default = draw(literal)
        elif d != "none" and draw(st.booleans()):
            default = draw(lfn)
            temporary = draw(st.booleans())
        out.append(
            FormalArg(
                name=name,
                direction=d,
                default=default,
                temporary_default=temporary,
            )
        )
    return out


@st.composite
def simple_transformations(draw) -> SimpleTransformation:
    name = draw(ident)
    fs = draw(formals())
    templates = []
    n_templates = draw(st.integers(0, 3))
    for _ in range(n_templates):
        parts = []
        for _ in range(draw(st.integers(1, 3))):
            if draw(st.booleans()):
                parts.append(draw(literal))
            else:
                formal = draw(st.sampled_from(fs))
                ref_dir = (
                    formal.direction
                    if formal.direction != "inout"
                    else draw(st.sampled_from(["input", "output", "inout"]))
                )
                parts.append(
                    FormalRef(
                        formal.name,
                        ref_dir if draw(st.booleans()) else None,
                    )
                )
        templates.append(ArgumentTemplate(parts=tuple(parts)))
    return SimpleTransformation(
        name=name,
        formals=fs,
        executable="/bin/" + name,
        arguments=templates,
    )


@st.composite
def derivations(draw) -> Derivation:
    n_actuals = draw(st.integers(0, 4))
    actuals = {}
    names = draw(
        st.lists(ident, min_size=n_actuals, max_size=n_actuals, unique=True)
    )
    for actual_name in names:
        if draw(st.booleans()):
            actuals[actual_name] = draw(literal)
        else:
            actuals[actual_name] = DatasetArg(
                dataset=draw(lfn),
                direction=draw(st.sampled_from(["input", "output", "inout"])),
                temporary=draw(st.booleans()),
            )
    return Derivation(
        name=draw(ident),
        transformation=VDPRef(draw(ident), kind="transformation"),
        actuals=actuals,
    )


def tr_fingerprint(tr: SimpleTransformation):
    return (
        tr.name,
        tuple(
            (f.name, f.direction, f.default, f.temporary_default)
            for f in tr.signature.formals
        ),
        tr.executable,
        tuple((t.name, t.parts) for t in tr.arguments),
    )


def dv_fingerprint(dv: Derivation):
    return (
        dv.name,
        dv.transformation.uri(),
        tuple(
            sorted(
                (k, v if isinstance(v, str)
                 else (v.dataset, v.direction, v.temporary))
                for k, v in dv.actuals.items()
            )
        ),
    )


@settings(max_examples=60, deadline=None)
@given(simple_transformations())
def test_transformation_text_round_trip(tr):
    text = unparse([tr], [])
    program = compile_vdl(text)
    assert tr_fingerprint(program.transformations[0]) == tr_fingerprint(tr)


@settings(max_examples=60, deadline=None)
@given(derivations())
def test_derivation_text_round_trip(dv):
    text = unparse([], [dv])
    program = compile_vdl(text)
    assert dv_fingerprint(program.derivations[0]) == dv_fingerprint(dv)


@settings(max_examples=60, deadline=None)
@given(simple_transformations(), derivations())
def test_xml_round_trip(tr, dv):
    transformations, derivs = from_xml(to_xml([tr], [dv]))
    assert tr_fingerprint(transformations[0]) == tr_fingerprint(tr)
    assert dv_fingerprint(derivs[0]) == dv_fingerprint(dv)
