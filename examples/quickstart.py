#!/usr/bin/env python3
"""Quickstart: define virtual data in VDL, materialize it, trace it.

This is the shortest end-to-end tour of the virtual data grid:

1. declare transformations and derivations in the Chimera VDL;
2. actually execute them locally (real files, real digests);
3. ask the two headline provenance questions of the paper —
   "how was this data produced?" and "what must be recomputed if an
   input was wrong?".

Run:  python examples/quickstart.py
"""

import tempfile

from repro.catalog import MemoryCatalog
from repro.executor import LocalExecutor
from repro.provenance import DerivationGraph, invalidated_by, lineage_report

VDL = """
# A two-stage pipeline: simulate, then summarize.
TR simulate( output events, none seed="1", none n="1000" ) {
  argument = "-seed "${none:seed}" -n "${none:n};
  argument stdout = ${output:events};
  exec = "py:simulate";
}
TR summarize( output summary, input events, none cut="0.5" ) {
  argument = "-cut "${none:cut};
  argument stdin = ${input:events};
  argument stdout = ${output:summary};
  exec = "py:summarize";
}

# Derivations: the recipes.  Nothing runs yet — this is virtual data.
DV run1.sim->simulate( events=@{output:"run1.events"}, seed="42", n="5000" );
DV run1.sum->summarize( summary=@{output:"run1.summary"},
                        events=@{input:"run1.events"}, cut="0.7" );
"""


def simulate(ctx):
    import random

    rng = random.Random(int(ctx.parameters["seed"]))
    values = [str(rng.random()) for _ in range(int(ctx.parameters["n"]))]
    ctx.write_output("events", "\n".join(values))


def summarize(ctx):
    cut = float(ctx.parameters["cut"])
    values = [float(v) for v in ctx.read_input("events").decode().split()]
    kept = [v for v in values if v > cut]
    ctx.write_output(
        "summary",
        f"total={len(values)} kept={len(kept)} mean="
        f"{sum(kept) / len(kept):.4f}",
    )


def main():
    # 1. Composition: a catalog holds the virtual data definitions.
    catalog = MemoryCatalog(authority="quickstart.example")
    catalog.define(VDL)
    print("catalog:", catalog.counts())

    # 2. Derivation: materialize the summary; the executor figures out
    #    that run1.events must be produced first.
    executor = LocalExecutor(catalog, tempfile.mkdtemp(prefix="vdg-"))
    executor.register("py:simulate", simulate)
    executor.register("py:summarize", summarize)
    invocations = executor.materialize("run1.summary")
    print(f"\nexecuted {len(invocations)} derivations:")
    for inv in invocations:
        print(f"  {inv.derivation_name}: {inv.status} in "
              f"{inv.usage.wall_seconds * 1e3:.1f} ms, "
              f"{inv.usage.bytes_written} bytes out")
    print("\nresult:", executor.path_for("run1.summary").read_text())

    # Second request: everything already exists, so nothing runs.
    again = executor.materialize("run1.summary")
    print(f"re-request executed {len(again)} derivations (virtual data reuse)")

    # 3. Provenance: the complete audit trail...
    print("\naudit trail for run1.summary:")
    print(lineage_report(catalog, "run1.summary").render())

    # ...and the §2 question: a calibration error in the simulation —
    # which derived data must be recomputed?
    graph = DerivationGraph.from_catalog(catalog)
    blast = invalidated_by(graph, bad_datasets=["run1.events"])
    print("\nif run1.events were bad:")
    print("  tainted datasets:", sorted(blast.tainted_datasets))
    print("  derivations to rerun:", sorted(blast.rerun_derivations))


if __name__ == "__main__":
    main()
