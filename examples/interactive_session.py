#!/usr/bin/env python3
"""Interactive exploration with automatic provenance (§5.1).

A researcher pokes at data without declaring anything up front: every
ad-hoc run is recorded as a derivation, the session keeps a historical
log, and the results worth keeping are snapshotted — recipes and all —
into the collaboration's permanent catalog under curated names.

Run:  python examples/interactive_session.py
"""

import json
import random
import tempfile

from repro.catalog import MemoryCatalog
from repro.executor import InteractiveSession, LocalExecutor
from repro.provenance import lineage_report

TOOLKIT = """
TR sample( output events, none n="500", none seed="1" ) {
  argument = "-n "${none:n}" -seed "${none:seed};
  argument stdout = ${output:events};
  exec = "py:sample";
}
TR select( output kept, input events, none cut="0.8" ) {
  argument = "-cut "${none:cut};
  argument stdin = ${input:events};
  argument stdout = ${output:kept};
  exec = "py:select";
}
TR summarize( output stats, input kept ) {
  argument stdin = ${input:kept};
  argument stdout = ${output:stats};
  exec = "py:summarize";
}
"""


def main():
    catalog = MemoryCatalog(authority="alice.laptop").define(TOOLKIT)
    executor = LocalExecutor(catalog, tempfile.mkdtemp(prefix="isess-"))
    def sample_body(ctx):
        rng = random.Random(int(ctx.parameters["seed"]))
        values = [str(rng.random()) for _ in range(int(ctx.parameters["n"]))]
        ctx.write_output("events", "\n".join(values))

    executor.register("py:sample", sample_body)
    executor.register("py:select", lambda ctx: ctx.write_output(
        "kept", "\n".join(
            v for v in ctx.read_input("events").decode().split()
            if float(v) > float(ctx.parameters["cut"])
        )))
    executor.register("py:summarize", lambda ctx: ctx.write_output(
        "stats", json.dumps({
            "count": len(ctx.read_input("kept").decode().split()),
        })))

    session = InteractiveSession(executor, prefix="tuesday")

    # Unstructured exploration: try a cut, look, try another.
    (events,) = session.run("sample", n="1000", seed="7")
    (loose,) = session.run("select", events=events, cut="0.5")
    (tight,) = session.run("select", events=events, cut="0.9")
    (stats,) = session.run("summarize", kept=tight)

    print("session log:")
    for line in session.history():
        print("  " + line)
    print("\nstats:", executor.path_for(stats).read_text())

    # Everything was tracked without a single DV declaration:
    print("audit trail of the ad-hoc result:")
    print(lineage_report(catalog, stats).render())

    # The tight selection is worth keeping: snapshot it, recipe and
    # all, into the collaboration catalog under a curated name.
    permanent = MemoryCatalog(authority="collab.org")
    report = session.snapshot(
        permanent, names={stats: "muon.yield.tuesday"}
    )
    print(
        f"\nsnapshotted {report.total()} objects into collab.org; "
        f"published name: muon.yield.tuesday"
    )
    trail = lineage_report(permanent, "muon.yield.tuesday")
    print(f"recipe is reproducible there: "
          f"{len(trail.all_derivations())} derivations, "
          f"depth {trail.depth()}")


if __name__ == "__main__":
    main()
