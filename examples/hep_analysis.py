#!/usr/bin/env python3
"""Interactive HEP analysis with per-data-point lineage (§6).

Reproduces the ATLAS/CMS-style challenge the paper closes with:
a multi-stage simulation chain, an unstructured analysis iteration
(select a cut-set, histogram it, combine points into a final graph),
and then "for each data point in the final graph, a detailed data
lineage report on the datasets that contributed to the creation of
that point".

It also demonstrates the virtual-data "what-if": a buggy simulator
version is flagged and version-compatibility assertions decide which
histograms survive.

Run:  python examples/hep_analysis.py
"""

import json
import tempfile

from repro.catalog import MemoryCatalog
from repro.executor import LocalExecutor
from repro.provenance import (
    DerivationGraph,
    invalidated_by,
    lineage_report,
)
from repro.workloads import hep

BINS = ("0", "1", "2", "3")


def main():
    catalog = MemoryCatalog(authority="cms.example")
    executor = LocalExecutor(catalog, tempfile.mkdtemp(prefix="hep-"))
    hep.register_bodies(executor)
    hep.register_analysis_bodies(executor)

    # Compose and run the full analysis: 4-stage sim chain + cut-set +
    # one histogram point per bin + pairwise combination.
    graph_ds = hep.define_analysis_chain(catalog, "mu2024", bins=BINS)
    invocations = executor.materialize(graph_ds)
    graph = json.loads(executor.path_for(graph_ds).read_text())
    print(f"executed {len(invocations)} derivations")
    print("final graph points:", graph["points"])

    # The paper's headline capability: lineage per data point.
    print("\nlineage for the bin-2 data point:")
    report = lineage_report(catalog, "mu2024.point2")
    print(report.render())

    # Audit scenario: the detector simulation had a bug.  Which data
    # points are tainted?
    print("\nsuppose hepevt-sim v1.0 was buggy:")
    derivation_graph = DerivationGraph.from_catalog(catalog)
    blast = invalidated_by(
        derivation_graph, bad_transformations=["hepevt-sim"]
    )
    tainted_points = sorted(
        d for d in blast.tainted_datasets if d.startswith("mu2024.point")
    )
    print(f"  tainted data points: {tainted_points}")
    print(f"  derivations to re-run: {len(blast.rerun_derivations)}")

    # Versioning (§3.2 / §8): the collaboration asserts that v1.1 is
    # semantically equivalent to v1.0 for analysis purposes — then no
    # recomputation is needed for data derived with either.
    catalog.versions.assert_compatible(
        "hepevt-sim", "1.0", "1.1", scope="semantic", authority="cms-physics"
    )
    equivalent = catalog.versions.equivalent("hepevt-sim", "1.0", "1.1")
    print(
        f"\ncms-physics asserts hepevt-sim 1.0 ~ 1.1 (semantic): "
        f"equivalent={equivalent}"
    )
    print(
        "equivalence class of 1.0:",
        [str(v) for v in catalog.versions.equivalence_class("hepevt-sim", "1.0")],
    )

    # Discovery (§5.5): find the analysis program by what it consumes.
    hits = catalog.find_derivations(transformation="evt-hist")
    print(f"\nhistogram derivations on record: {[d.name for d in hits]}")


if __name__ == "__main__":
    main()
