#!/usr/bin/env python3
"""A multi-institution collaboration: hyperlinks, federation, trust.

Reconstructs Figures 2-4 of the paper as one running scenario:

* two physics groups (Wisconsin, Illinois) publish transformations in
  their own catalogs and reference each other with vdp:// hyperlinks;
* a personal catalog depends on group and collaboration data, and a
  lineage query walks all three servers (Fig 3);
* federated indexes at personal / community scope answer discovery
  without touching member catalogs (Fig 4), including a
  "community approved data" index gated by signed quality assessments
  from a trusted calibration team (§4.2).

Run:  python examples/collaboration_federation.py
"""

from repro.catalog import (
    CatalogNetwork,
    FederatedIndex,
    MemoryCatalog,
    ReferenceResolver,
)
from repro.provenance import cross_catalog_lineage
from repro.security import KeyStore, QualityRegistry, Signer, TrustStore


def build_collaboration():
    net = CatalogNetwork()
    wisconsin = net.register(MemoryCatalog(authority="physics.wisconsin.edu"))
    illinois = net.register(MemoryCatalog(authority="physics.illinois.edu"))
    personal = MemoryCatalog(authority="alice.uchicago.edu")

    illinois.define(
        """
        TR sim( output out, input cfg ) {
          argument stdin = ${input:cfg};
          argument stdout = ${output:out};
          exec = "/usr/bin/sim";
        }
        TR cmp( output z, input raw ) {
          argument stdin = ${input:raw};
          argument stdout = ${output:z};
          exec = "/usr/bin/cmp";
        }
        DV sim.official->sim( out=@{output:"events.2003"},
                              cfg=@{input:"beam.cfg"} );
        """
    )
    wisconsin.define(
        """
        TR srch( output hits, input events, none particle="any" ) {
          argument = "-p "${none:particle};
          argument stdin = ${input:events};
          argument stdout = ${output:hits};
          exec = "/usr/bin/srch";
        }
        # Fig 2: a compound whose stages live at Illinois.
        TR cmpsim( input cfg, inout mid=@{inout:"cmpsim.mid":""}, output z ) {
          vdp://physics.illinois.edu/sim( out=${output:mid}, cfg=${cfg} );
          vdp://physics.illinois.edu/cmp( z=${z}, raw=${input:mid} );
        }
        """
    )
    # Fig 2: Illinois derivation invoking the Wisconsin application.
    illinois.define(
        """
        DV srch-muon->vdp://physics.wisconsin.edu/srch(
            hits=@{output:"muon.hits"},
            events=@{input:"events.2003"},
            particle="muon" );
        """
    )
    # Fig 3: Alice's personal analysis depends on the group data.
    personal.define(
        """
        TR myplot( output plot, input hits ) {
          argument stdin = ${input:hits};
          argument stdout = ${output:plot};
          exec = "/home/alice/plot";
        }
        DV alice.plot->myplot( plot=@{output:"muon-mass.png"},
                               hits=@{input:"muon.hits"} );
        """
    )
    return net, wisconsin, illinois, personal


def main():
    net, wisconsin, illinois, personal = build_collaboration()
    resolver = ReferenceResolver(
        personal,
        net,
        scope_chain=["physics.illinois.edu", "physics.wisconsin.edu"],
    )

    # --- Fig 2: chase the hyperlinks ---
    print("Fig 2 — virtual data hyperlinks:")
    cmpsim = wisconsin.get_transformation("cmpsim")
    for i, callee in resolver.expand_compound(cmpsim).items():
        print(f"  cmpsim stage {i} -> {callee.name} (resolved remotely)")
    srch_ref = illinois.get_derivation("srch-muon").transformation
    srch, where = resolver.transformation(srch_ref)
    print(f"  srch-muon -> {srch.name} @ {where.authority}")

    # --- Fig 3: lineage across three servers ---
    print("\nFig 3 — cross-server audit trail for muon-mass.png:")
    print(cross_catalog_lineage(resolver, "muon-mass.png").render())

    # --- §4.2: quality and trust ---
    keys = KeyStore()
    for name in ("cms-collab", "calib-team"):
        keys.generate(name)
    signer = Signer(keys)
    trust = TrustStore(keys)
    trust.add_root("cms-collab")
    trust.delegate("cms-collab", "calib-team", scope="quality")
    quality = QualityRegistry(trust=trust, signer=signer)

    events = illinois.get_dataset("events.2003")
    quality.assess("dataset", "events.2003", "approved", "calib-team",
                   obj=events)
    illinois.add_dataset(events, replace=True)
    quality.assess("dataset", "muon.hits", "raw", "calib-team")
    print("\n§4.2 — quality after calib-team review:")
    for name in ("events.2003", "muon.hits"):
        print(f"  {name}: {quality.level_of('dataset', name)}")
    fetched = illinois.get_dataset("events.2003")
    print(
        "  signature on events.2003 verifies:",
        signer.is_signed_by(fetched, "calib-team"),
    )

    # --- Fig 4: indexes at multiple levels ---
    print("\nFig 4 — federated indexes:")
    community = FederatedIndex("community-wide", kinds=("dataset",
                                                        "derivation"))
    approved = FederatedIndex(
        "community-approved",
        kinds=("dataset",),
        entry_filter=quality.approved_filter(),
    )
    for catalog in (wisconsin, illinois, personal):
        if catalog.authority != "alice.uchicago.edu":
            community.attach(catalog)
            approved.attach(catalog)
    community.attach(personal)
    print(f"  community-wide index: {len(community)} entries from "
          f"{community.members()}")
    print(f"  approved-data index:  {len(approved)} entries "
          f"({[e.name for e in approved.find('dataset')]})")
    hits = community.find("derivation", name_glob="srch*")
    print(f"  discovery 'srch*' derivations -> "
          f"{[(e.authority, e.name) for e in hits]}")

    # --- §4.1: promotion — Alice's result graduates to the collab ---
    from repro.catalog import promote

    collab = MemoryCatalog(authority="collab.cms.org")
    report = promote(
        "muon-mass.png",
        resolver,
        collab,
        signer=signer,
        authority="calib-team",
    )
    print("\n§4.1 — promotion of muon-mass.png to collab.cms.org:")
    print(f"  copied {report.total()} objects "
          f"({len(report.derivations)} derivations, "
          f"{len(report.transformations)} transformations)")
    local_trail = cross_catalog_lineage(
        ReferenceResolver(collab, CatalogNetwork()), "muon-mass.png"
    )
    print(f"  recipe is self-contained at destination: "
          f"{sorted(local_trail.all_derivations())}")


if __name__ == "__main__":
    main()
