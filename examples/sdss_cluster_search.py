#!/usr/bin/env python3
"""The SDSS galaxy cluster search, two ways (§6 of the paper).

Part 1 — *real* execution: a small sky survey is generated, the
(simplified) MaxBCG brightest-cluster-galaxy finder runs hermetically
under the local executor, and actual galaxy clusters come out, with
full provenance recorded for every stage.

Part 2 — *campaign* scale: the full 1000-field cluster search
(~5000 derivations) is declared and one stripe's workflow (several
hundred nodes) is planned, estimated and executed on a simulated grid
of four sites, capped at 120 hosts per workflow — the exact shape of
the paper's challenge-problem runs.

Run:  python examples/sdss_cluster_search.py
"""

import json
import tempfile

from repro.catalog import MemoryCatalog
from repro.executor import LocalExecutor
from repro.provenance import lineage_report
from repro.system import VirtualDataSystem
from repro.workloads import sdss


def real_cluster_finding():
    print("=" * 64)
    print("Part 1: real cluster finding on 6 synthetic sky fields")
    print("=" * 64)
    catalog = MemoryCatalog(authority="sdss.example")
    campaign = sdss.define_campaign(catalog, fields=6, fields_per_stripe=6)
    executor = LocalExecutor(catalog, tempfile.mkdtemp(prefix="sdss-"))
    sdss.register_bodies(executor)
    sdss.materialize_fields(executor, campaign, galaxies=250)

    target = campaign.targets[0]
    invocations = executor.materialize(target)
    result = json.loads(executor.path_for(target).read_text())
    print(f"\nexecuted {len(invocations)} derivations for {target}")
    print(f"clusters found: {result['count']}")
    for cluster in result["clusters"][:5]:
        print(
            f"  ra={cluster['ra']:.3f} dec={cluster['dec']:.3f} "
            f"richness={cluster['richness']}"
        )
    report = lineage_report(catalog, target, include_invocations=False)
    print(
        f"\nprovenance: the catalog derives {target} through "
        f"{len(report.all_derivations())} derivations, "
        f"{report.depth()} levels deep"
    )


def campaign_scale():
    print()
    print("=" * 64)
    print("Part 2: the 1000-field campaign on a simulated 800-host grid")
    print("=" * 64)
    vds = VirtualDataSystem.with_grid(
        {"anl": 200, "uc": 200, "uw": 200, "ufl": 200},
        authority="sdss.griphyn.org",
        bandwidth=50e6,
    )
    campaign = sdss.define_campaign(
        vds.catalog, fields=1000, fields_per_stripe=100
    )
    sites = sorted(vds.grid.sites)
    for i, field in enumerate(campaign.field_datasets):
        vds.seed_dataset(field, sites[i % 4], sdss.FIELD_BYTES)
    print(
        f"\ndeclared {campaign.derivations} derivations over "
        f"{campaign.fields} fields in {campaign.stripes} stripes"
    )

    # Plan and estimate one stripe's workflow before running it.
    target = campaign.targets[0]
    plan = vds.plan(target, reuse="never")
    estimate = vds.estimate(plan, host_count=120)
    print(
        f"stripe workflow: {len(plan)} nodes, depth {plan.depth()}, "
        f"width {plan.width()}"
    )
    print(
        f"estimated makespan on 120 hosts: {estimate.makespan_seconds:.0f} "
        f"simulated seconds ({estimate.total_cpu_seconds:.0f} cpu s)"
    )

    result = vds.materialize(target, reuse="never", max_hosts=120)
    print(
        f"measured makespan: {result.makespan:.0f} simulated seconds using "
        f"up to {result.peak_in_flight} hosts across "
        f"{len(result.sites_used())} sites"
    )
    counts = vds.catalog.counts()
    print(
        f"provenance recorded: {counts['invocation']} invocations, "
        f"{counts['replica']} replicas"
    )


if __name__ == "__main__":
    real_cluster_finding()
    campaign_scale()
