#!/usr/bin/env python3
"""Grid request planning: estimation, shipping patterns, reuse (§5).

A production manager's session on the virtual data grid:

1. estimate a workflow before committing resources ("can it be
   computed in the time I'm willing to wait?");
2. compare the four data/procedure shipping patterns for a
   data-heavy step;
3. watch the rerun-vs-retrieve decision flip as relative costs change;
4. re-run a campaign incrementally after one input is invalidated
   (make-style staleness pruning).

Run:  python examples/grid_planning.py
"""

from repro.provenance import DerivationGraph, StalenessTracker
from repro.system import VirtualDataSystem

VDL = """
TR calibrate( output cal, input raw ) {
  argument stdin = ${input:raw};
  argument stdout = ${output:cal};
  exec = "/opt/calibrate";
}
TR reconstruct( output dst, input cal ) {
  argument stdin = ${input:cal};
  argument stdout = ${output:dst};
  exec = "/opt/reconstruct";
}
TR analyze( output plot, input dst ) {
  argument stdin = ${input:dst};
  argument stdout = ${output:plot};
  exec = "/opt/analyze";
}
DV c1->calibrate( cal=@{output:"cal.2003"}, raw=@{input:"raw.2003"} );
DV r1->reconstruct( dst=@{output:"dst.2003"}, cal=@{input:"cal.2003"} );
DV a1->analyze( plot=@{output:"mass.plot"}, dst=@{input:"dst.2003"} );
"""


def build():
    vds = VirtualDataSystem.with_grid(
        {"fnal": 2, "cern": 64}, authority="plan.example", bandwidth=10e6
    )
    vds.define(VDL)
    for name, cpu, out_bytes in (
        ("calibrate", 120.0, 200_000_000),
        ("reconstruct", 300.0, 80_000_000),
        ("analyze", 30.0, 1_000_000),
    ):
        tr = vds.catalog.get_transformation(name)
        tr.attributes.set("cost.cpu_seconds", cpu)
        tr.attributes.set("cost.output_bytes", out_bytes)
        vds.catalog.add_transformation(tr, replace=True)
    vds.seed_dataset("raw.2003", "fnal", 500_000_000)
    return vds


def main():
    vds = build()

    # 1. Estimation before derivation.
    plan = vds.plan("mass.plot", reuse="never")
    estimate = vds.estimate(plan)
    print(f"plan: {len(plan)} steps, depth {plan.depth()}")
    print(
        f"estimated: {estimate.makespan_seconds:.0f} s makespan, "
        f"{estimate.total_cpu_seconds:.0f} cpu s"
    )
    for deadline in (100, 1000):
        feasible = estimate.meets_deadline(deadline)
        print(f"  can it finish within {deadline} s? {feasible}")

    # 2. Shipping patterns for the data-heavy first step.
    print("\nshipping patterns (raw.2003 is 500 MB at fnal):")
    vds.selector.procedures.install("calibrate", "cern")
    vds.selector.procedures.set_size("calibrate", 5_000_000)
    step = plan.steps["c1"]
    for pattern in ("collocate", "ship-procedure", "ship-data", "ship-both"):
        choice = vds.selector.choose(step, pattern, now=vds.simulator.now)
        print(
            f"  {pattern:>14}: run at {choice.site:<5} "
            f"(+{choice.transfer_seconds:.1f}s transfer, "
            f"procedure move: {choice.ship_procedure})"
        )

    # 3. Derive, then watch reuse kick in.
    result = vds.materialize("mass.plot", reuse="never")
    print(f"\nfirst run: {result.makespan:.0f} s on "
          f"{len(result.sites_used())} site(s)")
    second = vds.plan("mass.plot", reuse="cost")
    print(
        f"second request plans {len(second)} steps "
        f"(reused: {sorted(second.reused)})"
    )

    # 4. Incremental rematerialization: raw.2003 is re-calibrated ->
    #    only the downstream chain is stale.
    graph = DerivationGraph.from_catalog(vds.catalog)
    tracker = StalenessTracker(graph)
    for i, name in enumerate(["raw.2003", "cal.2003", "dst.2003",
                              "mass.plot"]):
        tracker.stamp(name, float(i))
    tracker.stamp("cal.2003", 100.0)  # recalibrated!
    print(
        "\nafter recalibration, derivations to re-run for mass.plot:",
        sorted(tracker.derivations_to_run("mass.plot")),
    )


if __name__ == "__main__":
    main()
