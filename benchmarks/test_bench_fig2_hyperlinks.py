"""FIG2 — virtual data hyperlinks between servers.

Reproduces the Wisconsin/Illinois scenario and measures hyperlink
resolution: derivation -> remote transformation, and compound ->
remote callees, including planning a cross-catalog workflow.
"""

from repro.catalog.memory import MemoryCatalog
from repro.catalog.resolver import CatalogNetwork, ReferenceResolver
from repro.planner.dag import Planner
from repro.planner.request import MaterializationRequest


def build_network():
    net = CatalogNetwork()
    wisconsin = net.register(MemoryCatalog(authority="physics.wisconsin.edu"))
    illinois = net.register(MemoryCatalog(authority="physics.illinois.edu"))
    illinois.define(
        """
        TR sim( output out, input cfg ) {
          argument stdin = ${input:cfg};
          argument stdout = ${output:out};
          exec = "/usr/bin/sim";
        }
        TR cmp( output z, input raw ) {
          argument stdin = ${input:raw};
          argument stdout = ${output:z};
          exec = "/usr/bin/cmp";
        }
        """
    )
    wisconsin.define(
        """
        TR srch( output hits, input events, none particle="any" ) {
          argument = "-p "${none:particle};
          argument stdin = ${input:events};
          argument stdout = ${output:hits};
          exec = "/usr/bin/srch";
        }
        TR cmpsim( input cfg, inout mid=@{inout:"cmpsim.mid":""}, output z ) {
          vdp://physics.illinois.edu/sim( out=${output:mid}, cfg=${cfg} );
          vdp://physics.illinois.edu/cmp( z=${z}, raw=${input:mid} );
        }
        DV pack1->cmpsim( cfg=@{input:"config.A"}, z=@{output:"packed.A"} );
        """
    )
    illinois.define(
        """
        DV srch-muon->vdp://physics.wisconsin.edu/srch(
            hits=@{output:"muon.hits"}, events=@{input:"events.all"},
            particle="muon" );
        """
    )
    return net, wisconsin, illinois


def test_fig2_resolve_hyperlinks(benchmark, table):
    net, wisconsin, illinois = build_network()

    def resolve_all():
        wisconsin_resolver = ReferenceResolver(wisconsin, net)
        illinois_resolver = ReferenceResolver(illinois, net)
        callees = wisconsin_resolver.expand_compound(
            wisconsin.get_transformation("cmpsim")
        )
        srch, _ = illinois_resolver.transformation(
            illinois.get_derivation("srch-muon").transformation
        )
        return callees, srch

    callees, srch = benchmark(resolve_all)
    assert [callees[i].name for i in (0, 1)] == ["sim", "cmp"]
    assert srch.name == "srch"
    table(
        "FIG2: resolved virtual data hyperlinks",
        ["link", "from", "to"],
        [
            ("cmpsim call 0", "physics.wisconsin.edu",
             "vdp://physics.illinois.edu/sim"),
            ("cmpsim call 1", "physics.wisconsin.edu",
             "vdp://physics.illinois.edu/cmp"),
            ("srch-muon", "physics.illinois.edu",
             "vdp://physics.wisconsin.edu/srch"),
        ],
    )


def test_fig2_cross_catalog_planning(benchmark):
    net, wisconsin, _ = build_network()
    resolver = ReferenceResolver(wisconsin, net)
    planner = Planner(
        wisconsin, resolver=resolver, has_replica=lambda lfn: lfn == "config.A"
    )

    def plan():
        return planner.plan(
            MaterializationRequest(targets=("packed.A",), reuse="never")
        )

    result = benchmark(plan)
    assert set(result.steps) == {"pack1.0.sim", "pack1.1.cmp"}
    assert result.sources == {"config.A"}
