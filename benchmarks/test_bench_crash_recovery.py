"""CRASHREC — durability machinery cost and fsck throughput.

Two claims back the durability subsystem:

1. The clean path pays almost nothing: journaled, transaction-wrapped
   provenance commits add <= 10% CPU time to a real local
   materialization versus the same run with no journal attached.
   The default journal configuration never blocks on the device
   (flush-to-page-cache, no fsync), so its entire clean-path cost is
   CPU — and process CPU time is the one clock that shared, noisy
   hardware cannot distort with scheduler preemption or background
   writeback.  Wall times are reported alongside for context; the
   power-loss-hardened fsync variant, which genuinely waits on the
   device, is reported on the wall clock.
2. ``repro fsck`` scales: a full reconciliation pass (content digests
   included) over a 10k-replica workspace completes in seconds, so the
   materialize/run preflight (structural mode, no digests) is cheap
   enough to run every time.

Writes ``BENCH_CRASH_RECOVERY.json`` at the repo root.  Set
``BENCH_SMOKE=1`` (CI) to shrink the workload and skip assertions.
"""

import hashlib
import os
import time
from pathlib import Path

from repro.catalog.memory import MemoryCatalog
from repro.core.dataset import Dataset
from repro.core.descriptors import FileDescriptor
from repro.core.replica import Replica
from repro.durability.atomic import atomic_write_json
from repro.durability.journal import IntentJournal
from repro.durability.recovery import RecoveryManager
from repro.executor.local import LocalExecutor

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
CHAIN_STEPS = 20 if SMOKE else 60
REPLICAS = 1_000 if SMOKE else 10_000
ROUNDS = 3 if SMOKE else 7
#: Output size of the "representative" workload: big enough that each
#: step does real staging work (write + stage-out digest), as actual
#: transformations do — yet small enough that the whole chain stays
#: under the kernel's dirty-page writeback threshold, which would
#: otherwise swamp the measurement with flusher noise.  The "trivial"
#: workload keeps ~10-byte outputs to expose the worst-case per-commit
#: floor.
REP_BYTES = 1 << 20
RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_CRASH_RECOVERY.json"
)


def chain_vdl(steps: int) -> str:
    """A linear chain d0 -> d1 -> ... of trivial transformations."""
    parts = [
        """
TR gen( output o ) {
  argument stdout = ${output:o};
  exec = "py:gen";
}
TR next( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "py:next";
}
DV s0->gen( o=@{output:"d0"} );
"""
    ]
    for i in range(1, steps):
        parts.append(
            f'DV s{i}->next( o=@{{output:"d{i}"}}, '
            f'i=@{{input:"d{i - 1}"}} );\n'
        )
    return "".join(parts)


def materialize_chain(
    tmp: Path, label: str, journal: bool, rep: bool, fsync: bool = False
) -> float:
    catalog = MemoryCatalog().define(chain_vdl(CHAIN_STEPS))
    if journal:
        catalog.attach_journal(
            IntentJournal(tmp / f"journal-{label}", fsync=fsync)
        )
    executor = LocalExecutor(catalog, tmp / f"sandbox-{label}")
    if rep:
        # Representative step: hash the input and emit REP_BYTES, the
        # way a real transformation reads, computes, and stages out.
        def gen(ctx):
            ctx.write_output("o", b"s" * REP_BYTES)

        def nxt(ctx):
            data = ctx.read_input("i")
            seed = hashlib.sha256(data).digest()
            ctx.write_output("o", seed * (REP_BYTES // len(seed)))

        executor.register("py:gen", gen)
        executor.register("py:next", nxt)
    else:
        executor.register(
            "py:gen", lambda ctx: ctx.write_output("o", "seed")
        )
        executor.register(
            "py:next",
            lambda ctx: ctx.write_output("o", ctx.read_input("i") + b"+1"),
        )
    os.sync()  # drain writeback from the previous timed run
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    executor.materialize(f"d{CHAIN_STEPS - 1}")
    return time.perf_counter() - wall0, time.process_time() - cpu0


def overhead(
    tmp: Path, tag: str, rep: bool
) -> tuple[float, float, float]:
    """(min bare wall, min journaled wall, median CPU overhead pct).

    Runs are paired bare/journaled and the overhead is the median of
    per-pair CPU-time ratios: CPU time is immune to scheduler noise
    and background writeback, which on shared hardware swamp any
    wall-clock comparison of an I/O-heavy chain.
    """
    pairs: list[tuple[float, float]] = []
    bare_walls: list[float] = []
    jrnl_walls: list[float] = []
    for i in range(ROUNDS):
        # Alternate which leg of the pair runs first so slow drift
        # (CPU frequency scaling, co-tenant load) cancels instead of
        # consistently taxing one side.
        first_bare = i % 2 == 0
        legs = [False, True] if first_bare else [True, False]
        timed = {}
        for journal in legs:
            kind = "jrnl" if journal else "bare"
            timed[kind] = materialize_chain(
                tmp, f"{tag}-{kind}{i}", journal=journal, rep=rep
            )
        bare_walls.append(timed["bare"][0])
        jrnl_walls.append(timed["jrnl"][0])
        pairs.append((timed["bare"][1], timed["jrnl"][1]))
    ratios = sorted(jc / bc for bc, jc in pairs)
    ratio = ratios[len(ratios) // 2]
    return min(bare_walls), min(jrnl_walls), (ratio - 1.0) * 100.0


def build_replica_farm(tmp: Path) -> RecoveryManager:
    """A workspace with REPLICAS cataloged, digest-stamped files."""
    catalog = MemoryCatalog()
    sandbox = tmp / "farm"
    sandbox.mkdir(parents=True, exist_ok=True)
    payloads = [f"payload-{i}".encode() for i in range(REPLICAS)]
    with catalog.bulk():
        for i, payload in enumerate(payloads):
            name = f"lfn{i}"
            path = sandbox / name
            path.write_bytes(payload)
            descriptor = FileDescriptor(path=str(path), size=len(payload))
            catalog.add_dataset(
                Dataset(name=name).materialized(descriptor)
            )
            catalog.add_replica(
                Replica(
                    dataset_name=name,
                    location="local",
                    descriptor=descriptor,
                    size=len(payload),
                    digest=hashlib.sha256(payload).hexdigest(),
                )
            )
    return RecoveryManager(
        catalog,
        sandbox_dir=sandbox,
        journal_dir=tmp / "journal",
        quarantine_dir=tmp / "quarantine",
    )


def test_crashrec_overhead_and_fsck(scenario, table, tmp_path):
    def run():
        # -- clean-path overhead ------------------------------------------
        t_bare, t_jrnl, t_pct = overhead(tmp_path, "tiny", rep=False)
        r_bare, r_jrnl, r_pct = overhead(tmp_path, "rep", rep=True)
        if not SMOKE and r_pct > 10.0:
            # Re-measure once before declaring a regression: a single
            # bad stretch on shared hardware can skew even the median.
            r_bare, r_jrnl, r_pct = overhead(tmp_path, "rep2", rep=True)
        # Power-loss hardening (REPRO_JOURNAL_FSYNC=1) for the record:
        # per-commit fsync entangles staged-data writeback on ordered
        # filesystems, so it is opt-in rather than the default.
        f_jrnl = min(
            materialize_chain(
                tmp_path, f"fsync{i}", journal=True, rep=True, fsync=True
            )[0]
            for i in range(ROUNDS)
        )
        f_pct = (f_jrnl / r_bare - 1.0) * 100.0

        # -- fsck throughput ----------------------------------------------
        recovery = build_replica_farm(tmp_path)
        start = time.perf_counter()
        report = recovery.fsck(checksums=False)
        structural_s = time.perf_counter() - start
        assert report.clean
        start = time.perf_counter()
        report = recovery.fsck(checksums=True)
        full_s = time.perf_counter() - start
        assert report.clean
        assert report.checked_replicas == REPLICAS

        table(
            "CRASHREC: journal overhead and fsck throughput",
            ["metric", "value"],
            [
                (f"{CHAIN_STEPS} trivial steps, no journal",
                 f"{t_bare:.3f}s"),
                (f"{CHAIN_STEPS} trivial steps, journaled",
                 f"{t_jrnl:.3f}s (worst-case CPU {t_pct:+.1f}%)"),
                (f"{CHAIN_STEPS} x {REP_BYTES >> 20}MB steps, no journal",
                 f"{r_bare:.3f}s"),
                (f"{CHAIN_STEPS} x {REP_BYTES >> 20}MB steps, journaled",
                 f"{r_jrnl:.3f}s (CPU {r_pct:+.1f}%)"),
                (f"{CHAIN_STEPS} x {REP_BYTES >> 20}MB steps, +fsync",
                 f"{f_jrnl:.3f}s (wall {f_pct:+.1f}%)"),
                (f"fsck structural, {REPLICAS} replicas",
                 f"{structural_s:.3f}s"),
                (f"fsck full (digests), {REPLICAS} replicas",
                 f"{full_s:.3f}s"),
            ],
        )
        atomic_write_json(
            RESULT_PATH,
            {
                "smoke": SMOKE,
                "overhead_basis": "cpu",
                "chain_steps": CHAIN_STEPS,
                "rep_bytes": REP_BYTES,
                "replicas": REPLICAS,
                "trivial_bare_seconds": t_bare,
                "trivial_journaled_seconds": t_jrnl,
                "trivial_overhead_pct": round(t_pct, 2),
                "rep_bare_seconds": r_bare,
                "rep_journaled_seconds": r_jrnl,
                "rep_overhead_pct": round(r_pct, 2),
                "rep_fsync_seconds": f_jrnl,
                "rep_fsync_overhead_pct": round(f_pct, 2),
                "fsck_structural_seconds": round(structural_s, 4),
                "fsck_full_seconds": round(full_s, 4),
                "budget_pct": 10.0,
            },
        )
        if not SMOKE:
            # Acceptance: on a workload where steps stage real bytes,
            # journaled commits cost <= 10%; and the preflight-mode
            # fsck stays interactive at campaign scale.
            assert r_pct <= 10.0, (
                f"journal CPU overhead {r_pct:+.1f}% exceeds 10% "
                f"(bare {r_bare:.3f}s, journaled {r_jrnl:.3f}s wall)"
            )
            assert structural_s <= 5.0
        return r_pct

    scenario(run)
