"""PAR — parallel materialization makespan (§5.4, §6).

The paper's workflow manager "dispatch[es] nodes of the workflow graph
when the node's predecessor dependencies have completed"; §6 sizes real
campaigns at hundreds of hosts.  This benchmark measures the local
executor's makespan at workers=1/2/4 on wide HEP and SDSS plans whose
stage bodies block (sleep) rather than spin, the local stand-in for
I/O- and subprocess-bound stages that release the GIL.

A second experiment pits the thread backend against the *process*
backend on CPU-bound pure-Python stages that hold the GIL: threads
give ~1x there no matter how many workers, processes scale with cores.

Writes ``BENCH_PARALLEL_SPEEDUP.json`` at the repo root.  Set
``BENCH_SMOKE=1`` (CI) to shrink the plans and skip the speedup
assertions; the full run asserts >= 2x at workers=4 on the width-8 HEP
plan, and (given >= 4 cores) >= 2.5x for the process backend on the
CPU-bound plan.
"""

import json
import os
import time
from pathlib import Path

from repro.catalog.memory import MemoryCatalog
from repro.durability.atomic import atomic_write_json
from repro.executor.local import LocalExecutor
from repro.workloads import hep, sdss

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
#: Per-step blocking time.  Large enough that pool/bookkeeping overhead
#: is noise, small enough to keep the benchmark quick.
STEP_SECONDS = 0.004 if SMOKE else 0.02
WORKER_COUNTS = (1, 2, 4)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PARALLEL_SPEEDUP.json"


def _sleep_body(ctx):
    """Stand-in stage: block like a subprocess, then emit an output."""
    time.sleep(STEP_SECONDS)
    for formal in ctx.output_paths:
        ctx.write_output(formal, b"x")


#: Pure-Python spin count per CPU-bound stage; holds the GIL the whole
#: time, unlike hashing or I/O which release it.
SPIN_ITERS = 50_000 if SMOKE else 600_000


def _spin_body(ctx):
    """Stand-in CPU-bound stage: GIL-holding arithmetic, then output."""
    acc = 0
    for i in range(SPIN_ITERS):
        acc += i * i
    for formal in ctx.output_paths:
        ctx.write_output(formal, str(acc).encode())


def hep_wide(catalog, runs=8):
    """``runs`` independent 4-stage HEP chains feeding one merge —
    width ``runs``, critical path 5."""
    targets = [hep.define_run(catalog, f"run{r}", seed=r) for r in range(runs)]
    formals = ", ".join(f"input h{k}" for k in range(runs))
    bindings = ", ".join(
        f'h{k}=@{{input:"{t}"}}' for k, t in enumerate(targets)
    )
    catalog.define(
        f'TR hep-merge( output m, {formals} ) {{ '
        f'argument stdout = ${{output:m}}; exec = "py:hep-merge"; }}\n'
        f'DV merge->hep-merge( m=@{{output:"merged.hist"}}, {bindings} );\n'
    )
    return "merged.hist"


def hep_executor(tmp_path, tag, runs=8):
    catalog = MemoryCatalog()
    target = hep_wide(catalog, runs=runs)
    executor = LocalExecutor(catalog, tmp_path / tag)
    for name in ("hepevt-gen", "hepevt-sim", "hepevt-reco", "hepevt-ana"):
        executable = catalog.get_transformation(name).executable
        executor.register(executable, _sleep_body)
    executor.register("py:hep-merge", _sleep_body)
    return executor, target


def sdss_executor(tmp_path, tag, fields=8):
    catalog = MemoryCatalog()
    campaign = sdss.define_campaign(
        catalog, fields=fields, fields_per_stripe=fields
    )
    executor = LocalExecutor(catalog, tmp_path / tag)
    for name in (
        "sdss-extract", "sdss-brg", "sdss-bcg", "sdss-coalesce",
        "sdss-catalog",
    ):
        executable = catalog.get_transformation(name).executable
        executor.register(executable, _sleep_body)
    # Raw sky fields must pre-exist in the sandbox.
    for field_ds in campaign.field_datasets:
        executor.path_for(field_ds).write_bytes(b"field")
    return executor, campaign.targets[0]


def _measure(make_executor, tmp_path):
    rows = {}
    steps = None
    for workers in WORKER_COUNTS:
        executor, target = make_executor(tmp_path, f"w{workers}")
        start = time.perf_counter()
        invocations = executor.materialize(target, workers=workers)
        rows[workers] = time.perf_counter() - start
        if steps is None:
            steps = len(invocations)
        else:
            assert len(invocations) == steps  # same plan every time
    return rows, steps


def test_par_makespan(scenario, table, tmp_path):
    def run():
        results = {}
        display = []
        for plan_name, factory in (
            ("hep-wide8", hep_executor),
            ("sdss-wide8", sdss_executor),
        ):
            rows, steps = _measure(factory, tmp_path)
            speedups = {w: rows[1] / rows[w] for w in WORKER_COUNTS}
            results[plan_name] = {
                "steps": steps,
                "step_seconds": STEP_SECONDS,
                "makespan_seconds": {str(w): rows[w] for w in WORKER_COUNTS},
                "speedup_vs_1": {str(w): speedups[w] for w in WORKER_COUNTS},
            }
            display.append(
                (
                    plan_name,
                    steps,
                    *(f"{rows[w] * 1e3:.0f}" for w in WORKER_COUNTS),
                    f"{speedups[4]:.2f}x",
                )
            )
        table(
            "PAR: local materialization makespan (blocking stages)",
            ["plan", "steps", "w=1 ms", "w=2 ms", "w=4 ms", "speedup w=4"],
            display,
        )
        atomic_write_json(RESULT_PATH, {"smoke": SMOKE, "plans": results})
        if not SMOKE:
            # Acceptance: >= 2x at workers=4 on a width->=8 plan.
            assert results["hep-wide8"]["speedup_vs_1"]["4"] >= 2.0
        return results

    scenario(run)


def cpu_executor(tmp_path, tag, runs=8):
    """hep_wide with GIL-holding spin bodies instead of sleeps."""
    catalog = MemoryCatalog()
    target = hep_wide(catalog, runs=runs)
    executor = LocalExecutor(catalog, tmp_path / tag)
    for name in ("hepevt-gen", "hepevt-sim", "hepevt-reco", "hepevt-ana"):
        executable = catalog.get_transformation(name).executable
        executor.register(executable, _spin_body)
    executor.register("py:hep-merge", _spin_body)
    return executor, target


def test_cpu_bound_backend(scenario, table, tmp_path):
    """Thread vs process backend on GIL-holding stages.

    Threads cannot speed up pure-Python work no matter the worker
    count; the process backend escapes the GIL and scales with cores.
    The speedup assertions only fire on a >= 4-core machine in full
    mode — on fewer cores the numbers are still recorded so the
    committed baseline documents the machine it ran on.
    """

    def run():
        cores = os.cpu_count() or 1
        rows = {}
        steps = None
        for backend, workers in (
            ("thread", 1),
            ("thread", 4),
            ("process", 4),
        ):
            executor, target = cpu_executor(
                tmp_path, f"cpu-{backend}-w{workers}"
            )
            start = time.perf_counter()
            invocations = executor.materialize(
                target, workers=workers, backend=backend
            )
            rows[(backend, workers)] = time.perf_counter() - start
            if steps is None:
                steps = len(invocations)
            else:
                assert len(invocations) == steps

        base = rows[("thread", 1)]
        cpu_bound = {
            "cores": cores,
            "steps": steps,
            "spin_iters": SPIN_ITERS,
            "makespan_seconds": {
                f"{backend}-w{workers}": seconds
                for (backend, workers), seconds in rows.items()
            },
            "speedup_thread_4": base / rows[("thread", 4)],
            "speedup_process_4": base / rows[("process", 4)],
        }
        table(
            "PAR: CPU-bound stages, thread vs process backend",
            ["backend", "workers", "makespan ms", "speedup"],
            [
                (
                    backend,
                    workers,
                    f"{seconds * 1e3:.0f}",
                    f"{base / seconds:.2f}x",
                )
                for (backend, workers), seconds in rows.items()
            ],
        )
        # Merge into the file test_par_makespan wrote rather than
        # clobbering it (the two tests share one result artifact).
        existing = {}
        if RESULT_PATH.exists():
            existing = json.loads(RESULT_PATH.read_text())
        existing["smoke"] = SMOKE
        existing["cpu_bound"] = cpu_bound
        atomic_write_json(RESULT_PATH, existing)
        if not SMOKE and cores >= 4:
            # Acceptance: processes escape the GIL, threads don't.
            assert cpu_bound["speedup_process_4"] >= 2.5
            assert cpu_bound["speedup_thread_4"] <= 1.5
        return cpu_bound

    scenario(run)
