"""SDSS — the MaxBCG galaxy cluster search campaign (§6).

The paper's headline experience: "about 5000 derivations ... workflow
DAGs with as many as several hundred executable nodes, across a grid
consisting of almost 800 hosts spread across four sites, and using as
many as 120 hosts in a single workflow."

This benchmark replays the whole campaign on the simulated grid at the
paper's scale and checks each of those numbers, then ablates the
per-workflow host cap (1 -> 120) to show why 120 was a sensible width.
"""

import pytest

from repro.provenance.graph import DerivationGraph
from repro.system import VirtualDataSystem
from repro.workloads import sdss

SITES = {"anl": 200, "uc": 200, "uw": 200, "ufl": 200}


def build_campaign(fields: int, fields_per_stripe: int):
    vds = VirtualDataSystem.with_grid(
        SITES, authority="sdss.griphyn.org", bandwidth=50e6
    )
    campaign = sdss.define_campaign(
        vds.catalog, fields=fields, fields_per_stripe=fields_per_stripe
    )
    site_names = sorted(SITES)
    for i, field in enumerate(campaign.field_datasets):
        vds.seed_dataset(field, site_names[i % 4], sdss.FIELD_BYTES)
    return vds, campaign


def run_campaign(fields=1000, fields_per_stripe=100, max_hosts=120):
    vds, campaign = build_campaign(fields, fields_per_stripe)
    per_stripe = []
    for target in campaign.targets:
        result = vds.materialize(
            target, reuse="never", pattern="ship-data", max_hosts=max_hosts
        )
        assert result.succeeded
        per_stripe.append(result)
    return vds, campaign, per_stripe


@pytest.mark.slow
def test_sdss_full_campaign(benchmark, table):
    vds, campaign, per_stripe = benchmark.pedantic(
        run_campaign, rounds=1, iterations=1
    )
    # --- the paper's numbers ---
    assert campaign.derivations == 5000  # "about 5000 derivations"
    graph = DerivationGraph.from_catalog(vds.catalog)
    stripe_steps = len(
        graph.required_for(campaign.targets[0]).derivation_names()
    )
    assert 300 <= stripe_steps <= 900  # "several hundred executable nodes"
    total_hosts = sum(SITES.values())
    assert total_hosts == 800  # "almost 800 hosts ... four sites"
    hosts_used = set()
    for result in per_stripe:
        hosts_used |= result.hosts_used()
        assert result.peak_in_flight <= 120  # "as many as 120 hosts"
    executed = sum(len(r.outcomes) for r in per_stripe)
    # Stripe workflows share per-field steps only through their own
    # expansion; every derivation ran at least once.
    assert executed >= campaign.derivations
    counts = vds.catalog.counts()
    table(
        "SDSS: full campaign at paper scale",
        ["metric", "paper", "measured"],
        [
            ("derivations", "~5000", campaign.derivations),
            ("stripe workflow nodes", "several hundred", stripe_steps),
            ("grid hosts / sites", "800 / 4", f"{total_hosts} / 4"),
            ("max hosts in one workflow", "120",
             max(r.peak_in_flight for r in per_stripe)),
            ("distinct hosts used", "-", len(hosts_used)),
            ("invocations recorded", "-", counts["invocation"]),
            ("replicas recorded", "-", counts["replica"]),
            ("campaign makespan (sim s)", "-",
             f"{per_stripe[-1].finished_at:.0f}"),
        ],
    )


def test_sdss_host_cap_ablation(scenario, table):
    def run():
        """Width ablation: stripe makespan vs per-workflow host cap."""
        rows = []
        makespans = {}
        for cap in (1, 8, 30, 120):
            vds, campaign = build_campaign(fields=100, fields_per_stripe=100)
            result = vds.materialize(
                campaign.targets[0], reuse="never", max_hosts=cap
            )
            assert result.succeeded
            makespans[cap] = result.makespan
            assert result.peak_in_flight <= cap
            rows.append(
                (
                    cap,
                    len(result.outcomes),
                    result.peak_in_flight,
                    f"{result.makespan:.0f}",
                )
            )
        table(
            "SDSS: stripe makespan vs per-workflow host cap",
            ["host cap", "steps", "peak hosts", "makespan (sim s)"],
            rows,
        )
        assert makespans[120] < makespans[8] < makespans[1]

    scenario(run)


def test_sdss_stripe_workflow(benchmark):
    vds, campaign = build_campaign(fields=100, fields_per_stripe=100)

    def run():
        return vds.materialize(
            campaign.targets[0], reuse="cost", max_hosts=120
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.succeeded
