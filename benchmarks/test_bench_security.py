"""SIGN — signing/verification overhead and trust-chain depth (§4.2).

The paper's security design puts a signature on every VDC entry and
attribute; this benchmark quantifies what that costs per entry, and
how chain validation scales with delegation depth — the practical
bounds on "validating trust chains" in a large collaboration.
"""

import time

from repro.core.dataset import Dataset
from repro.security.identity import KeyStore
from repro.security.signing import Signer
from repro.security.trust import TrustStore


def build_signer():
    keys = KeyStore()
    keys.generate("authority")
    return keys, Signer(keys)


def test_sign_entry_throughput(benchmark, table):
    _, signer = build_signer()
    datasets = [
        Dataset(name=f"ds{i:05d}", attributes={"quality": "raw", "run": i})
        for i in range(100)
    ]

    def sign_batch():
        for ds in datasets:
            signer.sign_entry(ds, "authority")
        return datasets

    signed = benchmark(sign_batch)
    assert all(signer.is_signed_by(ds, "authority") for ds in signed[:5])


def test_verify_entry_throughput(benchmark):
    _, signer = build_signer()
    ds = Dataset(name="x", attributes={"a": 1})
    signer.sign_entry(ds, "authority")
    benchmark(lambda: signer.verify_entry(ds, "authority"))


def test_sign_granularity_tradeoff(scenario, table):
    def run():
        """Per-entry vs per-attribute signing cost (the ablation from
        DESIGN.md): attribute signatures cost one MAC per attribute but
        allow partial vouching."""
        _, signer = build_signer()
        rows = []
        for attr_count in (1, 8, 32):
            ds = Dataset(
                name="x",
                attributes={f"k{i}": i for i in range(attr_count)},
            )
            start = time.perf_counter()
            for _ in range(200):
                signer.sign_entry(ds, "authority")
            entry_time = (time.perf_counter() - start) / 200
            start = time.perf_counter()
            for _ in range(200):
                for i in range(attr_count):
                    signer.sign_attribute(ds, f"k{i}", "authority")
            attr_time = (time.perf_counter() - start) / 200
            rows.append(
                (
                    attr_count,
                    f"{entry_time * 1e6:.0f}",
                    f"{attr_time * 1e6:.0f}",
                )
            )
        table(
            "SIGN: per-entry vs per-attribute signing (us per entry)",
            ["attributes", "entry sig us", "all-attr sigs us"],
            rows,
        )

    scenario(run)


def test_trust_chain_depth(scenario, table):
    def run():
        """Chain validation cost and success across delegation depths."""
        keys = KeyStore()
        names = [f"level{i}" for i in range(33)]
        for name in names:
            keys.generate(name)
        trust = TrustStore(keys, max_chain_depth=32)
        trust.add_root(names[0])
        for issuer, subject in zip(names, names[1:]):
            trust.delegate(issuer, subject)
        rows = []
        for depth in (1, 4, 16, 32):
            principal = names[depth]
            start = time.perf_counter()
            chain = trust.chain_for(principal)
            elapsed = time.perf_counter() - start
            assert chain is not None and len(chain) == depth
            rows.append((depth, f"{elapsed * 1e3:.2f}"))
        table(
            "SIGN: trust-chain validation vs delegation depth",
            ["chain depth", "validation ms"],
            rows,
        )

    scenario(run)


def test_trust_chain_query(benchmark):
    keys = KeyStore()
    for i in range(9):
        keys.generate(f"p{i}")
    trust = TrustStore(keys)
    trust.add_root("p0")
    for i in range(8):
        trust.delegate(f"p{i}", f"p{i+1}")
    chain = benchmark(lambda: trust.chain_for("p8"))
    assert len(chain) == 8
