"""VDL — language front-end throughput (Appendix A).

Composition (§5.1) pushes thousands of TR/DV declarations through the
VDL front-end for a production campaign — the SDSS campaign alone is
~5000 DV statements.  This benchmark measures parse, analyze, unparse
and XML round-trip rates on a generated corpus of that shape.
"""

import time


from repro.vdl.parser import parse
from repro.vdl.semantics import compile_vdl
from repro.vdl.unparser import unparse
from repro.vdl.xml_io import from_xml, to_xml


def corpus(derivations: int) -> str:
    chunks = [
        """
        TR stage( output o, input i, none level="1" ) {
          argument = "-l "${none:level}" -i "${input:i};
          argument stdout = ${output:o};
          env.MAXMEM = ${none:level};
          exec = "/bin/stage";
        }
        """
    ]
    for i in range(derivations):
        chunks.append(
            f'DV d{i:05d}->stage( o=@{{output:"data.{i + 1:05d}"}},'
            f' i=@{{input:"data.{i:05d}"}}, level="{i % 9}" );\n'
        )
    return "".join(chunks)


def test_vdl_throughput_table(scenario, table):
    def run():
        rows = []
        for count in (100, 1_000, 5_000):
            source = corpus(count)
            start = time.perf_counter()
            program = compile_vdl(source)
            compile_s = time.perf_counter() - start

            start = time.perf_counter()
            text = unparse(program.transformations, program.derivations)
            unparse_s = time.perf_counter() - start

            start = time.perf_counter()
            document = to_xml(program.transformations, program.derivations)
            to_xml_s = time.perf_counter() - start

            start = time.perf_counter()
            trs, dvs = from_xml(document)
            from_xml_s = time.perf_counter() - start

            assert len(program.derivations) == len(dvs) == count
            assert compile_vdl(text)  # round trip stays valid
            rows.append(
                (
                    count,
                    f"{count / compile_s:.0f}",
                    f"{count / unparse_s:.0f}",
                    f"{count / to_xml_s:.0f}",
                    f"{count / from_xml_s:.0f}",
                )
            )
        table(
            "VDL: front-end throughput (declarations / second)",
            ["DVs", "compile/s", "unparse/s", "to-xml/s", "from-xml/s"],
            rows,
        )

    scenario(run)


def test_vdl_parse(benchmark):
    source = corpus(500)
    program = benchmark(lambda: parse(source))
    assert len(program.derivations()) == 500


def test_vdl_compile(benchmark):
    source = corpus(500)
    program = benchmark(lambda: compile_vdl(source))
    assert len(program.derivations) == 500


def test_vdl_xml_round_trip(benchmark):
    program = compile_vdl(corpus(500))

    def round_trip():
        return from_xml(to_xml(program.transformations, program.derivations))

    trs, dvs = benchmark(round_trip)
    assert len(dvs) == 500
