"""REPL — dynamic replication strategies (§5.2, refs [18,19]).

Reproduces the Ranganathan & Foster replication study the paper's
planner builds on: a hierarchical data grid, skewed and geographically
local access traces, and five placement strategies.

Expected shape (matching [19]): every replication strategy beats no
replication on mean response time under skewed access; strategies that
place copies at/near clients (caching, cascading+caching) beat pure
tier-level cascading; replication buys its speedup with bounded extra
storage (replica counts reported).
"""

import pytest

from repro.planner.replication import (
    HierarchyConfig,
    ReplicationSimulation,
    STRATEGIES,
)

CONFIG = HierarchyConfig(
    tier1_count=4,
    leaves_per_tier1=3,
    file_count=200,
    replication_threshold=5,
)


@pytest.fixture(scope="module")
def results():
    simulation = ReplicationSimulation(CONFIG, seed=7)
    return {r.strategy: r for r in simulation.compare()}


def test_repl_strategy_table(scenario, results, table):
    def run():
        rows = [results[s].row() for s in STRATEGIES]
        table(
            "REPL: replication strategies under skewed access",
            ["strategy", "accesses", "mean response s", "WAN bytes",
             "replicas", "evictions"],
            rows,
        )
        none = results["none"]
        for name in ("caching", "cascading", "best-client", "cascading-caching"):
            assert results[name].mean_response_seconds < none.mean_response_seconds
        # Client-side placement beats tier-level cascading alone.
        assert (
            results["cascading-caching"].mean_response_seconds
            <= results["cascading"].mean_response_seconds
        )
        # Replication saves wide-area bandwidth overall.
        assert (
            results["cascading-caching"].total_wide_area_bytes
            < none.total_wide_area_bytes
        )

    scenario(run)


def test_repl_locality_sensitivity(scenario, table):
    def run():
        """Ablation: the benefit of replication grows with access locality."""
        rows = []
        for locality in (0.0, 0.5, 0.9):
            config = HierarchyConfig(
                tier1_count=4,
                leaves_per_tier1=3,
                file_count=200,
                replication_threshold=5,
                locality=locality,
            )
            simulation = ReplicationSimulation(config, seed=7)
            none = simulation.run("none")
            simulation.network.reset_stats()
            best = simulation.run("cascading-caching")
            speedup = none.mean_response_seconds / best.mean_response_seconds
            rows.append(
                (
                    locality,
                    f"{none.mean_response_seconds:.1f}",
                    f"{best.mean_response_seconds:.1f}",
                    f"{speedup:.2f}x",
                )
            )
        table(
            "REPL: speedup of cascading-caching vs locality",
            ["locality", "none (s)", "casc+cache (s)", "speedup"],
            rows,
        )
        speedups = [float(r[3][:-1]) for r in rows]
        assert speedups[-1] > 1.2  # strong locality -> clear win

    scenario(run)


def test_repl_simulation_throughput(benchmark):
    simulation = ReplicationSimulation(CONFIG, seed=7)
    result = benchmark(lambda: simulation.run("cascading-caching"))
    assert result.accesses == len(simulation.trace)
