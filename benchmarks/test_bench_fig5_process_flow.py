"""FIG5 — the virtual data process flow, end to end.

Runs one full loop of composition -> planning -> estimation ->
derivation -> discovery -> sharing on a diamond workload and reports
per-phase cost, demonstrating that the six facets interoperate over
one catalog exactly as the figure's arrows describe.
"""

import time

from repro.system import VirtualDataSystem

VDL = """
TR gen( output o, none seed="1" ) {
  argument = "-s "${none:seed};
  argument stdout = ${output:o};
  exec = "/bin/gen";
}
TR sim( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/sim";
}
TR ana( output o, input a, input b ) {
  argument = "-a "${input:a}" -b "${input:b};
  argument stdout = ${output:o};
  exec = "/bin/ana";
}
DV g1->gen( o=@{output:"raw1"}, seed="42" );
DV g2->gen( o=@{output:"raw2"}, seed="43" );
DV s1->sim( o=@{output:"sim1"}, i=@{input:"raw1"} );
DV s2->sim( o=@{output:"sim2"}, i=@{input:"raw2"} );
DV a1->ana( o=@{output:"final"}, a=@{input:"sim1"}, b=@{input:"sim2"} );
"""


def run_process_flow():
    timings = {}

    def phase(name, fn):
        start = time.perf_counter()
        result = fn()
        timings[name] = time.perf_counter() - start
        return result

    vds = VirtualDataSystem.with_grid({"anl": 8, "uc": 8}, authority="flow.org")
    phase("composition", lambda: vds.define(VDL))
    plan = phase("planning", lambda: vds.plan("final", reuse="never"))
    estimate = phase("estimation", lambda: vds.estimate(plan))
    result = phase(
        "derivation", lambda: vds.materialize("final", reuse="never")
    )
    hits = phase("discovery", lambda: vds.discover_datasets(name_glob="sim*"))
    partner = VirtualDataSystem(authority="partner.org")
    phase("sharing", lambda: (vds.share_with(partner.catalog),
                              vds.build_index("community")))
    return vds, plan, estimate, result, hits, timings


def test_fig5_process_flow(scenario, table):
    def run():
        vds, plan, estimate, result, hits, timings = run_process_flow()
        assert len(plan) == 5
        assert estimate.makespan_seconds > 0
        assert result.succeeded
        assert {d.name for d in hits} == {"sim1", "sim2"}
        # The derivation phase fed provenance back into the catalog
        # ("updates to dataset and virtual metadata information").
        assert vds.catalog.invocations_of("a1")
        assert vds.lineage("final").depth() == 3
        table(
            "FIG5: process flow phase costs (one loop)",
            ["phase", "wall ms"],
            [
                (name, f"{seconds * 1e3:.2f}")
                for name, seconds in timings.items()
            ],
        )

    scenario(run)


def test_fig5_full_loop(benchmark):
    result = benchmark.pedantic(run_process_flow, rounds=3, iterations=1)
    assert result[3].succeeded
