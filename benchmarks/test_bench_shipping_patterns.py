"""SHIP — the four data/procedure shipping patterns (§5.2).

"All four patterns can play a role in a particular community or
application, depending on factors such as resource availability and
performance, the size of datasets, and the computational and data
demands of procedures."

The benchmark sweeps dataset size against compute demand and, for each
cell, simulates one derivation under each pattern; the winner map shows
the crossovers the paper predicts: ship-procedure wins when data is
big, ship-data wins when data is small and compute elsewhere is
plentiful, collocation wins when it is possible at all.
"""


from repro.system import VirtualDataSystem

VDL = """
TR crunch( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/crunch";
}
DV c1->crunch( o=@{output:"out.dat"}, i=@{input:"big.dat"} );
"""


def build_world(data_bytes: int, cpu_seconds: float, collocatable: bool):
    """data-site: 1 slow-ish host, holds the data.  cpu-site: 16 hosts.
    The procedure lives at cpu-site (and data-site when collocatable)."""
    vds = VirtualDataSystem.with_grid(
        {"data-site": 1, "cpu-site": 16}, authority="ship.org",
        bandwidth=10e6,
    )
    vds.define(VDL)
    tr = vds.catalog.get_transformation("crunch")
    tr.attributes.set("cost.cpu_seconds", cpu_seconds)
    tr.attributes.set("cost.output_bytes", 1_000_000)
    vds.catalog.add_transformation(tr, replace=True)
    vds.seed_dataset("big.dat", "data-site", data_bytes)
    vds.selector.procedures.install("crunch", "cpu-site")
    vds.selector.procedures.set_size("crunch", 5_000_000)
    if collocatable:
        vds.selector.procedures.install("crunch", "data-site")
    return vds


PATTERNS = ("collocate", "ship-procedure", "ship-data", "ship-both")


def run_cell(data_bytes, cpu_seconds, collocatable=True):
    outcomes = {}
    for pattern in PATTERNS:
        vds = build_world(data_bytes, cpu_seconds, collocatable)
        result = vds.materialize("out.dat", reuse="never", pattern=pattern)
        assert result.succeeded
        outcomes[pattern] = result.makespan
    return outcomes


def test_ship_winner_map(scenario, table):
    def run():
        # The procedure starts installed only at cpu-site, so each pattern
        # has to do real work: collocation is impossible (falls back to
        # moving data), ship-procedure pays one procedure transfer,
        # ship-data pays the dataset transfer.
        rows = []
        for data_mb in (1, 50, 500):
            for cpu in (2.0, 60.0):
                outcomes = run_cell(
                    data_mb * 1_000_000, cpu, collocatable=False
                )
                winner = min(outcomes, key=outcomes.get)
                rows.append(
                    (
                        data_mb,
                        f"{cpu:.0f}",
                        *(f"{outcomes[p]:.1f}" for p in PATTERNS),
                        winner,
                    )
                )
        table(
            "SHIP: makespan (sim s) per pattern across the sweep",
            ["data MB", "cpu s", *PATTERNS, "winner"],
            rows,
        )
        # Big data: moving the data is the dominant cost, so running at
        # the data (ship-procedure, 0.5 s procedure move) must beat
        # moving 500 MB of data (50 s).
        big = run_cell(500_000_000, 2.0, collocatable=False)
        assert big["ship-procedure"] < big["ship-data"]
        assert min(big, key=big.get) in ("ship-procedure", "ship-both")
        # Tiny data: the transfer is negligible either way — the sweep's
        # interesting crossover is in the big-data rows above.
        small = run_cell(1_000_000, 2.0, collocatable=False)
        assert abs(small["ship-data"] - small["ship-procedure"]) < 1.0

    scenario(run)


def test_ship_data_wins_when_small_and_parallel(scenario, table):
    def run():
        """Small data + a queue at the data site: moving data to the big
        free pool beats queueing behind the data-site's single host."""
        vds = build_world(1_000_000, 30.0, collocatable=True)
        # Jam the data site's only host.
        vds.grid.sites["data-site"].compute.allocate(0.0, 10_000.0)
        outcomes = {}
        for pattern in ("collocate", "ship-data"):
            vds2 = build_world(1_000_000, 30.0, collocatable=True)
            vds2.grid.sites["data-site"].compute.allocate(0.0, 10_000.0)
            result = vds2.materialize("out.dat", reuse="never", pattern=pattern)
            outcomes[pattern] = result.makespan
        table(
            "SHIP: busy data site, 1 MB dataset",
            ["pattern", "makespan (sim s)"],
            [(p, f"{m:.1f}") for p, m in outcomes.items()],
        )
        assert outcomes["ship-data"] < outcomes["collocate"]

    scenario(run)


def test_ship_procedure_installs_once(scenario, table):
    def run():
        """Procedure caching: the second workflow at the data site pays no
        procedure transfer (pattern 2 amortizes like replication)."""
        vds = build_world(500_000_000, 5.0, collocatable=False)
        first = vds.materialize("out.dat", reuse="never", pattern="ship-procedure")
        vds.define(
            'DV c2->crunch( o=@{output:"out2.dat"}, i=@{input:"big.dat"} );'
        )
        second = vds.materialize("out2.dat", reuse="never",
                                 pattern="ship-procedure")
        table(
            "SHIP: procedure shipping amortization",
            ["run", "stage-in + queue (sim s)"],
            [
                ("first (ships procedure)", f"{first.makespan:.2f}"),
                ("second (procedure cached)", f"{second.makespan:.2f}"),
            ],
        )
        assert second.makespan <= first.makespan

    scenario(run)


def test_ship_selection_throughput(benchmark):
    vds = build_world(50_000_000, 10.0, collocatable=True)
    plan = vds.plan("out.dat", reuse="never")
    step = next(iter(plan.steps.values()))
    choice = benchmark(
        lambda: vds.selector.choose(step, "ship-both", now=0.0)
    )
    assert choice.site in ("data-site", "cpu-site")
