"""EST — estimator accuracy against the simulated grid (§5.3).

Two claims are checked: (a) predicted workflow makespan tracks the
simulator within a small factor, and (b) prediction error shrinks as
invocation history accumulates — the virtue of recording resource
usage with provenance (§2).
"""


from repro.catalog.memory import MemoryCatalog
from repro.estimator.cost import Estimator
from repro.estimator.workflow import estimate_plan
from repro.system import VirtualDataSystem
from repro.workloads import sdss


def build_vds(fields=20):
    vds = VirtualDataSystem.with_grid(
        {"anl": 16, "uc": 16}, authority="est.org", bandwidth=50e6
    )
    campaign = sdss.define_campaign(
        vds.catalog, fields=fields, fields_per_stripe=fields
    )
    for i, field in enumerate(campaign.field_datasets):
        vds.seed_dataset(field, ("anl", "uc")[i % 2], sdss.FIELD_BYTES)
    return vds, campaign


def test_est_predicted_vs_measured(scenario, table):
    def run():
        vds, campaign = build_vds()
        plan = vds.plan(campaign.targets[0], reuse="never")
        hosts = 32
        estimate = estimate_plan(plan, host_count=hosts,
                                 include_intermediates=True)
        result = vds.materialize(campaign.targets[0], reuse="never")
        ratio = estimate.makespan_seconds / result.makespan
        table(
            "EST: predicted vs simulated workflow makespan",
            ["quantity", "predicted", "simulated", "ratio"],
            [
                (
                    "makespan (sim s)",
                    f"{estimate.makespan_seconds:.0f}",
                    f"{result.makespan:.0f}",
                    f"{ratio:.2f}",
                ),
                (
                    "total cpu (s)",
                    f"{estimate.total_cpu_seconds:.0f}",
                    f"{result.total_cpu_seconds():.0f}",
                    f"{estimate.total_cpu_seconds / result.total_cpu_seconds():.2f}",
                ),
            ],
        )
        assert 1 / 3 <= ratio <= 3

    scenario(run)


def test_est_error_shrinks_with_history(scenario, table):
    def run():
        """Fit quality improves as more invocations are recorded.

        Ground truth: cpu = 1 + 2e-7 * bytes.  The estimator sees noisy
        samples and must converge toward the true coefficients.
        """
        import random

        from repro.core.invocation import Invocation, ResourceUsage

        rng = random.Random(5)
        truth = lambda b: 1.0 + 2e-7 * b  # noqa: E731
        rows = []
        errors = []
        for samples in (2, 8, 32, 128):
            catalog = MemoryCatalog().define(
                """
                TR model-me( output o, input i ) {
                  argument stdin = ${input:i};
                  argument stdout = ${output:o};
                  exec = "/bin/m";
                }
                DV m1->model-me( o=@{output:"out"}, i=@{input:"in"} );
                """
            )
            for _ in range(samples):
                size = rng.randint(1_000_000, 100_000_000)
                noisy = truth(size) * rng.uniform(0.85, 1.15)
                catalog.add_invocation(
                    Invocation(
                        derivation_name="m1",
                        usage=ResourceUsage(
                            cpu_seconds=noisy,
                            wall_seconds=noisy,
                            bytes_read=size,
                        ),
                    )
                )
            estimator = Estimator(catalog)
            model = estimator.model_for("model-me")
            probe = 50_000_000
            error = abs(model.predict_cpu_seconds(probe) - truth(probe)) / truth(probe)
            errors.append(error)
            rows.append((samples, f"{model.per_byte:.2e}", f"{error * 100:.1f}%"))
        table(
            "EST: model error vs history size (truth: 1 + 2e-7 B)",
            ["invocations", "fitted per-byte", "error @50MB"],
            rows,
        )
        assert errors[-1] < 0.10  # converged within 10%
        assert errors[-1] <= max(errors)  # no degradation with data

    scenario(run)


def test_est_planning_query(benchmark):
    vds, campaign = build_vds()
    plan = vds.plan(campaign.targets[0], reuse="never")
    estimate = benchmark(
        lambda: estimate_plan(plan, host_count=32, include_intermediates=True)
    )
    assert estimate.step_count == len(plan)
