"""HEP4 — the Chimera-0 four-stage HEP challenge (§6).

Executes the real 4-stage event pipeline (generate -> simulate ->
reconstruct -> analyze, with the OODBMS-stand-in object container
between the last two stages) under the local executor, and reports the
provenance volume and per-stage costs the catalog captured.
"""

import json

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.executor.local import LocalExecutor
from repro.provenance.lineage import lineage_report
from repro.workloads import hep


@pytest.fixture
def executor(tmp_path):
    catalog = MemoryCatalog()
    ex = LocalExecutor(catalog, tmp_path)
    hep.register_bodies(ex)
    return ex


def test_hep_four_stage_chain(benchmark, executor, table):
    runs = []

    def one_run():
        run_id = f"run{len(runs):03d}"
        target = hep.define_run(
            executor.catalog, run_id, seed=len(runs), events=500
        )
        invocations = executor.materialize(target)
        runs.append((run_id, target, invocations))
        return invocations

    invocations = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert len(invocations) == 4
    run_id, target, _ = runs[-1]
    histogram = json.loads(executor.path_for(target).read_text())
    assert histogram["passed"] > 0

    report = lineage_report(executor.catalog, target)
    assert report.depth() == 4
    rows = []
    for inv in invocations:
        rows.append(
            (
                inv.derivation_name.split(".")[-1],
                f"{inv.usage.wall_seconds * 1e3:.1f}",
                inv.usage.bytes_read,
                inv.usage.bytes_written,
            )
        )
    table(
        f"HEP4: 4-stage chain ({run_id}, 500 events)",
        ["stage", "wall ms", "bytes in", "bytes out"],
        rows,
    )
    # The last two stages exchange the object container, as in §6.
    container = json.loads(executor.path_for(f"{run_id}.objects").read_text())
    assert container["kind"] == "object-container"


def test_hep_provenance_volume(scenario, executor, table):
    def run():
        """Catalog growth per run: 4 derivations, 4 invocations, 4 replicas."""
        for i in range(5):
            target = hep.define_run(executor.catalog, f"batch{i}", seed=i, events=50)
            executor.materialize(target)
        counts = executor.catalog.counts()
        table(
            "HEP4: provenance volume after 5 runs",
            ["object", "count"],
            sorted(counts.items()),
        )
        assert counts["derivation"] == 20
        assert counts["invocation"] == 20
        assert counts["replica"] == 20
        # Audit question: which runs used the buggy simulator version?
        consumers = executor.catalog.find_derivations(transformation="hepevt-sim")
        assert len(consumers) == 5

    scenario(run)


