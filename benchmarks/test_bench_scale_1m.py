"""SCALE1M — planning at the 10^6-node wall.

§6 sizes real campaigns at "many millions" of data objects; this
benchmark drives the planner's whole pipeline — generate, cold plan,
schedule (frontier drain), analyze (CPM slack over the plan) — across
graph sizes up to 10^6 derivations and records wall time per stage.
Two properties are enforced:

* **no quadratic blow-up**: per-step cold-plan cost at the largest size
  may exceed the smallest size's by at most a constant factor (a
  quadratic planner would scale it with the size ratio);
* **incremental re-plan**: after a single-derivation mutation on the
  reference graph, re-planning through the planner's event-driven plan
  cache must be >= 20x faster than the cold plan (>= 3x in smoke mode,
  where graphs are small enough that fixed costs dominate).

Writes ``BENCH_SCALE_1M.json`` at the repo root;
``check_bench_trajectory.py`` guards the committed baseline.  Set
``BENCH_SMOKE=1`` (CI) to shrink graph sizes to 2k/10k nodes.
"""

import os
import time
from pathlib import Path

from repro.catalog.memory import MemoryCatalog
from repro.core.derivation import DatasetArg, Derivation
from repro.core.naming import VDPRef
from repro.durability.atomic import atomic_write_json
from repro.observability.analysis import compute_slack
from repro.planner.dag import Frontier, Planner
from repro.planner.request import MaterializationRequest
from repro.workloads import canonical

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
SIZES = (2_000, 10_000) if SMOKE else (100_000, 1_000_000)
#: Graph the re-plan experiment runs on (the reference size).
REPLAN_SIZE = SIZES[0]
MUTATIONS = 3
#: Largest-vs-smallest per-step cold-plan cost ratio allowed; the size
#: ratio itself is 5-10x, so a quadratic planner would blow past this.
QUADRATIC_RATIO_MAX = 4.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_SCALE_1M.json"


class _PlanRecord:
    """Minimal flight-record shim: unit-duration timings over a plan.

    Lets :func:`compute_slack` run against a plan that was never
    executed, which is exactly the shape of a what-if analysis over a
    10^6-step campaign.
    """

    def __init__(self, plan, order):
        self._timings = {
            name: {"step": name, "start": float(i), "end": float(i) + 1.0}
            for i, name in enumerate(order)
        }
        self._deps = plan.dependencies

    def step_timings(self):
        return self._timings

    def dependencies(self):
        return self._deps


def _mutate_derivation(catalog, name, round_no):
    """Redefine one derivation in place (a changed ``tag`` actual)."""
    dv = catalog.get_derivation(name)
    actuals = dict(dv.actuals)
    actuals["tag"] = f"mut-{round_no}"
    catalog.add_derivation(
        Derivation(
            name=dv.name,
            transformation=VDPRef.parse(
                dv.transformation.vdl_text(),
                default_kind="transformation",
            ),
            actuals={
                formal: value
                if isinstance(value, str)
                else DatasetArg(
                    dataset=value.dataset, direction=value.direction
                )
                for formal, value in actuals.items()
            },
        ),
        replace=True,
        validate=False,
        auto_declare=False,
    )


def _measure_size(nodes: int) -> tuple[dict, MemoryCatalog, Planner, tuple]:
    catalog = MemoryCatalog()
    t0 = time.perf_counter()
    info = canonical.generate_graph(
        catalog, nodes=nodes, layers=25, max_fanin=3, seed=7
    )
    generate_s = time.perf_counter() - t0

    planner = Planner(catalog, incremental=True)
    targets = tuple(sorted(info.sink_datasets))
    request = MaterializationRequest(targets=targets, reuse="never")
    t0 = time.perf_counter()
    plan = planner.plan(request)
    plan_s = time.perf_counter() - t0
    assert len(plan.steps) == nodes

    t0 = time.perf_counter()
    order = plan.topological_order()
    frontier = Frontier(plan)
    drained = 0
    while True:
        ready = frontier.ready()
        if not ready:
            break
        for name in ready:
            frontier.complete(name)
            drained += 1
    schedule_s = time.perf_counter() - t0
    assert drained == len(plan.steps)

    t0 = time.perf_counter()
    slack = compute_slack(_PlanRecord(plan, order))
    analyze_s = time.perf_counter() - t0
    assert len(slack) == len(plan.steps)

    row = {
        "steps": len(plan.steps),
        "generate_s": generate_s,
        "plan_s": plan_s,
        "schedule_s": schedule_s,
        "analyze_s": analyze_s,
        "plan_us_per_step": plan_s / len(plan.steps) * 1e6,
    }
    return row, catalog, planner, (info, request)


def test_scale_to_1m(scenario, table):
    def run():
        sizes: dict[str, dict] = {}
        replan: dict = {}
        display = []
        for nodes in SIZES:
            row, catalog, planner, (info, request) = _measure_size(nodes)
            sizes[str(nodes)] = row
            display.append(
                (
                    nodes,
                    f"{row['generate_s']:.2f}",
                    f"{row['plan_s']:.2f}",
                    f"{row['schedule_s']:.2f}",
                    f"{row['analyze_s']:.2f}",
                    f"{row['plan_us_per_step']:.0f}",
                )
            )
            if nodes == REPLAN_SIZE:
                # Re-plan after a single-derivation mutation: the
                # incremental planner patches the cached plan instead
                # of re-walking the graph.
                replan_s = 0.0
                for round_no in range(MUTATIONS):
                    target = info.derivations[
                        (nodes // 2) + round_no * 101
                    ]
                    _mutate_derivation(catalog, target, round_no)
                    t0 = time.perf_counter()
                    patched = planner.plan(request)
                    replan_s += time.perf_counter() - t0
                    assert len(patched.steps) == nodes
                replan_s /= MUTATIONS
                replan = {
                    "size": nodes,
                    "cold_plan_s": row["plan_s"],
                    "replan_s": replan_s,
                    "speedup": row["plan_s"] / replan_s
                    if replan_s
                    else float("inf"),
                    "mutations": MUTATIONS,
                }
            del catalog, planner  # free before the next (bigger) size

        smallest, largest = str(SIZES[0]), str(SIZES[-1])
        ratio = (
            sizes[largest]["plan_us_per_step"]
            / sizes[smallest]["plan_us_per_step"]
        )
        results = {
            "smoke": SMOKE,
            "cores": os.cpu_count(),
            "sizes": sizes,
            "quadratic_ratio": ratio,
            "quadratic_ratio_max": QUADRATIC_RATIO_MAX,
            "replan": replan,
        }
        table(
            "SCALE1M: planning pipeline wall time vs graph size",
            ["nodes", "gen s", "plan s", "sched s", "slack s", "us/step"],
            display,
        )
        table(
            "SCALE1M: cold plan vs incremental re-plan (1 mutation)",
            ["nodes", "cold s", "replan s", "speedup"],
            [
                (
                    replan["size"],
                    f"{replan['cold_plan_s']:.2f}",
                    f"{replan['replan_s']:.4f}",
                    f"{replan['speedup']:.0f}x",
                )
            ],
        )
        atomic_write_json(RESULT_PATH, results)
        # Linear-ish scaling: per-step plan cost must not grow with
        # graph size the way a quadratic walk would.
        assert ratio <= QUADRATIC_RATIO_MAX, (
            f"per-step plan cost grew {ratio:.1f}x from {smallest} to "
            f"{largest} nodes"
        )
        assert replan["speedup"] >= (3.0 if SMOKE else 20.0)
        return results

    scenario(run)
