"""FAULT — makespan overhead of fault recovery vs injected failure rate.

The paper's campaigns ran on real testbeds where "the production runs
lived with partial failure as the norm"; the resilience layer
(fault injection + backoff/breaker/failover recovery, see
docs/RESILIENCE.md) must buy correctness under faults at a bounded
makespan premium.  This benchmark sweeps the transient-fault rate over
{0, 0.1, 0.3} on the HEP analysis chain and the SDSS mini-campaign and
reports the recovery overhead relative to the fault-free run — the
workflow always converges to the same final replica set; only the
clock pays.
"""

from repro.resilience import FaultPlan, RecoveryConfig
from repro.system import VirtualDataSystem
from repro.workloads import hep, sdss

RATES = (0.0, 0.1, 0.3)
SEED = 0


def run_hep(rate: float):
    plan = FaultPlan(seed=SEED, transient_rate=rate)
    vds = VirtualDataSystem.with_grid(
        {"anl": 8, "uc": 8, "uw": 8},
        authority="bench.hep",
        fault_plan=None if plan.is_null else plan,
        recovery=RecoveryConfig.hardened(seed=SEED),
    )
    target = hep.define_run(vds.catalog, "bench", seed=3, events=100)
    vds.executor.max_retries = 10
    result = vds.materialize(target, reuse="never")
    assert result.succeeded
    retries = sum(o.attempts - 1 for o in result.outcomes.values())
    return result.makespan, retries, set(vds.replicas.lfns())


def run_sdss(rate: float):
    plan = FaultPlan(seed=SEED, transient_rate=rate)
    vds = VirtualDataSystem.with_grid(
        {"anl": 16, "uc": 16, "uw": 16, "ufl": 16},
        authority="bench.sdss",
        fault_plan=None if plan.is_null else plan,
        recovery=RecoveryConfig.hardened(seed=SEED),
    )
    campaign = sdss.define_campaign(vds.catalog, fields=6, fields_per_stripe=3)
    sites = sorted(vds.grid.sites)
    for i, field in enumerate(campaign.field_datasets):
        vds.seed_dataset(field, sites[i % len(sites)], sdss.FIELD_BYTES)
    vds.executor.max_retries = 10
    result = vds.materialize(tuple(campaign.targets), reuse="never")
    assert result.succeeded
    retries = sum(o.attempts - 1 for o in result.outcomes.values())
    return result.makespan, retries, set(vds.replicas.lfns())


def sweep(runner):
    rows = []
    baseline_makespan = None
    baseline_lfns = None
    for rate in RATES:
        makespan, retries, lfns = runner(rate)
        if baseline_makespan is None:
            baseline_makespan, baseline_lfns = makespan, lfns
        # Correctness is not rate-dependent: every sweep cell ends in
        # the same final replica state as the fault-free run.
        assert lfns == baseline_lfns
        overhead = makespan / baseline_makespan
        rows.append(
            (
                f"{rate:.1f}",
                f"{makespan:.1f}",
                retries,
                f"{overhead:.2f}x",
            )
        )
    return rows


def test_hep_recovery_overhead(scenario, table):
    rows = scenario(sweep, run_hep)
    table(
        "FAULT-HEP: makespan vs injected transient-fault rate",
        ["fault_rate", "makespan_s", "retries", "overhead"],
        rows,
    )
    assert rows[0][2] == 0  # fault-free run needs no retries


def test_sdss_recovery_overhead(scenario, table):
    rows = scenario(sweep, run_sdss)
    table(
        "FAULT-SDSS: makespan vs injected transient-fault rate",
        ["fault_rate", "makespan_s", "retries", "overhead"],
        rows,
    )
    assert rows[0][2] == 0
