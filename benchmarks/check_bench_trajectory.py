"""Bench-trajectory guard: fresh numbers vs the committed baselines.

The repo commits five benchmark result files at the root —
``BENCH_OBS_OVERHEAD.json``, ``BENCH_PARALLEL_SPEEDUP.json``,
``BENCH_ANALYSIS_SCALE.json``, ``BENCH_CRASH_RECOVERY.json`` and
``BENCH_SCALE_1M.json`` — as the performance trajectory of record.
This guard re-runs the benchmarks in smoke mode and fails when the
*fresh* measurement has drifted past the committed trajectory:

* **observability overhead** — the fresh live-instrumentation and
  sampling-profiler overheads may exceed the committed figures by at
  most a tolerance (``BENCH_TRAJECTORY_TOLERANCE_PTS`` percentage
  points, default 25: smoke runs on shared CI hardware are noisy, so
  the guard catches order-of-magnitude regressions, not jitter), and
  the committed profiler overhead must hold its own 5% budget;
* **parallel speedup** — for every plan, the fresh speedup at the
  widest measured worker count must stay above the committed speedup
  times a floor factor (``BENCH_TRAJECTORY_SPEEDUP_FLOOR``, default
  0.35: CI runners have fewer cores than the quiet machine behind the
  committed numbers, so only a collapse to near-serial fails);
* **analysis scale** — the committed incremental-vs-cold analysis
  speedup at 10^5 nodes must hold the PR-7 acceptance floor
  (``BENCH_ANALYSIS_MIN_SPEEDUP``, default 50), and the fresh smoke
  speedup must stay above the committed figure times
  ``BENCH_TRAJECTORY_ANALYSIS_FLOOR`` (default 0.2);
* **crash recovery** — the committed journaled-commit overhead on the
  representative workload must hold its own 10% budget, and the fresh
  smoke overhead may exceed the committed figure by at most
  ``BENCH_TRAJECTORY_CRASHREC_PTS`` percentage points (default 25:
  the smoke chain is short, so per-step noise dominates);
* **planning scale** — the committed 10^5/10^6-node run must hold the
  incremental-replan acceptance floor
  (``BENCH_SCALE_MIN_REPLAN_SPEEDUP``, default 20) and stay within its
  own recorded quadratic-ratio ceiling; the fresh smoke replan speedup
  must clear ``BENCH_TRAJECTORY_REPLAN_FLOOR`` (default 3: smoke
  graphs are small, fixed costs dominate);
* **CPU-bound backends** — when the committed
  ``BENCH_PARALLEL_SPEEDUP.json`` ``cpu_bound`` section was measured
  on >= 4 cores, the process backend must have delivered >= 2.5x over
  thread/w1 while 4 threads stayed ~1x (the GIL-escape acceptance
  criterion); on fewer cores the numbers are recorded but not
  enforceable and the guard says so instead of failing.

Running the benchmarks overwrites the committed files, so the guard
snapshots them first and restores them afterwards — the working tree
is left untouched either way.

Usage (CI)::

    PYTHONPATH=src python benchmarks/check_bench_trajectory.py

Exit 0 on trajectory held, 1 on regression or harness failure.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
OBS_PATH = REPO_ROOT / "BENCH_OBS_OVERHEAD.json"
SPEEDUP_PATH = REPO_ROOT / "BENCH_PARALLEL_SPEEDUP.json"
ANALYSIS_PATH = REPO_ROOT / "BENCH_ANALYSIS_SCALE.json"
CRASHREC_PATH = REPO_ROOT / "BENCH_CRASH_RECOVERY.json"
SCALE_PATH = REPO_ROOT / "BENCH_SCALE_1M.json"

DEFAULT_TOLERANCE_PTS = 25.0
DEFAULT_SPEEDUP_FLOOR = 0.35
DEFAULT_ANALYSIS_FLOOR = 0.2
DEFAULT_ANALYSIS_MIN_SPEEDUP = 50.0
DEFAULT_CRASHREC_PTS = 25.0
DEFAULT_REPLAN_FLOOR = 3.0
DEFAULT_SCALE_MIN_REPLAN = 20.0
DEFAULT_CPU_MIN_PROCESS_SPEEDUP = 2.5
DEFAULT_CPU_MAX_THREAD_SPEEDUP = 1.5


def check_obs_overhead(
    committed: dict,
    fresh: dict,
    tolerance_pts: float = DEFAULT_TOLERANCE_PTS,
) -> list[str]:
    """Problems with the fresh overhead numbers, empty when on track."""
    problems: list[str] = []
    base = committed.get("live_overhead_pct")
    live = fresh.get("live_overhead_pct")
    if base is None or live is None:
        return ["overhead result missing live_overhead_pct"]
    ceiling = base + tolerance_pts
    if live > ceiling:
        problems.append(
            f"live overhead {live:+.2f}% exceeds committed "
            f"{base:+.2f}% by more than {tolerance_pts:g}pts"
        )
    base_prof = committed.get("profiled_overhead_pct")
    prof = fresh.get("profiled_overhead_pct")
    if base_prof is None or prof is None:
        problems.append("overhead result missing profiled_overhead_pct")
    else:
        prof_budget = float(committed.get("profiler_budget_pct", 5.0))
        if float(base_prof) > prof_budget:
            problems.append(
                f"committed profiler overhead {float(base_prof):+.2f}% "
                f"exceeds its own {prof_budget:g}% budget"
            )
        # Same clamp as crash-recovery: a noise-negative committed
        # figure must not tighten the ceiling below the tolerance.
        prof_ceiling = max(float(base_prof), 0.0) + tolerance_pts
        if float(prof) > prof_ceiling:
            problems.append(
                f"profiler overhead {float(prof):+.2f}% exceeds "
                f"committed {float(base_prof):+.2f}% by more than "
                f"{tolerance_pts:g}pts"
            )
    if committed.get("smoke"):
        problems.append(
            "committed BENCH_OBS_OVERHEAD.json came from a smoke run; "
            "re-run the full benchmark and commit the result"
        )
    return problems


def check_parallel_speedup(
    committed: dict,
    fresh: dict,
    floor_factor: float = DEFAULT_SPEEDUP_FLOOR,
) -> list[str]:
    """Problems with the fresh speedup numbers, empty when on track."""
    problems: list[str] = []
    committed_plans = committed.get("plans", {})
    fresh_plans = fresh.get("plans", {})
    if not committed_plans:
        return ["committed BENCH_PARALLEL_SPEEDUP.json has no plans"]
    for name, base_plan in sorted(committed_plans.items()):
        fresh_plan = fresh_plans.get(name)
        if fresh_plan is None:
            problems.append(f"plan {name!r} missing from fresh results")
            continue
        base_speedups = base_plan.get("speedup_vs_1", {})
        fresh_speedups = fresh_plan.get("speedup_vs_1", {})
        shared = set(base_speedups) & set(fresh_speedups)
        if not shared:
            problems.append(f"plan {name!r} has no comparable widths")
            continue
        widest = max(shared, key=int)
        base = float(base_speedups[widest])
        got = float(fresh_speedups[widest])
        floor = base * floor_factor
        if got < floor:
            problems.append(
                f"plan {name!r} speedup at {widest} workers collapsed: "
                f"{got:.2f}x < floor {floor:.2f}x "
                f"(committed {base:.2f}x * {floor_factor:g})"
            )
    return problems


def check_analysis_scale(
    committed: dict,
    fresh: dict,
    floor_factor: float = DEFAULT_ANALYSIS_FLOOR,
    min_speedup: float = DEFAULT_ANALYSIS_MIN_SPEEDUP,
) -> list[str]:
    """Problems with the fresh analysis numbers, empty when on track."""
    problems: list[str] = []
    base = committed.get("speedup")
    got = fresh.get("speedup")
    if base is None or got is None:
        return ["analysis result missing speedup"]
    if committed.get("smoke"):
        problems.append(
            "committed BENCH_ANALYSIS_SCALE.json came from a smoke run; "
            "re-run the full benchmark and commit the result"
        )
    if float(base) < min_speedup:
        problems.append(
            f"committed incremental-analysis speedup {float(base):.1f}x "
            f"is below the {min_speedup:g}x acceptance floor"
        )
    floor = float(base) * floor_factor
    if float(got) < floor:
        problems.append(
            f"incremental-analysis speedup collapsed: {float(got):.1f}x "
            f"< floor {floor:.1f}x "
            f"(committed {float(base):.1f}x * {floor_factor:g})"
        )
    return problems


def check_crash_recovery(
    committed: dict,
    fresh: dict,
    tolerance_pts: float = DEFAULT_CRASHREC_PTS,
) -> list[str]:
    """Problems with the fresh durability numbers, empty when on track."""
    problems: list[str] = []
    base = committed.get("rep_overhead_pct")
    got = fresh.get("rep_overhead_pct")
    if base is None or got is None:
        return ["crash-recovery result missing rep_overhead_pct"]
    if committed.get("smoke"):
        problems.append(
            "committed BENCH_CRASH_RECOVERY.json came from a smoke run; "
            "re-run the full benchmark and commit the result"
        )
    budget = float(committed.get("budget_pct", 10.0))
    if float(base) > budget:
        problems.append(
            f"committed journal overhead {float(base):+.2f}% exceeds "
            f"its own {budget:g}% budget"
        )
    # Clamp the base at zero: a noise-negative committed figure must
    # not tighten the ceiling below the tolerance itself.
    ceiling = max(float(base), 0.0) + tolerance_pts
    if float(got) > ceiling:
        problems.append(
            f"journal overhead {float(got):+.2f}% exceeds committed "
            f"{float(base):+.2f}% by more than {tolerance_pts:g}pts"
        )
    return problems


def check_scale_1m(
    committed: dict,
    fresh: dict,
    replan_floor: float = DEFAULT_REPLAN_FLOOR,
    min_replan: float = DEFAULT_SCALE_MIN_REPLAN,
) -> list[str]:
    """Problems with the fresh scale numbers, empty when on track."""
    problems: list[str] = []
    base_replan = committed.get("replan", {}).get("speedup")
    fresh_replan = fresh.get("replan", {}).get("speedup")
    if base_replan is None or fresh_replan is None:
        return ["scale result missing replan speedup"]
    if committed.get("smoke"):
        problems.append(
            "committed BENCH_SCALE_1M.json came from a smoke run; "
            "re-run the full benchmark and commit the result"
        )
    if float(base_replan) < min_replan:
        problems.append(
            f"committed incremental-replan speedup "
            f"{float(base_replan):.1f}x is below the {min_replan:g}x "
            f"acceptance floor"
        )
    ratio = committed.get("quadratic_ratio")
    ratio_max = committed.get("quadratic_ratio_max")
    if ratio is None or ratio_max is None:
        problems.append("scale result missing quadratic ratio")
    elif float(ratio) > float(ratio_max):
        problems.append(
            f"committed per-step plan-cost ratio {float(ratio):.2f} "
            f"exceeds its own ceiling {float(ratio_max):g} "
            f"(quadratic blow-up)"
        )
    if float(fresh_replan) < replan_floor:
        problems.append(
            f"incremental-replan speedup collapsed: "
            f"{float(fresh_replan):.1f}x < floor {replan_floor:g}x"
        )
    return problems


def check_cpu_bound_backend(
    committed: dict,
    min_process: float = DEFAULT_CPU_MIN_PROCESS_SPEEDUP,
    max_thread: float = DEFAULT_CPU_MAX_THREAD_SPEEDUP,
) -> list[str]:
    """Problems with the committed CPU-bound backend comparison.

    Only the committed figures are judged: the acceptance criterion is
    a property of the quiet >= 4-core machine behind the baseline, not
    of whatever CI runner re-ran the smoke pass.
    """
    cpu = committed.get("cpu_bound")
    if cpu is None:
        return [
            "committed BENCH_PARALLEL_SPEEDUP.json has no cpu_bound "
            "section; re-run the full benchmark and commit the result"
        ]
    cores = int(cpu.get("cores") or 0)
    if cores < 4:
        print(
            f"note: committed cpu_bound baseline measured on {cores} "
            f"core(s); GIL-escape floors need >= 4 and are not enforced"
        )
        return []
    problems: list[str] = []
    process = float(cpu.get("speedup_process_4", 0.0))
    thread = float(cpu.get("speedup_thread_4", 0.0))
    if process < min_process:
        problems.append(
            f"committed process-backend speedup {process:.2f}x at 4 "
            f"workers is below the {min_process:g}x GIL-escape floor"
        )
    if thread > max_thread:
        problems.append(
            f"committed thread-backend speedup {thread:.2f}x on "
            f"CPU-bound stages exceeds {max_thread:g}x — the workload "
            f"is not actually GIL-bound, so the comparison proves "
            f"nothing"
        )
    return problems


def _load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def _run_benchmark(test_file: str) -> bool:
    env = dict(os.environ)
    env["BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", test_file, "-q", "-s"],
        cwd=REPO_ROOT,
        env=env,
    )
    return proc.returncode == 0


def main(argv: list[str] | None = None) -> int:
    tolerance = float(
        os.environ.get(
            "BENCH_TRAJECTORY_TOLERANCE_PTS", DEFAULT_TOLERANCE_PTS
        )
    )
    floor = float(
        os.environ.get(
            "BENCH_TRAJECTORY_SPEEDUP_FLOOR", DEFAULT_SPEEDUP_FLOOR
        )
    )
    analysis_floor = float(
        os.environ.get(
            "BENCH_TRAJECTORY_ANALYSIS_FLOOR", DEFAULT_ANALYSIS_FLOOR
        )
    )
    analysis_min = float(
        os.environ.get(
            "BENCH_ANALYSIS_MIN_SPEEDUP", DEFAULT_ANALYSIS_MIN_SPEEDUP
        )
    )
    crashrec_pts = float(
        os.environ.get("BENCH_TRAJECTORY_CRASHREC_PTS", DEFAULT_CRASHREC_PTS)
    )
    replan_floor = float(
        os.environ.get("BENCH_TRAJECTORY_REPLAN_FLOOR", DEFAULT_REPLAN_FLOOR)
    )
    min_replan = float(
        os.environ.get(
            "BENCH_SCALE_MIN_REPLAN_SPEEDUP", DEFAULT_SCALE_MIN_REPLAN
        )
    )
    committed = {}
    for path in (
        OBS_PATH, SPEEDUP_PATH, ANALYSIS_PATH, CRASHREC_PATH, SCALE_PATH,
    ):
        if not path.exists():
            print(f"missing committed baseline {path.name}", file=sys.stderr)
            return 1
        committed[path.name] = path.read_text(encoding="utf-8")

    problems: list[str] = []
    try:
        if not _run_benchmark(
            "benchmarks/test_bench_observability_overhead.py"
        ):
            problems.append("observability overhead benchmark failed")
        else:
            problems += check_obs_overhead(
                json.loads(committed[OBS_PATH.name]),
                _load(OBS_PATH),
                tolerance_pts=tolerance,
            )
        if not _run_benchmark("benchmarks/test_bench_parallel_speedup.py"):
            problems.append("parallel speedup benchmark failed")
        else:
            problems += check_parallel_speedup(
                json.loads(committed[SPEEDUP_PATH.name]),
                _load(SPEEDUP_PATH),
                floor_factor=floor,
            )
            problems += check_cpu_bound_backend(
                json.loads(committed[SPEEDUP_PATH.name]),
            )
        if not _run_benchmark("benchmarks/test_bench_analysis_scale.py"):
            problems.append("analysis scale benchmark failed")
        else:
            problems += check_analysis_scale(
                json.loads(committed[ANALYSIS_PATH.name]),
                _load(ANALYSIS_PATH),
                floor_factor=analysis_floor,
                min_speedup=analysis_min,
            )
        if not _run_benchmark("benchmarks/test_bench_crash_recovery.py"):
            problems.append("crash recovery benchmark failed")
        else:
            problems += check_crash_recovery(
                json.loads(committed[CRASHREC_PATH.name]),
                _load(CRASHREC_PATH),
                tolerance_pts=crashrec_pts,
            )
        if not _run_benchmark("benchmarks/test_bench_scale_1m.py"):
            problems.append("planning scale benchmark failed")
        else:
            problems += check_scale_1m(
                json.loads(committed[SCALE_PATH.name]),
                _load(SCALE_PATH),
                replan_floor=replan_floor,
                min_replan=min_replan,
            )
    finally:
        # The smoke runs overwrote the committed files: put them back.
        for path in (
            OBS_PATH, SPEEDUP_PATH, ANALYSIS_PATH, CRASHREC_PATH, SCALE_PATH,
        ):
            path.write_text(committed[path.name], encoding="utf-8")

    if problems:
        for problem in problems:
            print(f"TRAJECTORY REGRESSION: {problem}", file=sys.stderr)
        return 1
    print(
        "bench trajectory held (overhead, speedup, analysis scale, "
        "crash-recovery cost and planning scale within bounds)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
