"""CATHOT — lineage-query fast paths at campaign scale (§4, cs/0306009).

CMS-style campaigns put tens of thousands of derivations in a catalog,
and the planner asks "who produces/consumes this dataset" for every
node it expands.  This benchmark measures lineage-query latency at 1k
and 10k derivations two ways: through the incremental secondary
indexes (``producers_of``/``consumers_of``, O(1) dict lookups) and via
the full-store scan the catalog would otherwise need (decode every
derivation, test its actuals).

Writes ``BENCH_CATALOG_HOTPATH.json`` at the repo root.  Set
``BENCH_SMOKE=1`` (CI) to drop the 10k tier and the >= 10x assertion.
"""

import json
import os
import time
from pathlib import Path

from repro.catalog.memory import MemoryCatalog
from repro.durability.atomic import atomic_write_json
from repro.workloads import canonical

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
SIZES = (1_000,) if SMOKE else (1_000, 10_000)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_CATALOG_HOTPATH.json"


def scan_producers(catalog, dataset):
    """The pre-index query plan: decode every derivation, test it."""
    return [
        dv
        for name in catalog.derivation_names()
        for dv in [catalog.get_derivation(name)]
        if dv.produces(dataset)
    ]


def _time(fn, reps):
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def test_cathot_lineage_latency(scenario, table):
    def run():
        results = {}
        display = []
        for nodes in SIZES:
            catalog = MemoryCatalog()
            graph = canonical.generate_graph(
                catalog, nodes=nodes, layers=20, seed=5
            )
            probe = graph.all_datasets[nodes // 2]
            expected = [dv.name for dv in catalog.producers_of(probe)]
            assert [
                dv.name for dv in scan_producers(catalog, probe)
            ] == expected  # both query plans agree

            indexed_s = _time(lambda: catalog.producers_of(probe), 200)
            scan_s = _time(lambda: scan_producers(catalog, probe), 3)
            ratio = scan_s / indexed_s
            results[str(nodes)] = {
                "indexed_us": indexed_s * 1e6,
                "scan_us": scan_s * 1e6,
                "speedup": ratio,
                "cache": catalog.cache_stats(),
            }
            display.append(
                (
                    nodes,
                    f"{indexed_s * 1e6:.0f}",
                    f"{scan_s * 1e6:.0f}",
                    f"{ratio:.0f}x",
                )
            )
        table(
            "CATHOT: producers_of latency, indexed vs full scan",
            ["derivations", "indexed us", "scan us", "speedup"],
            display,
        )
        atomic_write_json(RESULT_PATH, {"smoke": SMOKE, "sizes": results})
        if not SMOKE:
            # Acceptance: >= 10x lineage-query speedup at 10k derivations.
            assert results["10000"]["speedup"] >= 10.0
        return results

    scenario(run)
