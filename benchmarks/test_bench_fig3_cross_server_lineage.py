"""FIG3 — dataset dependency hyperlinks across virtual data servers.

Builds personal -> group -> collaboration chains of configurable depth
and measures cross-catalog lineage resolution; the table reports how
audit-trail cost grows with chain depth across three server tiers.
"""

from repro.catalog.memory import MemoryCatalog
from repro.catalog.resolver import CatalogNetwork, ReferenceResolver
from repro.provenance.lineage import cross_catalog_lineage

STAGE_VDL = """
TR step{i}( output o, input i ) {{
  argument stdin = ${{input:i}};
  argument stdout = ${{output:o}};
  exec = "/bin/step{i}";
}}
DV d{i}->step{i}( o=@{{output:"data.{i}"}}, i=@{{input:"data.{j}"}} );
"""


def build_tiers(depth: int):
    """A chain of ``depth`` derivations distributed round-robin over
    collaboration, group and personal catalogs."""
    net = CatalogNetwork()
    collab = net.register(MemoryCatalog(authority="collab.org"))
    group = net.register(MemoryCatalog(authority="group.org"))
    personal = MemoryCatalog(authority="me.org")
    tiers = [collab, group, personal]
    for i in range(depth):
        catalog = tiers[min(2, i * 3 // depth)]
        catalog.define(STAGE_VDL.format(i=i, j=i - 1 if i else "raw"))
    resolver = ReferenceResolver(
        personal, net, scope_chain=["group.org", "collab.org"]
    )
    return resolver, f"data.{depth - 1}"


def test_fig3_lineage_depth_scaling(scenario, table):
    def sweep():
        rows = []
        for depth in (3, 9, 30, 90):
            resolver, target = build_tiers(depth)
            report = cross_catalog_lineage(resolver, target)
            assert report.depth() == depth
            assert len(report.all_derivations()) == depth
            authorities = set()

            def walk(r):
                for step in r.steps:
                    authorities.add(step.authority)
                    for sub in step.inputs.values():
                        walk(sub)

            walk(report)
            rows.append(
                (depth, len(report.all_derivations()), len(authorities))
            )
            assert len(authorities) == 3  # chain crosses all three tiers
        return rows

    rows = scenario(sweep)
    table(
        "FIG3: cross-server lineage chains",
        ["chain depth", "derivations in trail", "servers crossed"],
        rows,
    )


def test_fig3_resolution_throughput(benchmark):
    resolver, target = build_tiers(30)

    def resolve():
        return cross_catalog_lineage(resolver, target)

    report = benchmark(resolve)
    assert report.depth() == 30
