"""FIG4 — indexing the virtual data grid at multiple levels.

Compares discovery latency of a federated index against direct
multi-catalog scans as the community grows, and quantifies the
freshness/cost trade-off between live and periodic index maintenance.

Expected shape: the index answers discovery queries orders of magnitude
faster than scanning every member catalog, and the gap widens with
community size; periodic indexes trade staleness for zero update cost.
"""

import time

from repro.catalog.federation import FederatedIndex, scan_catalogs
from repro.catalog.memory import MemoryCatalog
from repro.core.dataset import Dataset
from repro.core.types import DatasetType


def build_community(catalog_count: int, datasets_per_catalog: int):
    catalogs = []
    for c in range(catalog_count):
        catalog = MemoryCatalog(authority=f"site{c}.org")
        for d in range(datasets_per_catalog):
            catalog.add_dataset(
                Dataset(
                    name=f"ds.{c}.{d:04d}",
                    dataset_type=DatasetType(
                        content="SDSS" if d % 2 == 0 else "CMS"
                    ),
                )
            )
        catalogs.append(catalog)
    return catalogs


def timed(fn, repeat=5):
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fig4_index_vs_scan(scenario, table):
    rows = scenario(_index_vs_scan_rows)
    table(
        "FIG4: discovery — federated index vs direct scan",
        ["catalogs", "objects", "scan ms", "index ms", "speedup"],
        rows,
    )
    # The index must win decisively at every scale (it skips the
    # per-catalog record deserialization a scan pays), and the
    # absolute time saved grows with community size.
    speedups = [float(r[4][:-1]) for r in rows]
    assert all(s > 2.0 for s in speedups)
    saved = [float(r[2]) - float(r[3]) for r in rows]
    assert saved[-1] > saved[0]


def _index_vs_scan_rows():
    rows = []
    for catalog_count in (2, 4, 8, 16):
        catalogs = build_community(catalog_count, 200)
        index = FederatedIndex("community", kinds=("dataset",))
        for catalog in catalogs:
            index.attach(catalog)
        want = DatasetType(content="SDSS")
        scan_time, scan_hits = timed(
            lambda: scan_catalogs(catalogs, "dataset", conforms_to=want)
        )
        index_time, index_hits = timed(
            lambda: index.find("dataset", conforms_to=want)
        )
        assert len(scan_hits) == len(index_hits) == catalog_count * 100
        rows.append(
            (
                catalog_count,
                catalog_count * 200,
                f"{scan_time * 1e3:.2f}",
                f"{index_time * 1e3:.2f}",
                f"{scan_time / index_time:.1f}x",
            )
        )
    return rows


def test_fig4_freshness_tradeoff(scenario, table):
    def run():
        catalogs = build_community(4, 100)
        live = FederatedIndex("live", mode="live", kinds=("dataset",))
        periodic = FederatedIndex(
            "periodic", mode="periodic", kinds=("dataset",)
        )
        for catalog in catalogs:
            live.attach(catalog)
            periodic.attach(catalog)
        # A burst of updates lands on the community.
        for i in range(50):
            catalogs[i % 4].add_dataset(Dataset(name=f"new.{i:03d}"))
        live_fresh = len(live.find("dataset", name_glob="new.*"))
        stale = len(periodic.find("dataset", name_glob="new.*"))
        pending = periodic.pending_updates
        refresh_time, _ = timed(periodic.refresh, repeat=3)
        after = len(periodic.find("dataset", name_glob="new.*"))
        return live_fresh, stale, pending, refresh_time, after

    live_fresh, stale, pending, refresh_time, after = scenario(run)
    table(
        "FIG4: index freshness (50 updates after attach)",
        ["index", "new datasets visible", "pending", "refresh ms"],
        [
            ("live", live_fresh, 0, "n/a"),
            ("periodic (stale)", stale, pending, "n/a"),
            ("periodic (refreshed)", after, 0, f"{refresh_time * 1e3:.2f}"),
        ],
    )
    assert live_fresh == 50
    assert stale == 0
    assert after == 50
    assert pending == 50


def test_fig4_index_query(benchmark):
    catalogs = build_community(8, 200)
    index = FederatedIndex("community", kinds=("dataset",))
    for catalog in catalogs:
        index.attach(catalog)
    hits = benchmark(lambda: index.find("dataset", name_glob="ds.3.*"))
    assert len(hits) == 200
