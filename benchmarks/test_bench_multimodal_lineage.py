"""MULTI — interactive ATLAS/CMS-style analysis with per-point lineage.

§6's closing goal: "to be able to produce, for each data point in the
final graph, a detailed data lineage report on the datasets that
contributed to the creation of that point", over multi-modal data
(files, relational rows, persistent object closures).

The benchmark runs the interactive analysis chain (multi-stage sim ->
cut-set -> per-bin histogram points -> combined graph), then produces
a lineage report for every point and measures report generation rate.
It also exercises the multi-modal descriptors: the cut-set's identity
as an object-closure and a SQL row-range dataset's fine-grained overlap.
"""

import json

import pytest

from repro.catalog.memory import MemoryCatalog
from repro.core.dataset import Dataset
from repro.core.descriptors import ObjectClosureDescriptor, SQLRowsDescriptor
from repro.executor.local import LocalExecutor
from repro.grid.objectstore import ObjectStore
from repro.provenance.lineage import lineage_report
from repro.workloads import hep

BINS = tuple(str(b) for b in range(6))


@pytest.fixture(scope="module")
def analysis(tmp_path_factory):
    catalog = MemoryCatalog()
    executor = LocalExecutor(catalog, tmp_path_factory.mktemp("hep"))
    hep.register_bodies(executor)
    hep.register_analysis_bodies(executor)
    graph_ds = hep.define_analysis_chain(catalog, "ana1", bins=BINS)
    executor.materialize(graph_ds)
    return catalog, executor, graph_ds


def test_multi_per_point_lineage(scenario, analysis, table):
    def run():
        catalog, executor, graph_ds = analysis
        graph = json.loads(executor.path_for(graph_ds).read_text())
        assert len(graph["points"]) == len(BINS)
        rows = []
        for bin_id in BINS:
            point = f"ana1.point{bin_id}"
            report = lineage_report(catalog, point)
            derivations = report.all_derivations()
            # The full audit trail per data point (the §6 goal).
            assert {"ana1.gen", "ana1.sim", "ana1.reco", "ana1.select",
                    f"ana1.hist{bin_id}"} <= derivations
            rows.append(
                (
                    f"point {bin_id}",
                    report.depth(),
                    len(derivations),
                    f"{report.total_cpu_seconds() * 1e3:.1f}",
                )
            )
        table(
            "MULTI: lineage per histogram point",
            ["data point", "trail depth", "derivations", "recorded cpu ms"],
            rows,
        )

    scenario(run)


def test_multi_lineage_rate(analysis, benchmark):
    catalog, _, _ = analysis

    def all_points():
        return [
            lineage_report(catalog, f"ana1.point{b}") for b in BINS
        ]

    reports = benchmark(all_points)
    assert all(r.depth() == 5 for r in reports)


def test_multi_modal_descriptors(scenario, analysis, table):
    def run():
        """Files + object closures + relational rows in one trail."""
        catalog, executor, _ = analysis
        # The reco output is, logically, an object container: register the
        # matching closure descriptor and check extraction works.
        container = json.loads(executor.path_for("ana1.objects").read_text())
        store = ObjectStore("ana1-objects")
        for oid, payload in container["objects"].items():
            store.put(oid, payload=payload)
        descriptor = ObjectClosureDescriptor(
            store="ana1-objects", roots=tuple(container["roots"][:10])
        )
        ds = catalog.get_dataset("ana1.objects")
        catalog.add_dataset(ds.materialized(descriptor), replace=True)
        closure = store.closure(descriptor.roots)
        assert len(closure) == 10

        # A fine-grained relational dataset: rows of a cut table.
        cuts = SQLRowsDescriptor(
            database="analysisdb",
            tables=("cuts",),
            keys=tuple(container["roots"][:5]),
        )
        other = SQLRowsDescriptor(
            database="analysisdb",
            tables=("cuts",),
            keys=tuple(container["roots"][3:8]),
        )
        assert cuts.overlaps(other)  # shared rows detected at key grain
        catalog.add_dataset(
            Dataset(name="ana1.cutrows", descriptor=cuts), replace=True
        )
        table(
            "MULTI: multi-modal containers in one trail",
            ["dataset", "container kind", "granularity"],
            [
                ("ana1.hist0", "file", "whole file"),
                ("ana1.objects", "object-closure", f"{len(closure)} objects"),
                ("ana1.cutrows", "sql-rows", f"{cuts.row_count_hint()} rows"),
            ],
        )

    scenario(run)


