"""OBS — instrumentation overhead on a canonical-graph materialization.

The observability layer must be cheap enough to leave on.  This
benchmark materializes every sink of a generated canonical dependency
graph (§6) through the local executor — so all derivations execute,
with real per-step work: file I/O, sha256 digests, provenance
write-back — twice: once with the no-op tracer
(``NullInstrumentation``, the default every call site gets) and once
with a live ``Instrumentation`` recording the full span tree and
metric set.  Live must stay within 10% of no-op.

Timing methodology: the two variants run in *interleaved* rounds on
fresh catalogs/sandboxes (graph generation outside the timer, gc
paused inside it), alternating which goes first, and we compare the
*minimum* per-round CPU times (``time.process_time``).  Minimum is
the standard low-noise estimator for micro-comparisons; CPU time
excludes I/O scheduling jitter — correct here, since instrumentation
overhead is pure CPU; interleaving with alternating order cancels
slow drift (thermal/frequency) between the measurement phases.
"""

from __future__ import annotations

import gc
import itertools
import time

from repro.catalog.memory import MemoryCatalog
from repro.executor.local import LocalExecutor
from repro.observability import Instrumentation, NullInstrumentation
from repro.workloads import canonical

NODES = 150
LAYERS = 6
#: Enough rounds for the per-variant minimum to converge on this
#: noisy shared hardware (per-round times vary by ~30%; minima don't).
ROUNDS = 15

_uniq = itertools.count()


def build_executor(tmp_path, instrumentation):
    catalog = MemoryCatalog()
    desc = canonical.generate_graph(
        catalog, nodes=NODES, layers=LAYERS, seed=7
    )
    executor = LocalExecutor(
        catalog,
        tmp_path / f"sandbox-{next(_uniq)}",
        instrumentation=instrumentation,
    )
    canonical.register_bodies(executor)
    return executor, sorted(desc.sink_datasets)


def materialize_all(executor, sinks) -> int:
    total = 0
    for sink in sinks:
        total += len(executor.materialize(sink, reuse="always"))
    return total


def timed_round(tmp_path, instrumentation) -> tuple[float, int]:
    executor, sinks = build_executor(tmp_path, instrumentation)
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        steps = materialize_all(executor, sinks)
        return time.process_time() - start, steps
    finally:
        gc.enable()


def test_obs_overhead_under_ten_percent(scenario, table, tmp_path):
    def run():
        timed_round(tmp_path, NullInstrumentation())  # warm imports
        noop = live = float("inf")
        steps = 0
        for i in range(ROUNDS):
            pair = [
                (NullInstrumentation(), "noop"),
                (Instrumentation(), "live"),
            ]
            if i % 2:
                pair.reverse()
            for instrumentation, variant in pair:
                seconds, steps = timed_round(tmp_path, instrumentation)
                if variant == "noop":
                    noop = min(noop, seconds)
                else:
                    live = min(live, seconds)
        overhead = (live / noop - 1) * 100
        table(
            f"OBS overhead: canonical graph, {NODES} nodes / {steps} "
            f"executed steps, best of {ROUNDS}",
            ["variant", "seconds", "overhead"],
            [
                ("no-op tracer", f"{noop:.5f}", "-"),
                ("live tracer+metrics", f"{live:.5f}", f"{overhead:+.1f}%"),
            ],
        )
        assert live <= noop * 1.10, (
            f"live instrumentation overhead {overhead:+.1f}% exceeds 10% "
            f"(no-op {noop:.5f}s, live {live:.5f}s)"
        )
        return noop, live

    scenario(run)
