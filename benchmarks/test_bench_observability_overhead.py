"""OBS — instrumentation overhead on a canonical-graph materialization.

The observability layer must be cheap enough to leave on.  This
benchmark materializes every sink of a generated canonical dependency
graph (§6) through the local executor — so all derivations execute,
with real per-step work: file I/O, sha256 digests, provenance
write-back — three times: with the no-op tracer
(``NullInstrumentation``, the default every call site gets), with a
live ``Instrumentation`` recording the full span tree and metric set,
and with the live handle *plus* an attached flight recorder streaming
the run to JSONL.  Live must stay within 10% of no-op; the recorded
variant is reported for trend-watching (it adds per-line fsync-free
writes, not CPU in the hot path).

The measured ratios land in ``BENCH_OBS_OVERHEAD.json`` at the repo
root; the CI observability job re-runs this in smoke mode and fails
when the recorded live overhead exceeds the 10% budget.

Timing methodology: the variants run in *interleaved* rounds on
fresh catalogs/sandboxes (graph generation outside the timer, gc
paused inside it), rotating which goes first, and we compare the
*minimum* per-round CPU times (``time.process_time``).  Minimum is
the standard low-noise estimator for micro-comparisons; CPU time
excludes I/O scheduling jitter — correct here, since instrumentation
overhead is pure CPU; interleaving with rotating order cancels slow
drift (thermal/frequency) between the measurement phases.

``BENCH_SMOKE=1`` (CI) shrinks the graph and round count and skips
the in-test assertion — shared runners are too noisy for a 10%
micro-comparison; the JSON still lands for the workflow's budget
check against the committed full-size numbers.
"""

from __future__ import annotations

import gc
import itertools
import json
import os
import time
from pathlib import Path

from repro.catalog.memory import MemoryCatalog
from repro.durability.atomic import atomic_write_json
from repro.executor.local import LocalExecutor
from repro.observability import (
    FlightRecorder,
    Instrumentation,
    NullInstrumentation,
)
from repro.workloads import canonical

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

NODES = 40 if SMOKE else 150
LAYERS = 6
#: Enough rounds for the per-variant minimum to converge on this
#: noisy shared hardware (per-round times vary by ~30%; minima don't).
ROUNDS = 3 if SMOKE else 15

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_OBS_OVERHEAD.json"

_uniq = itertools.count()


def build_executor(tmp_path, instrumentation):
    catalog = MemoryCatalog()
    desc = canonical.generate_graph(
        catalog, nodes=NODES, layers=LAYERS, seed=7
    )
    executor = LocalExecutor(
        catalog,
        tmp_path / f"sandbox-{next(_uniq)}",
        instrumentation=instrumentation,
    )
    canonical.register_bodies(executor)
    return executor, sorted(desc.sink_datasets)


def materialize_all(executor, sinks) -> int:
    total = 0
    for sink in sinks:
        total += len(executor.materialize(sink, reuse="always"))
    return total


def timed_round(tmp_path, variant) -> tuple[float, int]:
    if variant == "noop":
        instrumentation = NullInstrumentation()
        recorder = None
    else:
        instrumentation = Instrumentation()
        recorder = None
        if variant == "recorded":
            recorder = FlightRecorder.start(
                tmp_path / f"runs-{next(_uniq)}", command="bench"
            )
            instrumentation.attach_recorder(recorder)
    executor, sinks = build_executor(tmp_path, instrumentation)
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        steps = materialize_all(executor, sinks)
        return time.process_time() - start, steps
    finally:
        gc.enable()
        if recorder is not None:
            recorder.finalize(instrumentation, status="ok")


def test_obs_overhead_under_ten_percent(scenario, table, tmp_path):
    def run():
        timed_round(tmp_path, "noop")  # warm imports
        best = {"noop": float("inf"), "live": float("inf"),
                "recorded": float("inf")}
        steps = 0
        variants = list(best)
        for i in range(ROUNDS):
            order = variants[i % 3:] + variants[: i % 3]
            for variant in order:
                seconds, steps = timed_round(tmp_path, variant)
                best[variant] = min(best[variant], seconds)
        overhead = (best["live"] / best["noop"] - 1) * 100
        rec_overhead = (best["recorded"] / best["noop"] - 1) * 100
        table(
            f"OBS overhead: canonical graph, {NODES} nodes / {steps} "
            f"executed steps, best of {ROUNDS}",
            ["variant", "seconds", "overhead"],
            [
                ("no-op tracer", f"{best['noop']:.5f}", "-"),
                (
                    "live tracer+metrics",
                    f"{best['live']:.5f}",
                    f"{overhead:+.1f}%",
                ),
                (
                    "live + flight recorder",
                    f"{best['recorded']:.5f}",
                    f"{rec_overhead:+.1f}%",
                ),
            ],
        )
        atomic_write_json(
            RESULT_PATH,
            {
                "nodes": NODES,
                "steps": steps,
                "rounds": ROUNDS,
                "smoke": SMOKE,
                "noop_seconds": best["noop"],
                "live_seconds": best["live"],
                "recorded_seconds": best["recorded"],
                "live_overhead_pct": round(overhead, 2),
                "recorded_overhead_pct": round(rec_overhead, 2),
                "budget_pct": 10.0,
            },
        )
        if not SMOKE:
            assert best["live"] <= best["noop"] * 1.10, (
                f"live instrumentation overhead {overhead:+.1f}% exceeds "
                f"10% (no-op {best['noop']:.5f}s, live "
                f"{best['live']:.5f}s)"
            )
        return best["noop"], best["live"], best["recorded"]

    scenario(run)
