"""OBS — instrumentation overhead on a canonical-graph materialization.

The observability layer must be cheap enough to leave on.  This
benchmark materializes every sink of a generated canonical dependency
graph (§6) through the local executor — so all derivations execute,
with real per-step work: file I/O, sha256 digests, provenance
write-back — five times: with the no-op tracer
(``NullInstrumentation``, the default every call site gets), with a
live ``Instrumentation`` recording the full span tree and metric set,
with the live handle *plus* the always-on sampling profiler, with the
live handle *plus* an attached flight recorder streaming the run to
JSONL, and with the live handle on the ``backend="process"`` pool so
the cross-process telemetry relay (worker capture, pickling, parent
merge) is on the measured path.  Live must stay within 10% of no-op
and the sampling profiler within 5% of live; the recorded variant is
reported for trend-watching (it adds per-line fsync-free writes, not
CPU in the hot path).  The process variant is also trend-only:
``time.process_time`` excludes child CPU, so its figure is the
*parent-side* coordination cost (scheduling, provenance collection,
telemetry merge) and has no meaningful ratio against the in-process
variants.

The measured ratios land in ``BENCH_OBS_OVERHEAD.json`` at the repo
root; the CI observability job re-runs this in smoke mode and fails
when the recorded live or profiler overhead exceeds its budget.

Timing methodology: the variants run in *interleaved* rounds on
fresh catalogs/sandboxes (graph generation outside the timer, gc
paused inside it), rotating which goes first, and we compare the
*minimum* per-round CPU times (``time.process_time``).  Minimum is
the standard low-noise estimator for micro-comparisons; CPU time
excludes I/O scheduling jitter — correct here, since instrumentation
overhead is pure CPU; interleaving with rotating order cancels slow
drift (thermal/frequency) between the measurement phases.

Each step's body hashes a fixed :data:`PAYLOAD_BYTES` ballast on top
of the canonical digest chain, pinning per-step cost to deterministic
CPU work (~1-2 ms at 1 GiB/s sha256).  Without the ballast a step is
dominated by filesystem latency, and the overhead *ratio* then
measures the machine's tmpfs speed rather than the instrumentation:
the same ~0.1 ms of absolute per-step instrumentation cost reads as
5% on a slow-disk host and 16% on a fast one.  Representative step
cost (real transformations run for seconds, §6) keeps the ratio
comparable across machines and commits.

``BENCH_SMOKE=1`` (CI) shrinks the graph and round count and skips
the in-test assertion — shared runners are too noisy for a 10%
micro-comparison; the JSON still lands for the workflow's budget
check against the committed full-size numbers.
"""

from __future__ import annotations

import gc
import hashlib
import itertools
import json
import os
import time
from pathlib import Path

from repro.catalog.memory import MemoryCatalog
from repro.durability.atomic import atomic_write_json
from repro.executor.local import LocalExecutor
from repro.observability import (
    FlightRecorder,
    Instrumentation,
    NullInstrumentation,
    SamplingProfiler,
)
from repro.workloads import canonical

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

NODES = 40 if SMOKE else 150
LAYERS = 6
#: Enough rounds for the per-variant minimum to converge on this
#: noisy shared hardware (per-round times vary by ~30%; minima don't).
ROUNDS = 3 if SMOKE else 15
#: Ballast hashed per step so step cost is deterministic CPU work, not
#: filesystem latency (see the module docstring).  Smoke keeps steps
#: light — CI only proves the harness runs.
PAYLOAD_BYTES = (128 if SMOKE else 2048) * 1024

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_OBS_OVERHEAD.json"

_uniq = itertools.count()

_BALLAST = b"\x5a" * PAYLOAD_BYTES


def _weighted_body(ctx):
    """The canonical digest chain plus a fixed CPU ballast.

    Module-level (not a closure) so the process-backend variant can
    pickle it for worker processes.
    """
    hasher = hashlib.sha256()
    hasher.update(ctx.parameters["tag"].encode())
    for formal in sorted(ctx.input_paths):
        hasher.update(ctx.read_input(formal))
    hasher.update(_BALLAST)
    ctx.write_output("o", hasher.hexdigest() + "\n")


def build_executor(tmp_path, instrumentation):
    catalog = MemoryCatalog()
    desc = canonical.generate_graph(
        catalog, nodes=NODES, layers=LAYERS, seed=7
    )
    executor = LocalExecutor(
        catalog,
        tmp_path / f"sandbox-{next(_uniq)}",
        instrumentation=instrumentation,
    )
    for fanin in range(canonical.MAX_FANIN + 1):
        executor.register(f"py:canon{fanin}", _weighted_body)
    return executor, sorted(desc.sink_datasets)


def materialize_all(executor, sinks, backend="thread") -> int:
    total = 0
    for sink in sinks:
        total += len(
            executor.materialize(sink, reuse="always", backend=backend)
        )
    return total


def timed_round(tmp_path, variant) -> tuple[float, int]:
    recorder = None
    profiler = None
    if variant == "noop":
        instrumentation = NullInstrumentation()
    else:
        instrumentation = Instrumentation()
        if variant == "recorded":
            recorder = FlightRecorder.start(
                tmp_path / f"runs-{next(_uniq)}", command="bench"
            )
            instrumentation.attach_recorder(recorder)
        elif variant == "profiled":
            profiler = SamplingProfiler()
            instrumentation.attach_profiler(profiler)
    executor, sinks = build_executor(tmp_path, instrumentation)
    backend = "process" if variant == "process" else "thread"
    gc.collect()
    gc.disable()
    # The sampler thread spins up outside the timer, but its samples
    # (taken and bucketed on this process's CPUs) land inside it —
    # exactly the always-on cost the 5% budget is about.
    if profiler is not None:
        profiler.start()
    try:
        start = time.process_time()
        steps = materialize_all(executor, sinks, backend=backend)
        return time.process_time() - start, steps
    finally:
        gc.enable()
        if profiler is not None:
            profiler.stop()
        if recorder is not None:
            recorder.finalize(instrumentation, status="ok")


def test_obs_overhead_under_ten_percent(scenario, table, tmp_path):
    def run():
        timed_round(tmp_path, "noop")  # warm imports
        best = {"noop": float("inf"), "live": float("inf"),
                "profiled": float("inf"), "recorded": float("inf"),
                "process": float("inf")}
        steps = 0
        variants = list(best)
        width = len(variants)
        for i in range(ROUNDS):
            order = variants[i % width:] + variants[: i % width]
            for variant in order:
                seconds, steps = timed_round(tmp_path, variant)
                best[variant] = min(best[variant], seconds)
        overhead = (best["live"] / best["noop"] - 1) * 100
        prof_overhead = (best["profiled"] / best["live"] - 1) * 100
        rec_overhead = (best["recorded"] / best["noop"] - 1) * 100
        table(
            f"OBS overhead: canonical graph, {NODES} nodes / {steps} "
            f"executed steps, best of {ROUNDS}",
            ["variant", "seconds", "overhead"],
            [
                ("no-op tracer", f"{best['noop']:.5f}", "-"),
                (
                    "live tracer+metrics",
                    f"{best['live']:.5f}",
                    f"{overhead:+.1f}%",
                ),
                (
                    "live + sampling profiler",
                    f"{best['profiled']:.5f}",
                    f"{prof_overhead:+.1f}% vs live",
                ),
                (
                    "live + flight recorder",
                    f"{best['recorded']:.5f}",
                    f"{rec_overhead:+.1f}%",
                ),
                (
                    "live, process backend",
                    f"{best['process']:.5f}",
                    "parent CPU only",
                ),
            ],
        )
        atomic_write_json(
            RESULT_PATH,
            {
                "nodes": NODES,
                "steps": steps,
                "rounds": ROUNDS,
                "payload_bytes": PAYLOAD_BYTES,
                "smoke": SMOKE,
                "noop_seconds": best["noop"],
                "live_seconds": best["live"],
                "profiled_seconds": best["profiled"],
                "recorded_seconds": best["recorded"],
                "process_seconds": best["process"],
                "live_overhead_pct": round(overhead, 2),
                "profiled_overhead_pct": round(prof_overhead, 2),
                "recorded_overhead_pct": round(rec_overhead, 2),
                "budget_pct": 10.0,
                "profiler_budget_pct": 5.0,
            },
        )
        if not SMOKE:
            assert best["live"] <= best["noop"] * 1.10, (
                f"live instrumentation overhead {overhead:+.1f}% exceeds "
                f"10% (no-op {best['noop']:.5f}s, live "
                f"{best['live']:.5f}s)"
            )
            assert best["profiled"] <= best["live"] * 1.05, (
                f"sampling profiler overhead {prof_overhead:+.1f}% "
                f"exceeds 5% (live {best['live']:.5f}s, profiled "
                f"{best['profiled']:.5f}s)"
            )
        return best["noop"], best["live"], best["recorded"]

    scenario(run)
