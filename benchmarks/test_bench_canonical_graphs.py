"""CANON — canonical applications and large dependency graphs (§6).

"We also created 'canonical' applications ... and used these to create
large application dependency graphs to validate our provenance
tracking mechanism."  This benchmark scales the generated graphs to
10^3–10^4 derivations and measures the provenance operations a catalog
must sustain at that size: graph construction, ancestry queries,
topological ordering, and target-rooted expansion.
"""

import time

from repro.catalog.memory import MemoryCatalog
from repro.provenance.graph import DerivationGraph
from repro.workloads import canonical


def build(nodes: int, seed: int = 0):
    catalog = MemoryCatalog()
    graph_desc = canonical.generate_graph(
        catalog, nodes=nodes, layers=max(4, nodes // 200), seed=seed
    )
    return catalog, graph_desc


def test_canon_provenance_scaling(scenario, table):
    def run():
        rows = []
        for nodes in (1_000, 3_000, 10_000):
            catalog, desc = build(nodes)
            start = time.perf_counter()
            graph = DerivationGraph.from_catalog(catalog)
            build_s = time.perf_counter() - start

            sink = sorted(desc.sink_datasets)[0]
            start = time.perf_counter()
            ancestors = graph.upstream_datasets(sink)
            ancestry_s = time.perf_counter() - start

            start = time.perf_counter()
            order = graph.topological_order()
            topo_s = time.perf_counter() - start

            start = time.perf_counter()
            sub = graph.required_for(sink)
            expand_s = time.perf_counter() - start

            assert len(order) == len(graph)
            assert graph.is_acyclic()
            rows.append(
                (
                    nodes,
                    len(graph),
                    f"{build_s * 1e3:.0f}",
                    f"{ancestry_s * 1e3:.1f}",
                    f"{topo_s * 1e3:.0f}",
                    f"{expand_s * 1e3:.1f}",
                    len(sub.derivation_names()),
                )
            )
        table(
            "CANON: provenance tracking at scale",
            ["derivations", "graph nodes", "build ms", "ancestry ms",
             "topo ms", "expand ms", "steps for 1 sink"],
            rows,
        )

    scenario(run)


def test_canon_graph_build(benchmark):
    catalog, _ = build(2_000)
    graph = benchmark(lambda: DerivationGraph.from_catalog(catalog))
    assert len(graph.derivation_names()) == 2_000


def test_canon_ancestry_query(benchmark):
    catalog, desc = build(5_000)
    graph = DerivationGraph.from_catalog(catalog)
    sink = sorted(desc.sink_datasets)[0]
    upstream = benchmark(lambda: graph.upstream_datasets(sink))
    assert isinstance(upstream, set)


def test_canon_declared_equals_observed(scenario, tmp_path):
    def run():
        """Validation claim of §6: executed lineage == declared graph."""
        from repro.executor.local import LocalExecutor

        catalog = MemoryCatalog()
        desc = canonical.generate_graph(catalog, nodes=100, layers=10, seed=42)
        executor = LocalExecutor(catalog, tmp_path)
        canonical.register_bodies(executor)
        sink = sorted(desc.sink_datasets)[0]
        executed = {
            inv.derivation_name for inv in executor.materialize(sink)
        }
        declared = set(
            DerivationGraph.from_catalog(catalog)
            .required_for(sink)
            .derivation_names()
        )
        assert executed == declared

    scenario(run)


