"""ANSCALE — whole-graph dataflow analysis at 10^5 nodes.

The incremental analyzer's contract is that *queries pay for the dirty
cone, not the graph*: a 10^5-node canonical workload must cold-solve
all four shipped analyses within the smoke budget, and a re-query
after a single derivation mutation must be >= 50x faster than the cold
run (it re-solves only the mutation's influence cone).

Writes ``BENCH_ANALYSIS_SCALE.json`` at the repo root;
``check_bench_trajectory.py`` guards the committed baseline.  Set
``BENCH_SMOKE=1`` (CI) to relax the speedup assertion — the smoke run
still covers the full 10^5-node graph.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis.incremental import IncrementalAnalyzer
from repro.catalog.memory import MemoryCatalog
from repro.core.derivation import DatasetArg, Derivation
from repro.durability.atomic import atomic_write_json
from repro.core.naming import VDPRef
from repro.core.replica import Replica
from repro.workloads import canonical

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
NODES = 100_000
#: One replica per this many datasets gives the passes real material
#: (staleness targets, GC candidates) without dominating generation.
REPLICA_STRIDE = 16
MUTATIONS = 3
RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_ANALYSIS_SCALE.json"
)


def _mutate_derivation(catalog, name, round_no):
    """Redefine one derivation in place (a changed ``tag`` actual)."""
    dv = catalog.get_derivation(name)
    actuals = dict(dv.actuals)
    actuals["tag"] = f"mut-{round_no}"
    catalog.add_derivation(
        Derivation(
            name=dv.name,
            transformation=VDPRef.parse(
                dv.transformation.vdl_text(),
                default_kind="transformation",
            ),
            actuals={
                formal: value
                if isinstance(value, str)
                else DatasetArg(
                    dataset=value.dataset, direction=value.direction
                )
                for formal, value in actuals.items()
            },
        ),
        replace=True,
        validate=False,
        auto_declare=False,
    )


def test_anscale_incremental_vs_cold(scenario, table):
    def run():
        catalog = MemoryCatalog()
        t0 = time.perf_counter()
        graph = canonical.generate_graph(
            catalog, nodes=NODES, layers=40, seed=7
        )
        with catalog.bulk():
            for i, lfn in enumerate(graph.all_datasets):
                if i % REPLICA_STRIDE == 0:
                    catalog.add_replica(
                        Replica(
                            dataset_name=lfn,
                            location="bench-site",
                            replica_id=f"rep-{i:07d}",
                        )
                    )
        generate_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        analyzer = IncrementalAnalyzer(catalog)
        build_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        cold_diags = analyzer.diagnostics()
        full_s = time.perf_counter() - t0

        incremental_s = 0.0
        for round_no in range(MUTATIONS):
            target = graph.derivations[
                (NODES // 2) + round_no * 101
            ]
            _mutate_derivation(catalog, target, round_no)
            t0 = time.perf_counter()
            analyzer.diagnostics()
            incremental_s += time.perf_counter() - t0
        incremental_s /= MUTATIONS
        speedup = full_s / incremental_s if incremental_s else float("inf")

        results = {
            "smoke": SMOKE,
            "nodes": NODES,
            "graph_nodes": analyzer.stats()["nodes"],
            "generate_s": generate_s,
            "build_s": build_s,
            "full_s": full_s,
            "incremental_s": incremental_s,
            "speedup": speedup,
            "diagnostics": len(cold_diags),
        }
        table(
            "ANSCALE: full vs single-mutation incremental analysis",
            ["nodes", "build s", "full s", "incr s", "speedup"],
            [
                (
                    NODES,
                    f"{build_s:.2f}",
                    f"{full_s:.2f}",
                    f"{incremental_s:.4f}",
                    f"{speedup:.0f}x",
                )
            ],
        )
        atomic_write_json(RESULT_PATH, results)
        analyzer.close()
        # The incremental query must beat the cold solve handily even
        # on loaded CI hosts; the full 50x acceptance floor is enforced
        # on unloaded baseline runs and by check_bench_trajectory.py.
        assert speedup >= (10.0 if SMOKE else 50.0)
        return results

    scenario(run)
