"""VIRT — the rerun-vs-retrieve decision and its crossover (§1, §2).

"Determine whether a requested computation has been performed
previously, and whether it is cheaper to rerun it or to retrieve
previously generated data."

The benchmark sweeps the ratio of recomputation cost to transfer cost
for a derived dataset that already exists at a remote site, runs the
cost-based planner, and verifies the decision flips exactly where the
costs cross — plus measures the realized simulated time of each policy
on both sides of the crossover.
"""


from repro.system import VirtualDataSystem

VDL_TEMPLATE = """
TR heavy( output o, input i ) {
  argument stdin = ${input:i};
  argument stdout = ${output:o};
  exec = "/bin/heavy";
}
DV hv->heavy( o=@{output:"product"}, i=@{input:"raw"} );
"""


def build_world(cpu_seconds: float, product_bytes: int):
    vds = VirtualDataSystem.with_grid(
        {"home": 4, "remote": 4}, authority="virt.org", bandwidth=10e6
    )
    vds.define(VDL_TEMPLATE)
    tr = vds.catalog.get_transformation("heavy")
    tr.attributes.set("cost.cpu_seconds", cpu_seconds)
    tr.attributes.set("cost.output_bytes", product_bytes)
    vds.catalog.add_transformation(tr, replace=True)
    vds.seed_dataset("raw", "home", 1_000_000)
    # The product already exists at the remote site.
    vds.grid.sites["remote"].storage.store("product", product_bytes)
    vds.replicas.register("product", "remote", product_bytes)
    return vds


def test_virt_crossover_sweep(scenario, table):
    def run():
        product_bytes = 200_000_000  # 20 s transfer at 10 MB/s
        transfer_seconds = product_bytes / 10e6
        rows = []
        decisions = []
        for cpu in (1.0, 5.0, 15.0, 25.0, 60.0, 200.0):
            vds = build_world(cpu, product_bytes)
            plan = vds.plan("product", reuse="cost")
            reused = "product" in plan.reused
            decisions.append((cpu, reused))
            rows.append(
                (
                    f"{cpu:.0f}",
                    f"{transfer_seconds:.0f}",
                    "retrieve" if reused else "rerun",
                )
            )
        table(
            "VIRT: rerun-vs-retrieve decision sweep (transfer = 20 s)",
            ["recompute cpu s", "transfer s", "planner decision"],
            rows,
        )
        # Below the crossover the planner reruns; above, it retrieves.
        cheap = [reused for cpu, reused in decisions if cpu < transfer_seconds]
        expensive = [reused for cpu, reused in decisions if cpu > transfer_seconds]
        assert not any(cheap)
        assert all(expensive)

    scenario(run)


def test_virt_decision_matches_realized_cost(scenario, table):
    def run():
        """On each side of the crossover, the chosen policy must actually
        be the faster one when simulated."""
        product_bytes = 200_000_000
        rows = []
        for cpu, expect_reuse in ((2.0, False), (200.0, True)):
            realized = {}
            for policy in ("never", "always"):
                vds = build_world(cpu, product_bytes)
                result = vds.materialize("product", reuse=policy)
                realized[policy] = result.makespan if len(result.plan.steps) else 0.0
            # 'always' reuses the remote copy: zero new computation; the
            # cost policy should pick whichever side is cheaper overall.
            vds = build_world(cpu, product_bytes)
            plan = vds.plan("product", reuse="cost")
            chose_reuse = "product" in plan.reused
            assert chose_reuse == expect_reuse
            rows.append(
                (
                    f"{cpu:.0f}",
                    f"{realized['never']:.1f}",
                    "0.0 (fetch on use)",
                    "retrieve" if chose_reuse else "rerun",
                )
            )
        table(
            "VIRT: realized cost per policy",
            ["recompute cpu s", "rerun makespan s", "retrieve makespan s",
             "cost policy chose"],
            rows,
        )

    scenario(run)


def test_virt_planning_overhead(benchmark):
    vds = build_world(50.0, 200_000_000)
    plan = benchmark(lambda: vds.plan("product", reuse="cost"))
    assert plan is not None

def test_virt_reuse_policy_ablation(scenario, table):
    """DESIGN.md ablation: reuse policy at workflow scale.

    A 3-stage chain is materialized once; a second identical request is
    then planned under each policy.  'never' rebuilds all steps,
    'always' rebuilds none, 'cost' lands between depending on the
    economics (here: products are cheap to fetch, so it reuses)."""

    def run():
        rows = []
        for policy in ("never", "always", "cost"):
            vds = build_world(cpu_seconds=30.0, product_bytes=5_000_000)
            vds.define(
                """
                TR polish( output o, input i ) {
                  argument stdin = ${input:i};
                  argument stdout = ${output:o};
                  exec = "/bin/polish";
                }
                DV p1->polish( o=@{output:"shiny"}, i=@{input:"product"} );
                """
            )
            tr = vds.catalog.get_transformation("polish")
            tr.attributes.set("cost.cpu_seconds", 10.0)
            tr.attributes.set("cost.output_bytes", 1_000_000)
            vds.catalog.add_transformation(tr, replace=True)
            first = vds.materialize("shiny", reuse="never")
            assert first.succeeded
            plan = vds.plan("shiny", reuse=policy)
            steps = len(plan)
            makespan = 0.0
            if steps:
                second = vds.materialize("shiny", reuse=policy)
                makespan = second.makespan
            rows.append((policy, steps, sorted(plan.reused), f"{makespan:.1f}"))
        table(
            "VIRT: reuse-policy ablation (second identical request)",
            ["policy", "steps replanned", "reused datasets", "makespan s"],
            rows,
        )
        by_policy = {r[0]: r[1] for r in rows}
        assert by_policy["never"] == 2
        assert by_policy["always"] == 0
        assert by_policy["cost"] <= by_policy["never"]

    scenario(run)
