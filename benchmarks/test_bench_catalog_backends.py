"""CAT — catalog backend throughput (§3, §4, Appendix B).

The VDC "may variously be a relational database, OO database, XML
repository, or even a hierarchical directory": this benchmark compares
the three implemented realizations (memory, sqlite, filetree) on
insert, point lookup, provenance query, and discovery scan at growing
catalog sizes — the data behind the backend-choice guidance in
DESIGN.md.
"""

import time

import pytest

from repro.catalog.filetree import FileTreeCatalog
from repro.catalog.memory import MemoryCatalog
from repro.catalog.sqlite import SQLiteCatalog
from repro.workloads import canonical


def make_catalog(kind, tmp_path):
    if kind == "memory":
        return MemoryCatalog()
    if kind == "sqlite":
        return SQLiteCatalog()
    return FileTreeCatalog(tmp_path / f"vdc-{time.monotonic_ns()}")


BACKENDS = ("memory", "sqlite", "filetree")


def test_cat_backend_matrix(scenario, table, tmp_path):
    def run():
        nodes = 1_000
        rows = []
        for kind in BACKENDS:
            catalog = make_catalog(kind, tmp_path)
            start = time.perf_counter()
            desc = canonical.generate_graph(
                catalog, nodes=nodes, layers=10, seed=1
            )
            insert_s = time.perf_counter() - start

            probe = desc.derivations[nodes // 2]
            start = time.perf_counter()
            for _ in range(200):
                catalog.get_derivation(probe)
            lookup_us = (time.perf_counter() - start) / 200 * 1e6

            target = sorted(desc.sink_datasets)[0]
            start = time.perf_counter()
            for _ in range(50):
                catalog.producers_of(target)
            provenance_us = (time.perf_counter() - start) / 50 * 1e6

            start = time.perf_counter()
            hits = catalog.find_derivations(name_glob="cg.n0001*")
            scan_ms = (time.perf_counter() - start) * 1e3

            rows.append(
                (
                    kind,
                    f"{insert_s:.2f}",
                    f"{lookup_us:.0f}",
                    f"{provenance_us:.0f}",
                    f"{scan_ms:.0f}",
                    len(hits),
                )
            )
        table(
            f"CAT: backend throughput at {nodes} derivations",
            ["backend", "bulk insert s", "lookup us", "producers_of us",
             "glob scan ms", "scan hits"],
            rows,
        )
        # All backends must agree on query results (observational
        # equivalence); relative speed is reported, not asserted — e.g.
        # sqlite's C JSON decode beats memory's defensive deep copies.
        assert len({r[5] for r in rows}) == 1

    scenario(run)


@pytest.mark.parametrize("kind", BACKENDS)
def test_cat_insert_throughput(benchmark, kind, tmp_path):
    def insert_100():
        catalog = make_catalog(kind, tmp_path)
        canonical.generate_graph(catalog, nodes=100, layers=5, seed=2)
        return catalog

    catalog = benchmark.pedantic(insert_100, rounds=3, iterations=1)
    assert catalog.counts()["derivation"] == 100


@pytest.mark.parametrize("kind", BACKENDS)
def test_cat_lookup_throughput(benchmark, kind, tmp_path):
    catalog = make_catalog(kind, tmp_path)
    desc = canonical.generate_graph(catalog, nodes=200, layers=5, seed=3)
    probe = desc.derivations[100]
    dv = benchmark(lambda: catalog.get_derivation(probe))
    assert dv.name == probe
