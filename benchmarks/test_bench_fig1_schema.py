"""FIG1 — the five-object schema example as a benchmark.

Reproduces Figure 1 exactly (prog1: fnn -> foo, replica at U.Chicago,
20-second invocation) and measures the cost of recording one complete
provenance cell — the operation a virtual data catalog performs for
every derivation in a campaign.
"""

from repro.catalog.memory import MemoryCatalog
from repro.core.invocation import ExecutionContext, Invocation, ResourceUsage
from repro.core.replica import Replica

FIG1_VDL = """
TR prog1( output Y : type2, input X : type1 ) {
  argument = "-f "${input:X};
  argument stdout = ${output:Y};
  exec = "/usr/bin/prog1";
}
DV dfoo->prog1( Y=@{output:"foo"}, X=@{input:"fnn"} );
"""


def build_fig1_cell() -> MemoryCatalog:
    catalog = MemoryCatalog()
    catalog.types.register("content", "type1")
    catalog.types.register("content", "type2")
    catalog.define(FIG1_VDL)
    catalog.add_replica(Replica(dataset_name="foo", location="U.Chicago"))
    catalog.add_invocation(
        Invocation(
            derivation_name="dfoo",
            context=ExecutionContext.make(site="U.Chicago"),
            usage=ResourceUsage(cpu_seconds=20.0, wall_seconds=20.0),
        )
    )
    return catalog


def test_fig1_record_provenance_cell(benchmark, table):
    catalog = benchmark(build_fig1_cell)
    counts = catalog.counts()
    # All five object classes of Fig 1 are present and linked.
    assert counts == {
        "dataset": 2,
        "replica": 1,
        "transformation": 1,
        "derivation": 1,
        "invocation": 1,
    }
    dv = catalog.get_derivation("dfoo")
    assert dv.inputs() == ("fnn",) and dv.outputs() == ("foo",)
    assert catalog.get_dataset("foo").dataset_type.content == "type2"
    assert catalog.replicas_of("foo")[0].location == "U.Chicago"
    assert catalog.invocations_of("dfoo")[0].usage.cpu_seconds == 20.0
    table(
        "FIG1: five-object schema cell",
        ["object", "count"],
        sorted(counts.items()),
    )


def test_fig1_provenance_query(benchmark):
    catalog = build_fig1_cell()

    def query():
        from repro.provenance.lineage import lineage_report

        return lineage_report(catalog, "foo")

    report = benchmark(query)
    assert report.steps[0].derivation.name == "dfoo"
    assert report.steps[0].transformation_version == "1.0"
    assert len(report.steps[0].invocations) == 1
