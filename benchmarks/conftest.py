"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index
(figures as executable scenarios, §6 application claims, and the
planning/replication/estimation studies the paper leans on).  Each
prints the table rows it reproduces via :func:`print_table` so the
harness output can be compared side by side with EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render one experiment's result table to stdout."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table():
    return print_table


@pytest.fixture
def scenario(benchmark):
    """Run a whole experiment once under the benchmark timer.

    Scenario benchmarks (sweeps, ablations, table generators) are
    dominated by their own internal structure, so one timed round is
    the meaningful measurement; this also keeps them selected under
    ``--benchmark-only``.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
