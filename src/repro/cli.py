"""Command-line interface to a persistent virtual data workspace.

Gives the virtual data catalog the ``make``-like ergonomics the paper
gestures at ("the similarity of our system for tracking data
dependencies and those for tracking code ... e.g., 'make'", §8)::

    python -m repro init
    python -m repro define pipeline.vdl
    python -m repro lint pipeline.vdl   # or bare: lint the workspace
    python -m repro list derivations
    python -m repro plan result.dat
    python -m repro materialize result.dat
    python -m repro lineage result.dat
    python -m repro invalidate --dataset raw.dat
    python -m repro export --format vdl
    python -m repro stats            # metrics from the last run
    python -m repro trace            # span tree from the last run
    python -m repro runs             # list recorded runs
    python -m repro runs prune --keep 20
    python -m repro diff RUN_A RUN_B # run-over-run comparison
    python -m repro regress          # latest run vs pooled baseline
    python -m repro health           # per-site SLO scorecards
    python -m repro metrics --openmetrics  # scrapeable exposition

State lives in a :class:`~repro.catalog.filetree.FileTreeCatalog`
under ``.vdg/catalog`` plus a ``.vdg/sandbox`` for materialized files,
so every command sees the same workspace across invocations.
Transformations whose executables exist on this machine really run
(via the local executor's subprocess path).

Commands that execute work (``materialize``, ``run``) are traced: the
span tree and metrics snapshot of each run are written under
``.vdg/observability`` for ``stats`` and ``trace`` to read back.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from typing import Optional

from repro.catalog.filetree import FileTreeCatalog
from repro.durability.atomic import atomic_write_json
from repro.durability.journal import IntentJournal
from repro.durability.recovery import RecoveryManager
from repro.errors import VDLSemanticError, VDLSyntaxError, VirtualDataError
from repro.executor.local import LocalExecutor
from repro.observability import (
    FlightRecorder,
    HistoryStore,
    Instrumentation,
    ProgressSink,
    ProgressTicker,
    RunRecord,
    SamplingProfiler,
    chrome_trace,
    diff_records,
    find_run,
    grid_health,
    health_metrics,
    list_runs,
    openmetrics_snapshot,
    prune_runs,
    read_snapshot,
    regression_report,
    render_metrics,
    render_profile,
    render_report,
    render_span_tree,
    report_dict,
    validate_openmetrics,
    write_snapshot,
)
from repro.observability.health import SLOPolicy
from repro.provenance.graph import DerivationGraph
from repro.provenance.invalidation import invalidated_by
from repro.provenance.lineage import lineage_report

DEFAULT_WORKSPACE = ".vdg"


class Workspace:
    """One on-disk virtual data workspace."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.catalog_dir = self.root / "catalog"
        self.sandbox_dir = self.root / "sandbox"
        self.observability_dir = self.root / "observability"
        self.runs_dir = self.root / "runs"
        self.journal_dir = self.root / "journal"
        self.quarantine_dir = self.root / "quarantine"
        self.rescue_dir = self.root / "rescue"
        self.history_path = self.root / "history.sqlite"

    @property
    def exists(self) -> bool:
        return self.catalog_dir.is_dir()

    def create(self) -> None:
        self.catalog_dir.mkdir(parents=True, exist_ok=True)
        self.sandbox_dir.mkdir(parents=True, exist_ok=True)

    def catalog(self) -> FileTreeCatalog:
        if not self.exists:
            raise VirtualDataError(
                f"no workspace at {self.root}; run 'init' first"
            )
        catalog = FileTreeCatalog(self.catalog_dir)
        # Journaled commits: executors wrap provenance write-back in
        # catalog.transaction(), so a kill mid-commit is recoverable —
        # 'fsck' (or the preflight) rolls the partial batch back.
        catalog.attach_journal(
            IntentJournal(self.journal_dir, instrumentation=catalog.obs)
        )
        return catalog

    def executor(
        self, instrumentation: Optional[Instrumentation] = None
    ) -> LocalExecutor:
        return LocalExecutor(
            self.catalog(),
            self.sandbox_dir,
            instrumentation=instrumentation,
            quarantine_dir=self.quarantine_dir,
        )

    def recovery(self, catalog=None, instrumentation=None) -> RecoveryManager:
        """A RecoveryManager over this workspace's stores."""
        return RecoveryManager(
            catalog if catalog is not None else self.catalog(),
            sandbox_dir=self.sandbox_dir,
            journal_dir=self.journal_dir,
            rescue_dir=self.rescue_dir,
            runs_dir=self.runs_dir,
            quarantine_dir=self.quarantine_dir,
            instrumentation=instrumentation,
        )

    def save_snapshot(self, obs: Instrumentation) -> None:
        """Persist this run's spans + metrics for ``stats``/``trace``."""
        write_snapshot(obs, self.observability_dir)

    def load_snapshot(self):
        if not self.observability_dir.is_dir():
            raise VirtualDataError(
                f"no observability snapshot under {self.root}; run "
                "'materialize' or 'run' first"
            )
        return read_snapshot(self.observability_dir)

    def start_recorder(self, command: str) -> FlightRecorder:
        """Open a new flight record under ``<workspace>/runs/``."""
        return FlightRecorder.start(self.runs_dir, command=command)

    def list_runs(self) -> list[RunRecord]:
        return list_runs(self.runs_dir)

    def load_run(self, run_id: str) -> RunRecord:
        try:
            return find_run(self.runs_dir, run_id)
        except FileNotFoundError as exc:
            raise VirtualDataError(str(exc)) from None

    def history(self, ingest: bool = True) -> HistoryStore:
        """The workspace's run-history metastore.

        With ``ingest`` (the default), every new or changed flight
        record under ``runs/`` is pulled in first, so queries always
        see current history.
        """
        if not self.exists:
            raise VirtualDataError(
                f"no workspace at {self.root}; run 'init' first"
            )
        store = HistoryStore(self.history_path)
        if ingest:
            store.ingest_dir(self.runs_dir)
        return store


def _cmd_init(ws: Workspace, args, out) -> int:
    ws.create()
    out(f"initialized virtual data workspace at {ws.root}")
    return 0


def _cmd_define(ws: Workspace, args, out) -> int:
    source = Path(args.file).read_text()
    catalog = ws.catalog()
    before = catalog.counts()
    try:
        catalog.define(source, replace=args.replace)
    except (VDLSyntaxError, VDLSemanticError) as exc:
        # Front-end errors carry positions: render them compiler-style.
        location = f"{args.file}:{exc.line}" if exc.line else args.file
        out(f"{location}: error: {exc.bare_message}")
        return 1
    after = catalog.counts()
    added = {k: after[k] - before[k] for k in after if after[k] != before[k]}
    out(f"defined {added or 'nothing new'} from {args.file}")
    return 0


def _cmd_lint(ws: Workspace, args, out) -> int:
    """Whole-program static analysis (``docs/LINTING.md`` has the codes)."""
    from repro.analysis import Linter, default_rules
    from repro.analysis.reporters import exit_code, render_json, render_text

    registry = default_rules()
    if args.no_rule:
        registry.disable(*args.no_rule)
    obs = Instrumentation()
    linter = Linter(registry=registry, obs=obs)
    if args.files:
        results = [linter.lint_file(path) for path in args.files]
    else:
        results = [
            linter.lint_catalog(ws.catalog(), incremental=args.incremental)
        ]
    if ws.exists:
        ws.save_snapshot(obs)
    render = render_json if args.format == "json" else render_text
    for result in results:
        out(render(result))
    codes = [exit_code(r) for r in results]
    if 1 in codes:
        return 1
    if 2 in codes:
        return 2
    return 0


def _cmd_analyze(ws: Workspace, args, out) -> int:
    """Whole-graph dataflow analysis over the workspace catalog."""
    from repro.analysis.linter import LintResult
    from repro.analysis.reporters import exit_code, render_json, render_text

    obs = Instrumentation()
    catalog = ws.catalog()
    analyzer = catalog.live_analyzer()
    analyzer.obs = obs  # surface solver spans in `repro trace`/`stats`
    try:
        diagnostics = analyzer.diagnostics(passes=args.passes)
    except KeyError as exc:
        out(f"analyze: {exc.args[0]}")
        return 1
    result = LintResult(file=analyzer.file, diagnostics=diagnostics)
    if ws.exists:
        ws.save_snapshot(obs)
    render = render_json if args.format == "json" else render_text
    out(render(result))
    if args.stats:
        stats = analyzer.stats()
        out(
            f"graph: {stats['nodes']} nodes "
            f"({stats['derivations']} derivations), "
            f"{stats['events']} events observed, "
            f"{stats['solves']} solves"
        )
        for name, info in sorted(stats["passes"].items()):
            out(
                f"  {name}: mode={info['mode']} seeds={info['seeds']} "
                f"visited={info['visited']} changed={info['changed']}"
            )
    return exit_code(result)


def _cmd_list(ws: Workspace, args, out) -> int:
    catalog = ws.catalog()
    kind = args.kind
    if kind == "datasets":
        for ds in catalog.datasets():
            state = "virtual" if ds.is_virtual else "materialized"
            producer = f" <- {ds.producer}" if ds.producer else ""
            out(f"{ds.name}  [{state}]{producer}")
    elif kind == "transformations":
        for tr in catalog.transformations():
            shape = "compound" if tr.is_compound else "simple"
            out(f"{tr.qualified_name}  [{shape}] "
                f"({tr.signature.type_signature()})")
    elif kind == "derivations":
        for dv in catalog.derivations():
            out(f"{dv.name} -> {dv.transformation.vdl_text()} "
                f"(in: {', '.join(dv.inputs()) or '-'}; "
                f"out: {', '.join(dv.outputs()) or '-'})")
    elif kind == "invocations":
        for iid in catalog.invocation_ids():
            out(str(catalog.get_invocation(iid)))
    return 0


def _cmd_plan(ws: Workspace, args, out) -> int:
    from repro.planner.dag import Planner
    from repro.planner.request import MaterializationRequest

    obs = Instrumentation()
    if getattr(args, "profile", False):
        profiler = SamplingProfiler(memory=True)
        obs.attach_profiler(profiler)
        profiler.start()
    catalog = ws.catalog()
    if args.strict:
        from repro.analysis import Linter

        # The incremental path reuses (or seeds) the catalog's live
        # analysis context instead of re-exporting and re-parsing.
        with obs.phase("analyze"):
            result = Linter().lint_catalog(catalog, incremental=True)
        if result.errors:
            for diag in result.errors:
                out(diag.render())
            out(
                f"plan aborted: {len(result.errors)} lint error(s) in the "
                f"catalog (run 'lint' for details, or drop --strict)"
            )
            _finish_profile(obs, None, out)
            return 1
    executor = ws.executor()
    planner = Planner(catalog, has_replica=executor.is_materialized)
    with obs.phase("plan"):
        plan = planner.plan(
            MaterializationRequest(targets=(args.dataset,), reuse=args.reuse)
        )
    _finish_profile(obs, None, out)
    if not plan.steps:
        out(f"{args.dataset}: nothing to do "
            f"(reused: {', '.join(sorted(plan.reused)) or 'n/a'})")
        return 0
    out(f"plan for {args.dataset}: {len(plan)} steps, depth {plan.depth()}")
    for name in plan.topological_order():
        step = plan.steps[name]
        deps = ", ".join(sorted(plan.dependencies[name])) or "-"
        out(f"  {name}: {step.transformation.name} (after: {deps})")
    return 0


def _instrument_run(ws: Workspace, command: str, args):
    """Build the (obs, recorder, ticker) triple for an executing command.

    Recording is on by default (``--no-record`` opts out); the live
    progress ticker and the sampling profiler are opt-in
    (``--progress``, ``--profile``).
    """
    from contextlib import nullcontext

    obs = Instrumentation()
    recorder = None
    if not getattr(args, "no_record", False):
        recorder = ws.start_recorder(command)
        obs.attach_recorder(recorder)
    ticker = nullcontext()
    if getattr(args, "progress", False):
        sink = ProgressSink()
        obs.attach_progress(sink)
        ticker = ProgressTicker(sink)
    if getattr(args, "profile", False):
        profiler = SamplingProfiler(memory=True)
        obs.attach_profiler(profiler)
        profiler.start()
    return obs, recorder, ticker


def _finish_profile(obs, recorder, out) -> None:
    """Stop an attached profiler, persist and render its profile."""
    profiler = getattr(obs, "profiler", None)
    if profiler is None:
        return
    if profiler.running:
        profiler.stop()
    profile = profiler.to_dict()
    if recorder is not None:
        recorder.profile(profile)
    out(render_profile(profile))


def _finalize_run(ws: Workspace, obs, recorder, out, status, **fields) -> None:
    # The profile line must land before finalize (finalize seals the
    # record), so stop the profiler first.
    _finish_profile(obs, recorder, out)
    ws.save_snapshot(obs)
    if recorder is not None:
        recorder.finalize(obs, status=status, **fields)
        out(f"run record: {recorder.run_id}")


def _cmd_fsck(ws: Workspace, args, out) -> int:
    """Reconcile catalog, sandbox files, journal, rescues and records.

    Exit 0 when the workspace is clean (or every finding was repaired),
    2 when unrepaired error-severity corruption remains — mirroring
    classic fsck semantics so scripts and CI can gate on it.
    """
    import json

    obs = Instrumentation()
    catalog = ws.catalog()
    recovery = ws.recovery(catalog=catalog, instrumentation=obs)
    report = recovery.fsck(
        checksums=not args.no_checksums, repair=args.repair
    )
    if ws.exists:
        ws.save_snapshot(obs)
    if args.format == "json":
        out(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        out(report.render())
    return 2 if report.corrupted else 0


def _preflight(ws: Workspace, args, out) -> Optional[int]:
    """Cheap consistency check before an executing command.

    Journal findings repair themselves (that *is* crash recovery);
    anything worse refuses the run with exit 2 so a half-committed
    catalog is never planned against.  ``--no-verify`` skips it.
    """
    if getattr(args, "no_verify", False) or not ws.exists:
        return None
    catalog = ws.catalog()
    report = ws.recovery(catalog=catalog).preflight()
    repaired = [f for f in report.findings if f.repaired]
    if repaired:
        out(
            f"recovered from crash: {len(repaired)} journal "
            f"finding(s) repaired (see 'fsck' for details)"
        )
    if report.corrupted:
        for finding in report.unrepaired("error"):
            out(finding.render())
        out(
            "workspace failed its consistency preflight; run "
            "'fsck --repair' (or pass --no-verify to proceed anyway)"
        )
        return 2
    return None


def _cmd_materialize(ws: Workspace, args, out) -> int:
    return _materialize_local(
        ws, args.dataset, args.reuse, getattr(args, "workers", 1), out,
        args=args, backend=getattr(args, "backend", "thread"),
    )


def _materialize_local(
    ws: Workspace, dataset: str, reuse: str, workers: int, out, args=None,
    backend: str = "thread",
) -> int:
    blocked = _preflight(ws, args, out)
    if blocked is not None:
        return blocked
    obs, recorder, ticker = _instrument_run(
        ws, f"materialize {dataset}", args
    )
    executor = ws.executor(instrumentation=obs)
    status = "error"
    try:
        with ticker:
            invocations = executor.materialize(
                dataset, reuse=reuse, workers=workers, backend=backend
            )
        status = "ok"
    finally:
        _finalize_run(ws, obs, recorder, out, status)
    if not invocations:
        out(f"{dataset} is already materialized")
    for inv in invocations:
        out(f"ran {inv.derivation_name}: {inv.status} "
            f"({inv.usage.wall_seconds * 1e3:.1f} ms)")
    path = executor.path_for(dataset)
    if path.exists():
        out(f"{dataset} -> {path} ({path.stat().st_size} bytes)")
    return 0


def _cmd_run(ws: Workspace, args, out) -> int:
    """Ad-hoc execution: synthesize and run a derivation (§5.1).

    With ``--target`` the command instead materializes a dataset on a
    simulated grid (``--grid``), with optional fault injection
    (``--fault-plan``, ``--failure-rate``), recovery knobs
    (``--failure-policy``, ``--step-timeout``) and rescue-file resume
    (``--rescue``, ``--kill-at``).
    """
    from repro.executor.session import InteractiveSession

    if args.target:
        if args.grid == "local":
            # Local mode: the in-process executor's thread pool stands
            # in for the grid; --workers sizes it.
            return _materialize_local(
                ws, args.target, "always", args.workers, out, args=args,
                backend=getattr(args, "backend", "thread"),
            )
        return _cmd_run_grid(ws, args, out)
    if not args.transformation:
        out("error: provide a transformation name, or --target DATASET "
            "for a grid workflow run")
        return 1
    blocked = _preflight(ws, args, out)
    if blocked is not None:
        return blocked
    obs, recorder, _ = _instrument_run(
        ws, f"run {args.transformation}", args
    )
    executor = ws.executor(instrumentation=obs)
    session = InteractiveSession(executor, prefix=args.session)
    # Continue numbering from previous CLI invocations of this session.
    existing = [
        name
        for name in executor.catalog.derivation_names()
        if name.startswith(f"{args.session}.")
    ]
    session._counter = len(existing)
    bindings = {}
    for binding in args.binding:
        if "=" not in binding:
            out(f"error: binding {binding!r} is not name=value")
            return 1
        key, _, value = binding.partition("=")
        bindings[key] = value
    status = "error"
    try:
        outputs = session.run(args.transformation, **bindings)
        status = "ok"
    finally:
        _finalize_run(ws, obs, recorder, out, status)
    entry = session.log[-1]
    out(f"ran {entry.derivation.name}: {entry.invocation.status}")
    for name in outputs:
        path = executor.path_for(name)
        out(f"  {name} -> {path} ({path.stat().st_size} bytes)")
    return 0


def _parse_grid(spec: str) -> dict[str, int]:
    """Parse ``site=hosts,site=hosts`` grid specs."""
    sites: dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count = part.partition("=")
        try:
            sites[name.strip()] = int(count) if count else 4
        except ValueError:
            raise VirtualDataError(
                f"bad --grid entry {part!r}; expected site=hosts"
            ) from None
    if not sites:
        raise VirtualDataError("--grid needs at least one site=hosts entry")
    return sites


def _cmd_run_grid(ws: Workspace, args, out) -> int:
    """Materialize ``--target`` on a simulated grid with recovery."""
    from repro.errors import WorkflowError
    from repro.resilience import FaultPlan, RecoveryConfig, RescueFile
    from repro.system import VirtualDataSystem

    blocked = _preflight(ws, args, out)
    if blocked is not None:
        return blocked
    sites = _parse_grid(args.grid)
    fault_plan = FaultPlan.load(args.fault_plan) if args.fault_plan else None
    recovery = RecoveryConfig.hardened(
        seed=args.seed,
        failure_policy=args.failure_policy,
        step_timeout=args.step_timeout,
    )
    obs, recorder, ticker = _instrument_run(
        ws, f"run --target {args.target} --grid {args.grid}", args
    )
    vds = VirtualDataSystem.with_grid(
        sites,
        catalog=ws.catalog(),
        failure_rate=args.failure_rate,
        seed=args.seed,
        instrumentation=obs,
        fault_plan=fault_plan,
        recovery=recovery,
    )
    vds.executor.max_retries = args.max_retries

    # Raw sources must pre-exist on the grid: seed them at the first
    # site using catalog size estimates.
    preview = vds.plan(args.target, pattern=args.pattern)
    seed_site = sorted(sites)[0]
    for name in sorted(preview.sources | preview.reused):
        size = 1_000_000
        if vds.catalog.has_dataset(name):
            size = vds.catalog.get_dataset(name).size_estimate(
                default=1_000_000
            )
        vds.seed_dataset(name, seed_site, size)

    resume = args.rescue is not None
    rescue_path = (
        Path(args.rescue)
        if args.rescue
        else ws.rescue_dir / f"{args.target}.rescue.json"
    )
    base = None
    if resume and rescue_path.exists():
        base = RescueFile.load(rescue_path)
        out(f"resuming from rescue file {rescue_path} "
            f"({len(base.completed)} completed steps recorded)")

    status = 0
    result = None
    try:
        with ticker:
            result = vds.materialize(
                args.target,
                pattern=args.pattern,
                rescue=base,
                until=args.kill_at,
            )
    except WorkflowError as exc:
        out(exc.render_summary())
        result = exc.result
        status = 1
    finally:
        fields = {}
        if result is not None:
            fields["makespan"] = result.makespan
            fields["failed_steps"] = sorted(result.failed_steps)
            fields["interrupted"] = result.interrupted
        _finalize_run(
            ws, obs, recorder, out,
            status="ok" if status == 0 and result is not None else "error",
            **fields,
        )

    if result is None:
        return status
    restore = vds.executor.last_restore
    if restore is not None and restore.quarantined:
        for lfn, site in restore.quarantined:
            out(f"quarantined corrupt replica {lfn} at {site}")
    if result.succeeded:
        resumed = len(result.pre_completed)
        retried = sum(
            o.attempts - 1 for o in result.outcomes.values() if o.attempts > 1
        )
        notes = []
        if resumed:
            notes.append(f"{resumed} resumed from rescue")
        if retried:
            notes.append(f"{retried} retried attempt(s) recovered")
        suffix = f" ({'; '.join(notes)})" if notes else ""
        out(f"materialized {args.target}: {len(result.outcomes)} steps, "
            f"makespan {result.makespan:.1f}s{suffix}")
    elif result.interrupted:
        finished = len(result.outcomes) + len(result.pre_completed)
        out(f"run killed at t={args.kill_at:g}: {finished} of "
            f"{len(result.plan.steps)} steps finished")
    if not result.succeeded or resume:
        rescue = vds.executor.rescue_file(result, base=base)
        rescue_path.parent.mkdir(parents=True, exist_ok=True)
        rescue.save(rescue_path)
        out(f"rescue file written to {rescue_path} "
            f"(resume with --target {args.target} --rescue)")
    return status


def _cmd_lineage(ws: Workspace, args, out) -> int:
    report = lineage_report(ws.catalog(), args.dataset)
    out(report.render())
    return 0


def _cmd_invalidate(ws: Workspace, args, out) -> int:
    graph = DerivationGraph.from_catalog(ws.catalog())
    report = invalidated_by(
        graph,
        bad_datasets=args.dataset or (),
        bad_transformations=args.transformation or (),
    )
    out(f"tainted datasets ({len(report.tainted_datasets)}):")
    for name in sorted(report.tainted_datasets):
        out(f"  {name}")
    out(f"derivations to re-run ({len(report.rerun_derivations)}):")
    for name in sorted(report.rerun_derivations):
        out(f"  {name}")
    return 0


def _cmd_export(ws: Workspace, args, out) -> int:
    catalog = ws.catalog()
    if args.format == "vdl":
        out(catalog.export_vdl())
    else:
        from repro.vdl.xml_io import to_xml

        out(
            to_xml(
                list(catalog.transformations()), list(catalog.derivations())
            )
        )
    return 0


def _render_run_list(ws: Workspace, out) -> int:
    runs = ws.list_runs()
    if not runs:
        out(f"no recorded runs under {ws.runs_dir}")
        return 0
    out("available runs (oldest first):")
    for record in runs:
        command = f"  command={record.command}" if record.command else ""
        out(f"  {record.run_id}  status={record.status}{command}")
    return 0


def _cmd_stats(ws: Workspace, args, out) -> int:
    """Metrics from the last run, or from a recorded run (``--run``)."""
    import json

    if args.run == "":
        return _render_run_list(ws, out)
    if args.run is not None:
        record = ws.load_run(args.run)
        if args.format == "prom":
            out("error: --format prom needs the live snapshot; run "
                "'stats' without --run")
            return 1
        if args.format == "json":
            out(json.dumps(record.metrics, indent=2, sort_keys=True))
        else:
            rendered = render_metrics(record.metrics)
            out(rendered if rendered else "no metrics recorded")
        return 0
    _, metrics, prom = ws.load_snapshot()
    if args.format == "prom":
        out(prom.rstrip("\n"))
    elif args.format == "json":
        out(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        rendered = render_metrics(metrics)
        out(rendered if rendered else "no metrics recorded")
    return 0


def _cmd_trace(ws: Workspace, args, out) -> int:
    """Span tree from the last run; ``--run`` selects a recorded run,
    ``--chrome`` exports a Perfetto-loadable Chrome trace instead."""
    import json

    if args.run == "":
        return _render_run_list(ws, out)
    if args.chrome:
        record = ws.load_run(args.run or "latest")
        trace = chrome_trace(record)
        target = args.output
        if target == "-":
            out(json.dumps(trace, indent=2, sort_keys=True))
            return 0
        if target is None:
            target = record.path.parent / "trace.json"
        target = Path(target)
        target.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(target, trace, indent=None)
        out(f"chrome trace written to {target} "
            f"({len(trace['traceEvents'])} events); load it in Perfetto "
            "(ui.perfetto.dev) or chrome://tracing")
        return 0
    if args.run is not None:
        spans = ws.load_run(args.run).spans
    else:
        spans, _, _ = ws.load_snapshot()
    if not spans:
        out("no spans recorded")
        return 0
    out(render_span_tree(spans))
    return 0


def _cmd_report(ws: Workspace, args, out) -> int:
    """Critical-path and profile report for a recorded run."""
    import json

    if not args.run_id:
        _render_run_list(ws, out)
        runs = ws.list_runs()
        if runs:
            out(f"(report one with: report {runs[-1].run_id})")
        return 0
    record = ws.load_run(args.run_id)
    if args.json:
        out(json.dumps(report_dict(record), indent=2, sort_keys=True))
    else:
        out(render_report(record).rstrip("\n"))
    return 0


def _cmd_profile(ws: Workspace, args, out) -> int:
    """Phase/hot-frame report from a recorded run's profile line."""
    import json

    from repro.observability import collapsed_stacks

    if not args.run_id:
        _render_run_list(ws, out)
        runs = ws.list_runs()
        if runs:
            out(f"(profile one with: profile {runs[-1].run_id})")
        return 0
    record = ws.load_run(args.run_id)
    if record.profile is None:
        out(
            f"run {record.run_id} has no profile "
            f"(re-run with --profile to sample it)"
        )
        return 1
    if args.json:
        out(json.dumps(record.profile, indent=2, sort_keys=True))
    elif args.collapsed:
        for line in collapsed_stacks(record.profile):
            out(line)
    else:
        out(render_profile(record.profile, top=args.top))
    return 0


def _fmt_stamp(epoch) -> str:
    import time as _time

    if not epoch:
        return "?"
    return _time.strftime("%Y-%m-%d %H:%M:%S", _time.localtime(epoch))


def _fmt_makespan(value) -> str:
    return f"{value:.3f}s" if value is not None else "-"


def _cmd_runs(ws: Workspace, args, out) -> int:
    """List recorded runs, or prune old ones (``runs prune --keep N``)."""
    if getattr(args, "runs_command", None) == "prune":
        if args.keep < 0:
            raise VirtualDataError(
                f"--keep must be >= 0, got {args.keep}"
            )
        # Aggregates outlive the raw records: ingest before deleting.
        ws.history().close()
        pruned = prune_runs(ws.runs_dir, args.keep)
        if not pruned:
            out("nothing to prune")
            return 0
        for run_id in pruned:
            out(f"pruned {run_id}")
        out(f"pruned {len(pruned)} run(s), kept the {args.keep} newest "
            "(aggregates retained in the history store)")
        return 0
    runs = ws.list_runs()
    if not runs:
        out(f"no recorded runs under {ws.runs_dir}")
        return 0
    out(f"{len(runs)} recorded run(s), oldest first:")
    for record in runs:
        flags = " [truncated]" if record.truncated else ""
        out(
            f"  {record.run_id}  "
            f"started={_fmt_stamp(record.meta.get('started_at'))}  "
            f"status={record.status}  "
            f"makespan={_fmt_makespan(record.makespan())}  "
            f"{record.command or '-'}{flags}"
        )
    return 0


def _cmd_diff(ws: Workspace, args, out) -> int:
    """Compare two recorded runs end to end."""
    import json

    base = ws.load_run(args.base)
    cand = ws.load_run(args.candidate)
    diff = diff_records(base, cand, threshold_pct=args.threshold)
    if args.json:
        out(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        out(diff.render())
    return 0


def _cmd_regress(ws: Workspace, args, out) -> int:
    """Gate one run against the pooled historical baseline.

    Exit code 0 means clean, 2 means significant regressions were
    found (1 is reserved for operational errors), so CI can use this
    directly.
    """
    import json

    candidate = ws.load_run(args.run)
    with ws.history() as history:
        try:
            diff = regression_report(
                history,
                candidate,
                baseline_ids=args.baseline or None,
                window=args.window,
                threshold_pct=args.threshold,
            )
        except ValueError as exc:
            raise VirtualDataError(str(exc)) from None
    if args.json:
        out(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        out(diff.render())
    return 0 if diff.clean else 2


def _cmd_health(ws: Workspace, args, out) -> int:
    """Per-site SLO scorecards over recent recorded runs.

    With ``--check``, exit 2 unless every site is within SLO (for
    CI/cron gating); without it, reporting is always exit 0.
    """
    import json

    policy = SLOPolicy(success_target=args.slo)
    with ws.history() as history:
        if not len(history):
            raise VirtualDataError(
                f"no recorded runs under {ws.runs_dir}; health needs "
                "at least one recorded 'materialize' or 'run'"
            )
        report = grid_health(history, policy=policy, window=args.window)
    if args.json:
        out(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        out(report.render())
    if args.check and report.status != "ok":
        return 2
    return 0


def _cmd_metrics(ws: Workspace, args, out) -> int:
    """Metrics exposition: the scrape surface for the grid.

    Reads the latest snapshot (or ``--run`` record) metrics, merges in
    health gauges when run history exists, and prints either the
    OpenMetrics text exposition (``--openmetrics``) or the human
    rendering.
    """
    if args.run is not None:
        metrics = ws.load_run(args.run or "latest").metrics
    else:
        _, metrics, _ = ws.load_snapshot()
    health_report = None
    if ws.exists and ws.list_runs():
        with ws.history() as history:
            if len(history):
                health_report = grid_health(history)
    if args.openmetrics:
        text = openmetrics_snapshot(metrics, health_report=health_report)
        problems = validate_openmetrics(text)
        if problems:
            raise VirtualDataError(
                "internal error: invalid OpenMetrics exposition: "
                + "; ".join(problems)
            )
        out(text.rstrip("\n"))
        return 0
    merged = dict(health_metrics(health_report)) if health_report else {}
    merged.update(metrics)
    rendered = render_metrics(merged)
    out(rendered if rendered else "no metrics recorded")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vdg",
        description="virtual data grid workspace (Chimera reproduction)",
    )
    parser.add_argument(
        "--workspace",
        default=DEFAULT_WORKSPACE,
        help=f"workspace directory (default: {DEFAULT_WORKSPACE})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("init", help="create a workspace").set_defaults(
        fn=_cmd_init
    )

    define = sub.add_parser("define", help="register VDL definitions")
    define.add_argument("file")
    define.add_argument("--replace", action="store_true")
    define.set_defaults(fn=_cmd_define)

    lint = sub.add_parser(
        "lint", help="static analysis of VDL files or the workspace"
    )
    lint.add_argument(
        "files",
        nargs="*",
        help="VDL files to lint (default: the workspace catalog)",
    )
    lint.add_argument("--format", default="text", choices=("text", "json"))
    lint.add_argument(
        "--no-rule",
        action="append",
        default=[],
        metavar="RULE",
        help="suppress a rule name (output-race) or code (VDG201); repeatable",
    )
    lint.add_argument(
        "--incremental",
        action="store_true",
        help="catalog mode only: run the rules over the live analysis "
        "context instead of re-exporting and re-parsing the VDL",
    )
    lint.set_defaults(fn=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="whole-graph dataflow analysis: staleness, dead data, "
        "type flow, output conflicts",
    )
    analyze.add_argument(
        "--stale",
        action="append_const",
        const="staleness",
        dest="passes",
        help="only staleness propagation (VDG601/VDG602)",
    )
    analyze.add_argument(
        "--dead",
        action="append_const",
        const="dead-data",
        dest="passes",
        help="only dead-data detection (VDG611/VDG612)",
    )
    analyze.add_argument(
        "--types",
        action="append_const",
        const="type-flow",
        dest="passes",
        help="only interprocedural type flow (VDG621)",
    )
    analyze.add_argument(
        "--conflicts",
        action="append_const",
        const="output-conflict",
        dest="passes",
        help="only interprocedural output conflicts (VDG631)",
    )
    analyze.add_argument(
        "--format", default="text", choices=("text", "json")
    )
    analyze.add_argument(
        "--stats",
        action="store_true",
        help="also print solver statistics (nodes, visits, mode)",
    )
    analyze.set_defaults(fn=_cmd_analyze)

    lister = sub.add_parser("list", help="list catalog objects")
    lister.add_argument(
        "kind",
        choices=("datasets", "transformations", "derivations", "invocations"),
    )
    lister.set_defaults(fn=_cmd_list)

    plan = sub.add_parser("plan", help="show the workflow for a dataset")
    plan.add_argument("dataset")
    plan.add_argument("--reuse", default="always",
                      choices=("never", "always", "cost"))
    plan.add_argument(
        "--strict",
        action="store_true",
        help="lint the catalog first; abort on any error-level finding",
    )
    plan.add_argument(
        "--profile",
        action="store_true",
        help="sample stacks while planning; print a per-phase profile",
    )
    plan.set_defaults(fn=_cmd_plan)

    mat = sub.add_parser("materialize", help="produce a dataset")
    mat.add_argument("dataset")
    mat.add_argument("--reuse", default="always",
                     choices=("never", "always", "cost"))
    mat.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run up to N independent plan steps concurrently",
    )
    mat.add_argument(
        "--backend",
        default="thread",
        choices=("thread", "process"),
        help="worker pool type: threads (default; I/O-bound steps) or "
        "processes (CPU-bound Python bodies scale past the GIL)",
    )
    mat.add_argument(
        "--progress",
        action="store_true",
        help="show a live steps-done/running/failed ticker with ETA",
    )
    mat.add_argument(
        "--profile",
        action="store_true",
        help="run the sampling profiler; the profile rides in the run "
        "record (read back with 'profile RUN_ID')",
    )
    mat.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing a flight record under <workspace>/runs/",
    )
    mat.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the crash-consistency preflight check",
    )
    mat.set_defaults(fn=_cmd_materialize)

    run = sub.add_parser(
        "run",
        help="run a transformation ad hoc, or a grid workflow (--target)",
    )
    run.add_argument("transformation", nargs="?")
    run.add_argument(
        "binding", nargs="*", help="formal=value bindings", default=[]
    )
    run.add_argument("--session", default="cli")
    run.add_argument(
        "--target",
        metavar="DATASET",
        help="materialize DATASET on a simulated grid instead",
    )
    run.add_argument(
        "--grid",
        default="site-a=4,site-b=4",
        metavar="SITE=HOSTS,...",
        help="grid sites for --target (default: site-a=4,site-b=4); "
        "'local' runs --target with the in-process executor instead",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with --grid local: run up to N plan steps concurrently",
    )
    run.add_argument(
        "--backend",
        default="thread",
        choices=("thread", "process"),
        help="with --grid local: thread (default) or process workers",
    )
    run.add_argument(
        "--pattern",
        default="ship-data",
        choices=("collocate", "ship-procedure", "ship-data", "ship-both"),
    )
    run.add_argument("--max-retries", type=int, default=2)
    run.add_argument(
        "--failure-rate",
        type=float,
        default=0.0,
        help="uniform transient job failure probability",
    )
    run.add_argument(
        "--fault-plan",
        metavar="FILE",
        help="JSON FaultPlan (outages, transfer faults, corruption, ...)",
    )
    run.add_argument(
        "--failure-policy",
        default="run-what-you-can",
        choices=("fail-fast", "run-what-you-can"),
    )
    run.add_argument(
        "--step-timeout",
        type=float,
        metavar="SECONDS",
        help="kill straggler attempts after this much sim time",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--rescue",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="resume from (and update) a rescue file; without FILE, "
        "the workspace default under <workspace>/rescue/ is used",
    )
    run.add_argument(
        "--kill-at",
        type=float,
        metavar="T",
        help="kill the run at sim time T (writes a rescue file)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="show a live steps-done/running/failed ticker with ETA",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="run the sampling profiler; the profile rides in the run "
        "record (read back with 'profile RUN_ID')",
    )
    run.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing a flight record under <workspace>/runs/",
    )
    run.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the crash-consistency preflight check",
    )
    run.set_defaults(fn=_cmd_run)

    fsck = sub.add_parser(
        "fsck",
        help="check (and repair) workspace crash consistency",
    )
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="apply each finding's deterministic repair",
    )
    fsck.add_argument(
        "--no-checksums",
        action="store_true",
        help="structural check only; skip content digest verification",
    )
    fsck.add_argument("--format", default="text", choices=("text", "json"))
    fsck.set_defaults(fn=_cmd_fsck)

    lineage = sub.add_parser("lineage", help="audit trail of a dataset")
    lineage.add_argument("dataset")
    lineage.set_defaults(fn=_cmd_lineage)

    invalidate = sub.add_parser(
        "invalidate", help="blast radius of bad data or code"
    )
    invalidate.add_argument("--dataset", action="append")
    invalidate.add_argument("--transformation", action="append")
    invalidate.set_defaults(fn=_cmd_invalidate)

    export = sub.add_parser("export", help="dump definitions")
    export.add_argument("--format", default="vdl", choices=("vdl", "xml"))
    export.set_defaults(fn=_cmd_export)

    stats = sub.add_parser("stats", help="metrics from the last traced run")
    stats.add_argument(
        "--format", default="text", choices=("text", "prom", "json")
    )
    stats.add_argument(
        "--run",
        nargs="?",
        const="",
        default=None,
        metavar="RUN_ID",
        help="read a recorded run instead of the latest snapshot; "
        "without RUN_ID, list available runs ('latest' also works)",
    )
    stats.set_defaults(fn=_cmd_stats)

    trace = sub.add_parser("trace", help="span tree from the last traced run")
    trace.add_argument(
        "--run",
        nargs="?",
        const="",
        default=None,
        metavar="RUN_ID",
        help="read a recorded run instead of the latest snapshot; "
        "without RUN_ID, list available runs ('latest' also works)",
    )
    trace.add_argument(
        "--chrome",
        action="store_true",
        help="export a Chrome-trace (Perfetto) JSON file instead of text",
    )
    trace.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="with --chrome: destination file ('-' prints to stdout; "
        "default <run dir>/trace.json)",
    )
    trace.set_defaults(fn=_cmd_trace)

    report = sub.add_parser(
        "report",
        help="critical path + latency/throughput profiles of a recorded run",
    )
    report.add_argument(
        "run_id",
        nargs="?",
        help="run id under <workspace>/runs ('latest' works); "
        "omit to list available runs",
    )
    report.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    report.set_defaults(fn=_cmd_report)

    profile = sub.add_parser(
        "profile",
        help="per-phase time/memory/hot-frame report of a profiled run",
    )
    profile.add_argument(
        "run_id",
        nargs="?",
        help="run id under <workspace>/runs ('latest' works); "
        "omit to list available runs",
    )
    profile.add_argument(
        "--json", action="store_true", help="dump the raw profile dict"
    )
    profile.add_argument(
        "--collapsed",
        action="store_true",
        help="collapsed-stack lines for flamegraph.pl / speedscope",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="hot frames shown per phase (default 10)",
    )
    profile.set_defaults(fn=_cmd_profile)

    runs = sub.add_parser(
        "runs", help="list recorded runs, or prune old ones"
    )
    runs_sub = runs.add_subparsers(dest="runs_command")
    prune = runs_sub.add_parser(
        "prune",
        help="delete all but the newest N recorded runs "
        "(aggregates are ingested into the history store first)",
    )
    prune.add_argument(
        "--keep",
        type=int,
        required=True,
        metavar="N",
        help="number of newest runs to keep (0 deletes all)",
    )
    runs.set_defaults(fn=_cmd_runs)

    diff = sub.add_parser(
        "diff", help="compare two recorded runs end to end"
    )
    diff.add_argument("base", help="baseline run id ('latest' works)")
    diff.add_argument("candidate", help="candidate run id")
    diff.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="relative change (%%) considered significant (default 25)",
    )
    diff.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    diff.set_defaults(fn=_cmd_diff)

    regress = sub.add_parser(
        "regress",
        help="check one run against the pooled historical baseline "
        "(exit 2 on regression)",
    )
    regress.add_argument(
        "--run",
        default="latest",
        metavar="RUN_ID",
        help="candidate run (default: latest)",
    )
    regress.add_argument(
        "--baseline",
        action="append",
        metavar="RUN_ID",
        help="explicit baseline run id; repeatable "
        "(default: the last --window ingested runs)",
    )
    regress.add_argument(
        "--window",
        type=int,
        default=20,
        metavar="N",
        help="baseline window when --baseline is not given (default 20)",
    )
    regress.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="relative change (%%) considered significant (default 25)",
    )
    regress.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    regress.set_defaults(fn=_cmd_regress)

    health = sub.add_parser(
        "health", help="per-site SLO scorecards over recent runs"
    )
    health.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="how many recent runs to score (default: policy window)",
    )
    health.add_argument(
        "--slo",
        type=float,
        default=0.95,
        metavar="RATE",
        help="success-rate objective in (0, 1) (default 0.95)",
    )
    health.add_argument(
        "--check",
        action="store_true",
        help="exit 2 unless every site is within SLO",
    )
    health.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    health.set_defaults(fn=_cmd_health)

    metrics = sub.add_parser(
        "metrics",
        help="metrics exposition (with health gauges) for scraping",
    )
    metrics.add_argument(
        "--openmetrics",
        action="store_true",
        help="emit the OpenMetrics text exposition format",
    )
    metrics.add_argument(
        "--run",
        nargs="?",
        const="latest",
        default=None,
        metavar="RUN_ID",
        help="read a recorded run's metrics instead of the latest "
        "snapshot (default when given without RUN_ID: latest)",
    )
    metrics.set_defaults(fn=_cmd_metrics)

    return parser


def main(argv: list[str] | None = None, out=print, err=None) -> int:
    """CLI entry point; returns the process exit code.

    Normal output goes through ``out``; operational errors (unknown
    run ids, missing workspaces, ...) are printed once through ``err``
    — stderr when running as a real process — and exit 1, never as
    tracebacks.  Callers that capture ``out`` (tests, embedding) get
    errors on the same channel unless they pass their own ``err``.
    """
    if err is None:
        if out is print:
            def err(text=""):
                print(text, file=sys.stderr)
        else:
            err = out
    args = build_parser().parse_args(argv)
    ws = Workspace(args.workspace)
    try:
        return args.fn(ws, args, out)
    except VirtualDataError as exc:
        err(f"error: {exc}")
        return 1


if __name__ == "__main__":
    sys.exit(main())
