"""``repro fsck``: reconcile catalog, files, journal, rescues, records.

After an arbitrary process kill, five stores can disagree about what
happened: the catalog's provenance record, the sandbox's materialized
files, the intent journal, the rescue files, and the flight records.
:class:`RecoveryManager` walks all five and reduces every disagreement
to a typed :class:`Finding` with a deterministic repair:

================================ ======== ===================================
kind                             severity repair
================================ ======== ===================================
``journal-corrupt``              error    quarantine the journal file
``torn-journal-tail``            error    truncate the torn final line
``uncommitted-txn``              error    roll back via each op's ``prev``
``phantom-replica``              error    drop the replica record
``corrupt-replica``              error    quarantine file, drop replica,
                                          invalidate downstream provenance
``half-committed-invocation``    error    drop the invocation record
``orphan-output``                error    quarantine the file (its producer
                                          re-runs with full provenance)
``orphan-file``                  warning  quarantine the file
``stale-dataset-state``          warning  reset the dataset to virtual
``torn-rescue-tail``             warning  rewrite the salvaged valid prefix
``corrupt-rescue-file``          warning  quarantine the rescue file
``stale-temporary``              info     delete the ``*.vdg-tmp`` file
``crashed-run-record``           info     none needed (readers tolerate it)
================================ ======== ===================================

Error-severity findings are *corruption*: ``materialize``/``run``
refuse to start (exit 2) while any remain unrepaired, because planning
against them either loses provenance (orphan outputs get reused with
no invocation behind them) or trusts records with no bytes behind them
(phantom replicas).  Warnings and infos never block.

Quarantined files move under ``<workspace>/quarantine/`` rather than
being deleted, so nothing fsck does is destructive.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.descriptors import FileDescriptor
from repro.durability import journal as journal_mod
from repro.durability.atomic import TMP_MARKER
from repro.durability.checksum import DIGEST_PREFIX, file_digest
from repro.observability.instrument import NULL, Instrumentation

if TYPE_CHECKING:
    from repro.catalog.base import VirtualDataCatalog

#: Findings fsck can fix without `--repair` during a command preflight:
#: the journal repairs are safe (they only restore the pre-crash
#: commit frontier) and must run before anything appends to the file.
PREFLIGHT_AUTO_REPAIR = (
    "torn-journal-tail",
    "uncommitted-txn",
    "stale-temporary",
)

_SEVERITIES = ("error", "warning", "info")


def sandbox_filename(dataset_name: str) -> str:
    """The sandbox file name of a dataset (the executor's mapping)."""
    return dataset_name.replace("/", "_")


@dataclass
class Finding:
    """One inconsistency between the workspace's stores."""

    kind: str
    severity: str
    object: str
    detail: str
    #: Human description of the deterministic repair.
    repair: str = ""
    repaired: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "object": self.object,
            "detail": self.detail,
            "repair": self.repair,
            "repaired": self.repaired,
        }

    def render(self) -> str:
        mark = "fixed" if self.repaired else self.severity
        line = f"[{mark}] {self.kind}: {self.object} — {self.detail}"
        if self.repair and not self.repaired:
            line += f" (repair: {self.repair})"
        return line


@dataclass
class FsckReport:
    """Everything one fsck pass found (and possibly repaired)."""

    findings: list[Finding] = field(default_factory=list)
    checked_replicas: int = 0
    checked_files: int = 0
    checked_invocations: int = 0
    checksums_verified: bool = False

    def add(self, finding: Finding) -> Finding:
        self.findings.append(finding)
        return finding

    @property
    def clean(self) -> bool:
        return not self.findings

    def unrepaired(self, severity: str = "error") -> list[Finding]:
        """Findings at (or above) ``severity`` still needing repair."""
        rank = _SEVERITIES.index(severity)
        return [
            f
            for f in self.findings
            if not f.repaired and _SEVERITIES.index(f.severity) <= rank
        ]

    @property
    def corrupted(self) -> bool:
        """Unrepaired error-severity findings remain."""
        return bool(self.unrepaired("error"))

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.kind] = out.get(finding.kind, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "corrupted": self.corrupted,
            "checked": {
                "replicas": self.checked_replicas,
                "files": self.checked_files,
                "invocations": self.checked_invocations,
            },
            "checksums_verified": self.checksums_verified,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        scope = "full" if self.checksums_verified else "structural"
        lines.append(
            f"fsck ({scope}): {self.checked_replicas} replicas, "
            f"{self.checked_files} files, "
            f"{self.checked_invocations} invocations checked; "
            f"{len(self.findings)} finding(s), "
            f"{sum(1 for f in self.findings if f.repaired)} repaired"
        )
        if self.corrupted:
            lines.append(
                "workspace is corrupted: run 'fsck --repair' "
                "(or pass --no-verify to proceed anyway)"
            )
        elif self.findings:
            lines.append("workspace is consistent (after repairs/warnings)")
        else:
            lines.append("workspace is clean")
        return "\n".join(lines)


class RecoveryManager:
    """Reconciles one workspace's stores; the engine behind fsck."""

    def __init__(
        self,
        catalog: "VirtualDataCatalog",
        sandbox_dir: Optional[str | Path] = None,
        journal_dir: Optional[str | Path] = None,
        rescue_dir: Optional[str | Path] = None,
        runs_dir: Optional[str | Path] = None,
        quarantine_dir: Optional[str | Path] = None,
        site_name: str = "local",
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.catalog = catalog
        self.sandbox_dir = Path(sandbox_dir) if sandbox_dir else None
        self.journal_dir = Path(journal_dir) if journal_dir else None
        self.rescue_dir = Path(rescue_dir) if rescue_dir else None
        self.runs_dir = Path(runs_dir) if runs_dir else None
        self.quarantine_dir = (
            Path(quarantine_dir)
            if quarantine_dir
            else (self.sandbox_dir.parent / "quarantine"
                  if self.sandbox_dir else None)
        )
        self.site_name = site_name
        self.obs = instrumentation or NULL

    # -- entry points --------------------------------------------------------

    def fsck(
        self,
        checksums: bool = True,
        repair: bool = False,
        auto_repair: Iterable[str] = (),
    ) -> FsckReport:
        """One reconciliation pass over every store.

        ``checksums=False`` is the cheap structural mode (existence and
        sizes only) used by the ``materialize``/``run`` preflight.
        ``repair`` applies every finding's deterministic fix;
        ``auto_repair`` limits fixing to the named kinds (the preflight
        repairs journal findings only).
        """
        report = FsckReport(checksums_verified=checksums)
        auto = set(auto_repair)

        def fixing(kind: str) -> bool:
            return repair or kind in auto

        self._check_journal(report, fixing)
        self._check_temporaries(report, fixing)
        self._check_replicas(report, fixing, checksums)
        self._check_invocations(report, fixing)
        self._check_datasets_and_files(report, fixing)
        self._check_rescues(report, fixing)
        self._check_runs(report)
        if self.obs.enabled:
            for kind, count in sorted(report.counts().items()):
                self.obs.count(
                    "durability.fsck.findings",
                    count,
                    kind=kind,
                    help="fsck findings by kind",
                )
        return report

    def preflight(self) -> FsckReport:
        """The cheap startup check executing commands run first.

        Structural only (no content digests); journal findings are
        repaired in place — replaying or discarding the torn tail is
        exactly the "recover on startup" contract — everything else is
        reported for ``fsck --repair`` to handle.
        """
        return self.fsck(
            checksums=False, repair=False, auto_repair=PREFLIGHT_AUTO_REPAIR
        )

    # -- journal -------------------------------------------------------------

    def _check_journal(self, report: FsckReport, fixing) -> None:
        if self.journal_dir is None:
            return
        state = journal_mod.load_journal_state(self.journal_dir)
        journal_path = self.journal_dir / journal_mod.JOURNAL_FILENAME
        if state.corrupt:
            finding = report.add(
                Finding(
                    kind="journal-corrupt",
                    severity="error",
                    object=str(journal_path),
                    detail=state.corrupt,
                    repair="quarantine the journal file",
                )
            )
            if fixing(finding.kind):
                journal_mod.quarantine_journal(self.journal_dir)
                finding.repaired = True
            return
        if state.uncommitted:
            for txn in state.uncommitted:
                finding = report.add(
                    Finding(
                        kind="uncommitted-txn",
                        severity="error",
                        object=txn.txn_id,
                        detail=(
                            f"transaction {txn.label or txn.txn_id!r} has "
                            f"{len(txn.ops)} op(s) and no commit marker "
                            "(crash mid-commit)"
                        ),
                        repair="roll back each op to its prior payload",
                    )
                )
            if fixing("uncommitted-txn"):
                journal_mod.rollback_uncommitted(self.catalog, state)
                for finding in report.findings:
                    if finding.kind == "uncommitted-txn":
                        finding.repaired = True
        if state.torn_tail:
            finding = report.add(
                Finding(
                    kind="torn-journal-tail",
                    severity="error",
                    object=str(journal_path),
                    detail="final journal line is torn (crash mid-append)",
                    repair="truncate the torn line",
                )
            )
            if fixing(finding.kind):
                self._truncate_torn_tail(journal_path)
                finding.repaired = True
        # After a full rollback the journal records are history the
        # durable store no longer needs; checkpoint so the rolled-back
        # transactions are not re-reported on the next pass.
        if state.uncommitted and fixing("uncommitted-txn"):
            journal = journal_mod.IntentJournal(self.journal_dir)
            try:
                journal.checkpoint()
            finally:
                journal.close()

    @staticmethod
    def _truncate_torn_tail(path: Path) -> None:
        if not path.is_file():
            return
        raw = path.read_bytes()
        cut = raw.rfind(b"\n")
        with open(path, "r+b") as handle:
            handle.truncate(cut + 1 if cut >= 0 else 0)

    # -- stale atomic-write temporaries --------------------------------------

    def _check_temporaries(self, report: FsckReport, fixing) -> None:
        for directory in (self.sandbox_dir, self.rescue_dir):
            if directory is None or not directory.is_dir():
                continue
            for child in sorted(directory.iterdir()):
                if not (child.is_file() and TMP_MARKER in child.name):
                    continue
                finding = report.add(
                    Finding(
                        kind="stale-temporary",
                        severity="info",
                        object=str(child),
                        detail="in-flight atomic-write temporary "
                        "left by a crash",
                        repair="delete it",
                    )
                )
                if fixing(finding.kind):
                    child.unlink(missing_ok=True)
                    finding.repaired = True

    # -- replicas ------------------------------------------------------------

    def _local_path_of(self, replica) -> Optional[Path]:
        descriptor = replica.descriptor
        if isinstance(descriptor, FileDescriptor) and descriptor.path:
            return Path(descriptor.path)
        return None

    def _check_replicas(
        self, report: FsckReport, fixing, checksums: bool
    ) -> None:
        catalog = self.catalog
        for replica_id in catalog.replica_ids():
            replica = catalog.get_replica(replica_id)
            path = self._local_path_of(replica)
            if path is None:
                # Simulated-grid replica: no local bytes to check.
                continue
            report.checked_replicas += 1
            if not path.is_file():
                finding = report.add(
                    Finding(
                        kind="phantom-replica",
                        severity="error",
                        object=f"{replica_id} ({replica.dataset_name})",
                        detail=f"cataloged at {path}, but the file is gone",
                        repair="drop the replica record",
                    )
                )
                if fixing(finding.kind):
                    catalog.remove_replica(replica_id)
                    finding.repaired = True
                continue
            mismatch = None
            size = path.stat().st_size
            if replica.size is not None and size != replica.size:
                mismatch = f"size {size} != recorded {replica.size}"
            elif (
                checksums
                and replica.digest
                and not replica.digest.startswith(DIGEST_PREFIX)
                and file_digest(path) != replica.digest
            ):
                mismatch = "content digest mismatch"
            if mismatch:
                if self.obs.enabled:
                    self.obs.count(
                        "durability.checksum.failures",
                        help="replica checksum/size verification failures",
                    )
                finding = report.add(
                    Finding(
                        kind="corrupt-replica",
                        severity="error",
                        object=f"{replica_id} ({replica.dataset_name})",
                        detail=f"{path}: {mismatch}",
                        repair="quarantine the file, drop the replica, "
                        "invalidate downstream provenance",
                    )
                )
                if fixing(finding.kind):
                    self._quarantine_file(path)
                    catalog.remove_replica(replica_id)
                    tainted = self._invalidate(replica.dataset_name)
                    if tainted:
                        finding.detail += (
                            f"; tainted downstream: {', '.join(tainted)}"
                        )
                    finding.repaired = True

    def _invalidate(self, dataset_name: str) -> list[str]:
        """Blast radius of a corrupt dataset, via the provenance graph."""
        from repro.provenance.graph import DerivationGraph
        from repro.provenance.invalidation import invalidated_by

        graph = DerivationGraph.from_catalog(self.catalog)
        invalidation = invalidated_by(graph, bad_datasets=[dataset_name])
        return sorted(invalidation.tainted_datasets)

    # -- invocations ---------------------------------------------------------

    def _check_invocations(self, report: FsckReport, fixing) -> None:
        catalog = self.catalog
        for invocation_id in catalog.invocation_ids():
            invocation = catalog.get_invocation(invocation_id)
            report.checked_invocations += 1
            missing = sorted(
                rid
                for rid in invocation.replica_bindings.values()
                if not self._has_replica(rid)
            )
            if not missing:
                continue
            finding = report.add(
                Finding(
                    kind="half-committed-invocation",
                    severity="error",
                    object=f"{invocation_id} ({invocation.derivation_name})",
                    detail=(
                        "invocation references missing replica(s) "
                        + ", ".join(missing)
                    ),
                    repair="drop the invocation record "
                    "(its step re-runs with full provenance)",
                )
            )
            if fixing(finding.kind):
                catalog.restore_payload("invocation", invocation_id, None)
                finding.repaired = True

    def _has_replica(self, replica_id: str) -> bool:
        from repro.errors import NotFoundError

        try:
            self.catalog.get_replica(replica_id)
            return True
        except NotFoundError:
            return False

    # -- datasets and sandbox files ------------------------------------------

    def _check_datasets_and_files(self, report: FsckReport, fixing) -> None:
        catalog = self.catalog
        by_filename: dict[str, str] = {}
        producers: dict[str, bool] = {}
        for name in catalog.dataset_names():
            by_filename[sandbox_filename(name)] = name
        # A dataset record claiming bytes that no longer exist (and no
        # replica backing it elsewhere) flips back to a recipe.
        for name in catalog.dataset_names():
            ds = catalog.get_dataset(name)
            producers[name] = bool(ds.producer)
            if ds.is_virtual:
                continue
            descriptor = ds.descriptor
            path = (
                Path(descriptor.path)
                if isinstance(descriptor, FileDescriptor) and descriptor.path
                else None
            )
            if path is None or path.is_file():
                continue
            if catalog.replicas_of(name):
                continue
            finding = report.add(
                Finding(
                    kind="stale-dataset-state",
                    severity="warning",
                    object=name,
                    detail=f"marked materialized at {path}, but no file "
                    "and no replicas back it",
                    repair="reset the dataset to virtual",
                )
            )
            if fixing(finding.kind):
                catalog.add_dataset(_revirtualized(ds), replace=True)
                finding.repaired = True
        if self.sandbox_dir is None or not self.sandbox_dir.is_dir():
            return
        for child in sorted(self.sandbox_dir.iterdir()):
            if not child.is_file() or TMP_MARKER in child.name:
                continue
            report.checked_files += 1
            dataset = by_filename.get(child.name)
            if dataset is None:
                finding = report.add(
                    Finding(
                        kind="orphan-file",
                        severity="warning",
                        object=str(child),
                        detail="file matches no cataloged dataset",
                        repair="quarantine the file",
                    )
                )
                if fixing(finding.kind):
                    self._quarantine_file(child)
                    finding.repaired = True
                continue
            if catalog.replicas_of(dataset):
                continue  # cataloged normally
            if not producers.get(dataset):
                continue  # a source the user staged in by hand
            # Derived output on disk with no replica record: a crash
            # between stage-out and the provenance commit.  Reusing it
            # would silently lose the invocation record, so it goes to
            # quarantine and the producer re-runs.
            finding = report.add(
                Finding(
                    kind="orphan-output",
                    severity="error",
                    object=str(child),
                    detail=f"uncataloged output of dataset {dataset!r} "
                    "(crash between stage-out and provenance commit)",
                    repair="quarantine the file so the producer re-runs",
                )
            )
            if fixing(finding.kind):
                self._quarantine_file(child)
                ds = catalog.get_dataset(dataset)
                if not ds.is_virtual:
                    catalog.add_dataset(_revirtualized(ds), replace=True)
                finding.repaired = True

    # -- rescue files --------------------------------------------------------

    def _check_rescues(self, report: FsckReport, fixing) -> None:
        if self.rescue_dir is None or not self.rescue_dir.is_dir():
            return
        from repro.errors import RescueError
        from repro.resilience.rescue import RescueFile

        for child in sorted(self.rescue_dir.iterdir()):
            if not child.is_file() or not child.name.endswith(".json"):
                continue
            try:
                rescue = RescueFile.load(child)
            except RescueError as exc:
                finding = report.add(
                    Finding(
                        kind="corrupt-rescue-file",
                        severity="warning",
                        object=str(child),
                        detail=str(exc),
                        repair="quarantine the rescue file",
                    )
                )
                if fixing(finding.kind):
                    self._quarantine_file(child)
                    finding.repaired = True
                continue
            if rescue.truncated:
                finding = report.add(
                    Finding(
                        kind="torn-rescue-tail",
                        severity="warning",
                        object=str(child),
                        detail="rescue file ended in a torn line; the "
                        "valid prefix was salvaged",
                        repair="rewrite the salvaged content atomically",
                    )
                )
                if fixing(finding.kind):
                    rescue.save(child)
                    finding.repaired = True

    # -- flight records ------------------------------------------------------

    def _check_runs(self, report: FsckReport) -> None:
        if self.runs_dir is None or not self.runs_dir.is_dir():
            return
        from repro.observability.recorder import RunRecord

        for child in sorted(self.runs_dir.iterdir()):
            record_path = child / "record.jsonl"
            if not record_path.is_file():
                continue
            try:
                record = RunRecord.load(record_path)
            except (ValueError, OSError):
                report.add(
                    Finding(
                        kind="crashed-run-record",
                        severity="info",
                        object=str(record_path),
                        detail="flight record unreadable",
                    )
                )
                continue
            if record.truncated or not record.finished:
                report.add(
                    Finding(
                        kind="crashed-run-record",
                        severity="info",
                        object=record.run_id,
                        detail="flight record has no result line "
                        "(the run crashed); readers tolerate this",
                    )
                )

    # -- quarantine ----------------------------------------------------------

    def _quarantine_file(self, path: Path) -> Path:
        """Move a suspect file aside; never deletes data."""
        target_dir = self.quarantine_dir or path.parent / "quarantine"
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        ordinal = 0
        while target.exists():
            ordinal += 1
            target = target_dir / f"{path.name}.{ordinal}"
        os.replace(path, target)
        return target


def _revirtualized(ds):
    """A copy of ``ds`` reset to a virtual (recipe-only) descriptor."""
    from repro.core.dataset import Dataset

    return Dataset(
        name=ds.name,
        dataset_type=ds.dataset_type,
        attributes=ds.attributes.copy(),
        producer=ds.producer,
    )
