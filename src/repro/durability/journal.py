"""The append-only intent journal behind atomic provenance commits.

Backends without native transactions (the file-tree and in-memory
catalogs) get all-or-nothing multi-object commits from a write-ahead
undo/redo journal under ``<workspace>/journal/``:

* ``begin`` line — a transaction opens;
* one ``op`` line per mutation, carrying both the new payload (redo)
  and the payload it replaced (undo), flushed *before* the mutation is
  applied to the backing store;
* ``commit`` line — flushed and fsynced once every mutation of the
  transaction has been applied.

The crash windows all resolve deterministically:

* torn final line → the op it described was never applied (ops are
  journaled before application); the tail is discarded;
* ops without a commit marker → the transaction is rolled back by
  restoring each op's ``prev`` payload, newest first;
* commit marker present → every op was already applied; nothing to do.

For :class:`~repro.catalog.memory.MemoryCatalog`-backed runs the
backing store dies with the process, so the journal doubles as a redo
log: :func:`replay_into` reconstructs every committed provenance
transaction into a fresh catalog.

One JSON object per line, like the flight recorder, so the file is
inspectable and a crash can only ever tear the final line.

Durability model: every line is flushed to the kernel before the
corresponding store mutation, which is all process death (SIGKILL) can
threaten — buffered pages survive the process.  ``fsync`` on commit
markers extends the guarantee to power loss and kernel panics at real
I/O cost (on ordered-mode filesystems it also forces writeback of the
transaction's staged data).  The default follows the crash model this
subsystem is tested against — process kills — and can be hardened via
``REPRO_JOURNAL_FSYNC=1`` or ``IntentJournal(fsync=True)``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import JournalError
from repro.observability.instrument import NULL, Instrumentation

if TYPE_CHECKING:
    from repro.catalog.base import VirtualDataCatalog

JOURNAL_VERSION = 1
JOURNAL_FILENAME = "catalog.journal"

#: Checkpoint (truncate) a fully-committed journal past this size when
#: the backing store is durable; committed history is then redundant.
CHECKPOINT_BYTES = 4 << 20

_instances_lock = threading.Lock()
_instances = 0


def _next_instance() -> int:
    """Process-unique writer nonce: two journals opened in the same
    millisecond must still mint distinct transaction ids."""
    global _instances
    with _instances_lock:
        _instances += 1
        return _instances


@dataclass
class JournalOp:
    """One journaled mutation with undo and redo information."""

    op: str  # "put" | "delete"
    kind: str
    key: str
    #: The new payload ("put") — None for "delete".
    payload: Optional[dict] = None
    #: The payload this op replaced — None when the key was absent.
    prev: Optional[dict] = None


@dataclass
class JournalTxn:
    """One transaction as reconstructed by :meth:`IntentJournal.scan`."""

    txn_id: str
    label: str = ""
    ops: list[JournalOp] = field(default_factory=list)
    committed: bool = False


@dataclass
class JournalState:
    """Everything a scan learned about the journal file."""

    committed: list[JournalTxn] = field(default_factory=list)
    uncommitted: list[JournalTxn] = field(default_factory=list)
    #: The final line was torn (crash mid-append); it was discarded.
    torn_tail: bool = False
    #: Set when the journal is damaged beyond the torn-tail model
    #: (an unparseable line that is not last): the file cannot be
    #: trusted and recovery should quarantine it.
    corrupt: Optional[str] = None
    lines: int = 0

    @property
    def clean(self) -> bool:
        return (
            not self.uncommitted and not self.torn_tail and not self.corrupt
        )


class IntentJournal:
    """Appends provenance-commit intents under ``directory``.

    Thread-safe: the catalog serializes transactions, but op records
    may arrive from pool threads via nested call paths, so every
    append holds the journal lock.
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: Optional[bool] = None,
        keep_history: bool = False,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_FILENAME
        if fsync is None:
            fsync = os.environ.get("REPRO_JOURNAL_FSYNC", "") not in (
                "", "0", "false",
            )
        self.fsync = fsync
        #: Retain committed transactions instead of checkpointing —
        #: required when the journal is the only durable record (the
        #: memory-catalog case, where it serves as a redo log).
        self.keep_history = keep_history
        self.obs = instrumentation or NULL
        self._lock = threading.Lock()
        self._handle = None
        self._counter = 0
        self._epoch = (
            f"{int(time.time() * 1000) & 0xFFFFFF:06x}"
            f"{_next_instance():04x}"
        )

    # -- writing -------------------------------------------------------------

    def _file(self):
        if self._handle is None or self._handle.closed:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._repair_tail()
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _repair_tail(self) -> None:
        """Truncate a torn final line before appending past it.

        Appending after a torn tail would bury the tear mid-file, which
        the scanner must treat as corruption; discarding it first keeps
        the torn-tail model intact.  Safe because a torn op line was by
        construction never applied to the backing store.
        """
        if not self.path.is_file():
            return
        raw = self.path.read_bytes()
        body = raw.rstrip(b"\n")
        if not body:
            return
        cut = body.rfind(b"\n")
        last = body[cut + 1 :]
        torn = not raw.endswith(b"\n")  # even a parseable tail: no newline
        if not torn:
            try:
                json.loads(last.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                torn = True
        if torn:
            with open(self.path, "r+b") as handle:
                handle.truncate(cut + 1 if cut >= 0 else 0)

    def _append(self, record: dict, sync: bool = False) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        handle = self._file()
        handle.write(line + "\n")
        # Flush per line: a crash can only tear the final line.
        handle.flush()
        if sync and self.fsync:
            os.fsync(handle.fileno())

    def begin(self, label: str = "") -> str:
        """Open a transaction; returns its journal-unique id."""
        with self._lock:
            self._counter += 1
            txn_id = f"{self._epoch}-{os.getpid():04x}-{self._counter}"
            self._append(
                {
                    "type": "begin",
                    "txn": txn_id,
                    "label": label,
                    "version": JOURNAL_VERSION,
                }
            )
            return txn_id

    def record(
        self,
        txn_id: str,
        op: str,
        kind: str,
        key: str,
        payload: Optional[dict] = None,
        prev: Optional[dict] = None,
    ) -> None:
        """Journal one mutation intent (call *before* applying it)."""
        with self._lock:
            self._append(
                {
                    "type": "op",
                    "txn": txn_id,
                    "op": op,
                    "kind": kind,
                    "key": key,
                    "payload": payload,
                    "prev": prev,
                }
            )

    def commit(self, txn_id: str, ops: int) -> None:
        """Seal a transaction: after this line it is all-or-nothing *on*."""
        with self._lock:
            self._append(
                {"type": "commit", "txn": txn_id, "ops": ops}, sync=True
            )
            if self.obs.enabled:
                self.obs.count(
                    "durability.journal.commits",
                    help="journaled provenance transactions committed",
                )
            if not self.keep_history:
                self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        """Truncate a large fully-committed journal (lock held).

        Safe only because every op of every committed transaction has
        already been applied to a durable backing store before its
        commit marker was written.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size < CHECKPOINT_BYTES:
            return
        self._truncate_locked()

    def checkpoint(self) -> None:
        """Explicitly truncate the journal (after recovery has run)."""
        with self._lock:
            self._truncate_locked()

    def _truncate_locked(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
        if self.path.exists():
            with open(self.path, "w", encoding="utf-8"):
                pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    # -- scanning ------------------------------------------------------------

    def scan(self) -> JournalState:
        """Reconstruct transactions from the file, tolerating a torn tail."""
        state = JournalState()
        if not self.path.is_file():
            return state
        raw_lines = [
            raw
            for raw in self.path.read_text(encoding="utf-8").splitlines()
            if raw.strip()
        ]
        state.lines = len(raw_lines)
        records: list[dict] = []
        for i, raw in enumerate(raw_lines):
            try:
                records.append(json.loads(raw))
            except json.JSONDecodeError:
                if i == len(raw_lines) - 1:
                    state.torn_tail = True
                    break
                state.corrupt = (
                    f"unparseable journal line {i + 1} of {len(raw_lines)} "
                    "(not a torn final line)"
                )
                return state
        txns: dict[str, JournalTxn] = {}
        order: list[str] = []
        for record in records:
            txn_id = record.get("txn")
            rtype = record.get("type")
            if not txn_id or rtype not in ("begin", "op", "commit"):
                state.corrupt = f"journal record without txn/type: {record}"
                return state
            txn = txns.get(txn_id)
            if txn is None:
                txn = txns[txn_id] = JournalTxn(
                    txn_id=txn_id, label=record.get("label", "")
                )
                order.append(txn_id)
            if rtype == "op":
                txn.ops.append(
                    JournalOp(
                        op=record["op"],
                        kind=record["kind"],
                        key=record["key"],
                        payload=record.get("payload"),
                        prev=record.get("prev"),
                    )
                )
            elif rtype == "commit":
                txn.committed = True
        for txn_id in order:
            txn = txns[txn_id]
            (state.committed if txn.committed else state.uncommitted).append(
                txn
            )
        return state


# -- recovery primitives -----------------------------------------------------


def _iter_rollback(txn: JournalTxn) -> Iterator[JournalOp]:
    """Ops of an uncommitted txn in undo order (newest first)."""
    return reversed(txn.ops)


def rollback_uncommitted(
    catalog: "VirtualDataCatalog", state: JournalState
) -> list[tuple[str, str]]:
    """Undo every uncommitted transaction against ``catalog``.

    Each op's ``prev`` payload is restored (or the key deleted when it
    did not exist before).  Restores are idempotent, so it does not
    matter whether the crash happened before or after a given op was
    applied.  Returns the ``(kind, key)`` pairs touched.
    """
    touched: list[tuple[str, str]] = []
    for txn in reversed(state.uncommitted):
        for op in _iter_rollback(txn):
            catalog.restore_payload(op.kind, op.key, op.prev)
            touched.append((op.kind, op.key))
    return touched


def replay_into(
    catalog: "VirtualDataCatalog", state: JournalState
) -> int:
    """Redo every committed transaction into ``catalog``.

    The reconstruction path for memory-backed runs: the backing store
    died with the process, the journal did not.  Returns the number of
    ops applied.
    """
    applied = 0
    for txn in state.committed:
        for op in txn.ops:
            if op.op == "put":
                catalog.restore_payload(op.kind, op.key, op.payload)
            else:
                catalog.restore_payload(op.kind, op.key, None)
            applied += 1
    return applied


def load_journal_state(journal_dir: str | Path) -> JournalState:
    """Scan a journal directory without constructing a writer."""
    journal = IntentJournal(journal_dir)
    try:
        return journal.scan()
    finally:
        journal.close()


def quarantine_journal(journal_dir: str | Path) -> Optional[Path]:
    """Move a corrupt journal aside (``catalog.journal.corrupt``).

    Used when a scan reports damage beyond the torn-tail model; the
    sidelined file is kept for post-mortems rather than deleted.
    """
    path = Path(journal_dir) / JOURNAL_FILENAME
    if not path.is_file():
        return None
    target = path.with_suffix(path.suffix + ".corrupt")
    os.replace(path, target)
    return target


__all__ = [
    "CHECKPOINT_BYTES",
    "IntentJournal",
    "JOURNAL_FILENAME",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalOp",
    "JournalState",
    "JournalTxn",
    "load_journal_state",
    "quarantine_journal",
    "replay_into",
    "rollback_uncommitted",
]
