"""Crash consistency and durability for the virtual data grid.

The paper's virtual-data promise — any dataset can be deleted and
transparently re-derived — only holds if the catalog's provenance
record survives arbitrary failure.  This package makes the workspace
crash-consistent end to end, in the spirit of the checksum-verified,
restartable replica management of Allcock et al. (PAPERS.md):

* :mod:`repro.durability.atomic` — torn-write-free file replacement
  (``tempfile`` + ``os.replace``) shared by every on-disk writer;
* :mod:`repro.durability.checksum` — content digests stamped on
  replicas at stage-out and verified on consume and during fsck;
* :mod:`repro.durability.journal` — the append-only intent journal
  that makes multi-object provenance commits all-or-nothing on
  backends without native transactions;
* :mod:`repro.durability.crashpoints` — environment-armed SIGKILL
  hooks the crash-matrix tests use to kill real processes at seeded
  points inside the commit path;
* :mod:`repro.durability.recovery` — the :class:`RecoveryManager`
  behind ``repro fsck``: reconciles catalog, workspace files, journal,
  rescue files and flight records, with deterministic ``--repair``.
"""

from repro.durability.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.durability.checksum import (
    DIGEST_PREFIX,
    file_digest,
    verify_bytes,
    verify_file,
)
from repro.durability.crashpoints import crashpoint, crashpoints_armed
from repro.durability.journal import (
    IntentJournal,
    JournalOp,
    JournalState,
    JournalTxn,
)
from repro.durability.recovery import (
    Finding,
    FsckReport,
    RecoveryManager,
)

__all__ = [
    "DIGEST_PREFIX",
    "Finding",
    "FsckReport",
    "IntentJournal",
    "JournalOp",
    "JournalState",
    "JournalTxn",
    "RecoveryManager",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "crashpoint",
    "crashpoints_armed",
    "file_digest",
    "verify_bytes",
    "verify_file",
]
