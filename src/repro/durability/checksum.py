"""Replica content checksums.

Allcock et al. (PAPERS.md) make checksum-verified transfers the
foundation of replica management; here every replica staged out by the
local executor carries a streaming SHA-256 of its bytes plus its size.
Verification runs lazily when a replica is consumed (the executor's
``has_valid_replica``) and eagerly during ``repro fsck``; a mismatch
is quarantined and invalidated so planning transparently re-derives.

The simulated grid has no real bytes; its replicas carry the
deterministic pseudo-digest from
:func:`repro.resilience.rescue.expected_digest` instead, which uses the
``sha256:`` prefix.  :func:`verify_file` therefore only checks digests
it can actually recompute — raw hex digests of on-disk files — and
treats prefixed simulation digests as out of scope.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

#: Prefix marking simulated (non-content) digests.
DIGEST_PREFIX = "sha256:"

_CHUNK = 1 << 20


def file_digest(path: str | Path) -> str:
    """Streaming SHA-256 hex digest of a file's contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(_CHUNK), b""):
            digest.update(chunk)
    return digest.hexdigest()


def verify_bytes(data: bytes, digest: str) -> bool:
    """Whether ``data`` hashes to ``digest`` (raw hex form)."""
    return hashlib.sha256(data).hexdigest() == digest


def verify_file(
    path: str | Path,
    size: Optional[int] = None,
    digest: Optional[str] = None,
) -> bool:
    """Check a file against its recorded size and content digest.

    Returns False when the file is missing, its size disagrees, or a
    verifiable (raw hex) digest disagrees.  ``None`` size/digest and
    simulation digests (``sha256:`` prefixed) are skipped — absence of
    a checksum is not corruption.
    """
    path = Path(path)
    if not path.is_file():
        return False
    if size is not None and path.stat().st_size != size:
        return False
    if digest and not digest.startswith(DIGEST_PREFIX):
        return file_digest(path) == digest
    return True
