"""Crashpoint hooks: kill this process, for real, at a chosen point.

The crash-matrix tests in ``tests/durability/`` prove crash
consistency against *actual* process death, not simulated exceptions:
a child process runs a real materialization with a crashpoint armed,
SIGKILLs itself mid-commit, and the parent then asserts that
``repro fsck --repair`` plus a rerun reaches the same catalog state as
an uninterrupted run.

Instrumented code calls :func:`crashpoint(name) <crashpoint>` at the
interesting boundaries (after stage-out, between journal ops, before
and after the commit marker).  The call is a no-op unless armed via
the environment:

``REPRO_CRASH_AFTER=N``
    SIGKILL this process the Nth time a matching crashpoint is hit.
``REPRO_CRASH_MATCH=prefix``
    Only crashpoints whose name starts with ``prefix`` count
    (default: all).
``REPRO_CRASHPOINT_LOG=file``
    Append one line per hit (name) — the discovery mode the test
    harness uses to learn how many kill candidates a clean run has.

Hits are counted process-wide under a lock so the parallel executor's
pool threads produce a deterministic count for a deterministic run.
"""

from __future__ import annotations

import os
import signal
import threading

_ENV_AFTER = "REPRO_CRASH_AFTER"
_ENV_MATCH = "REPRO_CRASH_MATCH"
_ENV_LOG = "REPRO_CRASHPOINT_LOG"

_lock = threading.Lock()
_hits = 0


def crashpoints_armed() -> bool:
    """Whether any crashpoint behavior (kill or log) is active."""
    return bool(os.environ.get(_ENV_AFTER) or os.environ.get(_ENV_LOG))


def crashpoint(name: str) -> None:
    """Maybe SIGKILL the process here; free when not armed."""
    env = os.environ
    after = env.get(_ENV_AFTER)
    log = env.get(_ENV_LOG)
    if not after and not log:
        return
    match = env.get(_ENV_MATCH, "")
    if match and not name.startswith(match):
        return
    global _hits
    with _lock:
        _hits += 1
        count = _hits
        if log:
            # Line-buffered append: survives the kill below because
            # each hit is written before the next can fire.
            with open(log, "a", encoding="utf-8") as handle:
                handle.write(name + "\n")
                handle.flush()
    if after and count == int(after):
        # SIGKILL, not sys.exit: no atexit handlers, no finally
        # blocks, no flushing — the genuine article.
        os.kill(os.getpid(), signal.SIGKILL)


def reset_hits() -> None:
    """Test hook: forget hits counted so far in this process."""
    global _hits
    with _lock:
        _hits = 0
