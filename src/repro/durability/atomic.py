"""Atomic file replacement: no reader ever sees a torn write.

Every on-disk artifact the grid writes whole — rescue files, fault
plans, observability snapshots, exported traces, benchmark results —
goes through these helpers: the content lands in a ``tempfile`` in the
*destination directory* (same filesystem, so the final rename cannot
degrade to a copy) and is moved into place with ``os.replace``, which
POSIX guarantees to be atomic.  A process killed mid-write leaves at
worst an orphaned ``*.tmp*`` file, never a half-written artifact under
the real name.

Append-only streams (the flight recorder, the intent journal) are the
other durability idiom — they tolerate torn *tails* instead — so they
do not use this module.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

#: Suffix marking in-flight temporaries (fsck sweeps stale ones).
TMP_MARKER = ".vdg-tmp"


def atomic_write_bytes(
    path: str | Path, data: bytes, fsync: bool = False
) -> Path:
    """Write ``data`` to ``path`` atomically; returns the path.

    With ``fsync`` the bytes are forced to stable storage before the
    rename, making the replacement durable across power loss, not just
    process death.  The default skips it: for most artifacts process
    crash (SIGKILL) is the failure model and the rename alone keeps
    readers consistent.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + TMP_MARKER, dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_text(
    path: str | Path, text: str, fsync: bool = False
) -> Path:
    """Atomic ``Path.write_text`` replacement (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: str | Path,
    payload: Any,
    indent: int | None = 2,
    fsync: bool = False,
) -> Path:
    """Serialize ``payload`` as JSON and write it atomically."""
    text = json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    return atomic_write_text(path, text, fsync=fsync)


def sweep_temporaries(directory: str | Path) -> list[Path]:
    """Remove stale ``*.vdg-tmp*`` files a crash left behind.

    Returns the paths removed (for fsck reporting).  Only files
    directly inside ``directory`` are considered.
    """
    directory = Path(directory)
    removed: list[Path] = []
    if not directory.is_dir():
        return removed
    for child in sorted(directory.iterdir()):
        if child.is_file() and TMP_MARKER in child.name:
            child.unlink(missing_ok=True)
            removed.append(child)
    return removed
