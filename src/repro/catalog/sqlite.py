"""SQLite-backed virtual data catalog.

This is the "relational database" realization of the VDC (§3, Appendix
B).  The physical schema keeps one table per object kind with the full
payload as a JSON document plus the columns the catalog's hot queries
need (name keys, dataset back-references), mirroring how the Chimera
prototype mapped its schema onto an RDBMS.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Optional

from repro.catalog.base import VirtualDataCatalog

_SCHEMA = """
CREATE TABLE IF NOT EXISTS dataset (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS replica (
    key TEXT PRIMARY KEY,
    dataset_name TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS replica_dataset ON replica (dataset_name);
CREATE TABLE IF NOT EXISTS transformation (
    key TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    version TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS transformation_name ON transformation (name);
CREATE TABLE IF NOT EXISTS derivation (
    key TEXT PRIMARY KEY,
    transformation TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS derivation_tr ON derivation (transformation);
CREATE TABLE IF NOT EXISTS invocation (
    key TEXT PRIMARY KEY,
    derivation_name TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS invocation_dv ON invocation (derivation_name);
CREATE TABLE IF NOT EXISTS derivation_io (
    derivation TEXT NOT NULL,
    dataset TEXT NOT NULL,
    direction TEXT NOT NULL,
    PRIMARY KEY (derivation, dataset, direction)
);
CREATE INDEX IF NOT EXISTS derivation_io_ds ON derivation_io (dataset);
"""


class SQLiteCatalog(VirtualDataCatalog):
    """A catalog persisted in a SQLite database file.

    ``path=":memory:"`` (the default) gives a private throwaway
    database, which is what the benchmark harness uses to measure the
    relational backend without disk noise.
    """

    def __init__(
        self,
        path: str = ":memory:",
        authority: Optional[str] = None,
        **kwargs,
    ):
        super().__init__(authority=authority, **kwargs)
        # check_same_thread=False: the parallel executor records
        # provenance from pool threads; the catalog's own RLock already
        # serializes every operation, so SQLite never sees concurrent use.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._in_bulk = False
        if path != ":memory:":
            # WAL keeps readers unblocked during commits and turns the
            # per-mutation fsync into a sequential log append.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._rebuild_indexes()

    def close(self) -> None:
        """Close the underlying database connection."""
        self._conn.close()

    # -- transaction hooks -------------------------------------------------

    def _txn_begin(self) -> None:
        # Hold the implicit sqlite transaction open until the outermost
        # exit: per-mutation _commit() calls become no-ops, so the whole
        # batch becomes durable with one COMMIT — or vanishes with one
        # ROLLBACK — exactly the native all-or-nothing the base class
        # otherwise emulates with its journal.
        self._in_bulk = True

    def _txn_commit(self) -> None:
        self._in_bulk = False
        self._conn.commit()

    def _txn_abort(self) -> bool:
        self._in_bulk = False
        self._conn.rollback()
        return True

    def _commit(self) -> None:
        if not self._in_bulk:
            self._conn.commit()

    def __enter__(self) -> "SQLiteCatalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- storage primitives ------------------------------------------------

    def _store_put(self, kind: str, key: str, payload: dict) -> None:
        doc = json.dumps(payload)
        if kind == "dataset":
            self._conn.execute(
                "INSERT OR REPLACE INTO dataset (key, payload) VALUES (?, ?)",
                (key, doc),
            )
        elif kind == "replica":
            self._conn.execute(
                "INSERT OR REPLACE INTO replica (key, dataset_name, payload)"
                " VALUES (?, ?, ?)",
                (key, payload["dataset_name"], doc),
            )
        elif kind == "transformation":
            self._conn.execute(
                "INSERT OR REPLACE INTO transformation"
                " (key, name, version, payload) VALUES (?, ?, ?, ?)",
                (key, payload["name"], payload["version"], doc),
            )
        elif kind == "derivation":
            self._conn.execute(
                "INSERT OR REPLACE INTO derivation"
                " (key, transformation, payload) VALUES (?, ?, ?)",
                (key, payload["transformation"], doc),
            )
            self._conn.execute(
                "DELETE FROM derivation_io WHERE derivation = ?", (key,)
            )
            for formal, actual in payload.get("actuals", {}).items():
                if isinstance(actual, dict):
                    self._conn.execute(
                        "INSERT OR REPLACE INTO derivation_io"
                        " (derivation, dataset, direction) VALUES (?, ?, ?)",
                        (key, actual["dataset"], actual["direction"]),
                    )
        elif kind == "invocation":
            self._conn.execute(
                "INSERT OR REPLACE INTO invocation"
                " (key, derivation_name, payload) VALUES (?, ?, ?)",
                (key, payload["derivation_name"], doc),
            )
        else:
            raise ValueError(f"unknown kind {kind!r}")
        self._commit()

    def _store_get(self, kind: str, key: str) -> Optional[dict]:
        row = self._conn.execute(
            f"SELECT payload FROM {kind} WHERE key = ?", (key,)  # noqa: S608
        ).fetchone()
        return json.loads(row[0]) if row else None

    def _store_delete(self, kind: str, key: str) -> None:
        self._conn.execute(f"DELETE FROM {kind} WHERE key = ?", (key,))  # noqa: S608
        if kind == "derivation":
            self._conn.execute(
                "DELETE FROM derivation_io WHERE derivation = ?", (key,)
            )
        self._commit()

    def _store_put_many(self, kind: str, items: list[tuple[str, dict]]) -> None:
        if not items:
            return
        docs = [(key, json.dumps(payload)) for key, payload in items]
        if kind == "dataset":
            self._conn.executemany(
                "INSERT OR REPLACE INTO dataset (key, payload) VALUES (?, ?)",
                docs,
            )
        elif kind == "replica":
            self._conn.executemany(
                "INSERT OR REPLACE INTO replica (key, dataset_name, payload)"
                " VALUES (?, ?, ?)",
                [
                    (key, payload["dataset_name"], doc)
                    for (key, payload), (_, doc) in zip(items, docs)
                ],
            )
        elif kind == "transformation":
            self._conn.executemany(
                "INSERT OR REPLACE INTO transformation"
                " (key, name, version, payload) VALUES (?, ?, ?, ?)",
                [
                    (key, payload["name"], payload["version"], doc)
                    for (key, payload), (_, doc) in zip(items, docs)
                ],
            )
        elif kind == "derivation":
            self._conn.executemany(
                "INSERT OR REPLACE INTO derivation"
                " (key, transformation, payload) VALUES (?, ?, ?)",
                [
                    (key, payload["transformation"], doc)
                    for (key, payload), (_, doc) in zip(items, docs)
                ],
            )
            self._conn.executemany(
                "DELETE FROM derivation_io WHERE derivation = ?",
                [(key,) for key, _ in items],
            )
            io_rows = [
                (key, actual["dataset"], actual["direction"])
                for key, payload in items
                for actual in payload.get("actuals", {}).values()
                if isinstance(actual, dict)
            ]
            if io_rows:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO derivation_io"
                    " (derivation, dataset, direction) VALUES (?, ?, ?)",
                    io_rows,
                )
        elif kind == "invocation":
            self._conn.executemany(
                "INSERT OR REPLACE INTO invocation"
                " (key, derivation_name, payload) VALUES (?, ?, ?)",
                [
                    (key, payload["derivation_name"], doc)
                    for (key, payload), (_, doc) in zip(items, docs)
                ],
            )
        else:
            raise ValueError(f"unknown kind {kind!r}")
        self._commit()

    def _store_keys(self, kind: str) -> list[str]:
        rows = self._conn.execute(f"SELECT key FROM {kind}")  # noqa: S608
        return [row[0] for row in rows]

    def _store_has(self, kind: str, key: str) -> bool:
        row = self._conn.execute(
            f"SELECT 1 FROM {kind} WHERE key = ?", (key,)  # noqa: S608
        ).fetchone()
        return row is not None
