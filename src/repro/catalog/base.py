"""The Virtual Data Catalog (VDC) service interface (§4).

"We introduce the term virtual data catalog (VDC) to denote a service
that maintains information defined by our virtual data schema."  A
VDC's implementation "may variously be a relational database, OO
database, XML repository, or even a hierarchical directory" (§3); this
module defines the backend-independent interface and behaviour, and the
sibling modules provide three backends:

* :class:`repro.catalog.memory.MemoryCatalog` — dictionaries;
* :class:`repro.catalog.sqlite.SQLiteCatalog` — a relational store
  (the Appendix B shape);
* :class:`repro.catalog.filetree.FileTreeCatalog` — a hierarchical
  directory of JSON documents.

The base class owns all semantics — registration rules, link
maintenance, discovery queries, change notification — and delegates
only dumb ``(kind, key) -> payload dict`` persistence to the backend.
All backends therefore behave identically, which the test suite checks
by running the same scenarios against each.
"""

from __future__ import annotations

import fnmatch
import time
from typing import Any, Callable, Iterator, Optional

from repro.core.dataset import Dataset
from repro.core.derivation import Derivation
from repro.core.invocation import Invocation, observe_invocation_id
from repro.core.replica import Replica, observe_replica_id
from repro.core.transformation import Transformation
from repro.core.types import DatasetType, TypeRegistry, default_registry
from repro.core.versioning import VersionRegistry
from repro.errors import (
    DuplicateEntryError,
    NotFoundError,
    TypeConformanceError,
)
from repro.observability.instrument import NULL, Instrumentation
from repro.observability.metrics import label_key
from repro.vdl import xml_io

#: Object kinds a catalog stores, in dependency order.
KINDS = ("dataset", "replica", "transformation", "derivation", "invocation")

#: Event names delivered to subscribers.
EVENTS = ("put", "delete")


def _transformation_to_payload(tr: Transformation) -> dict:
    return tr.to_dict()


def _transformation_from_payload(payload: dict) -> Transformation:
    import xml.etree.ElementTree as ET

    tr = xml_io.transformation_from_xml(ET.fromstring(payload["xml"]))
    for key, value in payload.get("attributes", {}).items():
        tr.attributes.set(key, value)
    return tr


class VirtualDataCatalog:
    """Backend-independent VDC semantics.

    Subclasses implement five storage primitives (``_store_put``,
    ``_store_get``, ``_store_delete``, ``_store_keys``, ``_store_has``).
    Keys are: dataset name, replica id, ``name@version`` for
    transformations, derivation name, invocation id.
    """

    def __init__(
        self,
        authority: Optional[str] = None,
        registry: Optional[TypeRegistry] = None,
        versions: Optional[VersionRegistry] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.authority = authority
        self.types = registry or default_registry()
        self.versions = versions or VersionRegistry()
        self._obs = instrumentation or NULL
        self._obs_cache: dict = {}
        self._subscribers: list[Callable[[str, str, str], None]] = []
        # Relationship indexes, rebuilt from storage on open.
        self._produced_by: dict[str, set[str]] = {}
        self._consumed_by: dict[str, set[str]] = {}
        self._replicas_of: dict[str, set[str]] = {}
        self._invocations_of: dict[str, set[str]] = {}
        self._tr_versions: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # storage primitives (implemented by backends)
    # ------------------------------------------------------------------

    def _store_put(self, kind: str, key: str, payload: dict) -> None:
        raise NotImplementedError

    def _store_get(self, kind: str, key: str) -> Optional[dict]:
        raise NotImplementedError

    def _store_delete(self, kind: str, key: str) -> None:
        raise NotImplementedError

    def _store_keys(self, kind: str) -> list[str]:
        raise NotImplementedError

    def _store_has(self, kind: str, key: str) -> bool:
        return self._store_get(kind, key) is not None

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    @property
    def obs(self) -> Instrumentation:
        return self._obs

    @obs.setter
    def obs(self, instrumentation: Instrumentation) -> None:
        self._obs = instrumentation
        self._obs_cache.clear()

    def _obs_t0(self) -> float:
        """Start-of-operation timestamp; 0.0 when not instrumented."""
        return time.perf_counter() if self._obs.enabled else 0.0

    def _obs_op(self, op: str, kind: str, t0: float) -> None:
        """Account one catalog operation's count and latency.

        Catalog lookups are the hottest instrumented path in the
        stack (planning walks the whole derivation graph), so the
        metric objects and label keys are resolved once per (op,
        kind) and cached rather than paying label normalization and
        registry lookups on every call.
        """
        if not self._obs.enabled:
            return
        cached = self._obs_cache.get((op, kind))
        if cached is None:
            metrics = self._obs.metrics
            cached = self._obs_cache[(op, kind)] = (
                metrics.counter(
                    "catalog.ops", help="catalog operations by op/kind/backend"
                ),
                label_key(
                    {"op": op, "kind": kind, "backend": type(self).__name__}
                ),
                metrics.histogram(
                    "catalog.op.seconds", help="catalog operation latency"
                ),
                label_key({"op": op}),
            )
        ops, ops_key, seconds, seconds_key = cached
        ops.inc_at(ops_key)
        seconds.observe_at(seconds_key, time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # change notification (used by federated indexes, Fig 4)
    # ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[str, str, str], None]) -> None:
        """Register ``callback(event, kind, key)`` for every mutation."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[str, str, str], None]) -> None:
        self._subscribers.remove(callback)

    def _notify(self, event: str, kind: str, key: str) -> None:
        for callback in self._subscribers:
            callback(event, kind, key)

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------

    def _rebuild_indexes(self) -> None:
        """Rebuild relationship indexes by scanning storage (on open)."""
        self._produced_by.clear()
        self._consumed_by.clear()
        self._replicas_of.clear()
        self._invocations_of.clear()
        self._tr_versions.clear()
        for key in self._store_keys("derivation"):
            payload = self._store_get("derivation", key)
            self._index_derivation(Derivation.from_dict(payload))
        for key in self._store_keys("replica"):
            payload = self._store_get("replica", key)
            self._replicas_of.setdefault(payload["dataset_name"], set()).add(key)
            # A persistent catalog may hold IDs minted by an earlier
            # process; advance the allocator so they are never re-issued.
            observe_replica_id(key)
        for key in self._store_keys("invocation"):
            payload = self._store_get("invocation", key)
            self._invocations_of.setdefault(
                payload["derivation_name"], set()
            ).add(key)
            observe_invocation_id(key)
        for key in self._store_keys("transformation"):
            name, _, version = key.rpartition("@")
            self._tr_versions.setdefault(name, set()).add(version)
            self.versions.register(name, version)

    def _index_derivation(self, dv: Derivation) -> None:
        for output in dv.outputs():
            self._produced_by.setdefault(output, set()).add(dv.name)
        for inp in dv.inputs():
            self._consumed_by.setdefault(inp, set()).add(dv.name)

    def _unindex_derivation(self, dv: Derivation) -> None:
        for output in dv.outputs():
            self._produced_by.get(output, set()).discard(dv.name)
        for inp in dv.inputs():
            self._consumed_by.get(inp, set()).discard(dv.name)

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------

    def add_dataset(self, dataset: Dataset, replace: bool = False) -> None:
        """Register a dataset definition.

        ``replace=True`` permits updating an existing record (e.g. when
        a virtual dataset becomes materialized).
        """
        t0 = self._obs_t0()
        if not replace and self._store_has("dataset", dataset.name):
            raise DuplicateEntryError(f"dataset {dataset.name!r} already defined")
        self._store_put("dataset", dataset.name, dataset.to_dict())
        self._notify("put", "dataset", dataset.name)
        self._obs_op("insert", "dataset", t0)

    def get_dataset(self, name: str) -> Dataset:
        t0 = self._obs_t0()
        payload = self._store_get("dataset", name)
        if payload is None:
            raise NotFoundError(f"dataset {name!r} not found")
        self._obs_op("lookup", "dataset", t0)
        return Dataset.from_dict(payload)

    def has_dataset(self, name: str) -> bool:
        return self._store_has("dataset", name)

    def remove_dataset(self, name: str) -> None:
        if not self._store_has("dataset", name):
            raise NotFoundError(f"dataset {name!r} not found")
        self._store_delete("dataset", name)
        self._notify("delete", "dataset", name)

    def dataset_names(self) -> list[str]:
        return sorted(self._store_keys("dataset"))

    def datasets(self) -> Iterator[Dataset]:
        for name in self.dataset_names():
            yield self.get_dataset(name)

    # ------------------------------------------------------------------
    # replicas
    # ------------------------------------------------------------------

    def add_replica(self, replica: Replica) -> None:
        """Register a physical copy of a dataset."""
        t0 = self._obs_t0()
        if self._store_has("replica", replica.replica_id):
            raise DuplicateEntryError(
                f"replica {replica.replica_id!r} already registered"
            )
        self._store_put("replica", replica.replica_id, replica.to_dict())
        self._replicas_of.setdefault(replica.dataset_name, set()).add(
            replica.replica_id
        )
        self._notify("put", "replica", replica.replica_id)
        self._obs_op("insert", "replica", t0)

    def get_replica(self, replica_id: str) -> Replica:
        payload = self._store_get("replica", replica_id)
        if payload is None:
            raise NotFoundError(f"replica {replica_id!r} not found")
        return Replica.from_dict(payload)

    def remove_replica(self, replica_id: str) -> None:
        payload = self._store_get("replica", replica_id)
        if payload is None:
            raise NotFoundError(f"replica {replica_id!r} not found")
        self._store_delete("replica", replica_id)
        self._replicas_of.get(payload["dataset_name"], set()).discard(replica_id)
        self._notify("delete", "replica", replica_id)

    def replicas_of(self, dataset_name: str) -> list[Replica]:
        """All registered physical copies of ``dataset_name``."""
        ids = sorted(self._replicas_of.get(dataset_name, ()))
        return [self.get_replica(rid) for rid in ids]

    def replica_ids(self) -> list[str]:
        return sorted(self._store_keys("replica"))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def add_transformation(
        self, tr: Transformation, replace: bool = False
    ) -> None:
        t0 = self._obs_t0()
        key = f"{tr.name}@{tr.version}"
        if not replace and self._store_has("transformation", key):
            raise DuplicateEntryError(
                f"transformation {tr.name!r} version {tr.version} already defined"
            )
        self._store_put("transformation", key, _transformation_to_payload(tr))
        self._tr_versions.setdefault(tr.name, set()).add(tr.version)
        self.versions.register(tr.name, tr.version)
        self._notify("put", "transformation", key)
        self._obs_op("insert", "transformation", t0)

    def get_transformation(
        self, name: str, version: Optional[str] = None
    ) -> Transformation:
        """Fetch by name; latest version when ``version`` is omitted."""
        t0 = self._obs_t0()
        if version is None:
            known = self._tr_versions.get(name)
            if not known:
                raise NotFoundError(f"transformation {name!r} not found")
            latest = self.versions.latest(name)
            version = str(latest) if latest is not None else sorted(known)[-1]
            if version not in known:
                # versions registry may normalize (1.0 == 1); fall back.
                version = sorted(known)[-1]
        payload = self._store_get("transformation", f"{name}@{version}")
        if payload is None:
            raise NotFoundError(
                f"transformation {name!r} version {version} not found"
            )
        self._obs_op("lookup", "transformation", t0)
        return _transformation_from_payload(payload)

    def has_transformation(self, name: str, version: Optional[str] = None) -> bool:
        if version is None:
            return bool(self._tr_versions.get(name))
        return self._store_has("transformation", f"{name}@{version}")

    def remove_transformation(self, name: str, version: str) -> None:
        key = f"{name}@{version}"
        if not self._store_has("transformation", key):
            raise NotFoundError(f"transformation {key!r} not found")
        self._store_delete("transformation", key)
        self._tr_versions.get(name, set()).discard(version)
        self._notify("delete", "transformation", key)

    def transformation_names(self) -> list[str]:
        return sorted(self._tr_versions)

    def transformations(self) -> Iterator[Transformation]:
        for key in sorted(self._store_keys("transformation")):
            yield _transformation_from_payload(
                self._store_get("transformation", key)
            )

    # ------------------------------------------------------------------
    # derivations
    # ------------------------------------------------------------------

    def add_derivation(
        self,
        dv: Derivation,
        replace: bool = False,
        validate: bool = True,
        auto_declare: bool = True,
    ) -> None:
        """Register a derivation.

        * validates actuals against the (locally resolvable)
          transformation when ``validate`` is true;
        * auto-declares virtual dataset records for any LFN the
          derivation mentions that is not yet known, and stamps the
          produced datasets' ``producer`` back-link.
        """
        t0 = self._obs_t0()
        if not replace and self._store_has("derivation", dv.name):
            raise DuplicateEntryError(f"derivation {dv.name!r} already defined")
        if validate:
            self.check_derivation(dv)
        if replace and self._store_has("derivation", dv.name):
            self._unindex_derivation(self.get_derivation(dv.name))
        self._store_put("derivation", dv.name, dv.to_dict())
        self._index_derivation(dv)
        if auto_declare:
            self._declare_mentioned_datasets(dv)
        self._notify("put", "derivation", dv.name)
        self._obs_op("insert", "derivation", t0)

    def _declare_mentioned_datasets(self, dv: Derivation) -> None:
        formal_types = self._formal_types_for(dv)
        for formal_name, arg in dv.dataset_args():
            if not self._store_has("dataset", arg.dataset):
                dtype = formal_types.get(formal_name)
                ds = Dataset(name=arg.dataset, dataset_type=dtype or DatasetType())
                if arg.is_output:
                    ds.producer = dv.name
                self.add_dataset(ds)
            elif arg.is_output:
                ds = self.get_dataset(arg.dataset)
                if ds.producer != dv.name:
                    ds.producer = dv.name
                    self.add_dataset(ds, replace=True)

    def _formal_types_for(self, dv: Derivation) -> dict[str, DatasetType]:
        """Best-effort formal types for a derivation's dataset args."""
        if not dv.transformation.is_local or not self.has_transformation(
            dv.transformation.name
        ):
            return {}
        tr = self.get_transformation(dv.transformation.name)
        out = {}
        for formal in tr.signature.formals:
            if not formal.is_string and len(formal.dataset_types.members) == 1:
                member = formal.dataset_types.members[0]
                if not member.is_any():
                    out[formal.name] = member
        return out

    def get_derivation(self, name: str) -> Derivation:
        t0 = self._obs_t0()
        payload = self._store_get("derivation", name)
        if payload is None:
            raise NotFoundError(f"derivation {name!r} not found")
        self._obs_op("lookup", "derivation", t0)
        return Derivation.from_dict(payload)

    def has_derivation(self, name: str) -> bool:
        return self._store_has("derivation", name)

    def remove_derivation(self, name: str) -> None:
        dv = self.get_derivation(name)
        self._store_delete("derivation", name)
        self._unindex_derivation(dv)
        self._notify("delete", "derivation", name)

    def derivation_names(self) -> list[str]:
        return sorted(self._store_keys("derivation"))

    def derivations(self) -> Iterator[Derivation]:
        for name in self.derivation_names():
            yield self.get_derivation(name)

    def check_derivation(self, dv: Derivation) -> None:
        """Validate a derivation against its transformation and datasets.

        Remote transformation references are skipped (the resolver
        validates them); local ones are checked for arity/direction and
        dataset-type conformance against registered dataset records.
        """
        ref = dv.transformation
        if not ref.is_local:
            return
        if not self.has_transformation(ref.name):
            return  # foreign/unregistered; tolerated like remote refs
        tr = self.get_transformation(ref.name)
        dv.check_against(tr)
        for formal_name, arg in dv.dataset_args():
            formal = tr.signature.formal(formal_name)
            if formal.is_string:
                continue
            if not self._store_has("dataset", arg.dataset):
                continue
            ds = self.get_dataset(arg.dataset)
            if not formal.dataset_types.accepts(ds.dataset_type, self.types):
                raise TypeConformanceError(
                    f"derivation {dv.name!r}: dataset {arg.dataset!r} of type "
                    f"{ds.dataset_type} does not conform to formal "
                    f"{formal_name!r} ({formal.dataset_types})"
                )

    # ------------------------------------------------------------------
    # invocations
    # ------------------------------------------------------------------

    def add_invocation(self, inv: Invocation) -> None:
        t0 = self._obs_t0()
        if self._store_has("invocation", inv.invocation_id):
            raise DuplicateEntryError(
                f"invocation {inv.invocation_id!r} already recorded"
            )
        self._store_put("invocation", inv.invocation_id, inv.to_dict())
        self._invocations_of.setdefault(inv.derivation_name, set()).add(
            inv.invocation_id
        )
        self._notify("put", "invocation", inv.invocation_id)
        self._obs_op("insert", "invocation", t0)

    def get_invocation(self, invocation_id: str) -> Invocation:
        payload = self._store_get("invocation", invocation_id)
        if payload is None:
            raise NotFoundError(f"invocation {invocation_id!r} not found")
        return Invocation.from_dict(payload)

    def invocations_of(self, derivation_name: str) -> list[Invocation]:
        """All recorded executions of a derivation, by id order."""
        ids = sorted(self._invocations_of.get(derivation_name, ()))
        return [self.get_invocation(iid) for iid in ids]

    def invocation_ids(self) -> list[str]:
        return sorted(self._store_keys("invocation"))

    # ------------------------------------------------------------------
    # provenance relationship queries (used by repro.provenance)
    # ------------------------------------------------------------------

    def producers_of(self, dataset_name: str) -> list[Derivation]:
        """Derivations that output ``dataset_name``."""
        names = sorted(self._produced_by.get(dataset_name, ()))
        return [self.get_derivation(n) for n in names]

    def consumers_of(self, dataset_name: str) -> list[Derivation]:
        """Derivations that read ``dataset_name``."""
        names = sorted(self._consumed_by.get(dataset_name, ()))
        return [self.get_derivation(n) for n in names]

    # ------------------------------------------------------------------
    # discovery (§2 Discovery, §5.5)
    # ------------------------------------------------------------------

    def find_datasets(
        self,
        name_glob: Optional[str] = None,
        conforms_to: Optional[DatasetType] = None,
        attributes: Optional[dict[str, Any]] = None,
        virtual: Optional[bool] = None,
    ) -> list[Dataset]:
        """Metadata search over datasets.

        ``conforms_to`` matches datasets whose type is a subtype of the
        given type; ``virtual`` filters on materialization state.
        """
        t0 = self._obs_t0()
        out = []
        for ds in self.datasets():
            if name_glob and not fnmatch.fnmatch(ds.name, name_glob):
                continue
            if conforms_to is not None and not self.types.conforms(
                ds.dataset_type, conforms_to
            ):
                continue
            if attributes and not ds.attributes.matches(attributes):
                continue
            if virtual is not None and ds.is_virtual != virtual:
                continue
            out.append(ds)
        self._obs_op("query", "dataset", t0)
        return out

    def find_transformations(
        self,
        name_glob: Optional[str] = None,
        produces: Optional[DatasetType] = None,
        consumes: Optional[DatasetType] = None,
        attributes: Optional[dict[str, Any]] = None,
    ) -> list[Transformation]:
        """Search transformations by name and type signature.

        ``produces``/``consumes`` match transformations with an output
        (resp. input) formal that *accepts* a dataset of the given type
        — the "if a program that performs this analysis exists, I won't
        have to write one from scratch" query of §2.
        """
        t0 = self._obs_t0()
        out = []
        for tr in self.transformations():
            if name_glob and not fnmatch.fnmatch(tr.name, name_glob):
                continue
            if attributes and not tr.attributes.matches(attributes):
                continue
            if produces is not None and not any(
                f.dataset_types.accepts(produces, self.types)
                for f in tr.signature.outputs()
            ):
                continue
            if consumes is not None and not any(
                f.dataset_types.accepts(consumes, self.types)
                for f in tr.signature.inputs()
            ):
                continue
            out.append(tr)
        self._obs_op("query", "transformation", t0)
        return out

    def find_derivations(
        self,
        transformation: Optional[str] = None,
        produces: Optional[str] = None,
        consumes: Optional[str] = None,
        name_glob: Optional[str] = None,
    ) -> list[Derivation]:
        """Search derivations by callee and by dataset names touched."""
        t0 = self._obs_t0()
        if produces is not None:
            candidates = self.producers_of(produces)
        elif consumes is not None:
            candidates = self.consumers_of(consumes)
        else:
            candidates = list(self.derivations())
        out = []
        for dv in candidates:
            if transformation and dv.transformation.name != transformation:
                continue
            if name_glob and not fnmatch.fnmatch(dv.name, name_glob):
                continue
            if produces and not dv.produces(produces):
                continue
            if consumes and not dv.consumes(consumes):
                continue
            out.append(dv)
        self._obs_op("query", "derivation", t0)
        return out

    # ------------------------------------------------------------------
    # VDL convenience
    # ------------------------------------------------------------------

    def define(self, vdl_source: str, replace: bool = False) -> "VirtualDataCatalog":
        """Compile VDL text and register everything it declares.

        Returns ``self`` so definitions can be chained fluently.
        """
        from repro.vdl.semantics import compile_vdl

        program = compile_vdl(vdl_source, self.types)
        for tr in program.transformations:
            self.add_transformation(tr, replace=replace)
        for dv in program.derivations:
            self.add_derivation(dv, replace=replace)
        return self

    def export_vdl(self) -> str:
        """Render the catalog's TRs and DVs back to VDL text."""
        from repro.vdl.unparser import unparse

        return unparse(list(self.transformations()), list(self.derivations()))

    # ------------------------------------------------------------------
    # bulk export / import (used by federation snapshots and tests)
    # ------------------------------------------------------------------

    def export_snapshot(self) -> dict[str, dict[str, dict]]:
        """Dump all storage payloads, keyed by kind then key."""
        return {
            kind: {
                key: self._store_get(kind, key)
                for key in self._store_keys(kind)
            }
            for kind in KINDS
        }

    def import_snapshot(self, snapshot: dict[str, dict[str, dict]]) -> None:
        """Load payloads produced by :meth:`export_snapshot`."""
        for kind in KINDS:
            for key, payload in snapshot.get(kind, {}).items():
                self._store_put(kind, key, payload)
        self._rebuild_indexes()

    def counts(self) -> dict[str, int]:
        """Number of stored objects per kind."""
        return {kind: len(self._store_keys(kind)) for kind in KINDS}

    def __repr__(self) -> str:
        where = self.authority or "local"
        return f"<{type(self).__name__} {where} {self.counts()}>"
