"""The Virtual Data Catalog (VDC) service interface (§4).

"We introduce the term virtual data catalog (VDC) to denote a service
that maintains information defined by our virtual data schema."  A
VDC's implementation "may variously be a relational database, OO
database, XML repository, or even a hierarchical directory" (§3); this
module defines the backend-independent interface and behaviour, and the
sibling modules provide three backends:

* :class:`repro.catalog.memory.MemoryCatalog` — dictionaries;
* :class:`repro.catalog.sqlite.SQLiteCatalog` — a relational store
  (the Appendix B shape);
* :class:`repro.catalog.filetree.FileTreeCatalog` — a hierarchical
  directory of JSON documents.

The base class owns all semantics — registration rules, link
maintenance, discovery queries, change notification — and delegates
only dumb ``(kind, key) -> payload dict`` persistence to the backend.
All backends therefore behave identically, which the test suite checks
by running the same scenarios against each.
"""

from __future__ import annotations

import copy
import fnmatch
import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from repro.catalog.index import CatalogIndexes, PayloadCache
from repro.catalog.payloads import json_copy
from repro.core.dataset import Dataset
from repro.durability.crashpoints import crashpoint
from repro.core.derivation import Derivation
from repro.core.invocation import Invocation
from repro.core.replica import Replica
from repro.core.transformation import Transformation
from repro.core.types import DatasetType, TypeRegistry, default_registry
from repro.core.versioning import VersionRegistry
from repro.errors import (
    DuplicateEntryError,
    NotFoundError,
    TypeConformanceError,
)
from repro.observability.instrument import NULL, Instrumentation
from repro.observability.metrics import label_key
from repro.vdl import xml_io

#: Object kinds a catalog stores, in dependency order.
KINDS = ("dataset", "replica", "transformation", "derivation", "invocation")

#: Event names delivered to subscribers.
EVENTS = ("put", "delete")


def _synchronized(method):
    """Serialize a catalog method under the instance's re-entrant lock.

    The parallel local executor records provenance from worker threads;
    every public catalog operation is atomic with respect to the
    storage primitives, the secondary indexes and the payload cache.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


def _transformation_to_payload(tr: Transformation) -> dict:
    return tr.to_dict()


def _transformation_from_payload(payload: dict) -> Transformation:
    import xml.etree.ElementTree as ET

    tr = xml_io.transformation_from_xml(ET.fromstring(payload["xml"]))
    for key, value in payload.get("attributes", {}).items():
        tr.attributes.set(key, value)
    return tr


class VirtualDataCatalog:
    """Backend-independent VDC semantics.

    Subclasses implement five storage primitives (``_store_put``,
    ``_store_get``, ``_store_delete``, ``_store_keys``, ``_store_has``).
    Keys are: dataset name, replica id, ``name@version`` for
    transformations, derivation name, invocation id.
    """

    def __init__(
        self,
        authority: Optional[str] = None,
        registry: Optional[TypeRegistry] = None,
        versions: Optional[VersionRegistry] = None,
        instrumentation: Optional[Instrumentation] = None,
    ):
        self.authority = authority
        self.types = registry or default_registry()
        self.versions = versions or VersionRegistry()
        self._obs = instrumentation or NULL
        self._obs_cache: dict = {}
        self._lock = threading.RLock()
        self._txn_depth = 0
        self._txn_rollback_on_error = True
        self._txn_undo: list[tuple[str, str, Optional[dict]]] = []
        self._txn_ops = 0
        self._txn_id: Optional[str] = None
        self._journal = None
        self._subscribers: list[Callable[[str, str, str], None]] = []
        # Fast paths, kept current by the mutation-event stream.  The
        # cache invalidator must observe events before the indexes do:
        # index maintenance re-reads payloads through the cache.
        self._cache = PayloadCache()
        # Set by the mutation choke points right before they fire the
        # "put" event: the just-written payload is already cached, so
        # the invalidator must let it live (index maintenance re-reads
        # payloads through the cache immediately after).
        self._cache_fresh: Optional[tuple[str, str]] = None
        self.subscribe(self._invalidate_cached_payload)
        self._indexes = CatalogIndexes(self)
        self._analyzer: Optional[Any] = None
        self._graph_cache: Optional[Any] = None

    # ------------------------------------------------------------------
    # storage primitives (implemented by backends)
    # ------------------------------------------------------------------

    def _store_put(self, kind: str, key: str, payload: dict) -> None:
        raise NotImplementedError

    def _store_get(self, kind: str, key: str) -> Optional[dict]:
        raise NotImplementedError

    def _store_delete(self, kind: str, key: str) -> None:
        raise NotImplementedError

    def _store_keys(self, kind: str) -> list[str]:
        raise NotImplementedError

    def _store_has(self, kind: str, key: str) -> bool:
        return self._store_get(kind, key) is not None

    def _store_peek(self, kind: str, key: str) -> Optional[dict]:
        """Raw read without an isolation copy — caller must not mutate.

        The point-lookup companion to :meth:`_store_scan`: backends
        whose storage is already plain dicts override this to skip the
        per-object copy.  The default delegates to :meth:`_store_get`
        (which copies), so it is always safe.
        """
        return self._store_get(kind, key)

    def _store_put_many(
        self, kind: str, items: list[tuple[str, dict]]
    ) -> None:
        """Raw batched write: no events, no index or cache upkeep.

        Only for bulk-load paths that rebuild the fast paths afterwards
        (e.g. :meth:`import_snapshot`).  Backends may override with a
        genuinely batched implementation (SQLite uses ``executemany``).
        """
        for key, payload in items:
            self._store_put(kind, key, payload)

    def _store_scan(self, kind: str) -> Iterator[tuple[str, dict]]:
        """Yield every ``(key, payload)`` of a kind for bulk readers.

        Like :meth:`_cached_payload`, the yielded documents may be
        backend-owned: callers must treat them as read-only and not
        retain them.  Backends with cheap raw access override this to
        skip the per-object isolation copy — at 10^5 objects that copy
        dominates any whole-catalog scan (index or analysis rebuilds).
        """
        for key in self._store_keys(kind):
            payload = self._store_get(kind, key)
            if payload is not None:
                yield key, payload

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    @property
    def obs(self) -> Instrumentation:
        return self._obs

    @obs.setter
    def obs(self, instrumentation: Instrumentation) -> None:
        self._obs = instrumentation
        self._obs_cache.clear()

    def _obs_t0(self) -> float:
        """Start-of-operation timestamp; 0.0 when not instrumented."""
        return time.perf_counter() if self._obs.enabled else 0.0

    def _obs_op(self, op: str, kind: str, t0: float) -> None:
        """Account one catalog operation's count and latency.

        Catalog lookups are the hottest instrumented path in the
        stack (planning walks the whole derivation graph), so the
        metric objects and label keys are resolved once per (op,
        kind) and cached rather than paying label normalization and
        registry lookups on every call.
        """
        if not self._obs.enabled:
            return
        cached = self._obs_cache.get((op, kind))
        if cached is None:
            metrics = self._obs.metrics
            cached = self._obs_cache[(op, kind)] = (
                metrics.counter(
                    "catalog.ops", help="catalog operations by op/kind/backend"
                ),
                label_key(
                    {"op": op, "kind": kind, "backend": type(self).__name__}
                ),
                metrics.histogram(
                    "catalog.op.seconds", help="catalog operation latency"
                ),
                label_key({"op": op}),
            )
        ops, ops_key, seconds, seconds_key = cached
        ops.inc_at(ops_key)
        seconds.observe_at(seconds_key, time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # change notification (used by federated indexes, Fig 4)
    # ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[str, str, str], None]) -> None:
        """Register ``callback(event, kind, key)`` for every mutation."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[str, str, str], None]) -> None:
        self._subscribers.remove(callback)

    def _notify(self, event: str, kind: str, key: str) -> None:
        for callback in self._subscribers:
            callback(event, kind, key)

    # ------------------------------------------------------------------
    # payload cache and index maintenance
    # ------------------------------------------------------------------

    def _invalidate_cached_payload(self, event: str, kind: str, key: str) -> None:
        if self._cache_fresh == (kind, key) and event == "put":
            # Write-through from _apply_put/restore_payload: the cache
            # already holds the new payload; don't throw it away.
            self._cache_fresh = None
            return
        self._cache.invalidate(kind, key)

    def _cached_payload(self, kind: str, key: str) -> Optional[dict]:
        """``_store_get`` through the decoded-payload LRU.

        The cached document is shared — callers that hand data out must
        deep-copy (see the get_* accessors) so backend isolation
        guarantees survive the cache.
        """
        payload = self._cache.get(kind, key)
        if payload is not None:
            self._obs_cache_op(hit=True)
            return payload
        self._obs_cache_op(hit=False)
        payload = self._store_get(kind, key)
        if payload is not None:
            self._cache.put(kind, key, payload)
        return payload

    def _peek_payload(self, kind: str, key: str) -> Optional[dict]:
        """Read-only payload view: cache if present, else a raw peek.

        Unlike :meth:`_cached_payload` a miss does *not* populate the
        LRU — bulk planner walks over 10^5+ objects would otherwise
        evict the whole working set.  Callers must treat the document
        as read-only and must not retain it across mutations.
        """
        payload = self._cache.get(kind, key)
        if payload is not None:
            return payload
        return self._store_peek(kind, key)

    def _obs_cache_op(self, hit: bool) -> None:
        if not self._obs.enabled:
            return
        cached = self._obs_cache.get("payload-cache")
        if cached is None:
            metrics = self._obs.metrics
            cached = self._obs_cache["payload-cache"] = (
                metrics.counter(
                    "catalog.index.hits",
                    help="catalog lookups served from the payload cache",
                ),
                metrics.counter(
                    "catalog.index.misses",
                    help="catalog lookups that fell through to storage",
                ),
            )
        (cached[0] if hit else cached[1]).inc_at(())

    def cache_stats(self) -> dict[str, int]:
        """Payload-cache hit/miss/size counters (for stats and tests)."""
        return self._cache.stats()

    @_synchronized
    def _rebuild_indexes(self) -> None:
        """Rebuild fast paths by scanning storage (on open)."""
        self._cache.clear()
        self._indexes.rebuild()
        if self._analyzer is not None:
            self._analyzer.rebuild()
        if self._graph_cache is not None:
            self._graph_cache.invalidate()

    @_synchronized
    def live_analyzer(self, file: str = "<catalog>") -> Any:
        """The incrementally-maintained analyzer over this catalog.

        Created lazily on first use; thereafter it tracks every
        mutation through the event stream, so repeated analysis and
        lint queries pay only for what changed.
        """
        if self._analyzer is None:
            # Local import: repro.analysis imports catalog payload
            # helpers, so a module-level import would be circular.
            from repro.analysis.incremental import IncrementalAnalyzer

            self._analyzer = IncrementalAnalyzer(
                self, file=file, obs=self._obs
            )
        return self._analyzer

    @_synchronized
    def graph_cache(self) -> Any:
        """The event-maintained derivation-graph cache (lazy).

        Like :meth:`live_analyzer`: created on first use, then kept
        current through the mutation-event stream so repeated planning
        pays only for what changed.
        """
        if self._graph_cache is None:
            # Local import: repro.provenance imports catalog helpers,
            # so a module-level import would be circular.
            from repro.provenance.graphcache import GraphCache

            self._graph_cache = GraphCache(self)
        return self._graph_cache

    def derivation_graph(self) -> Any:
        """The current derivation graph, cached between mutations.

        The returned graph is shared and event-maintained: treat it as
        read-only, and re-call this accessor (cheap when nothing
        changed) rather than holding it across catalog mutations.
        """
        return self.graph_cache().graph()

    # ------------------------------------------------------------------
    # transactions (crash-atomic multi-object commits)
    # ------------------------------------------------------------------

    def attach_journal(self, journal) -> None:
        """Attach an :class:`~repro.durability.journal.IntentJournal`.

        With a journal attached, every mutation inside a
        :meth:`transaction` is journaled (with its undo payload)
        *before* it is applied, and the commit marker seals the batch —
        so a crash at any instant leaves the journal able to finish the
        story: roll the partial batch back, or prove it completed.
        Backends with native transactions (SQLite) don't need one, but
        the combination is still coherent: the journal then also serves
        as a replayable redo log.
        """
        self._journal = journal

    @property
    def journal(self):
        return self._journal

    @contextmanager
    def transaction(self, label: str = "", rollback_on_error: bool = True):
        """Group mutations into one all-or-nothing (vs. crashes) unit.

        Every mutation inside the context behaves normally — events
        fire, indexes and the cache stay current, reads observe writes —
        but durability is deferred to the outermost exit:

        * backends with native transactions (SQLite) hold their commit
          until exit and roll back on error;
        * with a journal attached, each mutation's intent (redo and
          undo payloads) is flushed to the journal before it touches
          the store, and a fsynced commit marker seals the batch — a
          kill at *any* instant is recoverable by ``repro fsck``;
        * on an exception with ``rollback_on_error`` (the default), the
          applied prefix is undone in reverse before the exception
          propagates, so callers never observe half a commit.

        ``rollback_on_error=False`` keeps the historical :meth:`bulk`
        contract: crash-atomic, but mutations applied before an
        in-process exception remain applied.  Nesting is allowed; inner
        transactions simply extend the outermost one.
        """
        with self._lock:
            self._txn_depth += 1
            if self._txn_depth > 1:
                try:
                    yield self
                finally:
                    self._txn_depth -= 1
                return
            self._txn_undo = []
            self._txn_ops = 0
            self._txn_rollback_on_error = rollback_on_error
            self._txn_id = (
                self._journal.begin(label) if self._journal is not None else None
            )
            self._txn_begin()
            try:
                yield self
            except BaseException:
                if rollback_on_error:
                    self._txn_rollback_applied()
                else:
                    # Seal what did apply (bulk semantics): the batch
                    # stays exception-non-atomic but crash-atomic.
                    self._txn_seal()
                raise
            else:
                self._txn_seal()
            finally:
                self._txn_depth -= 1
                self._txn_undo = []
                self._txn_id = None

    @contextmanager
    def bulk(self):
        """Batch mutations, deferring backend durability work.

        Inside the context every mutation behaves normally (events
        fire, indexes and cache stay current, reads observe writes);
        backends may defer expensive durability steps — SQLite holds
        its ``commit()`` until exit instead of fsyncing per mutation.
        The batch is *not* atomic with respect to exceptions: mutations
        applied before an exception remain applied, exactly as without
        ``bulk()``.  It *is* atomic with respect to crashes — bulk runs
        on the same journaled commit path as :meth:`transaction`.
        Nesting is allowed; only the outermost exit flushes.
        """
        with self.transaction(label="bulk", rollback_on_error=False):
            yield self

    def _txn_seal(self) -> None:
        """Make the applied batch durable: backend commit, then marker."""
        self._txn_commit()
        if self._txn_id is not None:
            crashpoint("catalog.commit.pre-marker")
            self._journal.commit(self._txn_id, self._txn_ops)

    def _txn_rollback_applied(self) -> None:
        """Undo the applied prefix of the open transaction (lock held)."""
        if self._journal is None and self._txn_abort():
            # The backend discarded the uncommitted writes wholesale;
            # in-memory fast paths saw them, so rebuild from storage.
            self._rebuild_indexes()
            return
        undo = list(self._txn_undo)
        for kind, key, prev in reversed(undo):
            if self._txn_id is not None:
                # Journal the compensation as part of the same
                # transaction: a redo replay then nets to the pre-
                # transaction state, and a crash mid-rollback is
                # finished by fsck like any other uncommitted batch.
                self._journal.record(
                    self._txn_id,
                    "put" if prev is not None else "delete",
                    kind,
                    key,
                    payload=prev,
                )
                self._txn_ops += 1
            self.restore_payload(kind, key, prev)
        self._txn_seal()

    def _txn_begin(self) -> None:
        """Backend hook: enter deferred-durability mode (default no-op)."""

    def _txn_commit(self) -> None:
        """Backend hook: flush deferred durability work (default no-op)."""

    def _txn_abort(self) -> bool:
        """Backend hook: natively discard uncommitted writes.

        Returns True when the backend rolled back wholesale (SQLite);
        False (the default) to request semantic per-op undo instead.
        """
        return False

    def _apply_put(self, kind: str, key: str, payload: dict) -> None:
        """Journal-then-apply a put (the mutation choke point)."""
        if self._txn_depth:
            prev = self._snapshot_payload(kind, key)
            self._txn_undo.append((kind, key, prev))
            if self._txn_id is not None:
                self._journal.record(
                    self._txn_id, "put", kind, key, payload=payload, prev=prev
                )
                self._txn_ops += 1
                crashpoint("catalog.commit.op")
        self._store_put(kind, key, payload)
        # Write-through: every caller passes a freshly serialized
        # document it never mutates afterwards, so an owned copy can be
        # cached now — index maintenance and the common read-after-
        # write then skip the backend read entirely.
        self._cache.put(kind, key, json_copy(payload))
        self._cache_fresh = (kind, key)

    def _apply_delete(self, kind: str, key: str) -> None:
        """Journal-then-apply a delete (the mutation choke point)."""
        if self._txn_depth:
            prev = self._snapshot_payload(kind, key)
            self._txn_undo.append((kind, key, prev))
            if self._txn_id is not None:
                self._journal.record(
                    self._txn_id, "delete", kind, key, prev=prev
                )
                self._txn_ops += 1
                crashpoint("catalog.commit.op")
        self._store_delete(kind, key)

    def _snapshot_payload(self, kind: str, key: str) -> Optional[dict]:
        """An owned copy of the stored payload, for undo logs."""
        payload = self._cached_payload(kind, key)
        return json_copy(payload) if payload is not None else None

    @_synchronized
    def restore_payload(
        self, kind: str, key: str, payload: Optional[dict]
    ) -> None:
        """Force a raw payload (recovery primitive; bypasses validation).

        ``payload=None`` deletes the key.  Fires the normal mutation
        events so the cache, indexes, and any live analyzer stay
        coherent.  Used by journal rollback/replay and ``repro fsck``
        repairs; not part of the application-facing API.
        """
        if payload is None:
            if self._store_has(kind, key):
                self._store_delete(kind, key)
                self._notify("delete", kind, key)
        else:
            owned = json_copy(payload)
            self._store_put(kind, key, owned)
            # Same write-through contract as _apply_put: whenever the
            # fresh marker is set, cache and store hold the same
            # document, so the skipped invalidation is always safe.
            self._cache.put(kind, key, json_copy(owned))
            self._cache_fresh = (kind, key)
            self._notify("put", kind, key)

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------

    @_synchronized
    def add_dataset(self, dataset: Dataset, replace: bool = False) -> None:
        """Register a dataset definition.

        ``replace=True`` permits updating an existing record (e.g. when
        a virtual dataset becomes materialized).
        """
        t0 = self._obs_t0()
        if not replace and self._store_has("dataset", dataset.name):
            raise DuplicateEntryError(f"dataset {dataset.name!r} already defined")
        self._apply_put("dataset", dataset.name, dataset.to_dict())
        self._notify("put", "dataset", dataset.name)
        self._obs_op("insert", "dataset", t0)

    @_synchronized
    def get_dataset(self, name: str) -> Dataset:
        t0 = self._obs_t0()
        payload = self._cached_payload("dataset", name)
        if payload is None:
            raise NotFoundError(f"dataset {name!r} not found")
        self._obs_op("lookup", "dataset", t0)
        return Dataset.from_dict(json_copy(payload))

    @_synchronized
    def has_dataset(self, name: str) -> bool:
        return self._store_has("dataset", name)

    @_synchronized
    def remove_dataset(self, name: str) -> None:
        if not self._store_has("dataset", name):
            raise NotFoundError(f"dataset {name!r} not found")
        self._apply_delete("dataset", name)
        self._notify("delete", "dataset", name)

    @_synchronized
    def dataset_names(self) -> list[str]:
        return sorted(self._store_keys("dataset"))

    def datasets(self) -> Iterator[Dataset]:
        for name in self.dataset_names():
            yield self.get_dataset(name)

    # ------------------------------------------------------------------
    # replicas
    # ------------------------------------------------------------------

    @_synchronized
    def add_replica(self, replica: Replica) -> None:
        """Register a physical copy of a dataset."""
        t0 = self._obs_t0()
        if self._store_has("replica", replica.replica_id):
            raise DuplicateEntryError(
                f"replica {replica.replica_id!r} already registered"
            )
        self._apply_put("replica", replica.replica_id, replica.to_dict())
        self._notify("put", "replica", replica.replica_id)
        self._obs_op("insert", "replica", t0)

    @_synchronized
    def get_replica(self, replica_id: str) -> Replica:
        payload = self._cached_payload("replica", replica_id)
        if payload is None:
            raise NotFoundError(f"replica {replica_id!r} not found")
        return Replica.from_dict(json_copy(payload))

    @_synchronized
    def remove_replica(self, replica_id: str) -> None:
        if not self._store_has("replica", replica_id):
            raise NotFoundError(f"replica {replica_id!r} not found")
        self._apply_delete("replica", replica_id)
        self._notify("delete", "replica", replica_id)

    @_synchronized
    def replicas_of(self, dataset_name: str) -> list[Replica]:
        """All registered physical copies of ``dataset_name``."""
        ids = sorted(self._indexes.replicas_of.get(dataset_name, ()))
        return [self.get_replica(rid) for rid in ids]

    @_synchronized
    def replica_ids(self) -> list[str]:
        return sorted(self._store_keys("replica"))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    @_synchronized
    def add_transformation(
        self, tr: Transformation, replace: bool = False
    ) -> None:
        t0 = self._obs_t0()
        key = f"{tr.name}@{tr.version}"
        if not replace and self._store_has("transformation", key):
            raise DuplicateEntryError(
                f"transformation {tr.name!r} version {tr.version} already defined"
            )
        self._apply_put("transformation", key, _transformation_to_payload(tr))
        self.versions.register(tr.name, tr.version)
        self._notify("put", "transformation", key)
        self._obs_op("insert", "transformation", t0)

    @_synchronized
    def get_transformation(
        self, name: str, version: Optional[str] = None
    ) -> Transformation:
        """Fetch by name; latest version when ``version`` is omitted."""
        t0 = self._obs_t0()
        if version is None:
            known = self._indexes.tr_versions.get(name)
            if not known:
                raise NotFoundError(f"transformation {name!r} not found")
            latest = self.versions.latest(name)
            version = str(latest) if latest is not None else sorted(known)[-1]
            if version not in known:
                # versions registry may normalize (1.0 == 1); fall back.
                version = sorted(known)[-1]
        payload = self._cached_payload("transformation", f"{name}@{version}")
        if payload is None:
            raise NotFoundError(
                f"transformation {name!r} version {version} not found"
            )
        self._obs_op("lookup", "transformation", t0)
        return _transformation_from_payload(payload)

    @_synchronized
    def has_transformation(self, name: str, version: Optional[str] = None) -> bool:
        if version is None:
            return bool(self._indexes.tr_versions.get(name))
        return self._store_has("transformation", f"{name}@{version}")

    @_synchronized
    def remove_transformation(self, name: str, version: str) -> None:
        key = f"{name}@{version}"
        if not self._store_has("transformation", key):
            raise NotFoundError(f"transformation {key!r} not found")
        self._apply_delete("transformation", key)
        self._notify("delete", "transformation", key)

    @_synchronized
    def transformation_names(self) -> list[str]:
        return sorted(self._indexes.tr_versions)

    def transformations(self) -> Iterator[Transformation]:
        for key in sorted(self._store_keys("transformation")):
            yield _transformation_from_payload(
                self._store_get("transformation", key)
            )

    # ------------------------------------------------------------------
    # derivations
    # ------------------------------------------------------------------

    @_synchronized
    def add_derivation(
        self,
        dv: Derivation,
        replace: bool = False,
        validate: bool = True,
        auto_declare: bool = True,
    ) -> None:
        """Register a derivation.

        * validates actuals against the (locally resolvable)
          transformation when ``validate`` is true;
        * auto-declares virtual dataset records for any LFN the
          derivation mentions that is not yet known, and stamps the
          produced datasets' ``producer`` back-link.
        """
        t0 = self._obs_t0()
        if not replace and self._store_has("derivation", dv.name):
            raise DuplicateEntryError(f"derivation {dv.name!r} already defined")
        if validate:
            self.check_derivation(dv)
        self._apply_put("derivation", dv.name, dv.to_dict())
        if auto_declare:
            self._declare_mentioned_datasets(dv)
        self._notify("put", "derivation", dv.name)
        self._obs_op("insert", "derivation", t0)

    def _declare_mentioned_datasets(self, dv: Derivation) -> None:
        formal_types = self._formal_types_for(dv)
        for formal_name, arg in dv.dataset_args():
            if not self._store_has("dataset", arg.dataset):
                dtype = formal_types.get(formal_name)
                ds = Dataset(name=arg.dataset, dataset_type=dtype or DatasetType())
                if arg.is_output:
                    ds.producer = dv.name
                self.add_dataset(ds)
            elif arg.is_output:
                ds = self.get_dataset(arg.dataset)
                if ds.producer != dv.name:
                    ds.producer = dv.name
                    self.add_dataset(ds, replace=True)

    def _formal_types_for(self, dv: Derivation) -> dict[str, DatasetType]:
        """Best-effort formal types for a derivation's dataset args."""
        if not dv.transformation.is_local or not self.has_transformation(
            dv.transformation.name
        ):
            return {}
        tr = self.get_transformation(dv.transformation.name)
        out = {}
        for formal in tr.signature.formals:
            if not formal.is_string and len(formal.dataset_types.members) == 1:
                member = formal.dataset_types.members[0]
                if not member.is_any():
                    out[formal.name] = member
        return out

    @_synchronized
    def get_derivation(self, name: str) -> Derivation:
        t0 = self._obs_t0()
        payload = self._cached_payload("derivation", name)
        if payload is None:
            raise NotFoundError(f"derivation {name!r} not found")
        self._obs_op("lookup", "derivation", t0)
        return Derivation.from_dict(json_copy(payload))

    @_synchronized
    def _decode_derivation(self, name: str) -> Derivation:
        """Decode a derivation from the raw stored payload (no copy).

        ``Derivation.from_dict`` rebuilds every mutable substructure
        (actuals, environment, attributes), so the decoded object
        shares nothing with the store and the isolation copy of
        :meth:`get_derivation` is pure overhead.  This is the loader
        the cached :class:`~repro.provenance.graph.DerivationGraph`
        uses — at 10^5+ derivations the copy would dominate planning.
        """
        payload = self._peek_payload("derivation", name)
        if payload is None:
            raise NotFoundError(f"derivation {name!r} not found")
        return Derivation.from_dict(payload)

    @_synchronized
    def has_derivation(self, name: str) -> bool:
        return self._store_has("derivation", name)

    @_synchronized
    def remove_derivation(self, name: str) -> None:
        if not self._store_has("derivation", name):
            raise NotFoundError(f"derivation {name!r} not found")
        self._apply_delete("derivation", name)
        self._notify("delete", "derivation", name)

    @_synchronized
    def derivation_names(self) -> list[str]:
        return sorted(self._store_keys("derivation"))

    def derivations(self) -> Iterator[Derivation]:
        for name in self.derivation_names():
            yield self.get_derivation(name)

    def check_derivation(self, dv: Derivation) -> None:
        """Validate a derivation against its transformation and datasets.

        Remote transformation references are skipped (the resolver
        validates them); local ones are checked for arity/direction and
        dataset-type conformance against registered dataset records.
        """
        ref = dv.transformation
        if not ref.is_local:
            return
        if not self.has_transformation(ref.name):
            return  # foreign/unregistered; tolerated like remote refs
        tr = self.get_transformation(ref.name)
        dv.check_against(tr)
        for formal_name, arg in dv.dataset_args():
            formal = tr.signature.formal(formal_name)
            if formal.is_string:
                continue
            if not self._store_has("dataset", arg.dataset):
                continue
            ds = self.get_dataset(arg.dataset)
            if not formal.dataset_types.accepts(ds.dataset_type, self.types):
                raise TypeConformanceError(
                    f"derivation {dv.name!r}: dataset {arg.dataset!r} of type "
                    f"{ds.dataset_type} does not conform to formal "
                    f"{formal_name!r} ({formal.dataset_types})"
                )

    # ------------------------------------------------------------------
    # invocations
    # ------------------------------------------------------------------

    @_synchronized
    def add_invocation(self, inv: Invocation) -> None:
        t0 = self._obs_t0()
        if self._store_has("invocation", inv.invocation_id):
            raise DuplicateEntryError(
                f"invocation {inv.invocation_id!r} already recorded"
            )
        self._apply_put("invocation", inv.invocation_id, inv.to_dict())
        self._notify("put", "invocation", inv.invocation_id)
        self._obs_op("insert", "invocation", t0)

    @_synchronized
    def get_invocation(self, invocation_id: str) -> Invocation:
        payload = self._cached_payload("invocation", invocation_id)
        if payload is None:
            raise NotFoundError(f"invocation {invocation_id!r} not found")
        return Invocation.from_dict(json_copy(payload))

    @_synchronized
    def invocations_of(self, derivation_name: str) -> list[Invocation]:
        """All recorded executions of a derivation, by id order."""
        ids = sorted(self._indexes.invocations_of.get(derivation_name, ()))
        return [self.get_invocation(iid) for iid in ids]

    @_synchronized
    def invocation_ids(self) -> list[str]:
        return sorted(self._store_keys("invocation"))

    # ------------------------------------------------------------------
    # provenance relationship queries (used by repro.provenance)
    # ------------------------------------------------------------------

    @_synchronized
    def producers_of(self, dataset_name: str) -> list[Derivation]:
        """Derivations that output ``dataset_name``."""
        names = sorted(self._indexes.produced_by.get(dataset_name, ()))
        return [self.get_derivation(n) for n in names]

    @_synchronized
    def consumers_of(self, dataset_name: str) -> list[Derivation]:
        """Derivations that read ``dataset_name``."""
        names = sorted(self._indexes.consumed_by.get(dataset_name, ()))
        return [self.get_derivation(n) for n in names]

    @_synchronized
    def derivations_of_transformation(self, name: str) -> list[Derivation]:
        """Derivations calling transformation ``name`` (any version)."""
        names = sorted(self._indexes.by_transformation.get(name, ()))
        return [self.get_derivation(n) for n in names]

    # ------------------------------------------------------------------
    # discovery (§2 Discovery, §5.5)
    # ------------------------------------------------------------------

    @_synchronized
    def find_datasets(
        self,
        name_glob: Optional[str] = None,
        conforms_to: Optional[DatasetType] = None,
        attributes: Optional[dict[str, Any]] = None,
        virtual: Optional[bool] = None,
    ) -> list[Dataset]:
        """Metadata search over datasets.

        ``conforms_to`` matches datasets whose type is a subtype of the
        given type; ``virtual`` filters on materialization state.
        """
        t0 = self._obs_t0()
        out = []
        for ds in self.datasets():
            if name_glob and not fnmatch.fnmatch(ds.name, name_glob):
                continue
            if conforms_to is not None and not self.types.conforms(
                ds.dataset_type, conforms_to
            ):
                continue
            if attributes and not ds.attributes.matches(attributes):
                continue
            if virtual is not None and ds.is_virtual != virtual:
                continue
            out.append(ds)
        self._obs_op("query", "dataset", t0)
        return out

    @_synchronized
    def find_transformations(
        self,
        name_glob: Optional[str] = None,
        produces: Optional[DatasetType] = None,
        consumes: Optional[DatasetType] = None,
        attributes: Optional[dict[str, Any]] = None,
    ) -> list[Transformation]:
        """Search transformations by name and type signature.

        ``produces``/``consumes`` match transformations with an output
        (resp. input) formal that *accepts* a dataset of the given type
        — the "if a program that performs this analysis exists, I won't
        have to write one from scratch" query of §2.
        """
        t0 = self._obs_t0()
        out = []
        for tr in self.transformations():
            if name_glob and not fnmatch.fnmatch(tr.name, name_glob):
                continue
            if attributes and not tr.attributes.matches(attributes):
                continue
            if produces is not None and not any(
                f.dataset_types.accepts(produces, self.types)
                for f in tr.signature.outputs()
            ):
                continue
            if consumes is not None and not any(
                f.dataset_types.accepts(consumes, self.types)
                for f in tr.signature.inputs()
            ):
                continue
            out.append(tr)
        self._obs_op("query", "transformation", t0)
        return out

    @_synchronized
    def find_derivations(
        self,
        transformation: Optional[str] = None,
        produces: Optional[str] = None,
        consumes: Optional[str] = None,
        name_glob: Optional[str] = None,
    ) -> list[Derivation]:
        """Search derivations by callee and by dataset names touched."""
        t0 = self._obs_t0()
        if produces is not None:
            candidates = self.producers_of(produces)
        elif consumes is not None:
            candidates = self.consumers_of(consumes)
        elif transformation is not None:
            candidates = self.derivations_of_transformation(transformation)
        else:
            candidates = list(self.derivations())
        out = []
        for dv in candidates:
            if transformation and dv.transformation.name != transformation:
                continue
            if name_glob and not fnmatch.fnmatch(dv.name, name_glob):
                continue
            if produces and not dv.produces(produces):
                continue
            if consumes and not dv.consumes(consumes):
                continue
            out.append(dv)
        self._obs_op("query", "derivation", t0)
        return out

    # ------------------------------------------------------------------
    # VDL convenience
    # ------------------------------------------------------------------

    def define(self, vdl_source: str, replace: bool = False) -> "VirtualDataCatalog":
        """Compile VDL text and register everything it declares.

        Returns ``self`` so definitions can be chained fluently.
        """
        from repro.vdl.semantics import compile_vdl

        program = compile_vdl(vdl_source, self.types)
        with self.bulk():
            for tr in program.transformations:
                self.add_transformation(tr, replace=replace)
            for dv in program.derivations:
                self.add_derivation(dv, replace=replace)
        return self

    def export_vdl(self) -> str:
        """Render the catalog's TRs and DVs back to VDL text."""
        from repro.vdl.unparser import unparse

        return unparse(list(self.transformations()), list(self.derivations()))

    # ------------------------------------------------------------------
    # bulk export / import (used by federation snapshots and tests)
    # ------------------------------------------------------------------

    @_synchronized
    def export_snapshot(self) -> dict[str, dict[str, dict]]:
        """Dump all storage payloads, keyed by kind then key."""
        return {
            kind: {
                key: self._store_get(kind, key)
                for key in self._store_keys(kind)
            }
            for kind in KINDS
        }

    @_synchronized
    def import_snapshot(self, snapshot: dict[str, dict[str, dict]]) -> None:
        """Load payloads produced by :meth:`export_snapshot`."""
        with self.bulk():
            for kind in KINDS:
                items = list(snapshot.get(kind, {}).items())
                if items:
                    self._store_put_many(kind, items)
        self._rebuild_indexes()

    @_synchronized
    def counts(self) -> dict[str, int]:
        """Number of stored objects per kind."""
        return {kind: len(self._store_keys(kind)) for kind in KINDS}

    def __repr__(self) -> str:
        where = self.authority or "local"
        return f"<{type(self).__name__} {where} {self.counts()}>"
