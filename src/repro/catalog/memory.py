"""In-memory virtual data catalog backend.

The default backend for interactive use, planning scratch space, and
simulation workloads: nothing persists beyond the process.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.catalog.base import KINDS, VirtualDataCatalog
from repro.catalog.payloads import json_copy


class MemoryCatalog(VirtualDataCatalog):
    """A catalog whose storage is a pair of nested dictionaries.

    Payloads are deep-copied on the way in and out so callers can never
    mutate stored state behind the catalog's back — the same isolation
    a real service boundary would provide.
    """

    def __init__(self, authority: Optional[str] = None, **kwargs):
        super().__init__(authority=authority, **kwargs)
        self._data: dict[str, dict[str, dict]] = {kind: {} for kind in KINDS}

    def _store_put(self, kind: str, key: str, payload: dict) -> None:
        self._data[kind][key] = json_copy(payload)

    def _store_get(self, kind: str, key: str) -> Optional[dict]:
        payload = self._data[kind].get(key)
        return json_copy(payload) if payload is not None else None

    def _store_delete(self, kind: str, key: str) -> None:
        self._data[kind].pop(key, None)

    def _store_keys(self, kind: str) -> list[str]:
        return list(self._data[kind])

    def _store_peek(self, kind: str, key: str) -> Optional[dict]:
        # The stored document itself (no isolation copy); the
        # base-class contract makes the caller promise read-only.
        return self._data[kind].get(key)

    def _store_scan(self, kind: str) -> Iterator[tuple[str, dict]]:
        # Yields the stored documents themselves (no isolation copy);
        # the base-class contract makes the caller promise read-only.
        yield from self._data[kind].items()

    def _store_has(self, kind: str, key: str) -> bool:
        return key in self._data[kind]
