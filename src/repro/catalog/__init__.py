"""Virtual data catalogs: storage, discovery, federation, resolution (§4)."""

from repro.catalog.base import KINDS, VirtualDataCatalog
from repro.catalog.federation import FederatedIndex, IndexEntry, scan_catalogs
from repro.catalog.filetree import FileTreeCatalog
from repro.catalog.memory import MemoryCatalog
from repro.catalog.resolver import CatalogNetwork, ReferenceResolver
from repro.catalog.sqlite import SQLiteCatalog

__all__ = [
    "CatalogNetwork",
    "FederatedIndex",
    "FileTreeCatalog",
    "IndexEntry",
    "KINDS",
    "MemoryCatalog",
    "ReferenceResolver",
    "SQLiteCatalog",
    "VirtualDataCatalog",
    "scan_catalogs",
]

from repro.catalog.promotion import PromotionReport, promote  # noqa: E402

__all__ += ["PromotionReport", "promote"]
