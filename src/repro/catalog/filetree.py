"""File-tree virtual data catalog backend.

The "hierarchical directory such as a file system" realization of the
VDC (§3): one directory per object kind, one JSON document per object.
Keys are percent-encoded into file names so arbitrary object names
(``example1::t1@1.0``) stay filesystem-safe.
"""

from __future__ import annotations

import json
import urllib.parse
from pathlib import Path
from typing import Optional

from repro.catalog.base import KINDS, VirtualDataCatalog
from repro.durability.atomic import atomic_write_json


def _encode(key: str) -> str:
    return urllib.parse.quote(key, safe="") + ".json"


def _decode(filename: str) -> str:
    return urllib.parse.unquote(filename[: -len(".json")])


class FileTreeCatalog(VirtualDataCatalog):
    """A catalog persisted as a directory tree of JSON documents.

    Reopening a :class:`FileTreeCatalog` on an existing directory
    recovers the full catalog, including relationship indexes.
    """

    def __init__(
        self,
        root: str | Path,
        authority: Optional[str] = None,
        **kwargs,
    ):
        super().__init__(authority=authority, **kwargs)
        self._root = Path(root)
        for kind in KINDS:
            (self._root / kind).mkdir(parents=True, exist_ok=True)
        self._rebuild_indexes()

    @property
    def root(self) -> Path:
        return self._root

    # -- storage primitives -------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self._root / kind / _encode(key)

    def _store_put(self, kind: str, key: str, payload: dict) -> None:
        # Atomic tmp+rename; the ``.vdg-tmp`` marker means a leftover
        # from a crash mid-write is swept by ``repro fsck``.
        atomic_write_json(self._path(kind, key), payload, indent=1)

    def _store_get(self, kind: str, key: str) -> Optional[dict]:
        path = self._path(kind, key)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def _store_delete(self, kind: str, key: str) -> None:
        path = self._path(kind, key)
        if path.exists():
            path.unlink()

    def _store_keys(self, kind: str) -> list[str]:
        return [
            _decode(p.name)
            for p in (self._root / kind).iterdir()
            if p.name.endswith(".json")
        ]

    def _store_has(self, kind: str, key: str) -> bool:
        return self._path(kind, key).exists()
